"""The paper's kernels mapped onto the reconfigurable array.

Each module builds an XPP configuration reproducing one figure of the
paper and provides a runner that streams samples through the simulated
array:

* :mod:`repro.kernels.descrambler` — Fig. 5: 2-bit scrambling code ->
  +-1+-j multiplexer feeding a complex multiplier.
* :mod:`repro.kernels.despreader` — Fig. 6: complex multiply-accumulate
  over the spreading factor with a time-multiplexed accumulator ring,
  counters and comparators for the symbol-boundary shift-out.
* :mod:`repro.kernels.channel_correction` — Fig. 7: weight FIFOs, STTD
  decoding and channel weighting of time-multiplexed finger streams.
* :mod:`repro.kernels.fft64` — Fig. 9: the radix-4 FFT64 with twiddle
  and address lookup FIFOs, a dual-ported data RAM and per-stage
  scaling, iterated three times over the same hardware.
* :mod:`repro.kernels.combining` — the rake combining stage.
* :mod:`repro.kernels.complex_macros` — scalar-ALU expansion of the
  complex arithmetic (the resource-cost ablation against the packed
  complex ALUs).
"""

from repro.kernels.descrambler import (
    DescramblerKernel,
    build_descrambler_config,
    descrambler_golden,
)
from repro.kernels.despreader import (
    DespreaderKernel,
    build_despreader_config,
    despreader_golden,
)
from repro.kernels.channel_correction import (
    ChannelCorrectionKernel,
    build_channel_correction_config,
    channel_correction_golden,
)
from repro.kernels.combining import CombinerKernel, combiner_golden
from repro.kernels.dsl import (
    build_descrambler_config_dsl,
    build_despreader_config_dsl,
    descrambler_graph,
    despreader_graph,
)
from repro.kernels.fft64 import Fft64Kernel, build_fft_stage_config
from repro.kernels.complex_macros import scalar_cmul_config
from repro.kernels.interleaver_map import (
    InterleaverKernel,
    build_interleaver_config,
)
from repro.kernels.rake_chain import (
    RakeChainKernel,
    build_rake_chain_config,
    rake_chain_golden,
)

__all__ = [
    "ChannelCorrectionKernel",
    "CombinerKernel",
    "DescramblerKernel",
    "DespreaderKernel",
    "Fft64Kernel",
    "InterleaverKernel",
    "RakeChainKernel",
    "build_interleaver_config",
    "build_channel_correction_config",
    "build_descrambler_config",
    "build_descrambler_config_dsl",
    "build_despreader_config",
    "build_despreader_config_dsl",
    "descrambler_graph",
    "despreader_graph",
    "build_fft_stage_config",
    "build_rake_chain_config",
    "rake_chain_golden",
    "channel_correction_golden",
    "combiner_golden",
    "descrambler_golden",
    "despreader_golden",
    "scalar_cmul_config",
]

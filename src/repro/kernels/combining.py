"""Rake combining on the array.

After channel correction, the contributions of the F logical fingers
are summed per transmitted symbol (the maximum-ratio combiner's final
accumulation; the conj-weighting already happened in the channel
correction unit).  On the array this is a packed-complex
integrate-and-dump of length F.
"""

from __future__ import annotations

import numpy as np

from repro.fixed import pack_array, unpack_array
from repro.xpp import ConfigBuilder, Configuration, execute


def build_combiner_config(n_fingers: int, *, half_bits: int = 12,
                          shift: int = 0,
                          name: str = "combiner") -> Configuration:
    """A CACC of length ``n_fingers`` with an optional output shift."""
    if n_fingers < 1:
        raise ValueError("need at least one finger")
    b = ConfigBuilder(name)
    src = b.source("symbols", bits=2 * half_bits)
    acc = b.alu("CACC", name="mrc_acc", length=n_fingers, shift=shift,
                half_bits=half_bits)
    snk = b.sink("out")
    b.chain(src, acc, snk)
    return b.build()


def combiner_golden(symbols: np.ndarray, n_fingers: int,
                    shift: int = 0) -> np.ndarray:
    """Reference: sum every ``n_fingers`` consecutive symbols."""
    s = np.asarray(symbols)
    n = (s.size // n_fingers) * n_fingers
    sums = s[:n].reshape(-1, n_fingers).sum(axis=1)
    re = sums.real.astype(np.int64) >> shift
    im = sums.imag.astype(np.int64) >> shift
    return re + 1j * im


class CombinerKernel:
    """Runs the combining configuration on the simulated array."""

    def __init__(self, n_fingers: int, *, half_bits: int = 12,
                 shift: int = 0):
        self.n_fingers = n_fingers
        self.half_bits = half_bits
        self.shift = shift

    def run(self, symbols: np.ndarray):
        s = np.asarray(symbols)
        n = (s.size // self.n_fingers) * self.n_fingers
        cfg = build_combiner_config(self.n_fingers,
                                    half_bits=self.half_bits,
                                    shift=self.shift)
        cfg.sinks["out"].expect = n // self.n_fingers
        result = execute(cfg,
                         inputs={"symbols": pack_array(s[:n], self.half_bits)},
                         max_cycles=20 * n + 200)
        out = unpack_array(np.array(result["out"]), self.half_bits)
        return out, result.stats

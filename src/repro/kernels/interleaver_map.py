"""Block (de)interleaver on the array.

Fig. 8 maps the OFDM demodulation — including per-symbol
deinterleaving — onto the reconfigurable processor.  A block
interleaver is pure addressing: the symbol's soft values sit in a
RAM-PAE (written by the front-end DMA) and stream out through a
permutation kept in an address lookup FIFO, exactly the circular-LUT
idiom of the FFT64 (Fig. 9).
"""

from __future__ import annotations

import numpy as np

from repro.ofdm.interleaver import interleave_map
from repro.xpp import ConfigBuilder, Configuration, execute


def _read_order(n_cbps: int, n_bpsc: int, inverse: bool) -> list:
    """RAM read addresses producing the (de)interleaved order.

    The map gives j = perm[k]: input position k lands at output j.
    Deinterleaving a received block therefore *reads* address perm[k]
    at step k; interleaving reads the inverse permutation.
    """
    perm = list(interleave_map(n_cbps, n_bpsc))
    if inverse:
        return perm
    out = [0] * len(perm)
    for k, j in enumerate(perm):
        out[j] = k
    return out


def build_interleaver_config(n_cbps: int, n_bpsc: int, block: list, *,
                             inverse: bool = False,
                             name: str = "interleaver") -> Configuration:
    """One symbol block resident in a RAM-PAE, read out permuted.

    ``block`` is the RAM image (one OFDM symbol's coded values);
    ``inverse=True`` builds the receiver's deinterleaver.
    """
    if len(block) != n_cbps:
        raise ValueError(f"block must hold N_CBPS={n_cbps} values")
    b = ConfigBuilder(name)
    ram = b.ram(name="block_ram", words=n_cbps, preload=block)
    order = _read_order(n_cbps, n_bpsc, inverse)
    lut = b.fifo(name="addr_lut", depth=n_cbps, preload=order)
    snk = b.sink("out", expect=n_cbps)
    b.connect(lut, 0, ram, "raddr")
    b.connect(ram, "rdata", snk, 0)
    return b.build()


class InterleaverKernel:
    """Runs per-symbol (de)interleaving blocks on the array."""

    def __init__(self, n_cbps: int, n_bpsc: int, *, inverse: bool = False):
        self.n_cbps = n_cbps
        self.n_bpsc = n_bpsc
        self.inverse = inverse

    def run(self, values: np.ndarray):
        """Permute one or more N_CBPS blocks; returns
        ``(permuted, total_cycles)``."""
        v = np.asarray(values, dtype=np.int64)
        if v.size % self.n_cbps:
            raise ValueError(f"length must be a multiple of {self.n_cbps}")
        out = np.empty_like(v)
        cycles = 0
        for start in range(0, v.size, self.n_cbps):
            block = [int(x) for x in v[start:start + self.n_cbps]]
            cfg = build_interleaver_config(self.n_cbps, self.n_bpsc, block,
                                           inverse=self.inverse)
            result = execute(cfg, max_cycles=10 * self.n_cbps + 200)
            out[start:start + self.n_cbps] = result["out"]
            cycles += result.stats.cycles
        return out, cycles

"""Scalar-ALU expansion of complex arithmetic (resource ablation).

The paper's Fig. 9 draws the butterfly with *complex-arithmetic ALUs*;
on a plain 24-bit scalar array each complex multiply expands to a macro
of scalar PAEs (4 multipliers, an adder and a subtractor, plus
pack/unpack).  This module builds that macro so benchmarks can compare
the resource cost of the two representations.
"""

from __future__ import annotations

import numpy as np

from repro.fixed import pack_array, unpack_array
from repro.xpp import ConfigBuilder, Configuration, execute


def scalar_cmul_config(*, half_bits: int = 12, shift: int = 0,
                       name: str = "scalar_cmul") -> Configuration:
    """Complex multiply from scalar PAEs:
    ``re = a_re*b_re - a_im*b_im``, ``im = a_re*b_im + a_im*b_re``."""
    b = ConfigBuilder(name)
    src_a = b.source("a", bits=2 * half_bits)
    src_b = b.source("b", bits=2 * half_bits)
    un_a = b.alu("UNPACK", name="unpack_a", half_bits=half_bits)
    un_b = b.alu("UNPACK", name="unpack_b", half_bits=half_bits)
    b.connect(src_a, 0, un_a, 0)
    b.connect(src_b, 0, un_b, 0)

    m_rr = b.alu("MUL", name="mul_rr")
    m_ii = b.alu("MUL", name="mul_ii")
    m_ri = b.alu("MUL", name="mul_ri")
    m_ir = b.alu("MUL", name="mul_ir")
    b.connect(un_a, "re", m_rr, "a")
    b.connect(un_b, "re", m_rr, "b")
    b.connect(un_a, "im", m_ii, "a")
    b.connect(un_b, "im", m_ii, "b")
    b.connect(un_a, "re", m_ri, "a")
    b.connect(un_b, "im", m_ri, "b")
    b.connect(un_a, "im", m_ir, "a")
    b.connect(un_b, "re", m_ir, "b")

    sub = b.alu("SUB", name="re_sub", shift=shift)
    add = b.alu("ADD", name="im_add", shift=shift)
    b.connect(m_rr, 0, sub, "a")
    b.connect(m_ii, 0, sub, "b")
    b.connect(m_ri, 0, add, "a")
    b.connect(m_ir, 0, add, "b")

    pack = b.alu("PACK", name="repack", half_bits=half_bits)
    b.connect(sub, 0, pack, "re")
    b.connect(add, 0, pack, "im")
    snk = b.sink("out")
    b.connect(pack, 0, snk, 0)
    return b.build()


def run_scalar_cmul(a: np.ndarray, bvals: np.ndarray, *,
                    half_bits: int = 12, shift: int = 0):
    """Multiply two complex-int streams through the scalar macro."""
    a = np.asarray(a)
    bvals = np.asarray(bvals)
    n = min(a.size, bvals.size)
    cfg = scalar_cmul_config(half_bits=half_bits, shift=shift)
    cfg.sinks["out"].expect = n
    result = execute(cfg, inputs={"a": pack_array(a[:n], half_bits),
                                  "b": pack_array(bvals[:n], half_bits)},
                     max_cycles=30 * n + 300)
    return unpack_array(np.array(result["out"]), half_bits), result.stats

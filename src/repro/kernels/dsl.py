"""The descrambler and despreader expressed in the pnr kernel DSL.

Each graph here is the page-of-Python form of a netlist that
:mod:`repro.kernels.descrambler` / :mod:`repro.kernels.despreader`
build by hand; compiling it yields a configuration with the same
object names, parameters and wire capacities, so the DSL versions are
*bit-exact* stand-ins — same outputs, firing counts, cycles and energy
on every scheduler — which the conformance suite enforces.  The
hand-wired builders stay as the golden oracles.

``build_descrambler_config_dsl`` / ``build_despreader_config_dsl``
match the hand-wired builders' signatures, so a kernel runner accepts
either via its ``config_builder`` seam.
"""

from __future__ import annotations

from repro.fixed import pack_complex
from repro.kernels.descrambler import RESULT_SHIFT, _conj_code_table
from repro.kernels.despreader import _ovsf_table
from repro.pnr import KernelGraph, compile_graph
from repro.xpp.config import Configuration


def descrambler_graph(name: str = "descrambler", *,
                      half_bits: int = 12) -> KernelGraph:
    """Fig. 5 as a kernel graph: code -> LUT -> CMUL <- data."""
    g = KernelGraph(name)
    code = g.stream_in("code")
    data = g.stream_in("data", bits=2 * half_bits)
    lut = g.op("LUT", name="code_mux", table=_conj_code_table(half_bits))
    cmul = g.op("CMUL", name="descramble_mul", half_bits=half_bits,
                shift=RESULT_SHIFT)
    out = g.stream_out("out")
    g.connect(code, lut)
    g.connect(lut, cmul["b"])
    g.connect(data, cmul["a"])
    g.connect(cmul, out)
    return g


def despreader_graph(n_fingers: int, sf: int, *, half_bits: int = 12,
                     acc_shift: int = 0, pre_shift: int = 0,
                     name: str = "despreader") -> KernelGraph:
    """Fig. 6 as a kernel graph.

    The time-multiplexed accumulator ring is the ``mem`` node (a
    preloaded FIFO); the counter/comparator pair steers the DEMUX/MERGE
    shift-out exactly as in the hand-wired netlist, including the
    depth-8 register balancing on the select wires.  The checked
    datapath is the default ``half_bits=12`` (24-bit packed words
    throughout) — other widths trip the DSL's width checker where the
    hand-wired builder silently mixes widths.
    """
    if n_fingers < 1:
        raise ValueError("need at least one finger")
    if sf < 1:
        raise ValueError("spreading factor must be >= 1")
    g = KernelGraph(name)
    data = g.stream_in("data", bits=2 * half_bits)
    ovsf = g.stream_in("ovsf")
    lut = g.op("LUT", name="ovsf_mux", table=_ovsf_table(half_bits))
    cmul = g.op("CMUL", name="chip_mul", half_bits=half_bits,
                shift=pre_shift, round_shift=True)
    cadd = g.op("CADD", name="acc_add", half_bits=half_bits)
    ring = g.mem("acc_ram", mode="fifo", depth=max(n_fingers, 1),
                 preload=[0] * n_fingers, bits=2 * half_bits)
    counter = g.op("COUNTER", name="chip_counter", limit=n_fingers * sf)
    boundary = g.op("CMPGE", name="boundary_cmp",
                    const=n_fingers * (sf - 1))
    demux = g.op("DEMUX", name="result_shift_out", bits=2 * half_bits)
    merge = g.op("MERGE", name="acc_reset", bits=2 * half_bits)
    zero = g.op("CONST", name="zero_sym",
                value=pack_complex(0, 0, half_bits), bits=2 * half_bits)
    scale = g.op("CSHIFT", name="dump_scale", amount=-acc_shift,
                 half_bits=half_bits)
    out = g.stream_out("out")

    g.connect(ovsf, lut)
    g.connect(data, cmul["a"])
    g.connect(lut, cmul["b"])
    g.connect(cmul, cadd["a"])
    g.connect(ring, cadd["b"])
    g.connect(counter["value"], boundary["a"])
    # select path is shorter than the data path through multiplier and
    # accumulator: depth-8 slack (register balancing) keeps it full
    g.connect(boundary, demux["sel"], capacity=8)
    g.connect(boundary, merge["sel"], capacity=8)
    g.connect(cadd, demux["a"])
    g.connect(demux["o0"], merge["a"])      # keep accumulating
    g.connect(zero, merge["b"])             # boundary: reset accumulator
    g.connect(merge, ring)
    g.connect(demux["o1"], scale)           # boundary: dump symbol
    g.connect(scale, out)
    return g


def build_descrambler_config_dsl(name: str = "descrambler", *,
                                 half_bits: int = 12) -> Configuration:
    """Drop-in for :func:`~repro.kernels.descrambler.build_descrambler_config`,
    via the compiler."""
    return compile_graph(descrambler_graph(name, half_bits=half_bits)).config


def build_despreader_config_dsl(n_fingers: int, sf: int, *,
                                half_bits: int = 12, acc_shift: int = 0,
                                pre_shift: int = 0,
                                name: str = "despreader") -> Configuration:
    """Drop-in for :func:`~repro.kernels.despreader.build_despreader_config`,
    via the compiler."""
    return compile_graph(despreader_graph(
        n_fingers, sf, half_bits=half_bits, acc_shift=acc_shift,
        pre_shift=pre_shift, name=name)).config


#: canonical parameters for golden artifacts / CLI smoke compiles
GOLDEN_DESPREADER = {"n_fingers": 3, "sf": 4}


def golden_kernels() -> dict:
    """The DSL kernels at their golden-artifact parameters."""
    return {
        "descrambler": descrambler_graph(),
        "despreader": despreader_graph(**GOLDEN_DESPREADER),
    }

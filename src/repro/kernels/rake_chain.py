"""The complete physical rake finger as one array configuration.

Chains the paper's Fig. 4 reconfigurable-hardware column end to end on
the array: descrambling (Fig. 5) -> despreading (Fig. 6) -> channel
weighting (Fig. 7, non-STTD) -> combining, all in a single
configuration processing the time-multiplexed logical-finger stream —
the "single physical finger" the paper time-multiplexes at
N x 3.84 MHz.

Inputs (all time-multiplexed chip-major: chip c of finger 0..F-1, then
chip c+1):

* ``data`` — packed 12/12-bit received I/Q samples, already aligned per
  finger (the addressing the dedicated front end performs),
* ``code`` — the 2-bit scrambling code of each (finger, chip) slot from
  the dedicated code generator,
* ``ovsf`` — the 1-bit OVSF chip of each slot.

Output: one combined symbol per ``F x SF`` input slots.
"""

from __future__ import annotations

import numpy as np

from repro.fixed import pack_array, pack_complex, to_fixed, unpack_array
from repro.kernels.channel_correction import WEIGHT_FRAC_BITS
from repro.kernels.descrambler import RESULT_SHIFT, _conj_code_table, \
    descrambler_golden
from repro.kernels.despreader import _ovsf_table, \
    despreader_golden
from repro.wcdma.codes import ovsf_code, scrambling_code_2bit
from repro.xpp import ConfigBuilder, Configuration, execute


def build_rake_chain_config(n_fingers: int, sf: int, weights, *,
                            half_bits: int = 12, acc_shift: int = 0,
                            pre_shift: int = 0,
                            weight_frac_bits: int = WEIGHT_FRAC_BITS,
                            name: str = "rake_chain") -> Configuration:
    """The full finger pipeline for ``n_fingers`` logical fingers.

    ``weights`` are the per-finger combining coefficients (typically
    ``conj(h_f)``); ``pre_shift`` scales chip products before the
    integrate-and-dump (overflow headroom), ``acc_shift`` afterwards.
    """
    weights = list(weights)
    if len(weights) != n_fingers:
        raise ValueError("one combining weight per finger required")
    b = ConfigBuilder(name)
    data_src = b.source("data", bits=2 * half_bits)
    code_src = b.source("code")
    ovsf_src = b.source("ovsf")
    snk = b.sink("out")

    # --- descrambler (Fig. 5)
    code_mux = b.alu("LUT", name="code_mux",
                     table=_conj_code_table(half_bits))
    descramble = b.alu("CMUL", name="descramble", half_bits=half_bits,
                       shift=RESULT_SHIFT)
    b.connect(code_src, 0, code_mux, 0)
    b.connect(data_src, 0, descramble, "a")
    b.connect(code_mux, 0, descramble, "b")

    # --- despreader (Fig. 6)
    ovsf_mux = b.alu("LUT", name="ovsf_mux", table=_ovsf_table(half_bits))
    chip_mul = b.alu("CMUL", name="chip_mul", half_bits=half_bits,
                     shift=pre_shift, round_shift=True)
    b.connect(ovsf_src, 0, ovsf_mux, 0)
    b.connect(descramble, 0, chip_mul, "a")
    b.connect(ovsf_mux, 0, chip_mul, "b")

    acc_add = b.alu("CADD", name="acc_add", half_bits=half_bits)
    ring = b.fifo(name="acc_ram", depth=n_fingers,
                  preload=[0] * n_fingers, bits=2 * half_bits)
    chip_counter = b.alu("COUNTER", name="chip_counter",
                         limit=n_fingers * sf)
    boundary = b.alu("CMPGE", name="boundary_cmp",
                     const=n_fingers * (sf - 1))
    demux = b.alu("DEMUX", name="result_shift_out", bits=2 * half_bits)
    merge = b.alu("MERGE", name="acc_reset", bits=2 * half_bits)
    zero = b.alu("CONST", name="zero_sym",
                 value=pack_complex(0, 0, half_bits))
    scale = b.alu("CSHIFT", name="dump_scale", amount=-acc_shift,
                  half_bits=half_bits)
    b.connect(chip_mul, 0, acc_add, "a")
    b.connect(ring, 0, acc_add, "b")
    b.connect(chip_counter, "value", boundary, "a")
    b.connect(boundary, 0, demux, "sel", capacity=8)
    b.connect(boundary, 0, merge, "sel", capacity=8)
    b.connect(acc_add, 0, demux, "a")
    b.connect(demux, "o0", merge, "a")
    b.connect(zero, 0, merge, "b")
    b.connect(merge, 0, ring, 0)
    b.connect(demux, "o1", scale, 0)

    # --- channel weighting (Fig. 7, non-STTD) + combining
    packed_weights = []
    for w in weights:
        wre = int(to_fixed(complex(w).real, weight_frac_bits, half_bits))
        wim = int(to_fixed(complex(w).imag, weight_frac_bits, half_bits))
        packed_weights.append(pack_complex(wre, wim, half_bits))
    weight_fifo = b.fifo(name="weights", depth=n_fingers,
                         preload=packed_weights, circular=True,
                         bits=2 * half_bits)
    weight_mul = b.alu("CMUL", name="weight_mul", half_bits=half_bits,
                       shift=weight_frac_bits)
    combiner = b.alu("CACC", name="combiner", length=n_fingers,
                     half_bits=half_bits)
    b.connect(scale, 0, weight_mul, "a")
    b.connect(weight_fifo, 0, weight_mul, "b")
    b.connect(weight_mul, 0, combiner, 0)
    b.connect(combiner, 0, snk, 0)
    return b.build()


def rake_chain_golden(data: np.ndarray, code_2bit: np.ndarray,
                      ovsf_bits: np.ndarray, weights, n_fingers: int,
                      sf: int, *, acc_shift: int = 0, pre_shift: int = 0,
                      weight_frac_bits: int = WEIGHT_FRAC_BITS
                      ) -> np.ndarray:
    """Bit-accurate composition of the four kernel golden models."""
    descrambled = descrambler_golden(
        np.real(data).astype(np.int64), np.imag(data).astype(np.int64),
        code_2bit)
    despread = despreader_golden(descrambled, ovsf_bits, n_fingers, sf,
                                 acc_shift=acc_shift, pre_shift=pre_shift)
    weights = np.asarray(list(weights), dtype=np.complex128)
    wr = to_fixed(weights.real, weight_frac_bits)
    wi = to_fixed(weights.imag, weight_frac_bits)
    n = (despread.size // n_fingers) * n_fingers
    f = np.tile(np.arange(n_fingers), n // n_fingers)
    sr = despread.real.astype(np.int64)[:n]
    si = despread.imag.astype(np.int64)[:n]
    weighted_re = (sr * wr[f] - si * wi[f]) >> weight_frac_bits
    weighted_im = (sr * wi[f] + si * wr[f]) >> weight_frac_bits
    combined = (weighted_re + 1j * weighted_im).reshape(-1, n_fingers) \
        .sum(axis=1)
    return combined


class RakeChainKernel:
    """Drives the full-finger pipeline from a raw received chip stream.

    The host-side preparation — aligning per-finger samples and code
    phases from the path offsets — models the addressing the dedicated
    front end and code generators perform.
    """

    def __init__(self, *, scrambling_number: int, offsets, sf: int,
                 code_index: int, weights, half_bits: int = 12,
                 acc_shift: int = 0, pre_shift=None):
        self.scrambling_number = scrambling_number
        self.offsets = list(offsets)
        self.sf = sf
        self.code_index = code_index
        self.weights = list(weights)
        self.half_bits = half_bits
        self.acc_shift = acc_shift
        self.pre_shift = pre_shift      # None = choose from input peak
        if len(self.weights) != len(self.offsets):
            raise ValueError("one weight per finger (offset) required")

    @property
    def n_fingers(self) -> int:
        return len(self.offsets)

    def prepare_streams(self, rx_int: np.ndarray, n_symbols: int) -> tuple:
        """Build the time-multiplexed data/code/ovsf streams."""
        n_chips = n_symbols * self.sf
        need = max(self.offsets) + n_chips
        rx_int = np.asarray(rx_int)
        if rx_int.size < need:
            raise ValueError(f"need {need} samples, got {rx_int.size}")
        code = scrambling_code_2bit(self.scrambling_number, n_chips)
        ovsf = ((1 - ovsf_code(self.sf, self.code_index)) // 2)

        # the sample at rx[offset + c] carries *transmitted* chip c, so
        # the code generators run at the transmitted chip phase for
        # every finger; only the data address is offset per path
        f = self.n_fingers
        data = np.empty(n_chips * f, dtype=np.complex128)
        code_mux = np.empty(n_chips * f, dtype=np.int64)
        ovsf_mux = np.empty(n_chips * f, dtype=np.int64)
        for c in range(n_chips):
            for i, off in enumerate(self.offsets):
                data[c * f + i] = rx_int[off + c]
                code_mux[c * f + i] = code[c]
                ovsf_mux[c * f + i] = ovsf[c % self.sf]
        return data, code_mux, ovsf_mux

    def _resolve_pre_shift(self, data: np.ndarray) -> int:
        if self.pre_shift is not None:
            return self.pre_shift
        # descrambled components are bounded by (|re|+|im|) >> 1
        peak = int(np.max(np.abs(data.real) + np.abs(data.imag))) >> 1
        shift = 0
        while (peak >> shift) * self.sf >= 1 << (self.half_bits - 1):
            shift += 1
        return shift

    def run(self, rx_int: np.ndarray, n_symbols: int):
        """Process a received integer chip stream; returns
        ``(combined_symbols, stats)``."""
        rx_int = np.asarray(rx_int)
        peak = int(max(np.max(np.abs(rx_int.real)),
                       np.max(np.abs(rx_int.imag))))
        if peak >= 1 << (self.half_bits - 1):
            raise ValueError(
                f"input samples exceed the {self.half_bits}-bit I/Q "
                f"width (peak {peak}); rescale the capture")
        data, code_mux, ovsf_mux = self.prepare_streams(rx_int, n_symbols)
        pre_shift = self._resolve_pre_shift(data)
        cfg = build_rake_chain_config(
            self.n_fingers, self.sf, self.weights,
            half_bits=self.half_bits, acc_shift=self.acc_shift,
            pre_shift=pre_shift)
        cfg.sinks["out"].expect = n_symbols
        result = execute(cfg, inputs={
            "data": pack_array(data, self.half_bits),
            "code": code_mux,
            "ovsf": ovsf_mux,
        }, max_cycles=40 * data.size + 1000)
        out = unpack_array(np.array(result["out"]), self.half_bits)
        return out, result.stats

    def golden(self, rx_int: np.ndarray, n_symbols: int) -> np.ndarray:
        data, code_mux, ovsf_mux = self.prepare_streams(rx_int, n_symbols)
        return rake_chain_golden(data, code_mux, ovsf_mux, self.weights,
                                 self.n_fingers, self.sf,
                                 acc_shift=self.acc_shift,
                                 pre_shift=self._resolve_pre_shift(data))

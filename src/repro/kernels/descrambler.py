"""Rake descrambler on the array (paper Fig. 5).

The dedicated scrambling-code generator delivers the code as a 2-bit
stream; on the array, a multiplexer (here a 4-entry LUT in a PAE)
translates it to the packed constants ±1±j — conjugated, since
descrambling multiplies by the conjugate code — and a complex multiplier
combines it with the bit-packed 12-bit I/Q input data.  One descrambled
chip leaves the pipeline per cycle.
"""

from __future__ import annotations

import numpy as np

from repro.fixed import pack_array, pack_complex, unpack_array
from repro.wcdma.codes import code_from_2bit
from repro.xpp import ConfigBuilder, Configuration, execute

#: The complex product with ±1∓j doubles the component range, so the
#: multiplier applies a 1-bit right shift to stay within 12 bits.
RESULT_SHIFT = 1


def _conj_code_table(half_bits: int = 12) -> list:
    """LUT: 2-bit code -> packed conj(±1±j).

    Code convention (see :mod:`repro.wcdma.codes`): bit1 = I negative,
    bit0 = Q negative; descrambling uses the conjugate.
    """
    table = []
    for code in range(4):
        i_part = 1 - 2 * (code >> 1)
        q_part = 1 - 2 * (code & 1)
        table.append(pack_complex(i_part, -q_part, half_bits))
    return table


def build_descrambler_config(name: str = "descrambler", *,
                             half_bits: int = 12) -> Configuration:
    """The Fig. 5 netlist: code source -> LUT -> CMUL <- data source."""
    b = ConfigBuilder(name)
    code_src = b.source("code")
    data_src = b.source("data", bits=2 * half_bits)
    lut = b.alu("LUT", name="code_mux", table=_conj_code_table(half_bits))
    cmul = b.alu("CMUL", name="descramble_mul", half_bits=half_bits,
                 shift=RESULT_SHIFT)
    snk = b.sink("out")
    b.connect(code_src, 0, lut, 0)
    b.connect(lut, 0, cmul, "b")
    b.connect(data_src, 0, cmul, "a")
    b.connect(cmul, 0, snk, 0)
    return b.build()


def descrambler_golden(data_re: np.ndarray, data_im: np.ndarray,
                       code_2bit: np.ndarray) -> np.ndarray:
    """Bit-accurate reference: ``(data * conj(code)) >> 1`` per component."""
    code = code_from_2bit(code_2bit)
    cr = code.real.astype(np.int64)
    ci = -code.imag.astype(np.int64)    # conjugate
    re = (data_re * cr - data_im * ci) >> RESULT_SHIFT
    im = (data_re * ci + data_im * cr) >> RESULT_SHIFT
    return re + 1j * im


class DescramblerKernel:
    """Runs the Fig. 5 configuration on the simulated array.

    ``config_builder`` swaps in an alternative netlist builder with the
    same signature as :func:`build_descrambler_config` — e.g. the
    DSL-compiled :func:`repro.kernels.dsl.build_descrambler_config_dsl`
    — so conformance tests run both through one code path.
    """

    def __init__(self, *, half_bits: int = 12, config_builder=None):
        self.half_bits = half_bits
        self.config_builder = config_builder or build_descrambler_config

    def run(self, data_re: np.ndarray, data_im: np.ndarray,
            code_2bit: np.ndarray):
        """Descramble integer I/Q chips; returns ``(complex_ints, stats)``."""
        data_re = np.asarray(data_re, dtype=np.int64)
        data_im = np.asarray(data_im, dtype=np.int64)
        code = np.asarray(code_2bit, dtype=np.int64)
        n = min(data_re.size, code.size)
        cfg = self.config_builder(half_bits=self.half_bits)
        cfg.sinks["out"].expect = n
        packed = pack_array(data_re[:n] + 1j * data_im[:n], self.half_bits)
        result = execute(cfg, inputs={"code": code[:n], "data": packed},
                         max_cycles=20 * n + 200)
        out = unpack_array(np.array(result["out"]), self.half_bits)
        return out, result.stats

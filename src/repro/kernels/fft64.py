"""Radix-4 FFT64 on the array (paper Fig. 9).

The pipeline of the paper: 64 samples stream into the dual-ported data
RAM; read addresses come from a preloaded lookup FIFO; the RAM output is
multiplied with twiddle factors from a twiddle lookup FIFO and streams
into the radix-4 butterfly (built from complex-arithmetic ALUs); results
go back to the RAM through a write-address FIFO.  After three
iterations over the same hardware — with a 2-bit right shift per stage
to prevent overflow — the transformed data is available.

The address/twiddle schedules come from
:func:`repro.ofdm.fft.fft64_tables`, the same tables as the golden
fixed-point model, so the kernel matches :func:`repro.ofdm.fft.fft64_fixed`
bit-exactly.
"""

from __future__ import annotations

import numpy as np

from repro.fixed import pack_complex, unpack_complex
from repro.ofdm.fft import (
    N,
    STAGE_SHIFT,
    STORAGE_BITS,
    TWIDDLE_BITS,
    digit_reverse4,
    fft64_tables,
)
from repro.telemetry.probes import get_probes
from repro.xpp import (
    ConfigBuilder,
    Configuration,
    ConfigurationManager,
    Simulator,
)

#: Internal lane width: the butterfly's intermediate values need up to
#: ~14 bits per component; tokens model an I/Q lane pair.  The 12-bit
#: storage budget of the paper is asserted at the stage boundary instead
#: (see the tests).
LANE_BITS = 16


def _stage_schedules(stage_index: int, twiddle_bits: int) -> tuple:
    """Read addresses, packed quantised twiddles (including the unit
    twiddle of leg 0) and write addresses for one stage, in stream
    order."""
    stage = fft64_tables()[stage_index]
    scale = 1 << twiddle_bits
    raddrs, twiddles, waddrs = [], [], []
    for bf in stage:
        for leg, idx in enumerate(bf.indices):
            raddrs.append(idx)
            waddrs.append(idx)
            w = 1.0 + 0j if leg == 0 else bf.twiddles[leg - 1]
            twiddles.append(pack_complex(int(round(w.real * scale)),
                                         int(round(w.imag * scale)),
                                         LANE_BITS))
    return raddrs, twiddles, waddrs


def build_fft_stage_config(stage_index: int, data: list, *,
                           twiddle_bits: int = TWIDDLE_BITS,
                           stage_shift: int = STAGE_SHIFT,
                           name: str = "fft64_stage") -> Configuration:
    """One FFT64 stage: RAM + address/twiddle FIFOs + radix-4 butterfly.

    ``data`` is the 64-entry packed RAM image the stage transforms
    in place.
    """
    raddrs, twiddles, waddrs = _stage_schedules(stage_index, twiddle_bits)
    b = ConfigBuilder(f"{name}{stage_index}")
    ram = b.ram(name="data_ram", words=N, bits=2 * LANE_BITS, preload=data)
    raddr_lut = b.fifo(name="raddr_lut", depth=N, preload=raddrs)
    waddr_lut = b.fifo(name="waddr_lut", depth=N, preload=waddrs)
    twiddle_lut = b.fifo(name="twiddle_lut", depth=N, preload=twiddles,
                         bits=2 * LANE_BITS)
    tw_mul = b.alu("CMUL", name="twiddle_mul", half_bits=LANE_BITS,
                   shift=twiddle_bits)
    b.connect(raddr_lut, 0, ram, "raddr")
    b.connect(ram, "rdata", tw_mul, "a")
    b.connect(twiddle_lut, 0, tw_mul, "b")

    # deserialise the twiddled stream into the four butterfly legs
    cnt_hi = b.alu("COUNTER", name="leg_cnt_hi", limit=4)
    cmp_hi = b.alu("CMPGE", name="leg_cmp_hi", const=2)
    demux_hi = b.alu("DEMUX", name="leg_demux_hi", bits=2 * LANE_BITS)
    b.connect(cnt_hi, "value", cmp_hi, "a")
    b.connect(cmp_hi, 0, demux_hi, "sel", capacity=8)
    b.connect(tw_mul, 0, demux_hi, "a")
    legs = []
    for half, src_port in ((0, "o0"), (1, "o1")):
        cnt = b.alu("COUNTER", name=f"leg_cnt_{half}", limit=2)
        demux = b.alu("DEMUX", name=f"leg_demux_{half}", bits=2 * LANE_BITS)
        b.connect(cnt, "value", demux, "sel", capacity=8)
        b.connect(demux_hi, src_port, demux, "a")
        legs.extend([(demux, "o0"), (demux, "o1")])
    (leg_a, pa), (leg_b, pb), (leg_c, pc), (leg_d, pd) = legs

    # radix-4 butterfly: u0 = a+c, u1 = a-c, u2 = b+d, u3 = b-d;
    # V = u0+u2, W = u1 - j*u3, X = u0-u2, Z = u1 + j*u3 (Fig. 9),
    # with the per-stage scaling folded into the final adders.
    u0 = b.alu("CADD", name="u0", half_bits=LANE_BITS)
    u1 = b.alu("CSUB", name="u1", half_bits=LANE_BITS)
    u2 = b.alu("CADD", name="u2", half_bits=LANE_BITS)
    u3 = b.alu("CSUB", name="u3", half_bits=LANE_BITS)
    b.connect(leg_a, pa, u0, "a")
    b.connect(leg_c, pc, u0, "b")
    b.connect(leg_a, pa, u1, "a")
    b.connect(leg_c, pc, u1, "b")
    b.connect(leg_b, pb, u2, "a")
    b.connect(leg_d, pd, u2, "b")
    b.connect(leg_b, pb, u3, "a")
    b.connect(leg_d, pd, u3, "b")
    ju3 = b.alu("CMULJ", name="j_u3", sign=1, half_bits=LANE_BITS)
    b.connect(u3, 0, ju3, 0)
    out_v = b.alu("CADD", name="out_v", half_bits=LANE_BITS,
                  shift=stage_shift)
    out_w = b.alu("CSUB", name="out_w", half_bits=LANE_BITS,
                  shift=stage_shift)
    out_x = b.alu("CSUB", name="out_x", half_bits=LANE_BITS,
                  shift=stage_shift)
    out_z = b.alu("CADD", name="out_z", half_bits=LANE_BITS,
                  shift=stage_shift)
    b.connect(u0, 0, out_v, "a")
    b.connect(u2, 0, out_v, "b")
    b.connect(u1, 0, out_w, "a")
    b.connect(ju3, 0, out_w, "b")
    b.connect(u0, 0, out_x, "a")
    b.connect(u2, 0, out_x, "b")
    b.connect(u1, 0, out_z, "a")
    b.connect(ju3, 0, out_z, "b")

    # re-serialise V, W, X, Z and write back to the RAM
    outs = []
    for half, (first, second) in enumerate(((out_v, out_w),
                                            (out_x, out_z))):
        cnt = b.alu("COUNTER", name=f"mrg_cnt_{half}", limit=2)
        merge = b.alu("MERGE", name=f"mrg_{half}", bits=2 * LANE_BITS)
        b.connect(cnt, "value", merge, "sel", capacity=8)
        b.connect(first, 0, merge, "a")
        b.connect(second, 0, merge, "b")
        outs.append(merge)
    cnt_out = b.alu("COUNTER", name="mrg_cnt_hi", limit=4)
    cmp_out = b.alu("CMPGE", name="mrg_cmp_hi", const=2)
    merge_hi = b.alu("MERGE", name="mrg_hi", bits=2 * LANE_BITS)
    b.connect(cnt_out, "value", cmp_out, "a")
    b.connect(cmp_out, 0, merge_hi, "sel", capacity=8)
    b.connect(outs[0], 0, merge_hi, "a")
    b.connect(outs[1], 0, merge_hi, "b")
    b.connect(merge_hi, 0, ram, "wdata")
    b.connect(waddr_lut, 0, ram, "waddr")
    return b.build()


class Fft64Kernel:
    """Executes the three-stage FFT64 on the simulated array.

    The same butterfly hardware is iterated over the three stages; each
    iteration reloads only the address/twiddle lookup FIFOs (a partial
    reconfiguration), exactly as the paper's RAM read-back scheme.
    """

    def __init__(self, *, twiddle_bits: int = TWIDDLE_BITS,
                 stage_shift: int = STAGE_SHIFT):
        self.twiddle_bits = twiddle_bits
        self.stage_shift = stage_shift
        self.last_stats = []

    def run(self, x_re: np.ndarray, x_im: np.ndarray):
        """Transform 64 integer I/Q samples; returns ``(re, im)``."""
        re = np.asarray(x_re, dtype=np.int64)
        im = np.asarray(x_im, dtype=np.int64)
        if re.size != N or im.size != N:
            raise ValueError("FFT64 needs 64 samples")
        # load in digit-reversed order (the paper's initial streaming of
        # 64 samples into the data RAM through the address LUT)
        data = [0] * N
        for i in range(N):
            j = digit_reverse4(i)
            data[i] = pack_complex(int(re[j]), int(im[j]), LANE_BITS)

        self.last_stats = []
        for stage in range(3):
            cfg = build_fft_stage_config(
                stage, data, twiddle_bits=self.twiddle_bits,
                stage_shift=self.stage_shift)
            mgr = ConfigurationManager()
            mgr.load(cfg)
            sim = Simulator(mgr)
            ram = cfg.object("data_ram")
            waddr = cfg.object("waddr_lut")
            stats = sim.run(20_000, until=lambda: len(waddr) == 0
                            and ram.fired >= 2 * N)
            self.last_stats.append(stats)
            data = list(ram.mem)
            mgr.remove(cfg)
            probes = get_probes()
            if probes.enabled:
                # scan the stage's RAM image against the paper's 12-bit
                # storage budget (the lanes themselves are wider)
                bound = (1 << (STORAGE_BITS - 1)) - 1
                overflows = 0
                for word in data:
                    r, q = unpack_complex(word, LANE_BITS)
                    if not (-bound - 1 <= r <= bound) \
                            or not (-bound - 1 <= q <= bound):
                        overflows += 1
                probes.record(f"xpp.fft64.overflow.stage{stage}",
                              overflows, unit="words", kind="saturation")

        out_re = np.empty(N, dtype=np.int64)
        out_im = np.empty(N, dtype=np.int64)
        for i, word in enumerate(data):
            r, q = unpack_complex(word, LANE_BITS)
            out_re[i] = r
            out_im[i] = q
        return out_re, out_im

"""Rake despreader on the array (paper Fig. 6).

Complex multiplication of the (descrambled) chip stream by the OVSF
spreading code, followed by complex accumulation over the spreading
factor.  The stream is time-multiplexed over ``n_fingers`` logical
fingers: chip c of finger 0, chip c of finger 1, ...  Per-finger partial
sums live in a RAM-PAE accumulator ring (the paper's 16-location store);
a chip counter with comparators detects the symbol boundary, shifts the
completed result out and injects a zero to reset that finger's
accumulator — Fig. 6's 'Comparator (Path / DCH)' and 'Comparator (result
shift out)'.

Throughput note: the accumulator ring circulates exactly ``n_fingers``
partial sums through a loop of ~5 pipeline stages, so the sustained
rate is ``min(1, n_fingers / loop_latency)`` chip-slots per cycle.
That is always sufficient: a scenario with F logical fingers only needs
``F x 3.84 MHz`` of the 69.12 MHz design clock (Table 1), i.e. F/18
slots per cycle — far below F/5.  At the 18-finger maximum the ring is
full and the pipeline sustains ~1 slot per cycle.
"""

from __future__ import annotations

import numpy as np

from repro.fixed import pack_array, pack_complex, rshift_round, unpack_array
from repro.xpp import ConfigBuilder, Configuration, execute


def _ovsf_table(half_bits: int) -> list:
    """OVSF chips arrive as 1 bit (0 -> +1, 1 -> -1); LUT packs them."""
    return [pack_complex(1, 0, half_bits), pack_complex(-1, 0, half_bits)]


def build_despreader_config(n_fingers: int, sf: int, *,
                            half_bits: int = 12, acc_shift: int = 0,
                            pre_shift: int = 0,
                            name: str = "despreader") -> Configuration:
    """The Fig. 6 netlist.

    The accumulator runs in the packed ``half_bits`` datapath, so the
    partial sums must satisfy ``|chip| * sf < 2**(half_bits-1)``.
    ``pre_shift`` right-shifts every chip product *before* accumulation
    (classic integrate-and-dump pre-scaling for large spreading
    factors, at the cost of the shifted-out LSBs); ``acc_shift``
    right-shifts the dumped symbol afterwards.
    """
    if n_fingers < 1:
        raise ValueError("need at least one finger")
    if sf < 1:
        raise ValueError("spreading factor must be >= 1")
    b = ConfigBuilder(name)
    data_src = b.source("data", bits=2 * half_bits)
    ovsf_src = b.source("ovsf")
    lut = b.alu("LUT", name="ovsf_mux", table=_ovsf_table(half_bits))
    cmul = b.alu("CMUL", name="chip_mul", half_bits=half_bits,
                 shift=pre_shift, round_shift=True)
    cadd = b.alu("CADD", name="acc_add", half_bits=half_bits)
    ring = b.fifo(name="acc_ram", depth=max(n_fingers, 1),
                  preload=[0] * n_fingers, bits=2 * half_bits)
    chip_counter = b.alu("COUNTER", name="chip_counter",
                         limit=n_fingers * sf)
    boundary = b.alu("CMPGE", name="boundary_cmp",
                     const=n_fingers * (sf - 1))
    demux = b.alu("DEMUX", name="result_shift_out", bits=2 * half_bits)
    merge = b.alu("MERGE", name="acc_reset", bits=2 * half_bits)
    zero = b.alu("CONST", name="zero_sym", value=pack_complex(0, 0, half_bits))
    scale = b.alu("CSHIFT", name="dump_scale", amount=-acc_shift,
                  half_bits=half_bits)
    snk = b.sink("out")

    b.connect(ovsf_src, 0, lut, 0)
    b.connect(data_src, 0, cmul, "a")
    b.connect(lut, 0, cmul, "b")
    b.connect(cmul, 0, cadd, "a")
    b.connect(ring, 0, cadd, "b")
    b.connect(chip_counter, "value", boundary, "a")
    # the select path is much shorter than the data path through the
    # multiplier and accumulator; extra slack on the select wires
    # (register balancing in the real array) keeps the pipeline full
    b.connect(boundary, 0, demux, "sel", capacity=8)
    b.connect(boundary, 0, merge, "sel", capacity=8)
    b.connect(cadd, 0, demux, "a")
    b.connect(demux, "o0", merge, "a")      # keep accumulating
    b.connect(zero, 0, merge, "b")          # boundary: reset accumulator
    b.connect(merge, 0, ring, 0)
    b.connect(demux, "o1", scale, 0)        # boundary: dump symbol
    b.connect(scale, 0, snk, 0)
    return b.build()


def despreader_golden(chips: np.ndarray, ovsf_bits: np.ndarray,
                      n_fingers: int, sf: int,
                      acc_shift: int = 0, pre_shift: int = 0) -> np.ndarray:
    """Reference: per-finger integrate-and-dump over ``sf`` chips.

    ``chips`` is the time-multiplexed complex-int stream, ``ovsf_bits``
    the matching 1-bit spreading chips.  Returns the time-multiplexed
    symbol stream (finger-major within each symbol period).
    """
    chips = np.asarray(chips)
    ovsf = 1 - 2 * np.asarray(ovsf_bits, dtype=np.int64)
    n = (chips.size // (n_fingers * sf)) * n_fingers * sf
    prod = chips[:n] * ovsf[:n]
    pre_re = rshift_round(prod.real.astype(np.int64), pre_shift)
    pre_im = rshift_round(prod.imag.astype(np.int64), pre_shift)
    blocks = (pre_re + 1j * pre_im).reshape(-1, sf, n_fingers)
    sums = blocks.sum(axis=1)                    # [symbol, finger]
    re = sums.real.astype(np.int64) >> acc_shift
    im = sums.imag.astype(np.int64) >> acc_shift
    return (re + 1j * im).reshape(-1)


def check_accumulator_range(chips: np.ndarray, sf: int, *,
                            half_bits: int = 12, pre_shift: int = 0) -> None:
    """Raise if the integrate-and-dump could wrap the packed datapath.

    The partial sums live in ``half_bits`` two's complement; with
    ``pre_shift`` applied to every product the bound is
    ``(max|component| >> pre_shift) * sf < 2**(half_bits-1)``.
    """
    c = np.asarray(chips)
    peak = int(max(np.max(np.abs(c.real)), np.max(np.abs(c.imag)), 0))
    if (peak >> pre_shift) * sf >= 1 << (half_bits - 1):
        needed = max(0, int(np.ceil(np.log2(max(peak, 1) * sf)))
                     - (half_bits - 1))
        raise ValueError(
            f"integrate-and-dump would overflow the {half_bits}-bit "
            f"packed accumulator (peak {peak}, SF {sf}); "
            f"use pre_shift >= {needed}")


class DespreaderKernel:
    """Runs the Fig. 6 configuration on the simulated array."""

    def __init__(self, n_fingers: int, sf: int, *, half_bits: int = 12,
                 acc_shift: int = 0, pre_shift: int = 0,
                 config_builder=None):
        self.n_fingers = n_fingers
        self.sf = sf
        self.half_bits = half_bits
        self.acc_shift = acc_shift
        self.pre_shift = pre_shift
        #: alternative netlist builder with build_despreader_config's
        #: signature (e.g. the DSL-compiled one) for conformance runs
        self.config_builder = config_builder or build_despreader_config

    def run(self, chips: np.ndarray, ovsf_bits: np.ndarray):
        """Despread a time-multiplexed chip stream; returns
        ``(symbols, stats)`` with symbols finger-major per period."""
        chips = np.asarray(chips)
        check_accumulator_range(chips, self.sf, half_bits=self.half_bits,
                                pre_shift=self.pre_shift)
        ovsf = np.asarray(ovsf_bits, dtype=np.int64)
        period = self.n_fingers * self.sf
        n = (min(chips.size, ovsf.size) // period) * period
        n_out = n // self.sf
        cfg = self.config_builder(self.n_fingers, self.sf,
                                  half_bits=self.half_bits,
                                  acc_shift=self.acc_shift,
                                  pre_shift=self.pre_shift)
        cfg.sinks["out"].expect = n_out
        packed = pack_array(chips[:n], self.half_bits)
        result = execute(cfg, inputs={"data": packed, "ovsf": ovsf[:n]},
                         max_cycles=30 * n + 500)
        out = unpack_array(np.array(result["out"]), self.half_bits)
        return out, result.stats

"""Channel correction unit on the array (paper Fig. 7).

Takes the time-multiplexed despread symbol stream (symbol k of fingers
0..F-1, then symbol k+1, ...), performs STTD decoding and channel
weighting.  The per-finger channel coefficients — calculated by the DSP
and transferred to the array — live in circular weight FIFOs; the
symbol-pair split/merge is driven by counters and comparators (the
paper's 'Swap' steering).

For each finger with coefficients ``(h1, h2)`` and symbol pair
``(r0, r1)``::

    s0 = conj(h1) * r0 + h2 * conj(r1)
    s1 = conj(h1) * r1 - h2 * conj(r0)

The non-STTD variant is plain channel weighting ``y * conj(h)``.
"""

from __future__ import annotations

import numpy as np

from repro.fixed import pack_array, pack_complex, to_fixed, unpack_array
from repro.xpp import ConfigBuilder, Configuration, execute

#: Fraction bits of the quantised channel coefficients.
WEIGHT_FRAC_BITS = 10


def _pack_weights(weights, frac_bits: int, half_bits: int) -> list:
    """Quantise complex coefficients and pack them for a weight FIFO."""
    out = []
    for w in weights:
        re = int(to_fixed(w.real if hasattr(w, "real") else w, frac_bits,
                          half_bits))
        im = int(to_fixed(w.imag if hasattr(w, "imag") else 0.0, frac_bits,
                          half_bits))
        out.append(pack_complex(re, im, half_bits))
    return out


def build_channel_correction_config(h1, h2=None, *, half_bits: int = 12,
                                    frac_bits: int = WEIGHT_FRAC_BITS,
                                    name: str = "chancorr") -> Configuration:
    """The Fig. 7 netlist for ``F = len(h1)`` fingers.

    ``h2=None`` builds the non-STTD weighting pipeline; otherwise the
    full STTD decoder.
    """
    h1 = list(h1)
    n_fingers = len(h1)
    if n_fingers < 1:
        raise ValueError("need at least one finger")
    b = ConfigBuilder(name)
    src = b.source("symbols", bits=2 * half_bits)
    snk = b.sink("out")

    w1c = _pack_weights([complex(w).conjugate() for w in h1],
                        frac_bits, half_bits)
    if h2 is None:
        fifo1 = b.fifo(name="weights1", depth=n_fingers, preload=w1c,
                       circular=True, bits=2 * half_bits)
        mul = b.alu("CMUL", name="weight_mul", half_bits=half_bits,
                    shift=frac_bits)
        b.connect(src, 0, mul, "a")
        b.connect(fifo1, 0, mul, "b")
        b.connect(mul, 0, snk, 0)
        return b.build()

    h2 = list(h2)
    if len(h2) != n_fingers:
        raise ValueError("h1 and h2 must have one entry per finger")
    w2 = _pack_weights([complex(w) for w in h2], frac_bits, half_bits)

    # split the stream into r0 (first F of each pair period) and r1
    pair_counter = b.alu("COUNTER", name="pair_counter", limit=2 * n_fingers)
    half_cmp = b.alu("CMPGE", name="pair_cmp", const=n_fingers)
    split = b.alu("DEMUX", name="pair_split", bits=2 * half_bits)
    b.connect(pair_counter, "value", half_cmp, "a")
    # slack on the short select path keeps the data pipeline full
    b.connect(half_cmp, 0, split, "sel", capacity=8)
    b.connect(src, 0, split, "a")

    fifo1 = b.fifo(name="weights1", depth=n_fingers, preload=w1c,
                   circular=True, bits=2 * half_bits)
    fifo2 = b.fifo(name="weights2", depth=n_fingers, preload=w2,
                   circular=True, bits=2 * half_bits)

    conj_r0 = b.alu("CCONJ", name="conj_r0", half_bits=half_bits)
    conj_r1 = b.alu("CCONJ", name="conj_r1", half_bits=half_bits)
    b.connect(split, "o0", conj_r0, 0)
    b.connect(split, "o1", conj_r1, 0)

    mul_a = b.alu("CMUL", name="h1c_r0", half_bits=half_bits, shift=frac_bits)
    mul_b = b.alu("CMUL", name="h2_r1c", half_bits=half_bits, shift=frac_bits)
    mul_c = b.alu("CMUL", name="h1c_r1", half_bits=half_bits, shift=frac_bits)
    mul_d = b.alu("CMUL", name="h2_r0c", half_bits=half_bits, shift=frac_bits)

    # r0/r1 fan out to the direct and conjugated legs; note conj objects
    # re-serve as taps so each value is used exactly once per consumer.
    b.connect(split, "o0", mul_a, "a")
    b.connect(conj_r1, 0, mul_b, "a")
    b.connect(split, "o1", mul_c, "a")
    b.connect(conj_r0, 0, mul_d, "a")
    b.connect(fifo1, 0, mul_a, "b")
    b.connect(fifo1, 0, mul_c, "b")
    b.connect(fifo2, 0, mul_b, "b")
    b.connect(fifo2, 0, mul_d, "b")

    s0 = b.alu("CADD", name="s0_add", half_bits=half_bits)
    s1 = b.alu("CSUB", name="s1_sub", half_bits=half_bits)
    # r0-derived products wait half a pair period (F symbols) for their
    # r1 partners: give those wires enough elastic slack to cover it
    pair_slack = 2 * n_fingers + 2
    b.connect(mul_a, 0, s0, "a", capacity=pair_slack)
    b.connect(mul_b, 0, s0, "b")
    b.connect(mul_c, 0, s1, "a")
    b.connect(mul_d, 0, s1, "b", capacity=pair_slack)

    # re-interleave: F corrected s0 symbols then F s1 symbols per pair
    out_counter = b.alu("COUNTER", name="out_counter", limit=2 * n_fingers)
    out_cmp = b.alu("CMPGE", name="out_cmp", const=n_fingers)
    merge = b.alu("MERGE", name="pair_merge", bits=2 * half_bits)
    b.connect(out_counter, "value", out_cmp, "a")
    b.connect(out_cmp, 0, merge, "sel", capacity=8)
    # both adders burst during the second half-period; buffer their
    # outputs so neither stalls while the merge drains the other
    b.connect(s0, 0, merge, "a", capacity=pair_slack)
    b.connect(s1, 0, merge, "b", capacity=pair_slack)
    b.connect(merge, 0, snk, 0)
    return b.build()


def channel_correction_golden(symbols: np.ndarray, h1, h2=None, *,
                              frac_bits: int = WEIGHT_FRAC_BITS) -> np.ndarray:
    """Bit-accurate reference of the fixed-point weighting/STTD decode."""
    h1 = np.asarray(list(h1), dtype=np.complex128)
    n_fingers = h1.size
    s = np.asarray(symbols)
    sr = s.real.astype(np.int64)
    si = s.imag.astype(np.int64)
    w1r = to_fixed(h1.real, frac_bits)
    w1i = to_fixed(-h1.imag, frac_bits)    # conj(h1)

    def q_mul(ar, ai, br, bi):
        return ((ar * br - ai * bi) >> frac_bits,
                (ar * bi + ai * br) >> frac_bits)

    if h2 is None:
        n = (s.size // n_fingers) * n_fingers
        f = np.tile(np.arange(n_fingers), n // n_fingers)
        re, im = q_mul(sr[:n], si[:n], w1r[f], w1i[f])
        return re + 1j * im

    h2 = np.asarray(list(h2), dtype=np.complex128)
    w2r = to_fixed(h2.real, frac_bits)
    w2i = to_fixed(h2.imag, frac_bits)
    period = 2 * n_fingers
    n = (s.size // period) * period
    out = np.empty(n, dtype=np.complex128)
    for blk in range(n // period):
        base = blk * period
        for f in range(n_fingers):
            r0r, r0i = sr[base + f], si[base + f]
            r1r, r1i = sr[base + n_fingers + f], si[base + n_fingers + f]
            a = q_mul(r0r, r0i, w1r[f], w1i[f])
            bq = q_mul(r1r, -r1i, w2r[f], w2i[f])
            c = q_mul(r1r, r1i, w1r[f], w1i[f])
            d = q_mul(r0r, -r0i, w2r[f], w2i[f])
            out[base + f] = complex(a[0] + bq[0], a[1] + bq[1])
            out[base + n_fingers + f] = complex(c[0] - d[0], c[1] - d[1])
    return out


class ChannelCorrectionKernel:
    """Runs the Fig. 7 configuration on the simulated array."""

    def __init__(self, h1, h2=None, *, half_bits: int = 12,
                 frac_bits: int = WEIGHT_FRAC_BITS):
        self.h1 = list(h1)
        self.h2 = list(h2) if h2 is not None else None
        self.half_bits = half_bits
        self.frac_bits = frac_bits

    @property
    def n_fingers(self) -> int:
        return len(self.h1)

    def run(self, symbols: np.ndarray):
        """Correct a time-multiplexed complex-int symbol stream; returns
        ``(corrected, stats)``."""
        s = np.asarray(symbols)
        period = (2 if self.h2 is not None else 1) * self.n_fingers
        n = (s.size // period) * period
        cfg = build_channel_correction_config(
            self.h1, self.h2, half_bits=self.half_bits,
            frac_bits=self.frac_bits)
        cfg.sinks["out"].expect = n
        packed = pack_array(s[:n], self.half_bits)
        result = execute(cfg, inputs={"symbols": packed},
                         max_cycles=30 * n + 500)
        out = unpack_array(np.array(result["out"]), self.half_bits)
        return out, result.stats

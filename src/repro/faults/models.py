"""Fault models: what can go wrong on the array and around it.

Each model is a frozen, JSON-serializable record describing *one*
physical failure mode at *one* site, with its timing expressed in
protocol events — the Nth token pushed on a wire, the Nth firing of a
RAM-PAE, the Nth configuration load, the Nth task invocation.  Indexing
faults by protocol events instead of cycles or wall time is what makes
injected runs deterministic: the event counts are identical under the
naive and the event-driven scheduler, across process pools and across
checkpoint/resume, so a fault schedule replays bit-exactly anywhere.

The models cover the failure modes of the paper's architecture:

* ALU-PAE datapath errors surface on the PAE's *output wires* —
  :class:`StuckAtFault` (a stuck driver corrupting every token) and
  :class:`TransientBitError` (an SEU corrupting one token);
* RAM-PAE SRAM soft errors flip stored bits — :class:`RamBitFlip`;
* the handshake protocol can lose or repeat a token on a routing
  segment — :class:`TokenDrop` / :class:`TokenDuplicate`;
* the configuration bus can drop a load or stall it —
  :class:`ConfigLoadFault` (mode ``fail`` or ``slow``, the latter
  charging extra configuration cycles);
* the DSP's control tasks can blow their deadline —
  :class:`DeadlineFault` stretches one invocation by a factor.

:class:`FaultInjector` (:mod:`repro.faults.injector`) arms these onto a
live simulation; :mod:`repro.faults.recovery` undoes the damage.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import ClassVar

from repro.fixed import wrap

#: Default token width for wire-level corruption (the XPP datapath is
#: 24 bits wide).
WIRE_BITS = 24


@dataclass(frozen=True)
class StuckAtFault:
    """A wire bit permanently stuck at 0 or 1 (driver fault).

    Every token pushed on ``wire`` from ``start_push`` onward has bit
    ``bit`` forced to ``value``.
    """

    kind: ClassVar[str] = "stuck_at"
    wire: str
    bit: int
    value: int = 1
    start_push: int = 0
    bits: int = WIRE_BITS

    def apply(self, token: int) -> int:
        mask = 1 << (self.bit % self.bits)
        forced = (token | mask) if self.value else (token & ~mask)
        return wrap(forced, self.bits)


@dataclass(frozen=True)
class TransientBitError:
    """A single-event upset: one token on ``wire`` has ``bit`` flipped."""

    kind: ClassVar[str] = "transient"
    wire: str
    push_index: int
    bit: int
    bits: int = WIRE_BITS

    def apply(self, token: int) -> int:
        return wrap(token ^ (1 << (self.bit % self.bits)), self.bits)


@dataclass(frozen=True)
class TokenDrop:
    """The handshake loses one token: the ``push_index``-th token
    pushed on ``wire`` never lands."""

    kind: ClassVar[str] = "token_drop"
    wire: str
    push_index: int


@dataclass(frozen=True)
class TokenDuplicate:
    """The handshake repeats one token: the ``push_index``-th token
    pushed on ``wire`` lands twice (the copy is lost if the buffer has
    no room)."""

    kind: ClassVar[str] = "token_dup"
    wire: str
    push_index: int


@dataclass(frozen=True)
class RamBitFlip:
    """An SRAM soft error in a RAM-PAE (RAM or FIFO mode): after the
    object's ``fire_index``-th firing, bit ``bit`` of word ``word``
    flips."""

    kind: ClassVar[str] = "ram_bit_flip"
    object: str
    fire_index: int
    word: int
    bit: int


@dataclass(frozen=True)
class ConfigLoadFault:
    """The configuration bus misbehaves while loading ``config``.

    ``mode="fail"`` raises :class:`~repro.xpp.errors.ConfigLoadError`
    for the next ``count`` matching loads (then the bus recovers, so a
    retrying policy eventually succeeds); ``mode="slow"`` charges
    ``extra_cycles`` of configuration time instead.  ``config="*"``
    matches any configuration.
    """

    kind: ClassVar[str] = "config_load"
    config: str = "*"
    mode: str = "fail"
    count: int = 1
    extra_cycles: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("fail", "slow"):
            raise ValueError(f"bad config-load fault mode {self.mode!r}")

    def matches(self, config_name: str) -> bool:
        return self.config == "*" or self.config == config_name


@dataclass(frozen=True)
class DeadlineFault:
    """One DSP task invocation runs ``factor`` times slower than
    nominal (cache thrash, bus contention), possibly past its
    deadline."""

    kind: ClassVar[str] = "deadline"
    task: str
    invoke_index: int
    factor: float = 16.0


#: Wire-level models (armed as wire taps).
WIRE_FAULTS = (StuckAtFault, TransientBitError, TokenDrop, TokenDuplicate)

#: kind string -> model class, for (de)serialization.
FAULT_KINDS = {cls.kind: cls for cls in
               (StuckAtFault, TransientBitError, TokenDrop, TokenDuplicate,
                RamBitFlip, ConfigLoadFault, DeadlineFault)}


def fault_to_dict(fault) -> dict:
    """Serialize a fault model (adds its ``kind`` discriminator)."""
    d = {"kind": fault.kind}
    d.update(asdict(fault))
    return d


def fault_from_dict(d: dict):
    """Inverse of :func:`fault_to_dict`; raises ``ValueError`` on an
    unknown kind or junk fields."""
    if not isinstance(d, dict):
        raise ValueError(f"fault spec must be a mapping, got {type(d).__name__}")
    kind = d.get("kind")
    cls = FAULT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault kind {kind!r}; expected one of "
                         f"{sorted(FAULT_KINDS)}")
    names = {f.name for f in fields(cls)}
    params = {k: v for k, v in d.items() if k != "kind"}
    junk = set(params) - names
    if junk:
        raise ValueError(f"fault kind {kind!r} has no fields {sorted(junk)}")
    try:
        return cls(**params)
    except TypeError as exc:
        raise ValueError(f"bad {kind!r} fault spec: {exc}") from None

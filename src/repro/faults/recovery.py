"""Recovery primitives: undoing fault damage with the manager's own
protocol.

Three moves, all built from operations the configuration manager
already supports (nothing here bypasses the resource-ownership rules):

* :func:`retry_load` — re-attempt a load that the configuration bus
  dropped, with exponential backoff charged in configuration cycles
  (the Fig. 10 swap protocol simply re-requests the configuration);
* :func:`reload_config` — remove a resident-but-corrupted
  configuration, reset its netlist to build-time state (the stored
  configuration words re-program the PAEs) and load it again;
* :func:`remap_config` — like reload, but quarantining the faulty
  slots first so the re-load claims spare PAEs around them.

Each move returns :class:`RecoveryAction` records; with tracing on it
is wrapped in a ``fault.recover`` span so recovery time shows up on the
same cycle timeline as the work it interrupted.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from repro.telemetry import get_tracer
from repro.xpp.errors import ConfigLoadError

#: Default retry budget for injected configuration-bus failures.
DEFAULT_RETRIES = 3
#: Backoff base: the k-th retry waits ``backoff * 2**(k-1)`` cycles.
DEFAULT_BACKOFF_CYCLES = 16


@dataclass(frozen=True)
class RecoveryAction:
    """One recovery move and how it went."""

    action: str     # "retry_load" | "reload" | "remap" | "degrade" | ...
    target: str     # configuration / subsystem name
    ok: bool
    attempts: int = 1
    cycles: int = 0     # stall cycles charged (backoff waits)
    detail: str = ""

    def to_dict(self) -> dict:
        return {"action": self.action, "target": self.target, "ok": self.ok,
                "attempts": self.attempts, "cycles": self.cycles,
                "detail": self.detail}


def _span(name: str, args: dict):
    tracer = get_tracer()
    if tracer.enabled:
        return tracer.span(name, "fault", args=args)
    return nullcontext()


def retry_load(manager, config, *, retries: int = DEFAULT_RETRIES,
               backoff_cycles: int = DEFAULT_BACKOFF_CYCLES) -> RecoveryAction:
    """Load ``config``, retrying injected bus failures with backoff.

    Only :class:`~repro.xpp.errors.ConfigLoadError` is retried — a
    :class:`~repro.xpp.errors.ResourceError` means the request itself
    cannot be satisfied and propagates to the caller.  Backoff waits
    are charged to the manager's reconfiguration-cycle account (the
    array sits idle while the bus recovers).
    """
    attempts = 0
    waited = 0
    last = ""
    with _span(f"fault.recover:retry_load:{config.name}",
               {"config": config.name, "retries": retries}):
        while attempts <= retries:
            attempts += 1
            try:
                manager.load(config)
            except ConfigLoadError as exc:
                last = str(exc)
                if attempts > retries:
                    break
                wait = backoff_cycles * (2 ** (attempts - 1))
                waited += wait
                manager.total_reconfig_cycles += wait
            else:
                return RecoveryAction("retry_load", config.name, ok=True,
                                      attempts=attempts, cycles=waited)
    return RecoveryAction("retry_load", config.name, ok=False,
                          attempts=attempts, cycles=waited, detail=last)


def reload_config(manager, config, *, retries: int = DEFAULT_RETRIES,
                  backoff_cycles: int = DEFAULT_BACKOFF_CYCLES) -> list:
    """Remove a corrupted-but-resident configuration, reset its netlist
    to build-time state, and load it again.  Returns the action list."""
    actions = []
    with _span(f"fault.recover:reload:{config.name}",
               {"config": config.name}):
        if manager.is_loaded(config.name):
            cycles = manager.remove(config)
            actions.append(RecoveryAction("remove", config.name, ok=True,
                                          cycles=cycles))
        config.reset()
        actions.append(retry_load(manager, config, retries=retries,
                                  backoff_cycles=backoff_cycles))
    return actions


def remap_config(manager, config, bad_slots=(), *,
                 retries: int = DEFAULT_RETRIES,
                 backoff_cycles: int = DEFAULT_BACKOFF_CYCLES) -> list:
    """Reload ``config`` onto spare resources, quarantining the faulty
    slots so the fresh load routes around them.

    Raises :class:`~repro.xpp.errors.ResourceError` if the spares left
    after quarantine cannot hold the configuration — callers
    (:class:`repro.faults.policy.RecoveryPolicy`) degrade gracefully in
    that case.  Returns the action list.
    """
    actions = []
    with _span(f"fault.recover:remap:{config.name}",
               {"config": config.name, "quarantine": len(list(bad_slots))}):
        if manager.is_loaded(config.name):
            cycles = manager.remove(config)
            actions.append(RecoveryAction("remove", config.name, ok=True,
                                          cycles=cycles))
        for slot in bad_slots:
            manager.array.quarantine(slot)
            actions.append(RecoveryAction(
                "quarantine", config.name, ok=True,
                detail=f"{slot.kind}@({slot.row},{slot.col})"))
        config.reset()
        actions.append(retry_load(manager, config, retries=retries,
                                  backoff_cycles=backoff_cycles))
    return actions

"""repro.faults — deterministic fault injection and graceful recovery.

The paper's terminal keeps a live link while the array is reconfigured
under it; this package asks the complementary question — does it keep
the link when the hardware *misbehaves*?  It provides:

* fault models (:mod:`~repro.faults.models`) for the architecture's
  failure modes: stuck-at / transient bit errors on PAE outputs,
  RAM-PAE SRAM flips, dropped or duplicated handshake tokens,
  configuration-bus load failures and stalls, DSP deadline overruns;
* a seedable injector (:mod:`~repro.faults.injector`) arming them onto
  a live simulation through existing hooks, with every trigger logged
  and alerted — fault timing is indexed by protocol events (pushes,
  firings, loads, invocations), so injected runs are bit-exact across
  schedulers, process pools and checkpoint/resume;
* recovery primitives (:mod:`~repro.faults.recovery`) — retry with
  backoff, reload from configuration memory, remap onto spare PAEs
  with slot quarantine — and policies (:mod:`~repro.faults.policy`)
  that fold them into ``ok``/``recovered``/``degraded`` outcomes
  without ever leaking a resource-protocol error.

Chaos campaigns (``repro.campaign``, job kind ``chaos``) sweep fault
rates as an axis and aggregate the resulting statuses.
"""

from repro.faults.injector import FaultEvent, FaultInjector, plan_faults
from repro.faults.models import (
    FAULT_KINDS,
    ConfigLoadFault,
    DeadlineFault,
    RamBitFlip,
    StuckAtFault,
    TokenDrop,
    TokenDuplicate,
    TransientBitError,
    fault_from_dict,
    fault_to_dict,
)
from repro.faults.policy import (
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RECOVERED,
    RecoveryOutcome,
    RecoveryPolicy,
    worst_status,
)
from repro.faults.recovery import (
    RecoveryAction,
    reload_config,
    remap_config,
    retry_load,
)

__all__ = [
    "FAULT_KINDS",
    "STATUS_DEGRADED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_RECOVERED",
    "ConfigLoadFault",
    "DeadlineFault",
    "FaultEvent",
    "FaultInjector",
    "RamBitFlip",
    "RecoveryAction",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "StuckAtFault",
    "TokenDrop",
    "TokenDuplicate",
    "TransientBitError",
    "fault_from_dict",
    "fault_to_dict",
    "plan_faults",
    "reload_config",
    "remap_config",
    "retry_load",
    "worst_status",
]

"""Recovery policies: fault -> outcome, never a leaked protocol error.

A :class:`RecoveryPolicy` strings the primitives of
:mod:`repro.faults.recovery` into strategies and *guarantees* (property-
tested in ``tests/test_faults_properties.py``) that its ``handle_*``
methods never raise :class:`~repro.xpp.errors.ResourceError` or
:class:`~repro.xpp.errors.ConfigLoadError`: when every strategy is
exhausted the failure surfaces as a ``degraded``/``failed``
:class:`RecoveryOutcome` record instead, with the array left in a
protocol-consistent state (every claimed slot owned by a resident
configuration or the quarantine).

Degradation is pluggable: a policy built with a ``RakeSession`` sheds
logical fingers; one built with an ``OfdmReceiver`` falls back from the
fixed-point FFT to the floating-point golden model; either way an
:data:`~repro.telemetry.ALERT_DEGRADED` alert marks the mode change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.recovery import (
    DEFAULT_BACKOFF_CYCLES,
    DEFAULT_RETRIES,
    RecoveryAction,
    remap_config,
    retry_load,
)
from repro.telemetry import ALERT_DEGRADED, get_probes
from repro.xpp.errors import ConfigLoadError, ResourceError

STATUS_OK = "ok"
STATUS_RECOVERED = "recovered"
STATUS_DEGRADED = "degraded"
STATUS_FAILED = "failed"

#: Ordering for folding shard/job statuses: keep the worst.
STATUS_ORDER = (STATUS_OK, STATUS_RECOVERED, STATUS_DEGRADED, STATUS_FAILED)


def worst_status(statuses) -> str:
    """Fold statuses to the worst one (``ok`` when empty; unknown
    strings rank as ``failed``)."""
    worst = 0
    for s in statuses:
        rank = STATUS_ORDER.index(s) if s in STATUS_ORDER \
            else len(STATUS_ORDER) - 1
        if rank > worst:
            worst = rank
    return STATUS_ORDER[worst]


@dataclass
class RecoveryOutcome:
    """How one fault was resolved."""

    status: str
    actions: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_RECOVERED)

    def to_dict(self) -> dict:
        return {"status": self.status,
                "actions": [a.to_dict() for a in self.actions]}


class RecoveryPolicy:
    """Recovery strategies over one configuration manager.

    ``session``/``ofdm`` optionally plug in the receiver-side
    degradation moves.  All outcomes are appended to :attr:`outcomes`
    so a run report can show the recovery history.
    """

    def __init__(self, manager, *, retries: int = DEFAULT_RETRIES,
                 backoff_cycles: int = DEFAULT_BACKOFF_CYCLES,
                 session=None, ofdm=None):
        self.manager = manager
        self.retries = retries
        self.backoff_cycles = backoff_cycles
        self.session = session
        self.ofdm = ofdm
        self.outcomes: list[RecoveryOutcome] = []

    # -- strategies ------------------------------------------------------------

    def load_with_recovery(self, config) -> RecoveryOutcome:
        """Load a configuration, absorbing injected bus failures.

        ``ok`` on a clean first-try load, ``recovered`` after
        successful retries, ``degraded`` when the retry budget is
        exhausted (the degradation hooks then keep the link up without
        the configuration).
        """
        try:
            action = retry_load(self.manager, config, retries=self.retries,
                                backoff_cycles=self.backoff_cycles)
        except ResourceError as exc:
            return self._degraded(config.name, str(exc), [])
        if action.ok:
            status = STATUS_OK if action.attempts == 1 else STATUS_RECOVERED
            return self._done(RecoveryOutcome(status, [action]))
        return self._degraded(config.name, action.detail, [action])

    def handle_corruption(self, config, bad_slots=()) -> RecoveryOutcome:
        """A configuration computed garbage: remap it onto spare
        resources, quarantining the slots suspected faulty.

        ``recovered`` when the remapped load succeeds, ``degraded``
        when the spares cannot hold it (or the bus keeps failing) — in
        either terminal case the configuration ends not resident and
        every quarantined slot stays quarantined.
        """
        try:
            actions = remap_config(self.manager, config, bad_slots,
                                   retries=self.retries,
                                   backoff_cycles=self.backoff_cycles)
        except ResourceError as exc:
            # quarantine ate the spares: config is already removed, so
            # the protocol state is consistent — degrade and move on
            return self._degraded(config.name, str(exc), [])
        except ConfigLoadError as exc:     # pragma: no cover - retry_load
            return self._degraded(config.name, str(exc), [])
        if actions and actions[-1].ok:
            return self._done(RecoveryOutcome(STATUS_RECOVERED, actions))
        return self._degraded(config.name,
                              actions[-1].detail if actions else "", actions)

    # -- degradation -----------------------------------------------------------

    def _degraded(self, target: str, reason: str, actions) -> RecoveryOutcome:
        actions = list(actions)
        actions.append(self.degrade(target, reason))
        return self._done(RecoveryOutcome(STATUS_DEGRADED, actions))

    def degrade(self, target: str, reason: str = "") -> RecoveryAction:
        """Apply the configured graceful-degradation moves."""
        moves = []
        if self.session is not None:
            cap = self.session.degrade(self.session.receiver.max_fingers - 1,
                                       reason=reason)
            moves.append(f"fingers->{cap}")
        if self.ofdm is not None:
            self.ofdm.degrade_to_float_fft(reason=reason)
            moves.append("float_fft")
        if not moves:
            probes = get_probes()
            if probes.enabled:
                probes.alert(ALERT_DEGRADED, target, message=reason,
                             once=False)
            moves.append("flagged")
        return RecoveryAction("degrade", target, ok=True,
                              detail=f"{'+'.join(moves)}: {reason}"
                              if reason else "+".join(moves))

    def _done(self, outcome: RecoveryOutcome) -> RecoveryOutcome:
        self.outcomes.append(outcome)
        return outcome

    @property
    def status(self) -> str:
        """Worst status across everything this policy handled."""
        return worst_status(o.status for o in self.outcomes)

"""The fault injector: arms fault models onto a live simulation.

The injector owns three injection surfaces, all pre-existing hooks of
the simulation core (no per-cycle callbacks, so an armed-but-empty
injector costs nothing in the stepping loop):

* **wire taps** (``Wire._tap``) — every push on a tapped wire flows
  through :class:`_WireTap`, which counts pushes and applies the
  wire-level models scheduled at that push index (corrupt / drop /
  duplicate).  An identity tap is byte-exact with an untapped wire,
  which the differential suite proves on every kernel;
* **commit wrappers** — RAM bit flips wrap the target RAM-PAE's
  ``commit`` and fire after its Nth firing (firing counts are
  scheduler-invariant, so the flip lands at the same point under the
  naive and event schedulers);
* **manager / DSP hooks** — ``ConfigurationManager.load_hook`` and
  ``DspProcessor.fault_hook`` deliver config-load and deadline faults.

Every injection that actually triggers is logged as a
:class:`FaultEvent` and raised as an :data:`~repro.telemetry.ALERT_FAULT`
watchdog alert (when a probe board is installed).  ``detach()`` removes
every hook it installed.

Determinism: an injector built from an explicit fault list, or from
:meth:`FaultInjector.plan` with a seeded generator, injects at protocol
event counts only — runs replay bit-exactly across schedulers, worker
counts and checkpoint/resume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.faults.models import (
    ConfigLoadFault,
    DeadlineFault,
    RamBitFlip,
    StuckAtFault,
    TokenDrop,
    TokenDuplicate,
    TransientBitError,
    WIRE_FAULTS,
)
from repro.telemetry import ALERT_FAULT, get_probes
from repro.xpp.errors import ConfigLoadError, ConfigurationError


@dataclass(frozen=True)
class FaultEvent:
    """One injection that actually happened."""

    kind: str       # fault kind string
    site: str       # wire / object / config / task name
    index: int      # push / fire / load / invoke count at the site
    detail: str = ""

    def to_dict(self) -> dict:
        return {"kind": self.kind, "site": self.site,
                "index": self.index, "detail": self.detail}


class _WireTap:
    """Counts pushes on one wire and applies its scheduled faults."""

    __slots__ = ("injector", "wire_name", "pushes", "stuck",
                 "transients", "drops", "dups")

    def __init__(self, injector: "FaultInjector", wire_name: str):
        self.injector = injector
        self.wire_name = wire_name
        self.pushes = 0
        self.stuck: list = []       # persistent StuckAtFault models
        self.transients: dict = {}  # push index -> [TransientBitError]
        self.drops: set = set()
        self.dups: set = set()

    def add(self, fault) -> None:
        if isinstance(fault, StuckAtFault):
            self.stuck.append(fault)
        elif isinstance(fault, TransientBitError):
            self.transients.setdefault(fault.push_index, []).append(fault)
        elif isinstance(fault, TokenDrop):
            self.drops.add(fault.push_index)
        elif isinstance(fault, TokenDuplicate):
            self.dups.add(fault.push_index)
        else:                                       # pragma: no cover
            raise TypeError(f"not a wire fault: {fault!r}")

    def __call__(self, value: Any) -> tuple:
        i = self.pushes
        self.pushes = i + 1
        if i in self.drops:
            self.injector._log(TokenDrop.kind, self.wire_name, i,
                               f"dropped token {value!r}")
            return ()
        if isinstance(value, int):
            original = value
            for f in self.stuck:
                if i >= f.start_push:
                    value = f.apply(value)
            for f in self.transients.get(i, ()):
                value = f.apply(value)
            if value != original:
                self.injector._log("corrupt", self.wire_name, i,
                                   f"{original} -> {value}")
        if i in self.dups:
            self.injector._log(TokenDuplicate.kind, self.wire_name, i,
                               f"duplicated token {value!r}")
            return (value, value)
        return (value,)


class FaultInjector:
    """Arms a set of fault models onto manager, configurations and DSP.

    ``always_tap=True`` installs (identity) taps on *every* wire of
    every armed configuration even when no wire fault targets it — the
    differential suite uses this to prove the tap path itself is a
    byte-exact no-op.
    """

    def __init__(self, faults=(), *, always_tap: bool = False):
        self.faults = list(faults)
        self.always_tap = always_tap
        self.events: list[FaultEvent] = []
        self._taps: dict = {}           # Wire -> _WireTap
        self._by_wire: dict = {}        # wire name -> [wire faults]
        self._ram_flips: dict = {}      # object name -> [RamBitFlip]
        self._load_faults: list = []    # [ConfigLoadFault, remaining]
        self._deadline: dict = {}       # task name -> [DeadlineFault]
        self._invocations: dict = {}    # task name -> count
        self._wrapped: list = []        # objects with wrapped commit
        self._manager = None
        self._dsp = None
        for f in self.faults:
            if isinstance(f, WIRE_FAULTS):
                self._by_wire.setdefault(f.wire, []).append(f)
            elif isinstance(f, RamBitFlip):
                self._ram_flips.setdefault(f.object, []).append(f)
            elif isinstance(f, ConfigLoadFault):
                self._load_faults.append([f, f.count])
            elif isinstance(f, DeadlineFault):
                self._deadline.setdefault(f.task, []).append(f)
            else:
                raise TypeError(f"not a fault model: {f!r}")

    # -- arming ----------------------------------------------------------------

    def attach(self, sim) -> "FaultInjector":
        """Arm everything reachable from a simulator: its manager and
        every resident configuration.  Returns self."""
        self.arm_manager(sim.manager)
        for entry in sim.manager.loaded.values():
            self.arm_config(entry.config)
        return self

    def arm_manager(self, manager) -> None:
        """Install the config-load hook (idempotent)."""
        self._manager = manager
        manager.load_hook = self._on_load

    def arm_config(self, config) -> None:
        """Install wire taps and RAM commit wrappers on one
        configuration's netlist.  Wire faults naming wires absent from
        this configuration stay dormant until their owner is armed."""
        for w in config.wires:
            faults = self._by_wire.get(w.name)
            if faults is None and not self.always_tap:
                continue
            tap = self._taps.get(w)
            if tap is None:
                tap = _WireTap(self, w.name)
                self._taps[w] = tap
                w._tap = tap
            for f in faults or ():
                tap.add(f)
        for obj in config.objects:
            flips = self._ram_flips.get(obj.name)
            if flips:
                self._wrap_commit(obj, flips)

    def arm_dsp(self, dsp) -> None:
        """Install the deadline fault hook on a DSP processor."""
        self._dsp = dsp
        dsp.fault_hook = self._on_invoke

    def detach(self) -> None:
        """Remove every hook this injector installed."""
        for wire in self._taps:
            wire._tap = None
        self._taps.clear()
        for obj in self._wrapped:
            obj.__dict__.pop("commit", None)
        self._wrapped = []
        # == not `is`: bound methods are re-created per attribute access
        if self._manager is not None and \
                self._manager.load_hook == self._on_load:
            self._manager.load_hook = None
        if self._dsp is not None and \
                self._dsp.fault_hook == self._on_invoke:
            self._dsp.fault_hook = None

    # -- hooks -----------------------------------------------------------------

    def _wrap_commit(self, obj, flips) -> None:
        if not hasattr(obj, "flip_bit"):
            raise TypeError(f"{obj.name}: RAM bit flips need a RAM/FIFO "
                            f"PAE, not {type(obj).__name__}")
        pending = sorted(flips, key=lambda f: f.fire_index)
        orig_commit = obj.commit

        def commit():
            orig_commit()
            while pending and obj.fired > pending[0].fire_index:
                f = pending.pop(0)
                try:
                    new = obj.flip_bit(f.word, f.bit)
                except ConfigurationError as exc:
                    # e.g. a flip scheduled onto a FIFO that has drained
                    # by then: soft errors in unoccupied storage are
                    # unobservable, so log and move on
                    self._log(f.kind, obj.name, f.fire_index,
                              f"no-op: {exc}")
                    continue
                self._log(f.kind, obj.name, f.fire_index,
                          f"word {f.word} bit {f.bit} -> {new}")

        obj.commit = commit
        self._wrapped.append(obj)

    def _on_load(self, config) -> int:
        extra = 0
        for state in self._load_faults:
            fault, remaining = state
            if remaining <= 0 or not fault.matches(config.name):
                continue
            state[1] = remaining - 1
            self._log(fault.kind, config.name, fault.count - remaining + 1,
                      f"mode={fault.mode}")
            if fault.mode == "fail":
                raise ConfigLoadError(
                    f"injected configuration-bus failure loading "
                    f"{config.name!r}")
            extra += fault.extra_cycles
        return extra

    def _on_invoke(self, task) -> Optional[float]:
        n = self._invocations.get(task.name, 0)
        self._invocations[task.name] = n + 1
        factor = None
        for f in self._deadline.get(task.name, ()):
            if f.invoke_index == n:
                factor = max(factor or 1.0, f.factor)
                self._log(f.kind, task.name, n, f"factor={f.factor:g}")
        return factor

    # -- logging ---------------------------------------------------------------

    def _log(self, kind: str, site: str, index: int, detail: str) -> None:
        self.events.append(FaultEvent(kind=kind, site=site, index=index,
                                      detail=detail))
        probes = get_probes()
        if probes.enabled:
            probes.alert(ALERT_FAULT, f"{kind}:{site}", value=index,
                         message=detail)

    def summary(self) -> dict:
        """Counts of triggered injections by kind."""
        out: dict = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out


def plan_faults(config, rng, *, rates: dict, horizon: int = 256) -> list:
    """Draw a random fault schedule for one configuration.

    ``rates`` maps a fault kind (a key of
    :data:`repro.faults.models.FAULT_KINDS`, minus ``deadline`` which
    has no site in a netlist) to the *expected number* of injections of
    that kind; actual counts are Poisson draws from ``rng`` (a
    :class:`numpy.random.Generator`).  Event indices are uniform in
    ``[0, horizon)`` pushes/firings.  The schedule depends only on the
    generator state, never on wall time, so a shard-derived ``rng``
    yields the same chaos everywhere.  An all-zero ``rates`` consumes
    no draws and returns an empty schedule.
    """
    from repro.xpp.ram import FifoPae, RamPae

    faults: list = []
    wires = config.wires
    rams = [o for o in config.objects if isinstance(o, (RamPae, FifoPae))]

    def count(kind: str) -> int:
        r = float(rates.get(kind, 0.0))
        if r < 0:
            raise ValueError(f"negative fault rate for {kind!r}")
        return int(rng.poisson(r)) if r > 0 else 0

    def pick(seq):
        return seq[int(rng.integers(len(seq)))]

    for _ in range(count(StuckAtFault.kind)):
        if not wires:
            break
        faults.append(StuckAtFault(
            wire=pick(wires).name, bit=int(rng.integers(24)),
            value=int(rng.integers(2)),
            start_push=int(rng.integers(horizon))))
    for _ in range(count(TransientBitError.kind)):
        if not wires:
            break
        faults.append(TransientBitError(
            wire=pick(wires).name, push_index=int(rng.integers(horizon)),
            bit=int(rng.integers(24))))
    for _ in range(count(TokenDrop.kind)):
        if not wires:
            break
        faults.append(TokenDrop(wire=pick(wires).name,
                                push_index=int(rng.integers(horizon))))
    for _ in range(count(TokenDuplicate.kind)):
        if not wires:
            break
        faults.append(TokenDuplicate(wire=pick(wires).name,
                                     push_index=int(rng.integers(horizon))))
    for _ in range(count(RamBitFlip.kind)):
        if not rams:
            break
        ram = pick(rams)
        words = getattr(ram, "words", None) or getattr(ram, "depth", 1)
        faults.append(RamBitFlip(
            object=ram.name, fire_index=int(rng.integers(horizon)),
            word=int(rng.integers(words)), bit=int(rng.integers(24))))
    n_fail = count(ConfigLoadFault.kind)
    if n_fail:
        faults.append(ConfigLoadFault(config=config.name, mode="fail",
                                      count=n_fail))
    return faults

"""Constellation mapping and demapping (802.11a sec. 17.3.5.7).

Gray-coded BPSK / QPSK / 16-QAM / 64-QAM with the standard per-scheme
normalisation factors so all constellations have unit average power.
Demapping produces per-bit soft values (positive = bit 0 more likely)
for the Viterbi decoder, or hard bits.
"""

from __future__ import annotations

import numpy as np

#: Normalisation (K_MOD) per 802.11a Table 81.
K_MOD = {
    "BPSK": 1.0,
    "QPSK": 1.0 / np.sqrt(2.0),
    "16QAM": 1.0 / np.sqrt(10.0),
    "64QAM": 1.0 / np.sqrt(42.0),
}

BITS_PER_SYMBOL = {"BPSK": 1, "QPSK": 2, "16QAM": 4, "64QAM": 6}

#: Gray mapping of bit groups to one axis level (802.11a Tables 78-80):
#: 1 bit  -> {-1, 1}; 2 bits -> {-3, -1, 1, 3}; 3 bits -> {-7 .. 7}.
_AXIS_LEVELS = {
    1: {(0,): -1, (1,): 1},
    2: {(0, 0): -3, (0, 1): -1, (1, 1): 1, (1, 0): 3},
    3: {(0, 0, 0): -7, (0, 0, 1): -5, (0, 1, 1): -3, (0, 1, 0): -1,
        (1, 1, 0): 1, (1, 1, 1): 3, (1, 0, 1): 5, (1, 0, 0): 7},
}


def _axis_bits(level: int, n: int) -> tuple:
    inv = {v: k for k, v in _AXIS_LEVELS[n].items()}
    return inv[level]


def map_bits(bits: np.ndarray, modulation: str) -> np.ndarray:
    """Map a bit stream to normalised constellation points."""
    if modulation not in K_MOD:
        raise ValueError(f"unknown modulation {modulation!r}")
    b = np.asarray(bits, dtype=np.int64)
    if np.any((b != 0) & (b != 1)):
        raise ValueError("bits must be 0/1")
    n_bpsc = BITS_PER_SYMBOL[modulation]
    if b.size % n_bpsc:
        raise ValueError(f"bit count not a multiple of {n_bpsc}")
    groups = b.reshape(-1, n_bpsc)
    if modulation == "BPSK":
        return ((2 * groups[:, 0] - 1) + 0j).astype(np.complex128)
    half = n_bpsc // 2
    table = _AXIS_LEVELS[half]
    i_levels = np.array([table[tuple(g[:half])] for g in groups], dtype=float)
    q_levels = np.array([table[tuple(g[half:])] for g in groups], dtype=float)
    return K_MOD[modulation] * (i_levels + 1j * q_levels)


def soft_demap(symbols: np.ndarray, modulation: str) -> np.ndarray:
    """Per-bit soft values with the convention positive = bit 0.

    Uses the max-log approximation: the soft value of a bit is the
    distance difference between the nearest constellation axis levels
    with that bit 0 vs 1, which for Gray-coded square QAM reduces to
    piecewise-linear functions of the received I/Q coordinate.
    """
    if modulation not in K_MOD:
        raise ValueError(f"unknown modulation {modulation!r}")
    s = np.asarray(symbols, dtype=np.complex128)
    if modulation == "BPSK":
        return -s.real            # bit 1 transmitted as +1
    half = BITS_PER_SYMBOL[modulation] // 2
    scale = 1.0 / K_MOD[modulation]
    out = np.empty((s.size, 2 * half), dtype=np.float64)
    for axis, coord in ((0, s.real * scale), (1, s.imag * scale)):
        col = axis * half
        if half == 1:            # QPSK: 1 bit/axis, level -1|+1 for bit 0|1
            out[:, col] = -coord
        elif half == 2:          # 16QAM Gray axis: 00,01,11,10 -> -3,-1,1,3
            out[:, col] = -coord                    # b0 = 0 on the - side
            out[:, col + 1] = np.abs(coord) - 2.0   # b1 = 0 on outer levels
        else:                    # 64QAM Gray axis: -7..7
            out[:, col] = -coord                    # b0 = 0 on the - side
            out[:, col + 1] = np.abs(coord) - 4.0   # b1 = 0 at |c| in {5,7}
            out[:, col + 2] = np.abs(np.abs(coord) - 4.0) - 2.0
            # b2 = 0 at |c| in {1, 7}
    return out.reshape(-1)


def hard_demap(symbols: np.ndarray, modulation: str) -> np.ndarray:
    """Hard bit decisions (sign of the soft values)."""
    return (soft_demap(symbols, modulation) < 0).astype(np.int64)

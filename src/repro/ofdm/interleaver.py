"""802.11a block interleaver (sec. 17.3.5.6).

Operates on one OFDM symbol's worth of coded bits (N_CBPS).  Two
permutations: the first spreads adjacent coded bits across
non-adjacent subcarriers; the second rotates bits within a subcarrier's
constellation so adjacent bits alternate between more and less
significant constellation positions.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=None)
def interleave_map(n_cbps: int, n_bpsc: int) -> tuple:
    """Permutation ``j[k]``: position of input bit k after interleaving."""
    if n_cbps % 48:
        raise ValueError("N_CBPS must be a multiple of 48")
    if n_bpsc < 1 or n_cbps % n_bpsc:
        raise ValueError("N_CBPS must be a multiple of N_BPSC")
    s = max(n_bpsc // 2, 1)
    out = []
    for k in range(n_cbps):
        i = (n_cbps // 16) * (k % 16) + k // 16
        j = s * (i // s) + (i + n_cbps - 16 * i // n_cbps) % s
        out.append(j)
    return tuple(out)


def interleave(bits: np.ndarray, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Interleave one or more symbols' worth of coded bits."""
    b = np.asarray(bits, dtype=np.int64)
    if b.size % n_cbps:
        raise ValueError(f"bit count {b.size} not a multiple of N_CBPS {n_cbps}")
    perm = np.array(interleave_map(n_cbps, n_bpsc))
    out = np.empty_like(b)
    for start in range(0, b.size, n_cbps):
        block = b[start:start + n_cbps]
        interleaved = np.empty(n_cbps, dtype=b.dtype)
        interleaved[perm] = block
        out[start:start + n_cbps] = interleaved
    return out


def deinterleave(values: np.ndarray, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Inverse permutation; works on bits or soft values."""
    v = np.asarray(values)
    if v.size % n_cbps:
        raise ValueError(f"length {v.size} not a multiple of N_CBPS {n_cbps}")
    perm = np.array(interleave_map(n_cbps, n_bpsc))
    out = np.empty_like(v)
    for start in range(0, v.size, n_cbps):
        out[start:start + n_cbps] = v[start:start + n_cbps][perm]
    return out

"""802.11a data scrambler (x^7 + x^4 + 1).

Self-synchronising frame-synchronous scrambler used on the DATA field;
scrambling and descrambling are the same operation.
"""

from __future__ import annotations

import numpy as np

SCRAMBLER_PERIOD = 127


def scrambler_sequence(length: int, seed: int = 0x7F) -> np.ndarray:
    """The raw scrambler bit sequence for a given 7-bit seed."""
    if not 1 <= seed <= 0x7F:
        raise ValueError(f"scrambler seed must be a non-zero 7-bit value: {seed}")
    state = seed
    out = np.empty(length, dtype=np.int64)
    for i in range(length):
        bit = ((state >> 6) ^ (state >> 3)) & 1
        state = ((state << 1) | bit) & 0x7F
        out[i] = bit
    return out


def scramble_bits(bits: np.ndarray, seed: int = 0x7F) -> np.ndarray:
    """XOR the bit stream with the scrambler sequence (used for both
    scrambling and descrambling)."""
    b = np.asarray(bits, dtype=np.int64)
    if np.any((b != 0) & (b != 1)):
        raise ValueError("bits must be 0/1")
    return b ^ scrambler_sequence(b.size, seed)


descramble_bits = scramble_bits

"""802.11a transmitter: PLCP preamble + SIGNAL + DATA.

Builds complete baseband PPDUs so the receiver (the paper's OFDM decoder
application) has a realistic signal to decode: scrambling, convolutional
coding with puncturing, per-symbol interleaving, constellation mapping,
pilot insertion, 64-point IFFT and cyclic prefix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ofdm.convcode import conv_encode, puncture
from repro.ofdm.interleaver import interleave
from repro.ofdm.mapping import map_bits
from repro.ofdm.params import (
    DATA_CARRIERS,
    N_CP,
    N_FFT,
    PILOT_CARRIERS,
    PILOT_VALUES,
    RATES,
    RateParams,
    pilot_polarity_sequence,
    rate_params,
)
from repro.ofdm.preamble import full_preamble
from repro.ofdm.scrambler import scramble_bits

#: 7-bit scrambler initial state used for the DATA field (any non-zero
#: value is legal; receivers recover it from the SERVICE bits).
DATA_SCRAMBLER_SEED = 0x5D

SERVICE_BITS = 16
TAIL_BITS = 6


def assemble_symbol(data_points: np.ndarray, polarity: int) -> np.ndarray:
    """One OFDM symbol: 48 data points + 4 pilots -> IFFT -> prepend CP."""
    if data_points.size != len(DATA_CARRIERS):
        raise ValueError(f"need {len(DATA_CARRIERS)} data points")
    bins = np.zeros(N_FFT, dtype=np.complex128)
    for k, v in zip(DATA_CARRIERS, data_points):
        bins[k % N_FFT] = v
    for k, p in zip(PILOT_CARRIERS, PILOT_VALUES):
        bins[k % N_FFT] = polarity * p
    sym = np.fft.ifft(bins) * np.sqrt(N_FFT)
    return np.concatenate([sym[-N_CP:], sym])


def _encode_symbols(bits: np.ndarray, rp: RateParams,
                    first_polarity_index: int) -> np.ndarray:
    """Coded+interleaved+mapped OFDM symbols for a bit stream that is
    already a whole number of symbols (N_DBPS multiple)."""
    coded = puncture(conv_encode(bits), rp.coding_rate)
    interleaved = interleave(coded, rp.n_cbps, rp.n_bpsc)
    points = map_bits(interleaved, rp.modulation)
    n_symbols = points.size // len(DATA_CARRIERS)
    polarity = pilot_polarity_sequence(first_polarity_index + n_symbols)
    out = []
    for i in range(n_symbols):
        seg = points[i * len(DATA_CARRIERS):(i + 1) * len(DATA_CARRIERS)]
        out.append(assemble_symbol(seg, polarity[first_polarity_index + i]))
    return np.concatenate(out) if out else np.empty(0, dtype=np.complex128)


def signal_field_bits(rate_mbps: int, length_bytes: int) -> np.ndarray:
    """The 24-bit SIGNAL field: RATE, reserved, LENGTH, parity, tail."""
    if not 1 <= length_bytes <= 4095:
        raise ValueError(f"PSDU length must be 1..4095 bytes: {length_bytes}")
    rp = rate_params(rate_mbps)
    bits = list(rp.signal_rate_bits) + [0]
    bits += [(length_bytes >> i) & 1 for i in range(12)]     # LSB first
    bits.append(sum(bits) % 2)                               # even parity
    bits += [0] * TAIL_BITS
    return np.array(bits, dtype=np.int64)


def parse_signal_field(bits: np.ndarray) -> tuple:
    """Decode a 24-bit SIGNAL field -> ``(rate_mbps, length_bytes)``.

    Raises ValueError on bad parity, non-zero tail or unknown rate.
    """
    b = np.asarray(bits, dtype=np.int64)
    if b.size != 24:
        raise ValueError("SIGNAL field is 24 bits")
    if int(np.sum(b[:17])) % 2 != int(b[17]):
        raise ValueError("SIGNAL parity check failed")
    if np.any(b[18:] != 0):
        raise ValueError("SIGNAL tail bits not zero")
    rate_bits = tuple(int(x) for x in b[:4])
    for rate, rp in sorted(RATES.items()):
        if rp.signal_rate_bits == rate_bits:
            length = int(sum(int(b[5 + i]) << i for i in range(12)))
            if length < 1:
                raise ValueError("SIGNAL length is zero")
            return rate, length
    raise ValueError(f"unknown RATE bits {rate_bits}")


@dataclass
class Ppdu:
    """A transmitted packet with its metadata (for test harnesses)."""

    samples: np.ndarray
    rate_mbps: int
    psdu_bits: np.ndarray
    n_data_symbols: int


class OfdmTransmitter:
    """Builds complete 802.11a baseband packets."""

    def __init__(self, rate_mbps: int):
        self.rate = rate_params(rate_mbps)

    def transmit(self, psdu_bits: np.ndarray) -> Ppdu:
        """PSDU bits (a multiple of 8) -> baseband samples."""
        psdu = np.asarray(psdu_bits, dtype=np.int64)
        if psdu.size % 8:
            raise ValueError("PSDU must be whole bytes")
        if np.any((psdu != 0) & (psdu != 1)):
            raise ValueError("bits must be 0/1")
        rp = self.rate
        length_bytes = psdu.size // 8

        # SIGNAL: BPSK rate 1/2, not scrambled, pilot polarity index 0
        sig_bits = signal_field_bits(rp.rate_mbps, length_bytes)
        sig_rp = rate_params(6)
        signal_samples = _encode_symbols(sig_bits, sig_rp, 0)

        # DATA: SERVICE + PSDU + tail + pad, scrambled (tail re-zeroed)
        n_payload = SERVICE_BITS + psdu.size + TAIL_BITS
        n_symbols = -(-n_payload // rp.n_dbps)
        n_padded = n_symbols * rp.n_dbps
        data = np.zeros(n_padded, dtype=np.int64)
        data[SERVICE_BITS:SERVICE_BITS + psdu.size] = psdu
        scrambled = scramble_bits(data, DATA_SCRAMBLER_SEED)
        tail_at = SERVICE_BITS + psdu.size
        scrambled[tail_at:tail_at + TAIL_BITS] = 0
        data_samples = _encode_symbols(scrambled, rp, 1)

        samples = np.concatenate([full_preamble(), signal_samples,
                                  data_samples])
        return Ppdu(samples=samples, rate_mbps=rp.rate_mbps,
                    psdu_bits=psdu, n_data_symbols=n_symbols)

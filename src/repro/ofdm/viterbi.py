"""Viterbi decoder for the 802.11a convolutional code.

In the paper's partitioning the Viterbi decoder is *dedicated hardware*
(Fig. 8); this is its bit-accurate model.  Soft-decision decoding over
the 64-state trellis with correlation metrics; punctured positions enter
as zero-valued erasures (see :func:`repro.ofdm.convcode.depuncture`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ofdm.convcode import _ENC_TABLE, K

N_STATES = 64

# trellis tables -------------------------------------------------------------
# next state when input `b` is shifted into state `s`
_NEXT = np.empty((N_STATES, 2), dtype=np.int64)
for _s in range(N_STATES):
    for _b in range(2):
        _NEXT[_s, _b] = (_s >> 1) | (_b << 5)

# expected (A, B) as +-1 correlation signs
_SIGNS = 1 - 2 * _ENC_TABLE.astype(np.int64)     # (state, bit, 2)

# inverse: each next-state has exactly two (prev, bit) predecessors
_PREV = np.zeros((N_STATES, 2), dtype=np.int64)
_PREV_BIT = np.zeros((N_STATES, 2), dtype=np.int64)
_fill = np.zeros(N_STATES, dtype=np.int64)
for _s in range(N_STATES):
    for _b in range(2):
        _ns = _NEXT[_s, _b]
        _PREV[_ns, _fill[_ns]] = _s
        _PREV_BIT[_ns, _fill[_ns]] = _b
        _fill[_ns] += 1
assert np.all(_fill == 2)

_NEG_INF = -1e18


def viterbi_decode(soft: np.ndarray, *, terminated: bool = True) -> np.ndarray:
    """Maximum-likelihood decode of a (depunctured) soft stream.

    ``soft`` holds pairs ``(A0, B0, A1, B1, ...)`` with positive values
    favouring bit 0 and magnitude equal to confidence; hard decisions map
    to +-1 and erasures to 0.  Returns the decoded information bits
    (including any tail bits the encoder appended).

    ``terminated=True`` assumes the encoder was flushed back to state 0
    with tail zeros (the 802.11a convention).
    """
    r = np.asarray(soft, dtype=np.float64)
    if r.size % 2:
        raise ValueError("soft stream must contain (A, B) pairs")
    n = r.size // 2
    if n == 0:
        return np.empty(0, dtype=np.int64)

    metrics = np.full(N_STATES, _NEG_INF)
    metrics[0] = 0.0
    decisions = np.empty((n, N_STATES), dtype=np.uint8)

    sa0 = _SIGNS[_PREV[:, 0], _PREV_BIT[:, 0], 0]
    sb0 = _SIGNS[_PREV[:, 0], _PREV_BIT[:, 0], 1]
    sa1 = _SIGNS[_PREV[:, 1], _PREV_BIT[:, 1], 0]
    sb1 = _SIGNS[_PREV[:, 1], _PREV_BIT[:, 1], 1]
    p0 = _PREV[:, 0]
    p1 = _PREV[:, 1]

    # branch metrics for every (step, state) at once; kept as separate
    # A/B terms added in the same order as the scalar per-step expression
    # ((metrics + ra*sa) + rb*sb), so results are bit-identical to it
    ra = r[0::2]
    rb = r[1::2]
    bma0 = np.outer(ra, sa0)
    bmb0 = np.outer(rb, sb0)
    bma1 = np.outer(ra, sa1)
    bmb1 = np.outer(rb, sb1)

    for t in range(n):
        cand0 = metrics[p0] + bma0[t] + bmb0[t]
        cand1 = metrics[p1] + bma1[t] + bmb1[t]
        take1 = cand1 > cand0
        decisions[t] = take1
        metrics = np.where(take1, cand1, cand0)

    state = 0 if terminated else int(np.argmax(metrics))
    bits = np.empty(n, dtype=np.int64)
    for t in range(n - 1, -1, -1):
        which = decisions[t, state]
        bits[t] = _PREV_BIT[state, which]
        state = _PREV[state, which]
    return bits


def hard_to_soft(bits: np.ndarray) -> np.ndarray:
    """Map hard bits {0, 1} to correlation soft values {+1, -1}."""
    b = np.asarray(bits, dtype=np.int64)
    return (1 - 2 * b).astype(np.float64)


class StreamingViterbi:
    """Sliding-window Viterbi: how the dedicated hardware decodes.

    A hardware decoder cannot buffer the whole packet; it keeps a
    traceback window of ``traceback_depth`` trellis steps (typically
    5-7 constraint lengths) and releases one decided bit per step once
    the window fills, tracing back from the currently best state.
    Decisions are near-ML for depths >= 5 * (K - 1).

    Feed soft pairs with :meth:`update`; call :meth:`flush` at the end
    of the stream.
    """

    def __init__(self, traceback_depth: int = 5 * (K - 1) * 2):
        if traceback_depth < K:
            raise ValueError(f"traceback depth must be >= {K}")
        self.traceback_depth = traceback_depth
        self.metrics = np.full(N_STATES, _NEG_INF)
        self.metrics[0] = 0.0
        self._decisions: list = []

    def update(self, ra: float, rb: float) -> Optional[int]:
        """Process one received (A, B) soft pair.

        Returns a decoded bit once the traceback window is full, else
        None.
        """
        p0, p1 = _PREV[:, 0], _PREV[:, 1]
        cand0 = self.metrics[p0] \
            + ra * _SIGNS[p0, _PREV_BIT[:, 0], 0] \
            + rb * _SIGNS[p0, _PREV_BIT[:, 0], 1]
        cand1 = self.metrics[p1] \
            + ra * _SIGNS[p1, _PREV_BIT[:, 1], 0] \
            + rb * _SIGNS[p1, _PREV_BIT[:, 1], 1]
        take1 = cand1 > cand0
        self.metrics = np.where(take1, cand1, cand0)
        # bounded metrics: renormalise so the window never overflows
        self.metrics -= self.metrics.max()
        self._decisions.append(take1.astype(np.uint8))
        if len(self._decisions) <= self.traceback_depth:
            return None
        state = int(np.argmax(self.metrics))
        for dec in reversed(self._decisions[1:]):
            which = dec[state]
            state = _PREV[state, which]
        dec0 = self._decisions.pop(0)
        bit = int(_PREV_BIT[state, dec0[state]])
        return bit

    def snapshot(self) -> dict:
        """The decoder's window state as a JSON-serializable dict.

        Path metrics are exact float64 values round-tripped through
        lists, and the survivor window is a list of per-step decision
        bit vectors — a restored decoder's next :meth:`update` /
        :meth:`flush` is bit-identical to the original's.
        """
        return {
            "traceback_depth": self.traceback_depth,
            "metrics": [float(m) for m in self.metrics],
            "decisions": [[int(b) for b in dec] for dec in self._decisions],
        }

    @classmethod
    def from_snapshot(cls, d: dict) -> "StreamingViterbi":
        """Rebuild a window decoder from :meth:`snapshot` output."""
        dec = cls(traceback_depth=int(d["traceback_depth"]))
        dec.metrics = np.array(d["metrics"], dtype=np.float64)
        dec._decisions = [np.array(rec, dtype=np.uint8)
                          for rec in d["decisions"]]
        return dec

    def flush(self, *, terminated: bool = True) -> np.ndarray:
        """Decode the bits still inside the window."""
        if not self._decisions:
            return np.empty(0, dtype=np.int64)
        state = 0 if terminated else int(np.argmax(self.metrics))
        out = np.empty(len(self._decisions), dtype=np.int64)
        for t in range(len(self._decisions) - 1, -1, -1):
            which = self._decisions[t][state]
            out[t] = _PREV_BIT[state, which]
            state = _PREV[state, which]
        self._decisions = []
        return out

    def decode(self, soft: np.ndarray, *,
               terminated: bool = True) -> np.ndarray:
        """Convenience: run a whole (depunctured) stream through the
        window decoder."""
        r = np.asarray(soft, dtype=np.float64)
        if r.size % 2:
            raise ValueError("soft stream must contain (A, B) pairs")
        out = []
        for t in range(r.size // 2):
            bit = self.update(r[2 * t], r[2 * t + 1])
            if bit is not None:
                out.append(bit)
        tail = self.flush(terminated=terminated)
        return np.concatenate([np.array(out, dtype=np.int64), tail])

"""Radix-4 FFT64 (paper Fig. 9).

The paper's FFT64 uses the radix-4 approach: three stages, each a
radix-4 butterfly fed by twiddle factors from a lookup table, with a
2-bit right shift per stage to prevent overflow (10-bit input -> 4-bit
result precision after 3 stages).

This module provides:

* :func:`fft64_tables` — the address/twiddle schedule of the iterative
  decimation-in-time algorithm (the circular lookup tables of Fig. 9),
  shared with the array kernel in :mod:`repro.kernels.fft64` so golden
  model and array mapping match bit-exactly;
* :func:`fft64_float` — floating-point reference with the same
  structure;
* :func:`fft64_fixed` — the bit-accurate fixed-point model (quantised
  twiddles, integer butterflies, per-stage scaling).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.telemetry.probes import get_probes

N = 64
N_STAGES = 3
#: Per-stage right shift ("with every stage a scaling (2-bit right shift)
#: is required to prevent overflow").
STAGE_SHIFT = 2
#: Fraction bits of the quantised twiddle factors.
TWIDDLE_BITS = 10
#: The paper's per-stage storage budget: packed 12-bit two's-complement
#: words, so a stored component overflowing |v| > 2047 has lost bits.
STORAGE_BITS = 12
_STORAGE_MAX = (1 << (STORAGE_BITS - 1)) - 1


def digit_reverse4(i: int, n_digits: int = 3) -> int:
    """Reverse the base-4 digits of an index (radix-4 bit reversal)."""
    out = 0
    for _ in range(n_digits):
        out = (out << 2) | (i & 3)
        i >>= 2
    return out


def _check_radix4_size(n: int) -> int:
    """Validate a power-of-4 size; returns the number of stages."""
    stages = 0
    size = n
    while size > 1:
        if size % 4:
            raise ValueError(f"radix-4 FFT size must be a power of 4: {n}")
        size //= 4
        stages += 1
    if stages == 0:
        raise ValueError("FFT size must be at least 4")
    return stages


@dataclass(frozen=True)
class Butterfly:
    """One radix-4 butterfly: 4 element indices and 3 twiddles (the
    m=0 leg's twiddle is always 1)."""

    indices: tuple     # (i0, i1, i2, i3) into the 64-element buffer
    twiddles: tuple    # (w1, w2, w3) complex, applied to legs 1..3


@lru_cache(maxsize=None)
def radix4_tables(n: int = N) -> tuple:
    """The butterfly schedule per stage for an ``n``-point radix-4 FFT
    (decimation in time, digit-reversed input load order); each stage is
    a tuple of ``n/4`` :class:`Butterfly` entries."""
    n_stages = _check_radix4_size(n)
    stages = []
    size = 4
    for _stage in range(n_stages):
        q = size // 4
        butterflies = []
        for start in range(0, n, size):
            for k in range(q):
                idx = tuple(start + k + m * q for m in range(4))
                tw = tuple(np.exp(-2j * np.pi * m * k / size)
                           for m in (1, 2, 3))
                butterflies.append(Butterfly(indices=idx, twiddles=tw))
        stages.append(tuple(butterflies))
        size *= 4
    return tuple(stages)


@lru_cache(maxsize=1)
def fft64_tables() -> tuple:
    """The FFT64 butterfly schedule (stage sizes 4, 16, 64)."""
    return radix4_tables(N)


def fft_radix4_float(x: np.ndarray) -> np.ndarray:
    """Radix-4 FFT of any power-of-4 size (floating point)."""
    x = np.asarray(x, dtype=np.complex128)
    n = x.size
    n_stages = _check_radix4_size(n)
    y = np.array([x[digit_reverse4(i, n_stages)] for i in range(n)],
                 dtype=np.complex128)
    for stage in radix4_tables(n):
        for bf in stage:
            i0, i1, i2, i3 = bf.indices
            w1, w2, w3 = bf.twiddles
            a, b, c, d = y[i0], w1 * y[i1], w2 * y[i2], w3 * y[i3]
            y[i0], y[i1], y[i2], y[i3] = _butterfly(a, b, c, d)
    return y


def _butterfly(a, b, c, d):
    """The radix-4 kernel of Fig. 9 (V, W, X, Z outputs)."""
    return (a + b + c + d,
            a - 1j * b - c + 1j * d,
            a - b + c - d,
            a + 1j * b - c - 1j * d)


def fft64_float(x: np.ndarray) -> np.ndarray:
    """64-point FFT via the paper's radix-4 structure (matches
    ``np.fft.fft`` to rounding)."""
    x = np.asarray(x, dtype=np.complex128)
    if x.size != N:
        raise ValueError(f"FFT64 needs 64 samples, got {x.size}")
    return fft_radix4_float(x)


@lru_cache(maxsize=None)
def _quantised_twiddles(twiddle_bits: int) -> tuple:
    """Integer (re, im) twiddles per stage, in schedule order."""
    scale = 1 << twiddle_bits
    out = []
    for stage in fft64_tables():
        stage_tw = []
        for bf in stage:
            stage_tw.append(tuple(
                (int(round(w.real * scale)), int(round(w.imag * scale)))
                for w in bf.twiddles))
        out.append(tuple(stage_tw))
    return tuple(out)


def fft64_fixed(x_re: np.ndarray, x_im: np.ndarray, *,
                twiddle_bits: int = TWIDDLE_BITS,
                stage_shift: int = STAGE_SHIFT) -> tuple:
    """Fixed-point FFT64 on integer I/Q arrays.

    Twiddles are quantised to ``twiddle_bits`` fraction bits; every
    butterfly output is arithmetic-shifted right by ``stage_shift``.
    Returns ``(re, im)`` int64 arrays.  With the default 2-bit shift the
    result approximates ``FFT(x) / 2**(3*stage_shift) = FFT(x) / 64``.
    """
    re = np.asarray(x_re, dtype=np.int64)
    im = np.asarray(x_im, dtype=np.int64)
    if re.size != N or im.size != N:
        raise ValueError("FFT64 needs 64 samples")
    order = [digit_reverse4(i) for i in range(N)]
    yr = re[order].copy()
    yi = im[order].copy()
    twiddle_tables = _quantised_twiddles(twiddle_bits)
    probes = get_probes()
    probing = probes.enabled
    for stage_index, (stage, stage_tw) in enumerate(
            zip(fft64_tables(), twiddle_tables)):
        overflows = 0
        for bf, tws in zip(stage, stage_tw):
            i0, i1, i2, i3 = bf.indices
            legs = [(int(yr[i0]), int(yi[i0]))]
            for (wr, wi), idx in zip(tws, (i1, i2, i3)):
                ar, ai = int(yr[idx]), int(yi[idx])
                legs.append(((ar * wr - ai * wi) >> twiddle_bits,
                             (ar * wi + ai * wr) >> twiddle_bits))
            (ar, ai), (br, bi), (cr, ci), (dr, di) = legs
            outs = (
                (ar + br + cr + dr, ai + bi + ci + di),
                (ar + bi - cr - di, ai - br - ci + dr),
                (ar - br + cr - dr, ai - bi + ci - di),
                (ar - bi - cr + di, ai + br - ci - dr),
            )
            for idx, (orr, oii) in zip(bf.indices, outs):
                yr[idx] = orr >> stage_shift
                yi[idx] = oii >> stage_shift
            if probing:
                for idx in bf.indices:
                    if not (-_STORAGE_MAX - 1 <= yr[idx] <= _STORAGE_MAX) \
                            or not (-_STORAGE_MAX - 1 <= yi[idx]
                                    <= _STORAGE_MAX):
                        overflows += 1
        if probing:
            # per-stage overflow count against the 12-bit storage
            # budget — the quantity the paper's 2-bit shift keeps at 0
            probes.record(f"ofdm.fft64.overflow.stage{stage_index}",
                          overflows, unit="events", kind="saturation")
            if overflows:
                probes.record("ofdm.fft64.overflow", overflows,
                              unit="events", kind="saturation")
    return yr, yi


def fft64_fixed_complex(x: np.ndarray, frac_bits: int = 0, **kw) -> np.ndarray:
    """Convenience: complex float in -> complex float out through the
    fixed datapath, rescaled back (including the /64 of the shifts)."""
    scale = float(1 << frac_bits)
    re = np.round(np.real(x) * scale).astype(np.int64)
    im = np.round(np.imag(x) * scale).astype(np.int64)
    yr, yi = fft64_fixed(re, im, **kw)
    shift = kw.get("stage_shift", STAGE_SHIFT)
    norm = scale / float(1 << (N_STAGES * shift))
    return (yr + 1j * yi) / norm

"""IEEE 802.11a / HIPERLAN-2 OFDM physical-layer substrate.

Everything the paper's OFDM decoder (Sec. 3.2) needs: the 48+4 carrier
symbol structure, the eight 6-54 Mbit/s rate modes, data scrambler,
convolutional coding with puncturing, interleaver, Gray constellation
mapping, radix-4 FFT64 (floating and bit-accurate fixed point), PLCP
preambles with the detection correlator, a full transmitter and the
golden receiver.  The Viterbi decoder models the paper's dedicated
hardware block.
"""

from repro.ofdm.params import (
    DATA_CARRIERS,
    N_CP,
    N_DATA_CARRIERS,
    N_FFT,
    N_PILOT_CARRIERS,
    PILOT_CARRIERS,
    RATES,
    RateParams,
    pilot_polarity_sequence,
    rate_params,
)
from repro.ofdm.scrambler import descramble_bits, scramble_bits, scrambler_sequence
from repro.ofdm.convcode import (
    coded_length,
    conv_encode,
    depuncture,
    puncture,
    puncture_pattern,
)
from repro.ofdm.viterbi import StreamingViterbi, hard_to_soft, viterbi_decode
from repro.ofdm.interleaver import deinterleave, interleave
from repro.ofdm.mapping import (
    BITS_PER_SYMBOL,
    K_MOD,
    hard_demap,
    map_bits,
    soft_demap,
)
from repro.ofdm.fft import (
    STAGE_SHIFT,
    TWIDDLE_BITS,
    digit_reverse4,
    fft64_fixed,
    fft64_fixed_complex,
    fft64_float,
    fft64_tables,
    fft_radix4_float,
    radix4_tables,
)
from repro.ofdm.hiperlan2 import (
    H2_MODES,
    H2Burst,
    Hiperlan2Receiver,
    Hiperlan2Transmitter,
    mode_params,
)
from repro.ofdm.impairments import (
    COARSE_CFO_RANGE_HZ,
    FINE_CFO_RANGE_HZ,
    apply_cfo,
    estimate_and_correct_cfo,
    estimate_cfo_coarse,
    estimate_cfo_fine,
)
from repro.ofdm.preamble import (
    LONG_SEQUENCE,
    PreambleDetector,
    full_preamble,
    long_preamble,
    long_training_bins,
    short_preamble,
)
from repro.ofdm.transmitter import (
    OfdmTransmitter,
    Ppdu,
    assemble_symbol,
    parse_signal_field,
    signal_field_bits,
)
from repro.ofdm.receiver import OfdmReceiver, PacketError, RxReport

__all__ = [
    "BITS_PER_SYMBOL",
    "COARSE_CFO_RANGE_HZ",
    "FINE_CFO_RANGE_HZ",
    "apply_cfo",
    "estimate_and_correct_cfo",
    "estimate_cfo_coarse",
    "estimate_cfo_fine",
    "H2_MODES",
    "H2Burst",
    "Hiperlan2Receiver",
    "Hiperlan2Transmitter",
    "mode_params",
    "DATA_CARRIERS",
    "K_MOD",
    "LONG_SEQUENCE",
    "N_CP",
    "N_DATA_CARRIERS",
    "N_FFT",
    "N_PILOT_CARRIERS",
    "OfdmReceiver",
    "OfdmTransmitter",
    "PILOT_CARRIERS",
    "PacketError",
    "Ppdu",
    "PreambleDetector",
    "RATES",
    "RateParams",
    "RxReport",
    "STAGE_SHIFT",
    "StreamingViterbi",
    "fft_radix4_float",
    "radix4_tables",
    "TWIDDLE_BITS",
    "assemble_symbol",
    "coded_length",
    "conv_encode",
    "deinterleave",
    "depuncture",
    "descramble_bits",
    "digit_reverse4",
    "fft64_fixed",
    "fft64_fixed_complex",
    "fft64_float",
    "fft64_tables",
    "full_preamble",
    "hard_demap",
    "hard_to_soft",
    "interleave",
    "long_preamble",
    "long_training_bins",
    "map_bits",
    "parse_signal_field",
    "pilot_polarity_sequence",
    "puncture",
    "puncture_pattern",
    "rate_params",
    "scramble_bits",
    "scrambler_sequence",
    "short_preamble",
    "signal_field_bits",
    "soft_demap",
    "viterbi_decode",
]

"""802.11a PLCP preamble: generation and detection.

The short preamble (10 repetitions of a 16-sample symbol) drives the
paper's 'preamble detection correlator' (configuration 2a in Fig. 10);
the long preamble (two full 64-sample training symbols) provides fine
timing and the channel estimate.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.ofdm.params import N_FFT
from repro.telemetry.probes import get_probes

#: Short-training-symbol frequency pattern (sec. 17.3.3): values on
#: carriers -24..24 in steps of 4, scaled by sqrt(13/6).
_SHORT_CARRIERS = {
    -24: 1 + 1j, -20: -1 - 1j, -16: 1 + 1j, -12: -1 - 1j, -8: -1 - 1j,
    -4: 1 + 1j, 4: -1 - 1j, 8: -1 - 1j, 12: 1 + 1j, 16: 1 + 1j,
    20: 1 + 1j, 24: 1 + 1j,
}

#: Long-training-symbol pattern on carriers -26..26 (DC = 0).
LONG_SEQUENCE = np.array(
    [1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1,
     1, -1, 1, 1, 1, 1,
     0,
     1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1,
     -1, 1, -1, 1, 1, 1, 1], dtype=np.complex128)

SHORT_PREAMBLE_SAMPLES = 160
LONG_PREAMBLE_SAMPLES = 160     # 32-sample GI2 + 2 x 64
PREAMBLE_SAMPLES = SHORT_PREAMBLE_SAMPLES + LONG_PREAMBLE_SAMPLES


def _freq_to_bins(carrier_values: dict) -> np.ndarray:
    bins = np.zeros(N_FFT, dtype=np.complex128)
    for k, v in carrier_values.items():
        bins[k % N_FFT] = v
    return bins


@lru_cache(maxsize=1)
def long_training_bins() -> np.ndarray:
    """The 64 FFT bins of one long training symbol."""
    values = {k: LONG_SEQUENCE[k + 26]
              for k in range(-26, 27) if k != 0}
    return _freq_to_bins(values)


def short_preamble() -> np.ndarray:
    """The 160-sample short training sequence (t1..t10).

    Only carriers at multiples of 4 are occupied, so the time symbol is
    16-sample periodic; the sqrt(13/6) factor equalises its power with
    the 52-carrier data symbols.
    """
    bins = _freq_to_bins({k: np.sqrt(13.0 / 6.0) * v
                          for k, v in _SHORT_CARRIERS.items()})
    period = np.fft.ifft(bins) * np.sqrt(N_FFT)
    return np.tile(period[:16], 10)


def long_preamble() -> np.ndarray:
    """The 160-sample long training sequence (GI2 + T1 + T2)."""
    sym = np.fft.ifft(long_training_bins()) * np.sqrt(N_FFT)
    return np.concatenate([sym[-32:], sym, sym])


def full_preamble() -> np.ndarray:
    """Short + long preamble (320 samples)."""
    return np.concatenate([short_preamble(), long_preamble()])


class PreambleDetector:
    """Two-stage packet detection.

    Stage 1 (the array's correlator of config 2a): delay-and-correlate
    with lag 16 over the periodic short preamble; a plateau of high
    normalised autocorrelation marks a packet.  Stage 2: cross-correlate
    with the known long training symbol for sample-accurate timing.
    """

    def __init__(self, *, threshold: float = 0.75, window: int = 48):
        self.threshold = threshold
        self.window = window

    def coarse_detect(self, rx: np.ndarray) -> int:
        """First index where the lag-16 autocorrelation plateau starts;
        -1 if no packet is detected."""
        r = np.asarray(rx, dtype=np.complex128)
        if r.size < self.window + 16:
            return -1
        lag = r[16:] * np.conj(r[:-16])
        power = np.abs(r[16:]) ** 2
        w = self.window
        kernel = np.ones(w)
        corr = np.convolve(lag, kernel, mode="valid")
        norm = np.convolve(power, kernel, mode="valid")
        metric = np.abs(corr) / np.maximum(norm, 1e-12)
        above = np.nonzero(metric > self.threshold)[0]
        probes = get_probes()
        if probes.enabled:
            # the config-2a correlator quality: plateau height decides
            # packet detection
            probes.record("ofdm.preamble.metric", float(metric.max()),
                          unit="ratio")
        return int(above[0]) if above.size else -1

    def fine_timing(self, rx: np.ndarray, coarse: int) -> int:
        """Sample index of the first long training symbol (start of T1).

        Cross-correlates with the known 64-sample long symbol in a
        window after the coarse hit.
        """
        r = np.asarray(rx, dtype=np.complex128)
        ref = np.fft.ifft(long_training_bins()) * np.sqrt(N_FFT)
        lo = max(coarse, 0)
        hi = min(r.size - 2 * N_FFT, lo + 400)
        if hi <= lo:
            return -1
        best, best_val = -1, 0.0
        for n in range(lo, hi):
            seg = r[n:n + N_FFT]
            val = np.abs(np.vdot(ref, seg)) ** 2
            # the two long symbols give two equal peaks 64 apart; take
            # the first by requiring the next-symbol correlation too
            seg2 = r[n + N_FFT:n + 2 * N_FFT]
            val += np.abs(np.vdot(ref, seg2)) ** 2
            if val > best_val:
                best_val = val
                best = n
        return best

    def detect(self, rx: np.ndarray) -> int:
        """Full detection: sample index of T1, or -1."""
        coarse = self.coarse_detect(rx)
        probes = get_probes()
        if coarse < 0:
            if probes.enabled:
                probes.record("ofdm.preamble.detected", 0.0, unit="ratio")
            return -1
        timing = self.fine_timing(rx, coarse)
        if probes.enabled:
            probes.record("ofdm.preamble.detected",
                          1.0 if timing >= 0 else 0.0, unit="ratio")
            if timing >= 0:
                # acquisition time: samples consumed before T1 was found
                probes.record("ofdm.preamble.acquisition_samples",
                              timing, unit="samples")
        return timing

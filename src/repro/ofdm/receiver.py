"""802.11a reference receiver (golden model of the OFDM decoder).

The processing chain of the paper's Fig. 8: framing & synchronisation
(preamble detection), FFT, demodulation and descrambling — here in
floating point as the golden model; the array mappings live in
:mod:`repro.kernels` and :mod:`repro.wlan`.  The Viterbi decoder is the
dedicated-hardware model from :mod:`repro.ofdm.viterbi`.

``use_fixed_fft=True`` routes the FFT through the bit-accurate
fixed-point FFT64 of Fig. 9 to study the 10-bit/scaling precision
budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ofdm.fft import fft64_fixed_complex
from repro.ofdm.impairments import (
    apply_cfo,
    estimate_cfo_coarse,
    estimate_cfo_fine,
)
from repro.ofdm.convcode import conv_encode, depuncture
from repro.ofdm.interleaver import deinterleave
from repro.ofdm.mapping import hard_demap, map_bits, soft_demap
from repro.ofdm.params import (
    DATA_CARRIERS,
    N_CP,
    N_FFT,
    PILOT_CARRIERS,
    PILOT_VALUES,
    pilot_polarity_sequence,
    rate_params,
)
from repro.ofdm.preamble import (
        PreambleDetector,
    long_training_bins,
)
from repro.ofdm.scrambler import scramble_bits
from repro.ofdm.transmitter import (
    DATA_SCRAMBLER_SEED,
    SERVICE_BITS,
    TAIL_BITS,
    parse_signal_field,
)
from repro.ofdm.viterbi import viterbi_decode
from repro.telemetry.probes import ALERT_DEGRADED, get_probes

SYMBOL = N_FFT + N_CP


@dataclass
class RxReport:
    """Diagnostics of one packet decode."""

    timing_index: int = -1
    rate_mbps: Optional[int] = None
    length_bytes: Optional[int] = None
    n_data_symbols: int = 0
    channel: Optional[np.ndarray] = None
    signal_ok: bool = False
    evm: Optional[float] = None
    evm_rms: Optional[float] = None
    evm_per_carrier: Optional[np.ndarray] = None
    viterbi_corrected: int = 0
    cfo_hz: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serializable summary mirroring
        :meth:`repro.xpp.stats.RunStats.to_dict`.

        The 64-bin ``channel`` estimate and the 48-entry
        ``evm_per_carrier`` vector are arrays, not scalars; the
        serialized form keeps only the worst-carrier EVM so campaign
        shards stay bounded.
        """
        worst = float(np.max(self.evm_per_carrier)) \
            if self.evm_per_carrier is not None \
            and len(self.evm_per_carrier) else None
        return {
            "timing_index": self.timing_index,
            "rate_mbps": self.rate_mbps,
            "length_bytes": self.length_bytes,
            "n_data_symbols": self.n_data_symbols,
            "signal_ok": self.signal_ok,
            "evm": self.evm,
            "evm_rms": self.evm_rms,
            "evm_worst_carrier": worst,
            "viterbi_corrected": self.viterbi_corrected,
            "cfo_hz": self.cfo_hz,
        }


class PacketError(Exception):
    """The receiver could not decode a packet."""


class OfdmReceiver:
    """Decodes 802.11a packets from baseband samples."""

    def __init__(self, *, use_fixed_fft: bool = False,
                 input_frac_bits: int = 8, correct_cfo: bool = False,
                 detector: Optional[PreambleDetector] = None):
        self.use_fixed_fft = use_fixed_fft
        self.input_frac_bits = input_frac_bits
        self.correct_cfo = correct_cfo
        self.detector = detector if detector is not None else PreambleDetector()
        self._viterbi_corrected = 0
        self.degraded = False

    def snapshot(self) -> dict:
        """The receiver's persistent mode state, JSON-serializable.

        The packet pipeline itself is stateless — everything per-packet
        is reset by :meth:`receive` — so the snapshot carries only what
        survives between packets: the FFT mode (including a fault-driven
        :meth:`degrade_to_float_fft`), precision and CFO settings.
        """
        return {"use_fixed_fft": self.use_fixed_fft,
                "input_frac_bits": self.input_frac_bits,
                "correct_cfo": self.correct_cfo,
                "degraded": self.degraded}

    @classmethod
    def from_snapshot(cls, d: dict) -> "OfdmReceiver":
        """Rebuild a receiver from :meth:`snapshot` output."""
        rx = cls(use_fixed_fft=bool(d["use_fixed_fft"]),
                 input_frac_bits=int(d["input_frac_bits"]),
                 correct_cfo=bool(d["correct_cfo"]))
        rx.degraded = bool(d["degraded"])
        return rx

    def restore(self, d: dict) -> None:
        """Apply :meth:`snapshot` state to this receiver in place."""
        self.use_fixed_fft = bool(d["use_fixed_fft"])
        self.input_frac_bits = int(d["input_frac_bits"])
        self.correct_cfo = bool(d["correct_cfo"])
        self.degraded = bool(d["degraded"])

    def degrade_to_float_fft(self, *, reason: str = "") -> None:
        """Fall back from the array's fixed-point FFT to the floating-
        point golden model.

        Recovery policies call this when the FFT64 configuration cannot
        be kept on the array (fault quarantine ate its RAM-PAEs): the
        DSP carries the FFT in software at higher power, the link stays
        up, and an :data:`ALERT_DEGRADED` alert records the mode switch.
        """
        self.degraded = True
        if self.use_fixed_fft:
            self.use_fixed_fft = False
            probes = get_probes()
            if probes.enabled:
                probes.alert(ALERT_DEGRADED, "ofdm.fft", value=1.0,
                             message="fixed-point FFT64 unavailable; "
                                     "using floating-point fallback"
                                     + (f": {reason}" if reason else ""),
                             once=False)

    # -- pipeline stages ---------------------------------------------------------

    def _fft(self, samples: np.ndarray) -> np.ndarray:
        if self.use_fixed_fft:
            return fft64_fixed_complex(samples,
                                       frac_bits=self.input_frac_bits) \
                / np.sqrt(N_FFT)
        return np.fft.fft(samples) / np.sqrt(N_FFT)

    def estimate_channel(self, rx: np.ndarray, t1: int) -> np.ndarray:
        """Average the two long training symbols and divide by the known
        pattern; returns the 64-bin channel estimate."""
        sym1 = self._fft(rx[t1:t1 + N_FFT])
        sym2 = self._fft(rx[t1 + N_FFT:t1 + 2 * N_FFT])
        ref = long_training_bins()
        h = np.zeros(N_FFT, dtype=np.complex128)
        used = ref != 0
        h[used] = (sym1[used] + sym2[used]) / (2 * ref[used])
        return h

    def _equalized_symbol(self, rx: np.ndarray, start: int,
                          h: np.ndarray, polarity: int) -> np.ndarray:
        """FFT + equalise one symbol; returns the 48 data points after
        pilot-based common phase correction."""
        bins = self._fft(rx[start + N_CP:start + SYMBOL])
        used = h != 0
        eq = np.zeros(N_FFT, dtype=np.complex128)
        eq[used] = bins[used] / h[used]
        # common phase error from the 4 pilots
        pilot_ref = polarity * np.array(PILOT_VALUES, dtype=np.complex128)
        pilot_rx = np.array([eq[k % N_FFT] for k in PILOT_CARRIERS])
        cpe = np.vdot(pilot_ref, pilot_rx)
        phase = cpe / np.abs(cpe) if np.abs(cpe) > 0 else 1.0
        eq = eq * np.conj(phase)
        return np.array([eq[k % N_FFT] for k in DATA_CARRIERS])

    def _decode_bits(self, soft: np.ndarray, rp, *,
                     terminated: bool = True) -> np.ndarray:
        """Deinterleave, depuncture and Viterbi-decode soft values.

        ``terminated=False`` for the DATA field: the pad bits after the
        tail are scrambled, so the trellis does not end in state 0.
        """
        deint = deinterleave(soft, rp.n_cbps, rp.n_bpsc)
        mother = depuncture(deint, rp.coding_rate)
        decoded = viterbi_decode(mother, terminated=terminated)
        if get_probes().enabled:
            # corrected-error count: re-encode the decision and compare
            # to the hard decisions of the received mother stream
            # (zeros are depuncture erasures — no information)
            reenc = conv_encode(decoded)
            known = mother != 0.0
            hard = (mother < 0.0).astype(np.int64)
            self._viterbi_corrected += int(
                np.sum(hard[known] != reenc[:mother.size][known]))
        return decoded

    # -- packet decode -----------------------------------------------------------

    def receive(self, rx: np.ndarray, *,
                expected_rate: Optional[int] = None) -> tuple:
        """Detect and decode one packet; returns ``(psdu_bits, report)``.

        Raises :class:`PacketError` if no preamble is found or the
        SIGNAL field is invalid.
        """
        rx = np.asarray(rx, dtype=np.complex128)
        report = RxReport()
        self._viterbi_corrected = 0
        coarse_idx = self.detector.coarse_detect(rx)
        if coarse_idx < 0:
            raise PacketError("no preamble detected")
        cfo = 0.0
        if self.correct_cfo:
            # coarse CFO from the periodic short preamble, before fine
            # timing (large offsets decorrelate the timing correlator)
            seg = rx[coarse_idx:coarse_idx + 160]
            if seg.size >= 48:
                cfo = estimate_cfo_coarse(seg)
                rx = apply_cfo(rx, -cfo)
        t1 = self.detector.fine_timing(rx, coarse_idx)
        if t1 < 0:
            raise PacketError("no preamble detected")
        if self.correct_cfo and t1 + 2 * N_FFT <= rx.size:
            fine = estimate_cfo_fine(rx[t1:t1 + 2 * N_FFT])
            rx = apply_cfo(rx, -fine)
            cfo += fine
        report.cfo_hz = cfo
        report.timing_index = t1
        h = self.estimate_channel(rx, t1)
        report.channel = h

        polarity = pilot_polarity_sequence(2048)

        # SIGNAL symbol follows the two long training symbols
        sig_start = t1 + 2 * N_FFT
        sig_rp = rate_params(6)
        sig_points = self._equalized_symbol(rx, sig_start, h, polarity[0])
        sig_soft = soft_demap(sig_points, sig_rp.modulation)
        sig_bits = self._decode_bits(sig_soft, sig_rp)
        try:
            rate, length = parse_signal_field(sig_bits)
            report.signal_ok = True
        except ValueError as exc:
            if expected_rate is None:
                raise PacketError(f"SIGNAL decode failed: {exc}") from exc
            rate, length = expected_rate, None
        if expected_rate is not None:
            rate = expected_rate
        report.rate_mbps = rate
        report.length_bytes = length
        rp = rate_params(rate)

        if length is not None:
            n_payload = SERVICE_BITS + 8 * length + TAIL_BITS
            n_symbols = -(-n_payload // rp.n_dbps)
        else:
            remaining = rx.size - (sig_start + SYMBOL)
            n_symbols = remaining // SYMBOL
        report.n_data_symbols = n_symbols
        if n_symbols <= 0:
            raise PacketError("no data symbols in capture")

        soft_all = []
        evm_acc = []
        n_data = len(DATA_CARRIERS)
        err_power = np.zeros(n_data)
        ref_power = np.zeros(n_data)
        for i in range(n_symbols):
            start = sig_start + SYMBOL * (1 + i)
            if start + SYMBOL > rx.size:
                raise PacketError("capture truncated mid-packet")
            points = self._equalized_symbol(rx, start, h, polarity[1 + i])
            soft_all.append(soft_demap(points, rp.modulation))
            evm_acc.append(np.mean(np.abs(points) ** 2))
            # decision-directed error vector: distance to the nearest
            # constellation point, per data carrier
            ref = map_bits(hard_demap(points, rp.modulation),
                           rp.modulation)
            err_power += np.abs(points - ref) ** 2
            ref_power += np.abs(ref) ** 2
        report.evm = float(np.mean(evm_acc)) if evm_acc else None
        if n_symbols > 0:
            safe_ref = np.maximum(ref_power, 1e-300)
            report.evm_per_carrier = np.sqrt(err_power / safe_ref)
            report.evm_rms = float(
                np.sqrt(err_power.sum() / safe_ref.sum()))

        scrambled = self._decode_bits(np.concatenate(soft_all), rp,
                                      terminated=False)
        data = scramble_bits(scrambled, DATA_SCRAMBLER_SEED)
        report.viterbi_corrected = self._viterbi_corrected
        probes = get_probes()
        if probes.enabled:
            if report.evm_rms is not None:
                probes.record("ofdm.evm_rms", report.evm_rms, unit="ratio")
                for ev in report.evm_per_carrier:
                    probes.record("ofdm.evm_carrier", float(ev),
                                  unit="ratio")
            probes.record("ofdm.viterbi.corrected",
                          report.viterbi_corrected, unit="bits")
        if length is not None:
            psdu = data[SERVICE_BITS:SERVICE_BITS + 8 * length]
        else:
            psdu = data[SERVICE_BITS:]
        return psdu, report

"""IEEE 802.11a / HIPERLAN-2 OFDM physical-layer constants.

Symbols are spread over 48 low-bandwidth data carriers plus 4 pilot
carriers of a 64-point FFT; the standard defines modulation schemes and
code rates for data rates from 6 to 54 Mbit/s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: FFT size and cyclic prefix (samples at 20 MHz).
N_FFT = 64
N_CP = 16
SYMBOL_SAMPLES = N_FFT + N_CP       # 80
SAMPLE_RATE_HZ = 20_000_000
SYMBOL_DURATION_S = SYMBOL_SAMPLES / SAMPLE_RATE_HZ    # 4 us

#: Carrier allocation: 48 data + 4 pilots out of 52 used carriers.
N_DATA_CARRIERS = 48
N_PILOT_CARRIERS = 4
PILOT_CARRIERS = (-21, -7, 7, 21)
#: Base pilot polarities on carriers (-21, -7, 7, 21).
PILOT_VALUES = (1, 1, 1, -1)

#: Logical carrier indices -26..-1, 1..26 excluding pilots, in the order
#: data bits are mapped (802.11a sec. 17.3.5.9).
DATA_CARRIERS = tuple(k for k in list(range(-26, 0)) + list(range(1, 27))
                      if k not in PILOT_CARRIERS)

assert len(DATA_CARRIERS) == N_DATA_CARRIERS


@dataclass(frozen=True)
class RateParams:
    """One entry of the 802.11a rate table."""

    rate_mbps: int
    modulation: str         # 'BPSK' | 'QPSK' | '16QAM' | '64QAM'
    coding_rate: str        # '1/2' | '2/3' | '3/4'
    n_bpsc: int             # coded bits per subcarrier
    n_cbps: int             # coded bits per OFDM symbol
    n_dbps: int             # data bits per OFDM symbol

    @property
    def signal_rate_bits(self) -> tuple:
        """The 4-bit RATE field of the SIGNAL symbol (17.3.4.1)."""
        return _SIGNAL_RATE_BITS[self.rate_mbps]


_SIGNAL_RATE_BITS = {
    6: (1, 1, 0, 1), 9: (1, 1, 1, 1), 12: (0, 1, 0, 1), 18: (0, 1, 1, 1),
    24: (1, 0, 0, 1), 36: (1, 0, 1, 1), 48: (0, 0, 0, 1), 54: (0, 0, 1, 1),
}

#: The eight mandatory/optional 802.11a modes (6..54 Mbit/s).
RATES = {
    6: RateParams(6, "BPSK", "1/2", 1, 48, 24),
    9: RateParams(9, "BPSK", "3/4", 1, 48, 36),
    12: RateParams(12, "QPSK", "1/2", 2, 96, 48),
    18: RateParams(18, "QPSK", "3/4", 2, 96, 72),
    24: RateParams(24, "16QAM", "1/2", 4, 192, 96),
    36: RateParams(36, "16QAM", "3/4", 4, 192, 144),
    48: RateParams(48, "64QAM", "2/3", 6, 288, 192),
    54: RateParams(54, "64QAM", "3/4", 6, 288, 216),
}


def rate_params(rate_mbps: int) -> RateParams:
    """Look up the rate table; raises on a non-802.11a rate."""
    try:
        return RATES[rate_mbps]
    except KeyError:
        raise ValueError(
            f"unsupported 802.11a rate {rate_mbps} Mbit/s; "
            f"choose one of {sorted(RATES)}") from None


def carrier_to_fft_bin(k: int) -> int:
    """Map a logical carrier index (-26..26) to an FFT bin (0..63)."""
    if not -26 <= k <= 26 or k == 0:
        raise ValueError(f"carrier index out of range: {k}")
    return k % N_FFT


def pilot_polarity_sequence(n_symbols: int) -> np.ndarray:
    """The pilot polarity scrambler p_0, p_1, ... (x^7 + x^4 + 1, seed all
    ones), one +-1 value per OFDM symbol including SIGNAL (index 0)."""
    state = 0x7F
    out = np.empty(n_symbols, dtype=np.int64)
    for i in range(n_symbols):
        bit = ((state >> 6) ^ (state >> 3)) & 1
        state = ((state << 1) | bit) & 0x7F
        out[i] = 1 - 2 * bit
    return out

"""HIPERLAN/2 physical layer (the paper's second WLAN standard).

HIPERLAN/2 shares 802.11a's OFDM numerology (64-point FFT, 48 data + 4
pilot carriers, 20 MHz, 800 ns guard) but differs in the link
adaptation table — it has a 16-QAM rate-9/16 mode at 27 Mbit/s and no
48 Mbit/s mode — and in the burst structure: the PHY mode is signalled
in the MAC's frame channel, so data bursts carry no SIGNAL symbol.

Substitution notes: the ETSI broadcast/uplink burst preambles are
approximated by the (structurally identical) 802.11a training sequence;
the 9/16 puncturing positions follow the code structure (9 input bits
-> 16 kept of 18 mother bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ofdm.convcode import depuncture
from repro.ofdm.interleaver import deinterleave
from repro.ofdm.mapping import soft_demap
from repro.ofdm.params import N_CP, N_FFT, RateParams, \
    pilot_polarity_sequence
from repro.ofdm.preamble import full_preamble
from repro.ofdm.receiver import OfdmReceiver, PacketError
from repro.ofdm.scrambler import scramble_bits
from repro.ofdm.transmitter import _encode_symbols
from repro.ofdm.viterbi import viterbi_decode

#: The seven HIPERLAN/2 PHY modes (ETSI TS 101 475 link adaptation).
H2_MODES = {
    1: RateParams(6, "BPSK", "1/2", 1, 48, 24),
    2: RateParams(9, "BPSK", "3/4", 1, 48, 36),
    3: RateParams(12, "QPSK", "1/2", 2, 96, 48),
    4: RateParams(18, "QPSK", "3/4", 2, 96, 72),
    5: RateParams(27, "16QAM", "9/16", 4, 192, 108),
    6: RateParams(36, "16QAM", "3/4", 4, 192, 144),
    7: RateParams(54, "64QAM", "3/4", 6, 288, 216),
}

#: HIPERLAN/2 scrambler seed (frame-synchronous 7-bit init).
H2_SCRAMBLER_SEED = 0x5A

TAIL_BITS = 6
SYMBOL = N_FFT + N_CP


def mode_params(mode: int) -> RateParams:
    try:
        return H2_MODES[mode]
    except KeyError:
        raise ValueError(
            f"unknown HIPERLAN/2 mode {mode}; choose 1..7") from None


@dataclass
class H2Burst:
    """A transmitted HIPERLAN/2 burst."""

    samples: np.ndarray
    mode: int
    pdu_bits: np.ndarray
    n_symbols: int


class Hiperlan2Transmitter:
    """Builds downlink data bursts: preamble + coded PDU train.

    The PHY mode is known to the receiver from the MAC frame channel,
    so the burst has no SIGNAL symbol.
    """

    def __init__(self, mode: int):
        self.mode = mode
        self.params = mode_params(mode)

    def transmit(self, pdu_bits: np.ndarray) -> H2Burst:
        pdu = np.asarray(pdu_bits, dtype=np.int64)
        if np.any((pdu != 0) & (pdu != 1)):
            raise ValueError("bits must be 0/1")
        rp = self.params
        n_payload = pdu.size + TAIL_BITS
        n_symbols = -(-n_payload // rp.n_dbps)
        padded = np.zeros(n_symbols * rp.n_dbps, dtype=np.int64)
        padded[:pdu.size] = pdu
        scrambled = scramble_bits(padded, H2_SCRAMBLER_SEED)
        scrambled[pdu.size:pdu.size + TAIL_BITS] = 0    # tail stays zero
        data = _encode_symbols(scrambled, rp, 1)
        samples = np.concatenate([full_preamble(), data])
        return H2Burst(samples=samples, mode=self.mode, pdu_bits=pdu,
                       n_symbols=n_symbols)


class Hiperlan2Receiver(OfdmReceiver):
    """Decodes HIPERLAN/2 bursts with an a-priori PHY mode."""

    def receive_burst(self, rx: np.ndarray, mode: int,
                      n_bits: Optional[int] = None) -> tuple:
        """Decode one burst; returns ``(pdu_bits, report)``.

        ``n_bits`` truncates the descrambled payload (PDU length comes
        from the MAC in a real system).
        """
        rx = np.asarray(rx, dtype=np.complex128)
        rp = mode_params(mode)
        from repro.ofdm.receiver import RxReport
        report = RxReport()
        t1 = self.detector.detect(rx)
        if t1 < 0:
            raise PacketError("no preamble detected")
        report.timing_index = t1
        report.rate_mbps = rp.rate_mbps
        h = self.estimate_channel(rx, t1)
        report.channel = h

        polarity = pilot_polarity_sequence(2048)
        data_start = t1 + 2 * N_FFT
        n_symbols = (rx.size - data_start) // SYMBOL
        if n_bits is not None:
            needed = -(-(n_bits + TAIL_BITS) // rp.n_dbps)
            n_symbols = min(n_symbols, needed)
        if n_symbols <= 0:
            raise PacketError("no data symbols in capture")
        report.n_data_symbols = n_symbols

        soft_all = []
        for i in range(n_symbols):
            start = data_start + SYMBOL * i
            points = self._equalized_symbol(rx, start, h, polarity[1 + i])
            soft_all.append(soft_demap(points, rp.modulation))
        deint = deinterleave(np.concatenate(soft_all), rp.n_cbps, rp.n_bpsc)
        mother = depuncture(deint, rp.coding_rate)
        decoded = viterbi_decode(mother, terminated=False)
        pdu = scramble_bits(decoded, H2_SCRAMBLER_SEED)
        if n_bits is not None:
            pdu = pdu[:n_bits]
        return pdu, report

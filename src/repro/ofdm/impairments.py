"""Front-end impairments and their estimators.

Real terminals see a carrier frequency offset (CFO) between transmitter
and receiver oscillators (up to ±20 ppm each at 5.2 GHz ≈ ±200 kHz).
The 802.11a preamble is designed for estimating it: the short training
symbols repeat every 16 samples (coarse CFO, wide range) and the long
training symbols every 64 samples (fine CFO, high accuracy).

These functions provide the impairment model and the standard
delay-and-correlate estimators the receiver uses.
"""

from __future__ import annotations


import numpy as np

from repro.ofdm.params import N_FFT, SAMPLE_RATE_HZ

#: Unambiguous estimation ranges of the two preamble stages.
COARSE_CFO_RANGE_HZ = SAMPLE_RATE_HZ / (2 * 16)      # +-625 kHz
FINE_CFO_RANGE_HZ = SAMPLE_RATE_HZ / (2 * N_FFT)     # +-156.25 kHz


def apply_cfo(signal: np.ndarray, cfo_hz: float,
              sample_rate_hz: float = SAMPLE_RATE_HZ,
              phase0: float = 0.0) -> np.ndarray:
    """Rotate a baseband signal by a carrier frequency offset."""
    s = np.asarray(signal, dtype=np.complex128)
    n = np.arange(s.size)
    return s * np.exp(1j * (2 * np.pi * cfo_hz * n / sample_rate_hz
                            + phase0))


def _lag_estimate(segment: np.ndarray, lag: int,
                  sample_rate_hz: float) -> float:
    """CFO from the phase of the lag-autocorrelation of a periodic
    training segment."""
    seg = np.asarray(segment, dtype=np.complex128)
    if seg.size < 2 * lag:
        raise ValueError(f"need at least {2 * lag} samples")
    corr = np.vdot(seg[:-lag], seg[lag:])
    return float(np.angle(corr) * sample_rate_hz / (2 * np.pi * lag))


def estimate_cfo_coarse(short_preamble_rx: np.ndarray,
                        sample_rate_hz: float = SAMPLE_RATE_HZ) -> float:
    """Coarse CFO from the 16-sample periodicity of the short preamble.

    Unambiguous to ±625 kHz; feed ~64+ samples of the received short
    training sequence.
    """
    return _lag_estimate(short_preamble_rx, 16, sample_rate_hz)


def estimate_cfo_fine(long_preamble_rx: np.ndarray,
                      sample_rate_hz: float = SAMPLE_RATE_HZ) -> float:
    """Fine CFO from the two 64-sample long training symbols.

    Unambiguous to ±156.25 kHz (apply after coarse correction); feed the
    128 samples of T1+T2.
    """
    return _lag_estimate(long_preamble_rx, N_FFT, sample_rate_hz)


def estimate_and_correct_cfo(rx: np.ndarray, t1_index: int,
                             sample_rate_hz: float = SAMPLE_RATE_HZ
                             ) -> tuple:
    """Two-stage estimate from a detected packet; returns the corrected
    capture and the estimated CFO in Hz.

    ``t1_index`` is the start of the first long training symbol (the
    output of the preamble detector); the short preamble precedes it by
    192 samples (160 + 32-sample GI2).
    """
    rx = np.asarray(rx, dtype=np.complex128)
    coarse = 0.0
    short_start = t1_index - 192
    if short_start >= 0:
        seg = rx[short_start:short_start + 160]
        if seg.size >= 48:
            coarse = estimate_cfo_coarse(seg, sample_rate_hz)
    corrected = apply_cfo(rx, -coarse, sample_rate_hz)
    long_seg = corrected[t1_index:t1_index + 2 * N_FFT]
    fine = estimate_cfo_fine(long_seg, sample_rate_hz) \
        if long_seg.size == 2 * N_FFT else 0.0
    corrected = apply_cfo(corrected, -fine, sample_rate_hz)
    return corrected, coarse + fine

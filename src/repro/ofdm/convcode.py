"""Convolutional encoder and puncturing (802.11a sec. 17.3.5.5).

The industry-standard rate-1/2, constraint-length-7 code with generator
polynomials g0 = 133o and g1 = 171o; rates 2/3 and 3/4 are obtained by
puncturing.
"""

from __future__ import annotations

import numpy as np

K = 7
G0 = 0o133
G1 = 0o171

#: Puncturing patterns over (A, B) output pairs; 1 = transmit.
#: 802.11a sec. 17.3.5.6: rate 3/4 keeps A1 B1 A2 . . B3; rate 2/3 keeps
#: A1 B1 A2.  Rate 9/16 is HIPERLAN/2's extra mode (16-QAM, 27 Mbit/s):
#: 9 input bits -> 18 mother bits, 2 punctured.
_PUNCTURE = {
    "1/2": (np.array([1]), np.array([1])),
    "2/3": (np.array([1, 1]), np.array([1, 0])),
    "3/4": (np.array([1, 1, 0]), np.array([1, 0, 1])),
    "9/16": (np.array([1, 1, 1, 1, 1, 1, 1, 1, 1]),
             np.array([1, 1, 1, 1, 1, 1, 1, 0, 0])),
}


def puncture_pattern(coding_rate: str) -> tuple:
    try:
        return _PUNCTURE[coding_rate]
    except KeyError:
        raise ValueError(f"unsupported coding rate {coding_rate!r}; "
                         f"choose one of {sorted(_PUNCTURE)}") from None


def _parity(x: int) -> int:
    return bin(x).count("1") & 1


#: Precomputed output pair for (state, input-bit).
_ENC_TABLE = np.empty((64, 2, 2), dtype=np.int64)
for _s in range(64):
    for _b in range(2):
        _reg = (_b << 6) | _s
        _ENC_TABLE[_s, _b, 0] = _parity(_reg & G0)
        _ENC_TABLE[_s, _b, 1] = _parity(_reg & G1)


def conv_encode(bits: np.ndarray) -> np.ndarray:
    """Rate-1/2 mother code: returns interleaved (A0, B0, A1, B1, ...).

    The encoder starts in the all-zero state; callers append K-1 = 6 tail
    zeros to terminate the trellis (the transmitter does this).
    """
    b = np.asarray(bits, dtype=np.int64)
    out = np.empty(2 * b.size, dtype=np.int64)
    state = 0
    for i, bit in enumerate(b):
        out[2 * i] = _ENC_TABLE[state, bit, 0]
        out[2 * i + 1] = _ENC_TABLE[state, bit, 1]
        state = (state >> 1) | (bit << 5)
    return out


def puncture(coded: np.ndarray, coding_rate: str) -> np.ndarray:
    """Drop coded bits according to the rate's puncturing pattern."""
    c = np.asarray(coded, dtype=np.int64)
    if c.size % 2:
        raise ValueError("mother-coded stream must be even length")
    pa, pb = puncture_pattern(coding_rate)
    a = c[0::2]
    b = c[1::2]
    period = pa.size
    n_pairs = a.size
    keep_a = np.tile(pa, -(-n_pairs // period))[:n_pairs].astype(bool)
    keep_b = np.tile(pb, -(-n_pairs // period))[:n_pairs].astype(bool)
    out = np.empty(int(keep_a.sum() + keep_b.sum()), dtype=np.int64)
    # re-interleave kept bits in transmission order A_i, B_i
    pos = 0
    for i in range(n_pairs):
        if keep_a[i]:
            out[pos] = a[i]
            pos += 1
        if keep_b[i]:
            out[pos] = b[i]
            pos += 1
    return out


def depuncture(received: np.ndarray, coding_rate: str,
               erasure: float = 0.0) -> np.ndarray:
    """Re-insert erasures at punctured positions.

    ``received`` holds soft values (sign = bit decision); punctured
    positions get ``erasure`` (no information).  Returns the soft stream
    aligned to the mother code (A0, B0, A1, B1, ...).
    """
    r = np.asarray(received, dtype=np.float64)
    pa, pb = puncture_pattern(coding_rate)
    period = pa.size
    kept_per_period = int(pa.sum() + pb.sum())
    if r.size % kept_per_period:
        raise ValueError(
            f"received length {r.size} not a multiple of the rate "
            f"{coding_rate} period ({kept_per_period})")
    n_periods = r.size // kept_per_period
    n_pairs = n_periods * period
    out = np.full(2 * n_pairs, erasure, dtype=np.float64)
    pos = 0
    for i in range(n_pairs):
        if pa[i % period]:
            out[2 * i] = r[pos]
            pos += 1
        if pb[i % period]:
            out[2 * i + 1] = r[pos]
            pos += 1
    return out


def coded_length(n_bits: int, coding_rate: str) -> int:
    """Punctured output length for ``n_bits`` of encoder input."""
    pa, pb = puncture_pattern(coding_rate)
    period = pa.size
    kept = int(pa.sum() + pb.sum())
    if n_bits % period:
        raise ValueError(f"input length must be a multiple of {period}")
    return n_bits // period * kept

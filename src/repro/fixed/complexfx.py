"""Complex fixed-point helpers.

The array kernels carry complex samples as separate integer I/Q words
(12 bits each in the rake receiver, 10 bits into the FFT64).  These
helpers implement the complex multiply/accumulate the paper's kernels are
built from, with explicit wrap behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.fixed.word import WORD_BITS, from_fixed, to_fixed, wrap


def cmul(a_re, a_im, b_re, b_im, *, shift: int = 0, bits: int = WORD_BITS):
    """Complex multiply on integer I/Q words.

    Returns ``(re, im)`` of ``(a_re + j a_im) * (b_re + j b_im)``,
    arithmetic-shifted right by ``shift`` and wrapped to ``bits``.
    Accepts ints or NumPy arrays.
    """
    re = a_re * b_re - a_im * b_im
    im = a_re * b_im + a_im * b_re
    if shift:
        re = re >> shift
        im = im >> shift
    return wrap(re, bits), wrap(im, bits)


def cmac(acc_re, acc_im, a_re, a_im, b_re, b_im, *, shift: int = 0,
         bits: int = WORD_BITS):
    """Complex multiply-accumulate: ``acc + a * b`` with wrap to ``bits``."""
    p_re, p_im = cmul(a_re, a_im, b_re, b_im, shift=shift, bits=bits)
    return wrap(acc_re + p_re, bits), wrap(acc_im + p_im, bits)


def complex_to_fixed(samples, frac_bits: int, bits: int = WORD_BITS):
    """Quantise a complex float array to integer ``(re, im)`` arrays."""
    arr = np.asarray(samples, dtype=np.complex128)
    re = to_fixed(arr.real, frac_bits, bits)
    im = to_fixed(arr.imag, frac_bits, bits)
    return re, im


def complex_from_fixed(re, im, frac_bits: int):
    """Integer ``(re, im)`` arrays back to a complex float array."""
    return from_fixed(np.asarray(re), frac_bits) + \
        1j * from_fixed(np.asarray(im), frac_bits)


def quantize_complex(samples, frac_bits: int, bits: int = WORD_BITS):
    """Round-trip complex floats through the fixed grid (quantisation noise
    model for ADC / datapath width studies)."""
    re, im = complex_to_fixed(samples, frac_bits, bits)
    return complex_from_fixed(re, im, frac_bits)


def pack_complex(re: int, im: int, half_bits: int = 12) -> int:
    """Pack signed I/Q words into one array word, I in the high half.

    This is the 'bit packed input data' format of the paper's Fig. 5: two
    12-bit components share one 24-bit token.
    """
    mask = (1 << half_bits) - 1
    return ((int(re) & mask) << half_bits) | (int(im) & mask)


def unpack_complex(word: int, half_bits: int = 12) -> tuple:
    """Unpack an array word into signed ``(re, im)`` components."""
    mask = (1 << half_bits) - 1
    sign = 1 << (half_bits - 1)
    im = int(word) & mask
    re = (int(word) >> half_bits) & mask
    if re >= sign:
        re -= mask + 1
    if im >= sign:
        im -= mask + 1
    return re, im


def pack_array(samples, half_bits: int = 12):
    """Vectorised :func:`pack_complex` over integer ``(re, im)`` arrays or a
    complex float array already on the integer grid."""
    arr = np.asarray(samples)
    if np.iscomplexobj(arr):
        re = arr.real.astype(np.int64)
        im = arr.imag.astype(np.int64)
    else:
        raise TypeError("pack_array expects a complex array; "
                        "use pack_complex for scalar pairs")
    mask = (1 << half_bits) - 1
    return (((re & mask) << half_bits) | (im & mask)).astype(np.int64)


def unpack_array(words, half_bits: int = 12):
    """Vectorised :func:`unpack_complex`: words -> complex int array."""
    w = np.asarray(words, dtype=np.int64)
    mask = (1 << half_bits) - 1
    sign = 1 << (half_bits - 1)
    im = w & mask
    re = (w >> half_bits) & mask
    re = np.where(re >= sign, re - (mask + 1), re)
    im = np.where(im >= sign, im - (mask + 1), im)
    return re + 1j * im

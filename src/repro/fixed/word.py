"""Two's-complement word arithmetic.

All values are plain Python ints (or NumPy integer arrays); the functions
here fold results back into an ``n``-bit two's-complement range the way the
XPP's 24-bit datapath does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Native word width of the XPP-64A ALU-PAE datapath.
WORD_BITS = 24


def min_value(bits: int) -> int:
    """Smallest representable value of an ``bits``-bit signed word."""
    _check_bits(bits)
    return -(1 << (bits - 1))


def max_value(bits: int) -> int:
    """Largest representable value of an ``bits``-bit signed word."""
    _check_bits(bits)
    return (1 << (bits - 1)) - 1


def bit_range(bits: int) -> tuple[int, int]:
    """Return ``(min, max)`` of an ``bits``-bit signed word."""
    return min_value(bits), max_value(bits)


def wrap(value, bits: int = WORD_BITS):
    """Fold ``value`` into ``bits``-bit two's complement (modulo wrap).

    Accepts ints or NumPy arrays.  This models the default overflow
    behaviour of the array datapath.
    """
    _check_bits(bits)
    mask = (1 << bits) - 1
    sign = 1 << (bits - 1)
    if isinstance(value, np.ndarray):
        if value.dtype.kind in "iu" and bits <= 62:
            # int64-native fast path: the mask fits in an int64, so the
            # fold stays in machine integers instead of object arrays
            v = value.astype(np.int64) & np.int64(mask)
            return np.where(v >= sign, v - (mask + 1), v)
        v = value.astype(object) & mask
        return np.where(v >= sign, v - (mask + 1), v).astype(np.int64)
    v = int(value) & mask
    return v - (mask + 1) if v >= sign else v


def saturate(value, bits: int = WORD_BITS):
    """Clamp ``value`` into the ``bits``-bit signed range.

    Accepts ints or NumPy arrays.  Models the saturating ALU modes used
    where overflow must not fold the sign (e.g. accumulators).
    """
    lo, hi = bit_range(bits)
    if isinstance(value, np.ndarray):
        return np.clip(value, lo, hi)
    return max(lo, min(hi, int(value)))


def to_fixed(value, frac_bits: int, bits: int = WORD_BITS, *, sat: bool = True):
    """Quantise a float (or array) to a signed fixed-point integer.

    ``frac_bits`` is the number of fractional bits; rounding is
    round-half-away-from-zero like typical DSP hardware.
    """
    scaled = np.multiply(value, float(1 << frac_bits))
    if isinstance(scaled, np.ndarray):
        q = np.sign(scaled) * np.floor(np.abs(scaled) + 0.5)
        q = q.astype(np.int64)
        return saturate(q, bits) if sat else wrap(q, bits)
    q = int(np.sign(scaled) * np.floor(abs(scaled) + 0.5))
    return saturate(q, bits) if sat else wrap(q, bits)


def from_fixed(value, frac_bits: int):
    """Convert a fixed-point integer (or array) back to float."""
    return np.asarray(value, dtype=np.float64) / float(1 << frac_bits) \
        if isinstance(value, np.ndarray) else float(value) / float(1 << frac_bits)


def rshift_round(value, amount: int):
    """Arithmetic right shift with round-half-up (DSP rounding shift).

    Adds half an LSB before shifting, removing the toward-minus-infinity
    bias of a plain ``>>``.  Accepts ints or NumPy integer arrays;
    ``amount`` of 0 is the identity.
    """
    if amount < 0:
        raise ValueError("rounding shift amount must be >= 0")
    if amount == 0:
        return value
    half = 1 << (amount - 1)
    return (value + half) >> amount


@dataclass(frozen=True)
class FixedFormat:
    """A signed fixed-point format: total width and fractional bits.

    ``FixedFormat(12, 10)`` is the 12-bit I/Q sample format of the rake
    receiver; ``FixedFormat(24, 0)`` is the raw array word.
    """

    bits: int
    frac_bits: int = 0

    def __post_init__(self) -> None:
        _check_bits(self.bits)
        if not 0 <= self.frac_bits < self.bits:
            raise ValueError(f"frac_bits must be in [0, bits): {self.frac_bits}")

    @property
    def int_bits(self) -> int:
        """Integer bits, excluding the sign bit."""
        return self.bits - self.frac_bits - 1

    @property
    def resolution(self) -> float:
        """Smallest representable step."""
        return 1.0 / (1 << self.frac_bits)

    @property
    def min_float(self) -> float:
        return min_value(self.bits) * self.resolution

    @property
    def max_float(self) -> float:
        return max_value(self.bits) * self.resolution

    def quantize(self, value, *, sat: bool = True):
        """Float -> fixed integer in this format."""
        return to_fixed(value, self.frac_bits, self.bits, sat=sat)

    def to_float(self, value):
        """Fixed integer -> float in this format."""
        return from_fixed(value, self.frac_bits)

    def wrap(self, value):
        return wrap(value, self.bits)

    def saturate(self, value):
        return saturate(value, self.bits)


def _check_bits(bits: int) -> None:
    if bits < 2:
        raise ValueError(f"word width must be >= 2 bits, got {bits}")

"""Fixed-point arithmetic substrate.

The XPP array in the paper is a 24-bit integer machine; rake and OFDM
kernels use 12-bit I/Q samples and per-stage scaling.  This package
provides the two's-complement word arithmetic those kernels run on:
wrap/saturate primitives, quantisation between float and fixed domains,
and complex fixed-point helpers.
"""

from repro.fixed.word import (
    WORD_BITS,
    FixedFormat,
    bit_range,
    from_fixed,
    max_value,
    min_value,
    rshift_round,
    saturate,
    to_fixed,
    wrap,
)
from repro.fixed.complexfx import (
    cmac,
    cmul,
    complex_from_fixed,
    complex_to_fixed,
    pack_array,
    pack_complex,
    quantize_complex,
    unpack_array,
    unpack_complex,
)

__all__ = [
    "WORD_BITS",
    "FixedFormat",
    "bit_range",
    "cmac",
    "cmul",
    "complex_from_fixed",
    "complex_to_fixed",
    "from_fixed",
    "max_value",
    "min_value",
    "pack_array",
    "pack_complex",
    "quantize_complex",
    "rshift_round",
    "saturate",
    "to_fixed",
    "unpack_array",
    "unpack_complex",
    "wrap",
]

"""Path searcher: pilot correlation over a sliding window.

Detects the strongest multipath components by correlating the received
chip stream against the basestation's scrambled pilot sequence at every
candidate time offset.  Per the paper it divides into a *coarse* searcher
(large stride, short correlation, frequent) and a *fine* searcher (chip
resolution, longer correlation, run around the coarse peaks).

In the terminal, this is a DSP-side control task that programs the finger
offsets; the correlations themselves are plain inner products.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.probes import get_probes
from repro.wcdma.codes import scrambling_code
from repro.wcdma.transmitter import CPICH_CODE_INDEX, CPICH_SF, CPICH_SYMBOL
from repro.wcdma.modulation import spread


@dataclass(frozen=True)
class PathEstimate:
    """One detected multipath: chip offset and relative energy."""

    offset: int
    energy: float


def _pilot_reference(scrambling_number: int, n_chips: int) -> np.ndarray:
    """The transmitted CPICH chip sequence (scrambled pilot) to correlate
    against."""
    n_sym = -(-n_chips // CPICH_SF)     # ceil
    pilot = np.full(n_sym, CPICH_SYMBOL, dtype=np.complex128)
    chips = spread(pilot, CPICH_SF, CPICH_CODE_INDEX)[:n_chips]
    code = scrambling_code(scrambling_number, n_chips)
    return chips * code / np.sqrt(2.0)


class PathSearcher:
    """Coarse + fine sliding-window pilot correlator.

    Parameters
    ----------
    scrambling_number:
        Basestation whose paths are searched.
    window_chips:
        Search window (max delay + margin).
    coarse_stride / coarse_length:
        Offset step and correlation length of the coarse stage.  The
        coarse searcher runs often with a *short* correlation (low
        accuracy); scrambling codes decorrelate within one chip, so a
        stride above 1 trades detection of off-grid paths for speed.
    fine_span / fine_length:
        Half-width of the fine refinement around each coarse peak, and
        its (longer, more accurate) correlation length.
    """

    def __init__(self, scrambling_number: int, *, window_chips: int = 64,
                 coarse_stride: int = 1, coarse_length: int = 512,
                 fine_span: int = 4, fine_length: int = 2048,
                 threshold: float = 0.05,
                 min_peak_to_average: float = 8.0):
        if coarse_stride < 1:
            raise ValueError("coarse stride must be >= 1")
        self.scrambling_number = scrambling_number
        self.window_chips = window_chips
        self.coarse_stride = coarse_stride
        self.coarse_length = coarse_length
        self.fine_span = fine_span
        self.fine_length = fine_length
        self.threshold = threshold
        # detection criterion: a genuine pilot peak towers over the
        # profile average; a noise profile stays within a few x of it
        self.min_peak_to_average = min_peak_to_average

    def _correlate(self, rx: np.ndarray, offset: int, length: int,
                   ref: np.ndarray) -> float:
        seg = rx[offset:offset + length]
        if seg.size < length:
            return 0.0
        corr = np.vdot(ref[:length], seg) / length
        return float(np.abs(corr) ** 2)

    def coarse_search(self, rx: np.ndarray) -> list:
        """Energy profile at coarse stride; returns (offset, energy)."""
        ref = _pilot_reference(self.scrambling_number,
                               max(self.coarse_length, self.fine_length))
        return [(off, self._correlate(rx, off, self.coarse_length, ref))
                for off in range(0, self.window_chips, self.coarse_stride)]

    def fine_search(self, rx: np.ndarray, around: int) -> list:
        """Chip-resolution profile around a coarse peak."""
        ref = _pilot_reference(self.scrambling_number, self.fine_length)
        lo = max(0, around - self.fine_span)
        hi = min(self.window_chips, around + self.fine_span + 1)
        return [(off, self._correlate(rx, off, self.fine_length, ref))
                for off in range(lo, hi)]

    def search(self, rx: np.ndarray, max_paths: int = 3,
               min_separation: int = 2) -> list:
        """Full two-stage search: the strongest ``max_paths`` paths.

        Returns :class:`PathEstimate` objects sorted by energy
        (descending), at least ``min_separation`` chips apart.
        """
        rx = np.asarray(rx, dtype=np.complex128)
        coarse = self.coarse_search(rx)
        if not coarse:
            return []
        peak_energy = max(e for _o, e in coarse)
        if peak_energy == 0:
            return []
        average = sum(e for _o, e in coarse) / len(coarse)
        probes = get_probes()
        if probes.enabled:
            # the descrambling-correlator quality: how far the pilot
            # peak towers over the noise profile decides detection
            probes.record("rake.searcher.peak_energy", peak_energy,
                          unit="power")
            if average > 0:
                probes.record("rake.searcher.peak_to_average",
                              peak_energy / average, unit="ratio")
        if average > 0 and peak_energy / average < self.min_peak_to_average:
            return []       # no pilot present for this scrambling code
        candidates = [o for o, e in coarse if e >= self.threshold * peak_energy]

        fine_profile: dict[int, float] = {}
        for c in candidates:
            for off, e in self.fine_search(rx, c):
                fine_profile[off] = max(fine_profile.get(off, 0.0), e)

        ranked = sorted(fine_profile.items(), key=lambda t: -t[1])
        picked: list[PathEstimate] = []
        floor = self.threshold * (ranked[0][1] if ranked else 0.0)
        for off, e in ranked:
            if e < floor:
                break
            if any(abs(off - p.offset) < min_separation for p in picked):
                continue
            picked.append(PathEstimate(offset=off, energy=e))
            if len(picked) >= max_paths:
                break
        return picked

"""Maximum-ratio combining of rake finger outputs.

The combiner weights each finger's despread symbols by the conjugate of
its channel coefficient and sums — across multipaths of one basestation
and, in soft handover, across basestations (all of which transmit the
same dedicated-channel data).
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.probes import get_probes


def mrc_combine(symbol_streams, coefficients) -> np.ndarray:
    """Maximum-ratio combine: ``sum_p conj(h_p) * y_p / sum_p |h_p|^2``.

    ``symbol_streams`` is a list of per-finger symbol arrays (they are
    truncated to the shortest); ``coefficients`` the matching channel
    estimates.
    """
    streams = [np.asarray(s, dtype=np.complex128) for s in symbol_streams]
    coeffs = np.asarray(list(coefficients), dtype=np.complex128)
    if len(streams) != coeffs.size:
        raise ValueError("one coefficient per stream required")
    if not streams:
        return np.array([], dtype=np.complex128)
    n = min(s.size for s in streams)
    acc = np.zeros(n, dtype=np.complex128)
    for s, h in zip(streams, coeffs):
        acc += np.conj(h) * s[:n]
    gain = np.sum(np.abs(coeffs) ** 2)
    probes = get_probes()
    if probes.enabled:
        probes.record("rake.combiner.gain", float(gain), unit="power")
        probes.record("rake.combiner.fingers", len(streams), unit="fingers")
    if gain > 0:
        acc /= gain
    return acc


def sttd_rake_combine(symbol_streams, h1s, h2s) -> np.ndarray:
    """Joint STTD decoding + maximum-ratio combining across fingers.

    For each finger p with received symbol pair ``(r0_p, r1_p)`` and
    antenna coefficients ``(h1_p, h2_p)``::

        s0 = sum_p conj(h1_p) r0_p + h2_p conj(r1_p)
        s1 = sum_p conj(h1_p) r1_p - h2_p conj(r0_p)

    normalised by the total diversity gain ``sum_p |h1_p|^2 + |h2_p|^2``.
    """
    streams = [np.asarray(s, dtype=np.complex128) for s in symbol_streams]
    h1s = np.asarray(list(h1s), dtype=np.complex128)
    h2s = np.asarray(list(h2s), dtype=np.complex128)
    if not (len(streams) == h1s.size == h2s.size):
        raise ValueError("per-finger h1 and h2 required")
    if not streams:
        return np.array([], dtype=np.complex128)
    n = min(s.size for s in streams)
    n -= n % 2
    s0 = np.zeros(n // 2, dtype=np.complex128)
    s1 = np.zeros(n // 2, dtype=np.complex128)
    for s, h1, h2 in zip(streams, h1s, h2s):
        r0, r1 = s[0:n:2], s[1:n:2]
        s0 += np.conj(h1) * r0 + h2 * np.conj(r1)
        s1 += np.conj(h1) * r1 - h2 * np.conj(r0)
    gain = float(np.sum(np.abs(h1s) ** 2 + np.abs(h2s) ** 2))
    probes = get_probes()
    if probes.enabled:
        probes.record("rake.combiner.gain", gain, unit="power")
        probes.record("rake.combiner.fingers", len(streams), unit="fingers")
    if gain > 0:
        s0 /= gain
        s1 /= gain
    out = np.empty(n, dtype=np.complex128)
    out[0::2] = s0
    out[1::2] = s1
    return out

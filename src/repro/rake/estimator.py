"""Channel estimation from the pilot channel.

For each detected path, the channel coefficient is estimated by
descrambling/despreading the CPICH at the path's offset and averaging the
known pilot symbols.  With STTD, the alternating antenna-2 pilot pattern
separates the two per-antenna coefficients.

In the terminal this runs on the DSP ("the DSP calculates the channel
coefficients, which are then transferred to the reconfigurable
hardware").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.wcdma.codes import scrambling_code
from repro.wcdma.modulation import descramble, despread
from repro.wcdma.transmitter import CPICH_CODE_INDEX, CPICH_SF, CPICH_SYMBOL


def _cpich_symbols_at(rx: np.ndarray, offset: int,
                      scrambling_number: int, n_symbols: int) -> np.ndarray:
    """Despread the CPICH at the given path offset."""
    n_chips = n_symbols * CPICH_SF
    seg = rx[offset:offset + n_chips]
    if seg.size < n_chips:
        n_symbols = seg.size // CPICH_SF
        seg = seg[:n_symbols * CPICH_SF]
    code = scrambling_code(scrambling_number, seg.size)
    return despread(descramble(seg, code), CPICH_SF, CPICH_CODE_INDEX)


def estimate_channel(rx: np.ndarray, offset: int, scrambling_number: int,
                     *, n_pilot_symbols: int = 10) -> complex:
    """Single-antenna channel coefficient of one path."""
    pilots = _cpich_symbols_at(rx, offset, scrambling_number, n_pilot_symbols)
    if pilots.size == 0:
        return 0j
    return complex(np.mean(pilots) / CPICH_SYMBOL)


def estimate_channel_sttd(rx: np.ndarray, offset: int,
                          scrambling_number: int, *,
                          n_pilot_symbols: int = 10) -> tuple:
    """Per-antenna coefficients ``(h1, h2)`` of one path under STTD.

    Antenna 1 sends the constant pilot A, antenna 2 the pattern
    A, -A, A, -A..., so even/odd pilot sums separate the two channels.
    """
    n = n_pilot_symbols - n_pilot_symbols % 2
    pilots = _cpich_symbols_at(rx, offset, scrambling_number, n)
    n = pilots.size - pilots.size % 2
    if n == 0:
        return 0j, 0j
    even = pilots[0:n:2]
    odd = pilots[1:n:2]
    h1 = np.mean(even + odd) / (2 * CPICH_SYMBOL)
    h2 = np.mean(even - odd) / (2 * CPICH_SYMBOL)
    return complex(h1), complex(h2)


@dataclass
class ChannelEstimator:
    """Stateful wrapper with exponential smoothing across calls.

    ``alpha`` is the forgetting factor (1.0 = no memory, use the fresh
    estimate).
    """

    scrambling_number: int
    n_pilot_symbols: int = 10
    alpha: float = 1.0
    sttd: bool = False
    _state: dict = None

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self._state = {}

    def update(self, rx: np.ndarray, offset: int):
        """Estimate (and smooth) the coefficient(s) for one path."""
        if self.sttd:
            fresh = estimate_channel_sttd(
                rx, offset, self.scrambling_number,
                n_pilot_symbols=self.n_pilot_symbols)
        else:
            fresh = estimate_channel(
                rx, offset, self.scrambling_number,
                n_pilot_symbols=self.n_pilot_symbols)
        prev = self._state.get(offset)
        if prev is None or self.alpha == 1.0:
            smoothed = fresh
        elif self.sttd:
            smoothed = (self.alpha * fresh[0] + (1 - self.alpha) * prev[0],
                        self.alpha * fresh[1] + (1 - self.alpha) * prev[1])
        else:
            smoothed = self.alpha * fresh + (1 - self.alpha) * prev
        self._state[offset] = smoothed
        return smoothed

"""Continuous rake operation: the control & synchronisation task.

The paper's DSP runs the rake's control loop: acquire paths, program
the finger offsets, keep the trackers running, reacquire when paths are
lost.  :class:`RakeSession` implements that loop over successive signal
blocks, delegating the chip-rate work to the receiver (whose datapath
is the array's).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.rake.receiver import RakeReceiver
from repro.rake.searcher import PathEstimate, PathSearcher
from repro.rake.tracker import PathTracker
from repro.telemetry import ALERT_DEGRADED, get_metrics, get_probes, get_tracer


@dataclass
class BlockInfo:
    """Diagnostics of one processed block."""

    index: int
    reacquired: list = field(default_factory=list)   # basestations re-searched
    offsets: dict = field(default_factory=dict)      # bs -> tracked offsets
    logical_fingers: int = 0


class RakeSession:
    """Tracks an active set across successive received blocks."""

    def __init__(self, *, sf: int, code_index: int, active_set,
                 paths_per_basestation: int = 3, search_window: int = 64,
                 sttd: bool = False, reacquire_interval: int = 10):
        self.receiver = RakeReceiver(
            sf=sf, code_index=code_index,
            paths_per_basestation=paths_per_basestation,
            search_window=search_window, sttd=sttd)
        self.active_set = list(active_set)
        self.paths_per_basestation = paths_per_basestation
        self.search_window = search_window
        self.reacquire_interval = reacquire_interval
        self.trackers: dict[int, PathTracker] = {}
        self.block_index = 0
        self.nominal_fingers = self.receiver.max_fingers

    # -- checkpoint / migration --------------------------------------------------

    def snapshot(self) -> dict:
        """The session's full control-loop state, JSON-serializable.

        Captures construction parameters, the active set, the block
        counter, the degradation cap and every tracker's state
        (:meth:`repro.rake.tracker.PathTracker.snapshot`) — enough for
        :meth:`from_snapshot` on another host to continue the session
        bit-exactly.  An active-set member whose last acquisition
        failed is recorded as ``None`` and stays pending reacquisition
        after restore, exactly as it was.
        """
        return {
            "sf": self.receiver.sf,
            "code_index": self.receiver.code_index,
            "sttd": self.receiver.sttd,
            "active_set": list(self.active_set),
            "paths_per_basestation": self.paths_per_basestation,
            "search_window": self.search_window,
            "reacquire_interval": self.reacquire_interval,
            "block_index": self.block_index,
            "nominal_fingers": self.nominal_fingers,
            "max_fingers": self.receiver.max_fingers,
            "trackers": {str(bs): (t.snapshot() if t is not None else None)
                         for bs, t in self.trackers.items()},
        }

    @classmethod
    def from_snapshot(cls, d: dict) -> "RakeSession":
        """Rebuild a session from :meth:`snapshot` output."""
        session = cls(sf=int(d["sf"]), code_index=int(d["code_index"]),
                      active_set=list(d["active_set"]),
                      paths_per_basestation=int(d["paths_per_basestation"]),
                      search_window=int(d["search_window"]),
                      sttd=bool(d["sttd"]),
                      reacquire_interval=int(d["reacquire_interval"]))
        session.block_index = int(d["block_index"])
        session.nominal_fingers = int(d["nominal_fingers"])
        session.receiver.max_fingers = int(d["max_fingers"])
        session.trackers = {
            int(bs): (PathTracker.from_snapshot(t) if t is not None
                      else None)
            for bs, t in d["trackers"].items()}
        return session

    # -- graceful degradation ----------------------------------------------------

    @property
    def degraded(self) -> bool:
        return self.receiver.max_fingers < self.nominal_fingers

    def degrade(self, max_fingers: int, *, reason: str = "") -> int:
        """Cap the logical finger count below the design maximum.

        Recovery policies call this when array faults cost despreading
        capacity: the receiver keeps combining the strongest paths it
        can still serve instead of failing the link.  The cap only ever
        tightens (floor 1) and raises an :data:`ALERT_DEGRADED`
        watchdog alert; returns the new cap.
        """
        new_cap = max(1, min(self.receiver.max_fingers, int(max_fingers)))
        if new_cap < self.receiver.max_fingers:
            self.receiver.max_fingers = new_cap
            probes = get_probes()
            if probes.enabled:
                probes.alert(ALERT_DEGRADED, "rake.fingers", value=new_cap,
                             message=f"logical fingers capped at {new_cap} "
                                     f"(nominal {self.nominal_fingers})"
                                     + (f": {reason}" if reason else ""),
                             once=False)
            metrics = get_metrics()
            if metrics.enabled:
                metrics.gauge("rake.max_fingers").set(new_cap)
        return self.receiver.max_fingers

    def restore(self) -> None:
        """Lift the degradation cap (fault cleared, resources back)."""
        self.receiver.max_fingers = self.nominal_fingers

    # -- acquisition / tracking ------------------------------------------------------

    def _acquire(self, rx: np.ndarray, bs: int) -> Optional[PathTracker]:
        searcher = PathSearcher(bs, window_chips=self.search_window)
        found = searcher.search(rx, max_paths=self.paths_per_basestation)
        if not found:
            return None
        tracker = PathTracker(bs, [p.offset for p in found])
        tracker.update(rx)      # seed the reference energies
        return tracker

    def _update_paths(self, rx: np.ndarray, info: BlockInfo) -> dict:
        """Run trackers (or reacquire) and return the path map the
        receiver despreads."""
        periodic = (self.block_index % self.reacquire_interval == 0)
        paths = {}
        for bs in self.active_set:
            tracker = self.trackers.get(bs)
            needs_search = tracker is None or periodic
            if not needs_search:
                live = tracker.update(rx)
                if not live:
                    needs_search = True     # all paths lost -> reacquire
            if needs_search:
                tracker = self._acquire(rx, bs)
                self.trackers[bs] = tracker
                info.reacquired.append(bs)
            if tracker is None:
                continue
            offsets = tracker.offsets
            info.offsets[bs] = list(offsets)
            paths[bs] = [PathEstimate(offset=o, energy=1.0) for o in offsets]
        return paths

    # -- main loop ---------------------------------------------------------------------

    def process_block(self, rx: np.ndarray, n_symbols: int):
        """Process one received block; returns ``(bits, BlockInfo)``.

        With tracing on, each block is a ``rake.block`` span and every
        reacquisition a ``rake.reacquire`` instant, so a session trace
        shows where the control loop spent its time and which blocks
        forced a path search.
        """
        rx = np.asarray(rx, dtype=np.complex128)
        info = BlockInfo(index=self.block_index)
        tracer = get_tracer()
        with tracer.span("rake.block", "rake",
                         args={"block": self.block_index}) \
                if tracer.enabled else _NULL_CTX:
            paths = self._update_paths(rx, info)
            bits, report = self.receiver.receive(
                rx, self.active_set, n_symbols, paths=paths)
        info.logical_fingers = report.logical_fingers
        if tracer.enabled:
            for bs in info.reacquired:
                tracer.instant("rake.reacquire", "rake",
                               args={"block": info.index, "basestation": bs})
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("rake.blocks").inc()
            metrics.counter("rake.reacquisitions").inc(len(info.reacquired))
            metrics.gauge("rake.logical_fingers").set(info.logical_fingers)
            metrics.histogram("rake.fingers_per_block").observe(
                info.logical_fingers)
        self.block_index += 1
        return bits, info

    def drop_basestation(self, bs: int) -> None:
        """Active-set update: the network removed a basestation."""
        self.active_set = [b for b in self.active_set if b != bs]
        self.trackers.pop(bs, None)
        self._trace_active_set("drop", bs)

    def add_basestation(self, bs: int) -> None:
        """Active-set update: soft-handover addition (acquired on the
        next block)."""
        if bs not in self.active_set:
            self.active_set.append(bs)
            self._trace_active_set("add", bs)

    def _trace_active_set(self, action: str, bs: int) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant("rake.active_set", "rake",
                           args={"action": action, "basestation": bs,
                                 "active_set": list(self.active_set)})
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge("rake.active_set_size").set(len(self.active_set))


class _NullCtx:
    """No-op with-block used when tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        pass


_NULL_CTX = _NullCtx()

"""Path tracker: keeps finger offsets locked onto drifting multipaths.

An early/late gate around each tracked offset: the tracker compares the
pilot correlation energy one chip early and one chip late against the
on-time energy and nudges the offset toward the stronger side.  Paths
whose on-time energy collapses are flagged lost so the searcher can
reacquire them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rake.searcher import _pilot_reference
from repro.telemetry.probes import get_probes


@dataclass
class TrackedPath:
    offset: int
    energy: float = 0.0
    lost: bool = False


class PathTracker:
    """Tracks a set of path offsets against successive received blocks."""

    def __init__(self, scrambling_number: int, offsets, *,
                 correlation_length: int = 1024,
                 lost_threshold: float = 0.05):
        self.scrambling_number = scrambling_number
        self.paths = [TrackedPath(offset=o) for o in offsets]
        self.correlation_length = correlation_length
        self.lost_threshold = lost_threshold
        self._reference_energy = 0.0    # strongest energy ever tracked

    @property
    def offsets(self) -> list:
        return [p.offset for p in self.paths if not p.lost]

    # -- checkpoint / migration --------------------------------------------------

    def snapshot(self) -> dict:
        """The tracker's full state as a JSON-serializable dict.

        Everything the early/late gates and the lost-path detector
        depend on is captured — per-path offset/energy/lost flags and
        the running reference energy — so a restored tracker's next
        :meth:`update` is bit-identical to the original's.
        """
        return {
            "scrambling_number": self.scrambling_number,
            "correlation_length": self.correlation_length,
            "lost_threshold": self.lost_threshold,
            "reference_energy": self._reference_energy,
            "paths": [{"offset": int(p.offset), "energy": float(p.energy),
                       "lost": bool(p.lost)} for p in self.paths],
        }

    @classmethod
    def from_snapshot(cls, d: dict) -> "PathTracker":
        """Rebuild a tracker from :meth:`snapshot` output."""
        tracker = cls(int(d["scrambling_number"]),
                      [p["offset"] for p in d["paths"]],
                      correlation_length=int(d["correlation_length"]),
                      lost_threshold=float(d["lost_threshold"]))
        for path, rec in zip(tracker.paths, d["paths"]):
            path.energy = float(rec["energy"])
            path.lost = bool(rec["lost"])
        tracker._reference_energy = float(d["reference_energy"])
        return tracker

    def _energy(self, rx: np.ndarray, offset: int,
                ref: np.ndarray) -> float:
        if offset < 0:
            return 0.0
        seg = rx[offset:offset + self.correlation_length]
        if seg.size < self.correlation_length:
            return 0.0
        corr = np.vdot(ref[:self.correlation_length], seg) \
            / self.correlation_length
        return float(np.abs(corr) ** 2)

    def update(self, rx: np.ndarray) -> list:
        """Run one tracking iteration; returns the live paths."""
        rx = np.asarray(rx, dtype=np.complex128)
        ref = _pilot_reference(self.scrambling_number,
                               self.correlation_length)
        peak = 0.0
        for p in self.paths:
            if p.lost:
                continue
            early = self._energy(rx, p.offset - 1, ref)
            ontime = self._energy(rx, p.offset, ref)
            late = self._energy(rx, p.offset + 1, ref)
            if early > ontime and early >= late:
                p.offset -= 1
                p.energy = early
            elif late > ontime and late > early:
                p.offset += 1
                p.energy = late
            else:
                p.energy = ontime
            peak = max(peak, p.energy)
        # compare against the strongest energy this tracker has ever
        # seen, so losing the *only* path is detected too
        self._reference_energy = max(self._reference_energy, peak)
        floor = self.lost_threshold * self._reference_energy
        newly_lost = 0
        for p in self.paths:
            if not p.lost and floor > 0 and p.energy < floor:
                p.lost = True
                newly_lost += 1
        live = [p for p in self.paths if not p.lost]
        probes = get_probes()
        if probes.enabled:
            # lock state: how many paths the early/late gates still hold,
            # how many this iteration dropped, and the strongest energy
            probes.record("rake.tracker.locked_paths", len(live),
                          unit="paths")
            if newly_lost:
                probes.record("rake.tracker.lost", newly_lost, unit="events")
            probes.record("rake.tracker.peak_energy", peak, unit="power")
        return live

"""The complete rake receiver (paper Fig. 4).

Orchestrates the partitioned tasks end to end:

* *DSP tasks*: pilot acquisition (path search), path tracking, channel
  estimation, control & synchronisation;
* *dedicated hardware*: scrambling/spreading code generation (the code
  modules of :mod:`repro.wcdma.codes`);
* *reconfigurable hardware datapath*: descrambling, despreading, channel
  correction (here as the golden NumPy model; the array mapping lives in
  :mod:`repro.kernels`), plus combining.

Soft handover: the receiver is given the scrambling code numbers of the
active set (up to six basestations); all their fingers are maximum-ratio
combined, since every active basestation transmits the same dedicated
channel data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.rake.combiner import mrc_combine, sttd_rake_combine
from repro.rake.estimator import estimate_channel, estimate_channel_sttd
from repro.rake.finger import FingerAssignment, TimeMultiplexedFinger
from repro.rake.scenarios import FULL_SCENARIO_CLOCK_HZ, MAX_LOGICAL_FINGERS
from repro.rake.searcher import PathSearcher
from repro.telemetry.probes import decision_directed_sinr_db, get_probes
from repro.wcdma.modulation import qpsk_to_bits


@dataclass
class ReceiverReport:
    """Diagnostics of one receive call."""

    paths: dict = field(default_factory=dict)       # bs -> [PathEstimate]
    coefficients: dict = field(default_factory=dict)  # bs -> [h or (h1, h2)]
    logical_fingers: int = 0
    required_clock_hz: int = 0
    symbols: Optional[np.ndarray] = None
    finger_energy: list = field(default_factory=list)   # per logical finger
    finger_sinr_db: list = field(default_factory=list)  # empty under STTD

    def to_dict(self) -> dict:
        """JSON-serializable summary mirroring
        :meth:`repro.xpp.stats.RunStats.to_dict`.

        The combined ``symbols`` array and the complex path/coefficient
        estimates stay out; the serialized form keeps the per-finger
        scalars (bounded by the 18-finger design maximum) and per-
        basestation path counts.
        """
        return {
            "logical_fingers": self.logical_fingers,
            "required_clock_hz": self.required_clock_hz,
            "n_symbols": int(self.symbols.size)
            if self.symbols is not None else 0,
            "paths_per_basestation": {str(bs): len(paths)
                                      for bs, paths in self.paths.items()},
            "finger_energy": [float(e) for e in self.finger_energy],
            "finger_sinr_db": [float(s) for s in self.finger_sinr_db],
        }


class RakeReceiver:
    """Multi-basestation, multi-path rake receiver."""

    def __init__(self, *, sf: int, code_index: int,
                 max_fingers: int = MAX_LOGICAL_FINGERS,
                 paths_per_basestation: int = 3,
                 search_window: int = 64, sttd: bool = False,
                 n_pilot_symbols: int = 8):
        self.sf = sf
        self.code_index = code_index
        self.max_fingers = max_fingers
        self.paths_per_basestation = paths_per_basestation
        self.search_window = search_window
        self.sttd = sttd
        self.n_pilot_symbols = n_pilot_symbols

    # -- acquisition -------------------------------------------------------------

    def acquire(self, rx: np.ndarray, active_set) -> dict:
        """Path-search every basestation of the active set."""
        found = {}
        for n in active_set:
            searcher = PathSearcher(n, window_chips=self.search_window)
            found[n] = searcher.search(
                rx, max_paths=self.paths_per_basestation)
        return found

    # -- reception --------------------------------------------------------------

    def receive(self, rx: np.ndarray, active_set, n_symbols: int,
                *, paths: Optional[dict] = None):
        """Detect, despread, channel-correct and combine.

        Returns ``(bits, report)``.  ``paths`` may pre-supply path
        estimates (e.g. from a tracker) to skip acquisition.
        """
        rx = np.asarray(rx, dtype=np.complex128)
        report = ReceiverReport()
        report.paths = paths if paths is not None else self.acquire(rx, active_set)

        assignments = []
        coeffs = []
        for n in active_set:
            path_list = report.paths.get(n, [])
            bs_coeffs = []
            for p in path_list:
                if len(assignments) >= self.max_fingers:
                    break
                assignments.append(FingerAssignment(
                    scrambling_number=n, offset=p.offset,
                    sf=self.sf, code_index=self.code_index))
                if self.sttd:
                    h = estimate_channel_sttd(
                        rx, p.offset, n,
                        n_pilot_symbols=self.n_pilot_symbols)
                else:
                    h = estimate_channel(
                        rx, p.offset, n,
                        n_pilot_symbols=self.n_pilot_symbols)
                bs_coeffs.append(h)
                coeffs.append(h)
            report.coefficients[n] = bs_coeffs

        if not assignments:
            return np.array([], dtype=np.int64), report

        finger = TimeMultiplexedFinger(assignments)
        report.logical_fingers = finger.n_logical
        report.required_clock_hz = finger.required_clock_hz

        streams = finger.despread_all(rx, n_symbols)
        probes = get_probes()
        if probes.enabled:
            self._probe_fingers(streams, coeffs, report, probes)
        if self.sttd:
            h1s = [h[0] for h in coeffs]
            h2s = [h[1] for h in coeffs]
            combined = sttd_rake_combine(streams, h1s, h2s)
        else:
            combined = mrc_combine(streams, coeffs)
        report.symbols = combined
        if probes.enabled and not self.sttd:
            probes.record("rake.sinr_db",
                          decision_directed_sinr_db(combined), unit="dB")
        return qpsk_to_bits(combined), report

    def _probe_fingers(self, streams, coeffs, report, probes) -> None:
        """Per-logical-finger quality: despread energy always, and the
        decision-directed SINR of the equalised stream (single-antenna
        only; an STTD finger carries interleaved symbol pairs that only
        make sense after the joint combine)."""
        for s, h in zip(streams, coeffs):
            energy = float(np.mean(np.abs(s) ** 2)) if s.size else 0.0
            report.finger_energy.append(energy)
            probes.record("rake.finger.energy", energy, unit="power")
            if self.sttd:
                continue
            mag2 = abs(h) ** 2
            z = s * np.conj(h) / mag2 if mag2 > 0 else s
            sinr = decision_directed_sinr_db(z)
            report.finger_sinr_db.append(sinr)
            probes.record("rake.finger.sinr_db", sinr, unit="dB")

    def receive_dchs(self, rx: np.ndarray, active_set, dchs,
                     n_symbols: int):
        """Receive several dedicated channels at once (Table 1's
        'channels' dimension).

        ``dchs`` is a list of ``(sf, code_index)`` pairs.  The logical
        finger count multiplies: basestations x paths x channels, all
        served by the one physical finger — whose clock requirement the
        report accounts.  Returns ``(bits_per_dch, report)``.
        """
        rx = np.asarray(rx, dtype=np.complex128)
        report = ReceiverReport()
        report.paths = self.acquire(rx, active_set)

        all_bits = []
        total_fingers = 0
        for sf, code_index in dchs:
            assignments = []
            coeffs = []
            for n in active_set:
                for p in report.paths.get(n, []):
                    assignments.append(FingerAssignment(
                        scrambling_number=n, offset=p.offset,
                        sf=sf, code_index=code_index))
                    coeffs.append(estimate_channel(
                        rx, p.offset, n,
                        n_pilot_symbols=self.n_pilot_symbols))
            total_fingers += len(assignments)
            if not assignments:
                all_bits.append(np.array([], dtype=np.int64))
                continue
            streams = [
                TimeMultiplexedFinger([a]).despread_all(rx, n_symbols)[0]
                for a in assignments]
            combined = mrc_combine(streams, coeffs)
            all_bits.append(qpsk_to_bits(combined))

        report.logical_fingers = total_fingers
        from repro.wcdma.params import CHIP_RATE_HZ
        report.required_clock_hz = total_fingers * CHIP_RATE_HZ
        if report.required_clock_hz > FULL_SCENARIO_CLOCK_HZ:
            raise ValueError(
                f"{total_fingers} logical fingers exceed the "
                f"{FULL_SCENARIO_CLOCK_HZ / 1e6:.2f} MHz design clock")
        return all_bits, report

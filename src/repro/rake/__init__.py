"""Rake receiver for UMTS/W-CDMA (paper Sec. 3.1).

Detection, tracking, descrambling, despreading, channel correction and
combination of CDMA signals, including the soft-handover scenario with up
to six basestations and three multipaths each.  A single physical finger
is time-multiplexed over all logical fingers; :mod:`repro.rake.scenarios`
reproduces Table 1's finger-count/clock-frequency trade-off.

Algorithmic (control-flow) tasks — path search, tracking, channel
estimation — are the paper's DSP-side tasks; the chip-rate datapath has a
golden NumPy model here and an XPP array mapping in :mod:`repro.kernels`.
"""

from repro.rake.scenarios import (
    FULL_SCENARIO_CLOCK_HZ,
    MAX_LOGICAL_FINGERS,
    FingerScenario,
    enumerate_scenarios,
    table1,
)
from repro.rake.searcher import PathEstimate, PathSearcher
from repro.rake.estimator import ChannelEstimator, estimate_channel
from repro.rake.finger import RakeFinger, TimeMultiplexedFinger
from repro.rake.combiner import mrc_combine, sttd_rake_combine
from repro.rake.tracker import PathTracker
from repro.rake.receiver import RakeReceiver, ReceiverReport
from repro.rake.session import BlockInfo, RakeSession

__all__ = [
    "FULL_SCENARIO_CLOCK_HZ",
    "MAX_LOGICAL_FINGERS",
    "BlockInfo",
    "ChannelEstimator",
    "FingerScenario",
    "RakeSession",
    "PathEstimate",
    "PathSearcher",
    "PathTracker",
    "RakeFinger",
    "RakeReceiver",
    "ReceiverReport",
    "TimeMultiplexedFinger",
    "enumerate_scenarios",
    "estimate_channel",
    "mrc_combine",
    "sttd_rake_combine",
    "table1",
]

"""Rake fingers: descrambling + despreading at a path offset.

:class:`RakeFinger` is the golden (floating-point NumPy) model of the
datapath that :mod:`repro.kernels` maps onto the reconfigurable array.
:class:`TimeMultiplexedFinger` models the paper's single *physical*
finger that serves all logical fingers by repeating the operation per
chip across every (basestation, channel, multipath) combination — and
checks the resulting clock requirement against the design maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rake.scenarios import FULL_SCENARIO_CLOCK_HZ
from repro.wcdma.codes import scrambling_code
from repro.wcdma.modulation import descramble, despread
from repro.wcdma.params import CHIP_RATE_HZ


@dataclass(frozen=True)
class FingerAssignment:
    """What one logical finger despreads: which basestation's code, which
    path delay, and which physical channel."""

    scrambling_number: int
    offset: int
    sf: int
    code_index: int


class RakeFinger:
    """One logical finger: align, descramble, despread."""

    def __init__(self, assignment: FingerAssignment):
        self.assignment = assignment

    def despread(self, rx: np.ndarray, n_symbols: int) -> np.ndarray:
        """Return ``n_symbols`` despread symbols from the finger's path."""
        a = self.assignment
        n_chips = n_symbols * a.sf
        seg = np.asarray(rx, dtype=np.complex128)[a.offset:a.offset + n_chips]
        if seg.size < n_chips:
            n_symbols = seg.size // a.sf
            seg = seg[:n_symbols * a.sf]
        code = scrambling_code(a.scrambling_number, seg.size)
        return despread(descramble(seg, code), a.sf, a.code_index)


class TimeMultiplexedFinger:
    """The single physical finger of the paper, serving many logical
    fingers by time multiplexing.

    Despreads every assignment against the same received chip stream and
    reports the clock the physical finger needs (``n x 3.84 MHz``).
    Raises if the assignment set exceeds the design clock.
    """

    def __init__(self, assignments, *,
                 max_clock_hz: int = FULL_SCENARIO_CLOCK_HZ):
        self.assignments = list(assignments)
        self.max_clock_hz = max_clock_hz
        if self.required_clock_hz > max_clock_hz:
            raise ValueError(
                f"{len(self.assignments)} logical fingers need "
                f"{self.required_clock_hz / 1e6:.2f} MHz "
                f"> design clock {max_clock_hz / 1e6:.2f} MHz")

    @property
    def n_logical(self) -> int:
        return len(self.assignments)

    @property
    def required_clock_hz(self) -> int:
        return self.n_logical * CHIP_RATE_HZ

    def despread_all(self, rx: np.ndarray, n_symbols: int) -> list:
        """Despread every logical finger; returns one symbol array per
        assignment, in a time-multiplexed round-robin order internally
        (chip 0 finger 0..N-1, chip 1 finger 0..N-1, ...)."""
        return [RakeFinger(a).despread(rx, n_symbols)
                for a in self.assignments]

    def multiplexed_stream(self, rx: np.ndarray, n_symbols: int) -> np.ndarray:
        """The interleaved output stream of the physical finger: symbol k
        of finger 0, symbol k of finger 1, ... — the format the channel
        correction unit of Fig. 7 consumes."""
        streams = self.despread_all(rx, n_symbols)
        n = min(s.size for s in streams) if streams else 0
        if n == 0:
            return np.array([], dtype=np.complex128)
        stacked = np.stack([s[:n] for s in streams], axis=1)
        return stacked.reshape(-1)

"""Rake finger scenarios (paper Table 1).

The operational maximum is a soft handover with 6 basestations and 3
multipaths per basestation: 18 logical fingers.  One physical finger on
the array processes all of them by repeating the descrambling/despreading
of each chip for every (basestation, channel, multipath) combination and
time-multiplexing the resulting stream, so the finger must run at
``fingers x 3.84 MHz`` — 69.12 MHz in the maximum scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wcdma.params import CHIP_RATE_HZ

#: The paper's design maximum: 6 basestations x 3 multipaths.
MAX_LOGICAL_FINGERS = 18

#: Minimum clock of the single physical finger in the maximum scenario:
#: 18 x 3.84 MHz = 69.12 MHz.
FULL_SCENARIO_CLOCK_HZ = MAX_LOGICAL_FINGERS * CHIP_RATE_HZ


@dataclass(frozen=True)
class FingerScenario:
    """One (basestations, channels, multipaths) operating point."""

    basestations: int
    channels: int
    multipaths: int

    def __post_init__(self) -> None:
        if self.basestations < 1 or self.channels < 1 or self.multipaths < 1:
            raise ValueError("scenario dimensions must be >= 1")

    @property
    def logical_fingers(self) -> int:
        """Descramble/despread operations per chip period."""
        return self.basestations * self.channels * self.multipaths

    @property
    def required_clock_hz(self) -> int:
        """Minimum clock of the time-multiplexed physical finger."""
        return self.logical_fingers * CHIP_RATE_HZ

    @property
    def requires_full_clock(self) -> bool:
        """True for the shaded Table 1 cells that need all 69.12 MHz."""
        return self.required_clock_hz >= FULL_SCENARIO_CLOCK_HZ

    @property
    def feasible(self) -> bool:
        """Whether one physical finger at the design clock covers it."""
        return self.required_clock_hz <= FULL_SCENARIO_CLOCK_HZ

    def utilization(self) -> float:
        """Fraction of the 69.12 MHz design clock this scenario uses."""
        return self.required_clock_hz / FULL_SCENARIO_CLOCK_HZ


def enumerate_scenarios(max_basestations: int = 6, max_channels: int = 2,
                        max_multipaths: int = 3) -> list:
    """All scenarios in the Table 1 grid, feasible ones only."""
    out = []
    for bs in range(1, max_basestations + 1):
        for ch in range(1, max_channels + 1):
            for mp in range(1, max_multipaths + 1):
                s = FingerScenario(bs, ch, mp)
                if s.feasible:
                    out.append(s)
    return out


def table1(max_basestations: int = 6, max_multipaths: int = 3,
           channels: int = 1) -> list:
    """Rows of the paper's Table 1 for a fixed channel count.

    Each row: ``(basestations, multipaths, fingers, clock_MHz, shaded)``
    where ``shaded`` marks scenarios needing the full 69.12 MHz.
    """
    rows = []
    for bs in range(1, max_basestations + 1):
        for mp in range(1, max_multipaths + 1):
            s = FingerScenario(bs, channels, mp)
            if not s.feasible:
                continue
            rows.append((bs, mp, s.logical_fingers,
                         s.required_clock_hz / 1e6, s.requires_full_clock))
    return rows

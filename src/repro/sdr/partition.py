"""Task partitioning across the three processing resources.

The paper's partitioning rule: data-flow oriented tasks on word-level
granular streams go to the reconfigurable array; continuously-running
bit-level tasks go to dedicated hardware; control-flow and
synchronisation tasks go to the DSP/microcontroller.  ``RAKE_PARTITION``
is Fig. 4, ``OFDM_PARTITION`` is Fig. 8.
"""

from __future__ import annotations

from enum import Enum


class Resource(Enum):
    """Where a task executes in the terminal."""

    DSP = "DSP"
    DEDICATED = "dedicated hardware"
    RECONFIGURABLE = "reconfigurable hardware"


#: Fig. 4 — the rake receiver's tasks.
RAKE_PARTITION = {
    "descrambling": Resource.RECONFIGURABLE,
    "despreading": Resource.RECONFIGURABLE,
    "channel correction": Resource.RECONFIGURABLE,
    "combining": Resource.RECONFIGURABLE,
    "scrambling code generation": Resource.DEDICATED,
    "spreading code generation": Resource.DEDICATED,
    "control & synchronisation": Resource.DSP,
    "pilot acquisition": Resource.DSP,
    "channel estimation": Resource.DSP,
}

#: Fig. 8 — the OFDM decoder's tasks.
OFDM_PARTITION = {
    "RF receiver / A-D": Resource.DEDICATED,
    "framing and sync": Resource.RECONFIGURABLE,
    "FFT": Resource.RECONFIGURABLE,
    "descrambler": Resource.RECONFIGURABLE,
    "demodulation": Resource.RECONFIGURABLE,
    "viterbi": Resource.DEDICATED,
    "layer 2": Resource.DSP,
}

#: Which of our modules implement each task (the reproduction index).
TASK_MODULES = {
    "descrambling": "repro.kernels.descrambler",
    "despreading": "repro.kernels.despreader",
    "channel correction": "repro.kernels.channel_correction",
    "combining": "repro.kernels.combining",
    "scrambling code generation": "repro.wcdma.codes",
    "spreading code generation": "repro.wcdma.codes",
    "control & synchronisation": "repro.rake.receiver",
    "pilot acquisition": "repro.rake.searcher",
    "channel estimation": "repro.rake.estimator",
    "RF receiver / A-D": "repro.wcdma.channel",
    "framing and sync": "repro.wlan.frontend",
    "FFT": "repro.kernels.fft64",
    "descrambler": "repro.ofdm.scrambler",
    "demodulation": "repro.wlan.decoder",
    "viterbi": "repro.ofdm.viterbi",
    "layer 2": "repro.dsp.processor",
}


def tasks_on(partition: dict, resource: Resource) -> list:
    """Task names mapped to one resource, in table order."""
    return [t for t, r in partition.items() if r is resource]


def validate_partition(partition: dict) -> None:
    """Sanity-check a partition table: every task assigned a known
    resource and indexed to an implementing module."""
    for task, resource in partition.items():
        if not isinstance(resource, Resource):
            raise ValueError(f"task {task!r} has invalid resource "
                             f"{resource!r}")
        if task not in TASK_MODULES:
            raise ValueError(f"task {task!r} has no implementing module")


def partition_table(partition: dict) -> list:
    """Rows ``(task, resource, module)`` for rendering the figure."""
    validate_partition(partition)
    return [(task, resource.value, TASK_MODULES[task])
            for task, resource in partition.items()]

"""Multi-standard time-slicing over the shared array.

"By time-slicing the processing of both protocols over the same
hardware, a large savings in the resources required can be achieved."
The scheduler loads one protocol's configurations, streams a block of
samples, removes them, and switches — accounting both the compute
cycles and the reconfiguration overhead so the trade-off is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.xpp import ConfigurationManager, Simulator


@dataclass
class SliceReport:
    """Outcome of one time slice."""

    protocol: str
    compute_cycles: int
    reconfig_cycles: int
    outputs: dict = field(default_factory=dict)
    peak_occupancy: dict = field(default_factory=dict)

    @property
    def overhead(self) -> float:
        """Reconfiguration cycles as a fraction of the whole slice."""
        total = self.compute_cycles + self.reconfig_cycles
        return self.reconfig_cycles / total if total else 0.0


class TimeSliceScheduler:
    """Runs alternating protocol configurations on one array."""

    def __init__(self, manager: Optional[ConfigurationManager] = None):
        self.manager = manager if manager is not None \
            else ConfigurationManager()
        self.history: list[SliceReport] = []
        self._footprints: dict[str, dict] = {}

    def run_slice(self, protocol: str, configs, *, max_cycles: int = 100_000,
                  until: Optional[Callable[[], bool]] = None) -> SliceReport:
        """Load ``configs``, simulate until done/quiescent, unload.

        Returns the slice's cycle accounting; sink outputs are collected
        into the report.
        """
        configs = list(configs)
        load_cycles = 0
        for cfg in configs:
            load_cycles += self.manager.load(cfg).load_cycles
        occupancy = {k: used for k, (used, _t)
                     in self.manager.occupancy().items()}
        self._footprints[protocol] = occupancy

        sim = Simulator(self.manager)
        stats = sim.run(max_cycles, until=until)

        outputs = {}
        for cfg in configs:
            for name, sink in cfg.sinks.items():
                outputs[name] = list(sink.received)
        remove_cycles = 0
        for cfg in configs:
            remove_cycles += self.manager.remove(cfg)
        report = SliceReport(protocol=protocol,
                             compute_cycles=stats.cycles,
                             reconfig_cycles=load_cycles + remove_cycles,
                             outputs=outputs,
                             peak_occupancy=occupancy)
        self.history.append(report)
        return report

    # -- aggregate accounting ------------------------------------------------------

    def total_overhead(self) -> float:
        """Fraction of all cycles spent reconfiguring."""
        compute = sum(r.compute_cycles for r in self.history)
        reconfig = sum(r.reconfig_cycles for r in self.history)
        total = compute + reconfig
        return reconfig / total if total else 0.0

    def resource_savings(self) -> dict:
        """Per-kind saving of time slicing vs dedicating hardware to
        every protocol simultaneously.

        ``saving = 1 - peak_demand / summed_demand``: with two protocols
        of similar footprint this approaches 50%.
        """
        kinds = set()
        for occ in self._footprints.values():
            kinds.update(occ)
        out = {}
        for kind in kinds:
            demands = [occ.get(kind, 0) for occ in self._footprints.values()]
            total = sum(demands)
            peak = max(demands) if demands else 0
            out[kind] = 1.0 - peak / total if total else 0.0
        return out

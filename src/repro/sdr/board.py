"""The SDR evaluation board (paper Fig. 11).

A functional model of the board: a MIPS 4Kc housekeeping
microcontroller (in the QuickMIPS device), a DSP slot accepting
different DSPs, a streaming FPGA providing data-routing configurations
(and hosting dedicated hardware), and the XPP-64A reconfigurable array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dsp import DspProcessor
from repro.xpp import ConfigurationManager, Router, XppArray


@dataclass
class StreamingFpga:
    """The programmable-logic data router of the board.

    Holds named routes between producers and consumers so hardware/
    software processing trade-offs can be re-wired without re-spinning
    anything — the board's stated purpose.
    """

    routes: dict = field(default_factory=dict)
    dedicated_blocks: set = field(default_factory=set)

    def connect(self, source: str, destination: str) -> None:
        self.routes[source] = destination

    def route_of(self, source: str) -> Optional[str]:
        return self.routes.get(source)

    def host_dedicated(self, block: str) -> None:
        """Instantiate a dedicated-hardware block in the FPGA fabric."""
        self.dedicated_blocks.add(block)


class EvaluationBoard:
    """Fig. 11: microcontroller + DSP slot + streaming FPGA + XPP-64A."""

    def __init__(self, *, dsp: Optional[DspProcessor] = None):
        self.microcontroller = DspProcessor(
            name="MIPS 4Kc", clock_hz=200e6, mips_capacity=240.0)
        self.dsp = dsp if dsp is not None else DspProcessor(
            name="DSP slot", clock_hz=200e6, mips_capacity=1600.0)
        self.fpga = StreamingFpga()
        self.array = XppArray()
        self.array_manager = ConfigurationManager(self.array,
                                                  router=Router())

    def swap_dsp(self, dsp: DspProcessor) -> None:
        """The DSP slot allows the integration of different DSPs."""
        self.dsp = dsp

    def describe(self) -> dict:
        """Inventory of the board for reports."""
        return {
            "microcontroller": self.microcontroller.name,
            "dsp": self.dsp.name,
            "dsp_capacity_mips": self.dsp.mips_capacity,
            "fpga_routes": dict(self.fpga.routes),
            "fpga_dedicated": sorted(self.fpga.dedicated_blocks),
            "array": self.array.name,
            "array_resources": {k: len(v)
                                for k, v in self.array.slots.items()},
        }

"""Processing-power and mobility landscapes (paper Figs. 1 and 2).

``PROTOCOL_MIPS`` reproduces the published bar chart; the
``estimate_*`` functions derive the same orders of magnitude from first
principles using our own receiver models, so the reproduction does not
merely echo the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ofdm.params import RATES, SAMPLE_RATE_HZ
from repro.rake.scenarios import MAX_LOGICAL_FINGERS
from repro.wcdma.params import CHIP_RATE_HZ

#: Fig. 1 — processing power by access protocol (MIPS).
PROTOCOL_MIPS = {
    "GSM": 10,
    "GPRS/HSCSD": 100,
    "EDGE": 1_000,
    "UMTS/W-CDMA": 10_000,
    "OFDM WLAN": 5_000,
}


@dataclass(frozen=True)
class MobilityPoint:
    """One protocol's envelope in the Fig. 2 landscape."""

    protocol: str
    data_rate_mbps: float
    max_mobility: str       # 'stationary' | 'pedestrian' | 'vehicular'
    environment: str        # 'indoor' | 'outdoor' | 'both'


#: Fig. 2 — data rate vs mobility for wireless access.
MOBILITY_ENVELOPE = [
    MobilityPoint("GSM", 0.0096, "vehicular", "both"),
    MobilityPoint("EDGE", 0.2, "vehicular", "both"),
    MobilityPoint("UMTS/W-CDMA", 2.0, "vehicular", "both"),
    MobilityPoint("HIPERLAN/2", 54.0, "pedestrian", "indoor"),
    MobilityPoint("IEEE 802.11a", 54.0, "pedestrian", "indoor"),
]

_MOBILITY_ORDER = {"stationary": 0, "pedestrian": 1, "vehicular": 2}


def figure1_rows() -> list:
    """Rows of Fig. 1: ``(protocol, mips)`` sorted by demand."""
    return sorted(PROTOCOL_MIPS.items(), key=lambda kv: kv[1])


def figure2_rows() -> list:
    """Rows of Fig. 2: ``(protocol, data_rate_mbps, max_mobility)``."""
    return [(p.protocol, p.data_rate_mbps, p.max_mobility)
            for p in MOBILITY_ENVELOPE]


# ---------------------------------------------------------------------------
# first-principles workload estimates from our receiver models
# ---------------------------------------------------------------------------

def estimate_rake_mips(*, fingers: int = MAX_LOGICAL_FINGERS,
                       basestations: int = 6,
                       ops_per_chip_per_finger: float = 16.0,
                       search_window: int = 64,
                       fec_bit_rate: float = 2e6,
                       fec_ops_per_bit: float = 150.0,
                       breakdown: bool = False):
    """Equivalent MIPS of the UMTS/W-CDMA baseband.

    Components, from our own receiver models:

    * rake datapath — per chip and logical finger a complex descramble
      multiply (~6 ops), a complex despread MAC (~6 ops) and
      addressing/control (~4 ops);
    * path search — a continuously running sliding-window pilot
      correlation (``search_window`` offsets, 2 ops each) per active-set
      basestation;
    * channel decoding — turbo/convolutional FEC at the peak 2 Mbit/s.

    For the paper's 18-finger soft-handover scenario this lands in the
    same decade as Fig. 1's 10 GIPS for UMTS/W-CDMA.
    """
    datapath = fingers * CHIP_RATE_HZ * ops_per_chip_per_finger
    searcher = basestations * CHIP_RATE_HZ * search_window * 2
    fec = fec_bit_rate * fec_ops_per_bit
    control = 0.05 * (datapath + searcher)
    total = (datapath + searcher + fec + control) / 1e6
    if breakdown:
        return {"datapath": datapath / 1e6, "searcher": searcher / 1e6,
                "fec": fec / 1e6, "control": control / 1e6, "total": total}
    return total


def estimate_gsm_mips(*, symbol_rate: float = 270_833.0,
                      equalizer_states: int = 16,
                      ops_per_state: float = 4.0) -> float:
    """Equivalent MIPS of a GSM baseband.

    Dominated by the 16-state MLSE equaliser for GMSK over the ~5-tap
    urban channel, plus speech codec and control overhead (~30%).
    Lands in Fig. 1's 10-MIPS decade.
    """
    equalizer = symbol_rate * equalizer_states * ops_per_state
    return equalizer * 1.3 / 1e6


def estimate_gprs_mips(*, slots: int = 4) -> float:
    """GPRS/HSCSD: GSM processing on ``slots`` simultaneous timeslots
    plus RLC/MAC; an order of magnitude over plain GSM once coding and
    multi-slot buffering are included (Fig. 1's 100-MIPS decade)."""
    per_slot = estimate_gsm_mips()
    rlc_mac = 10.0 * slots
    return 2.0 * slots * per_slot + rlc_mac


def estimate_edge_mips(*, symbol_rate: float = 270_833.0,
                       equalizer_states: int = 64,
                       ops_per_state: float = 8.0, slots: int = 4) -> float:
    """EDGE: 8-PSK needs a far larger equaliser state space (reduced-
    state sequence estimation over 3 bits/symbol) with soft outputs,
    per active slot — Fig. 1's 1000-MIPS decade."""
    equalizer = symbol_rate * equalizer_states * ops_per_state
    return slots * equalizer * 1.3 / 1e6


def estimate_ofdm_mips(rate_mbps: int = 54, *,
                       viterbi_ops_per_bit: float = 40.0) -> float:
    """Equivalent MIPS of the 802.11a receive chain.

    FFT64 butterflies per symbol (3 stages x 16 radix-4 butterflies,
    ~24 ops each), per-carrier equalisation and demapping, and the
    Viterbi decoder (~``viterbi_ops_per_bit`` x coded bit rate, by far
    the dominant term) — again in the same decade as Fig. 1's 5 GIPS.
    """
    rp = RATES[rate_mbps]
    symbol_rate = SAMPLE_RATE_HZ / 80.0              # 250 kSym/s
    fft_ops = symbol_rate * 3 * 16 * 24
    equalise_ops = symbol_rate * 52 * 8
    demap_ops = symbol_rate * rp.n_cbps * 4
    coded_bit_rate = symbol_rate * rp.n_cbps
    viterbi_ops = coded_bit_rate * viterbi_ops_per_bit
    frontend_ops = SAMPLE_RATE_HZ * 8                # filtering/sync
    total = fft_ops + equalise_ops + demap_ops + viterbi_ops + frontend_ops
    return total / 1e6

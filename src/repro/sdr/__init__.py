"""The SDR terminal system model.

Ties the substrates together the way the paper's terminal does:

* :mod:`repro.sdr.requirements` — the processing-power (Fig. 1) and
  data-rate-vs-mobility (Fig. 2) landscapes, including first-principles
  workload estimates from our own receiver models;
* :mod:`repro.sdr.partition` — the task partitioning of the rake
  receiver (Fig. 4) and OFDM decoder (Fig. 8) across DSP, dedicated and
  reconfigurable hardware;
* :mod:`repro.sdr.board` — the SDR evaluation board of Fig. 11;
* :mod:`repro.sdr.timeslice` — the multi-standard time-slicing of both
  protocols over the same reconfigurable array.
"""

from repro.sdr.requirements import (
    MOBILITY_ENVELOPE,
    PROTOCOL_MIPS,
    MobilityPoint,
    estimate_edge_mips,
    estimate_gprs_mips,
    estimate_gsm_mips,
    estimate_ofdm_mips,
    estimate_rake_mips,
    figure1_rows,
    figure2_rows,
)
from repro.sdr.partition import (
    OFDM_PARTITION,
    RAKE_PARTITION,
    Resource,
    partition_table,
    tasks_on,
    validate_partition,
)
from repro.sdr.board import EvaluationBoard
from repro.sdr.firmware import DeployedFirmware, Firmware
from repro.sdr.terminal import Terminal, TerminalReport
from repro.sdr.timeslice import SliceReport, TimeSliceScheduler

__all__ = [
    "DeployedFirmware",
    "EvaluationBoard",
    "Firmware",
    "MOBILITY_ENVELOPE",
    "MobilityPoint",
    "OFDM_PARTITION",
    "PROTOCOL_MIPS",
    "RAKE_PARTITION",
    "Resource",
    "SliceReport",
    "Terminal",
    "TerminalReport",
    "TimeSliceScheduler",
    "estimate_edge_mips",
    "estimate_gprs_mips",
    "estimate_gsm_mips",
    "estimate_ofdm_mips",
    "estimate_rake_mips",
    "figure1_rows",
    "figure2_rows",
    "partition_table",
    "tasks_on",
    "validate_partition",
]

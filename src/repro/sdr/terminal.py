"""The multi-standard mobile terminal — the paper's end product.

One object owning the Fig. 11 board, with both protocol stacks deployed
as firmware and time-sliced over the shared array: a UMTS/W-CDMA rake
session and an 802.11a receiver whose FFTs (and optionally the
equaliser) run on the array.  Every reception is accounted against the
board's resources, the reconfiguration budget and the DSP's MIPS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dsp import DspTask
from repro.rake import RakeSession
from repro.sdr.board import EvaluationBoard
from repro.sdr.firmware import Firmware
from repro.wlan import ArrayOfdmReceiver
from repro.wlan.schedule import Fig10Schedule


@dataclass
class TerminalReport:
    """Cumulative accounting of the terminal's activity."""

    umts_blocks: int = 0
    umts_bits: int = 0
    wlan_packets: int = 0
    wlan_bits: int = 0
    array_cycles: int = 0
    reconfig_cycles: int = 0


class Terminal:
    """A dual-standard terminal on the Fig. 11 evaluation board."""

    def __init__(self, *, umts_sf: int = 16, umts_code_index: int = 3,
                 active_set=(0,), board: Optional[EvaluationBoard] = None):
        self.board = board if board is not None else EvaluationBoard()
        self.report = TerminalReport()

        # the DSP side of both stacks, admitted up front
        control = Firmware("terminal_control")
        control.add_dsp_task(DspTask("rake control & sync", 3e4, 1500))
        control.add_dsp_task(DspTask("pilot acquisition", 5e4, 100))
        control.add_dsp_task(DspTask("channel estimation", 2e4, 1500))
        control.add_dsp_task(DspTask("wlan layer 2", 1e5, 500))
        control.add_dedicated_block("scrambling code generation")
        control.add_dedicated_block("spreading code generation")
        control.add_dedicated_block("viterbi")
        self._control = control.deploy(self.board)

        self.rake = RakeSession(sf=umts_sf, code_index=umts_code_index,
                                active_set=list(active_set))
        self.wlan = ArrayOfdmReceiver()
        self._wlan_schedule: Optional[Fig10Schedule] = None

    # -- UMTS ------------------------------------------------------------------------

    def receive_umts(self, rx: np.ndarray, n_symbols: int):
        """Process one W-CDMA block through the rake session."""
        bits, info = self.rake.process_block(rx, n_symbols)
        self.report.umts_blocks += 1
        self.report.umts_bits += bits.size
        return bits, info

    # -- WLAN ------------------------------------------------------------------------

    def receive_wlan(self, rx: np.ndarray):
        """Decode one 802.11a packet, running the Fig. 10 configuration
        lifecycle on the board's array around the datapath."""
        schedule = Fig10Schedule(self.board.array_manager)
        schedule.start_acquisition()
        try:
            psdu, report = self.wlan.receive(rx)
            schedule.acquisition_done()     # 2a -> 2b after sync
        finally:
            schedule.stop()
        self.report.wlan_packets += 1
        self.report.wlan_bits += psdu.size
        self.report.array_cycles += self.wlan.array_cycles
        self.report.reconfig_cycles += schedule.reconfig_cycles
        return psdu, report

    # -- bookkeeping ------------------------------------------------------------------

    @property
    def dsp_utilization(self) -> float:
        return self.board.dsp.utilization

    def occupancy(self) -> dict:
        return self.board.array_manager.occupancy()

    def shutdown(self) -> None:
        """Release everything on the board."""
        self._control.undeploy()

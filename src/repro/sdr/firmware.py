"""The combined executable of the design flow (paper Fig. 3).

The XPP design flow links the microcontroller/DSP code and the array
configurations into one *combined executable*.  :class:`Firmware` is
that artefact for the simulator: a named bundle of DSP tasks and
configuration factories that deploys atomically onto an evaluation
board — either every part fits (DSP MIPS budget *and* array resources)
or nothing is left behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dsp import DspTask, OverloadError
from repro.sdr.board import EvaluationBoard
from repro.xpp.errors import ResourceError


@dataclass
class Firmware:
    """A linked bundle: DSP tasks + array configuration factories.

    Factories (rather than configurations) because array objects carry
    run-time state; each deployment instantiates fresh hardware images.
    """

    name: str
    dsp_tasks: list = field(default_factory=list)
    config_factories: list = field(default_factory=list)
    dedicated_blocks: list = field(default_factory=list)

    def add_dsp_task(self, task: DspTask) -> "Firmware":
        self.dsp_tasks.append(task)
        return self

    def add_configuration(self, factory: Callable) -> "Firmware":
        """``factory() -> Configuration`` builds one array image."""
        self.config_factories.append(factory)
        return self

    def add_dedicated_block(self, block: str) -> "Firmware":
        """A block instantiated in the board's streaming FPGA."""
        self.dedicated_blocks.append(block)
        return self

    def required_mips(self) -> float:
        return sum(t.mips for t in self.dsp_tasks)

    def deploy(self, board: EvaluationBoard) -> "DeployedFirmware":
        """Load everything onto the board, atomically.

        Raises :class:`OverloadError` or :class:`ResourceError` if any
        part does not fit; on failure the board is untouched.
        """
        admitted = []
        loaded = []
        try:
            for task in self.dsp_tasks:
                board.dsp.admit(task)
                admitted.append(task.name)
            for factory in self.config_factories:
                cfg = factory()
                board.array_manager.load(cfg)
                loaded.append(cfg)
        except (OverloadError, ResourceError):
            for name in admitted:
                board.dsp.drop(name)
            for cfg in loaded:
                board.array_manager.remove(cfg)
            raise
        for block in self.dedicated_blocks:
            board.fpga.host_dedicated(block)
        return DeployedFirmware(firmware=self, board=board,
                                configurations=loaded)


@dataclass
class DeployedFirmware:
    """Handle to a running deployment; supports clean teardown."""

    firmware: Firmware
    board: EvaluationBoard
    configurations: list

    @property
    def active(self) -> bool:
        return bool(self.configurations) or any(
            t.name in {bt.name for bt in self.board.dsp.tasks}
            for t in self.firmware.dsp_tasks)

    def undeploy(self) -> None:
        """Remove every task and configuration of this deployment."""
        for task in self.firmware.dsp_tasks:
            try:
                self.board.dsp.drop(task.name)
            except KeyError:
                pass
        for cfg in self.configurations:
            if self.board.array_manager.is_loaded(cfg.name):
                self.board.array_manager.remove(cfg)
        self.configurations = []

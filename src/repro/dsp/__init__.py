"""Control-flow processor model (the DSP/microcontroller of the paper).

The DSP runs the algorithmic, low-criticality control tasks: path
search scheduling, channel estimation, synchronisation, layer-2.  This
package models it at the task level with MIPS cost accounting — the
currency of the paper's Fig. 1 — rather than instruction by
instruction.
"""

from repro.dsp.processor import DspProcessor, DspTask, OverloadError

__all__ = ["DspProcessor", "DspTask", "OverloadError"]

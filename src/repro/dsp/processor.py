"""Task-level DSP model with MIPS accounting.

The paper: "Modern high-performance DSPs can provide around 1600 MIPS
at clock speeds of 200 MHz" — and power constraints cap the clock, which
is why the heavy data-flow work moves to the array.  Tasks here carry an
instructions-per-invocation cost and an invocation rate; the processor
admits tasks while capacity lasts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.telemetry import get_metrics, get_tracer


class OverloadError(Exception):
    """Admitting the task would exceed the DSP's MIPS capacity."""


@dataclass(frozen=True)
class DspTask:
    """A periodic control task.

    ``instructions`` per invocation at ``rate_hz`` invocations/second;
    ``run`` optionally carries the Python implementation of the task so
    system models can actually execute it.
    """

    name: str
    instructions: float
    rate_hz: float
    run: Optional[Callable] = None

    def __post_init__(self) -> None:
        if self.instructions < 0 or self.rate_hz < 0:
            raise ValueError(f"{self.name}: negative cost or rate")

    @property
    def mips(self) -> float:
        """Sustained load in millions of instructions per second."""
        return self.instructions * self.rate_hz / 1e6


class DspProcessor:
    """A DSP with a MIPS budget (default: the paper's 1600-MIPS class
    device at 200 MHz)."""

    def __init__(self, *, name: str = "DSP", clock_hz: float = 200e6,
                 mips_capacity: float = 1600.0):
        if clock_hz <= 0 or mips_capacity <= 0:
            raise ValueError("clock and capacity must be positive")
        self.name = name
        self.clock_hz = clock_hz
        self.mips_capacity = mips_capacity
        self.tasks: list[DspTask] = []
        self.invocations: dict[str, int] = {}

    @property
    def load_mips(self) -> float:
        return sum(t.mips for t in self.tasks)

    @property
    def headroom_mips(self) -> float:
        return self.mips_capacity - self.load_mips

    @property
    def utilization(self) -> float:
        return self.load_mips / self.mips_capacity

    def admit(self, task: DspTask) -> None:
        """Register a periodic task; raises :class:`OverloadError` when
        the budget is exhausted."""
        if any(t.name == task.name for t in self.tasks):
            raise ValueError(f"task {task.name!r} already admitted")
        if self.load_mips + task.mips > self.mips_capacity:
            raise OverloadError(
                f"{self.name}: task {task.name!r} needs {task.mips:.1f} "
                f"MIPS but only {self.headroom_mips:.1f} are free")
        self.tasks.append(task)
        self.invocations.setdefault(task.name, 0)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(f"dsp.admit:{task.name}", "dsp",
                           args={"task": task.name, "mips": task.mips,
                                 "load_mips": self.load_mips,
                                 "headroom_mips": self.headroom_mips})
        self._update_load_metrics()

    def drop(self, name: str) -> None:
        before = len(self.tasks)
        self.tasks = [t for t in self.tasks if t.name != name]
        if len(self.tasks) == before:
            raise KeyError(f"no task named {name!r}")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(f"dsp.drop:{name}", "dsp",
                           args={"task": name, "load_mips": self.load_mips})
        self._update_load_metrics()

    def _update_load_metrics(self) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(f"dsp.load_mips.{self.name}").set(self.load_mips)
            metrics.gauge(f"dsp.utilization.{self.name}").set(self.utilization)

    def invoke(self, name: str, *args, **kwargs):
        """Execute a task's Python body (if it has one) and count it.

        With tracing on, each invocation is a ``dsp.task:<name>`` span
        whose ``args`` carry the task's instruction cost and MIPS share,
        profiling the control code against the processor's budget.
        """
        for t in self.tasks:
            if t.name == name:
                self.invocations[name] += 1
                tracer = get_tracer()
                metrics = get_metrics()
                if metrics.enabled:
                    metrics.counter(f"dsp.invocations.{name}").inc()
                if tracer.enabled:
                    with tracer.span(f"dsp.task:{name}", "dsp",
                                     args={"task": name,
                                           "instructions": t.instructions,
                                           "mips": t.mips}):
                        if t.run is not None:
                            return t.run(*args, **kwargs)
                        return None
                if t.run is not None:
                    return t.run(*args, **kwargs)
                return None
        raise KeyError(f"no task named {name!r}")

    def report(self) -> dict:
        return {
            "name": self.name,
            "capacity_mips": self.mips_capacity,
            "load_mips": self.load_mips,
            "utilization": self.utilization,
            "tasks": {t.name: t.mips for t in self.tasks},
        }

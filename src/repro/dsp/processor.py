"""Task-level DSP model with MIPS accounting.

The paper: "Modern high-performance DSPs can provide around 1600 MIPS
at clock speeds of 200 MHz" — and power constraints cap the clock, which
is why the heavy data-flow work moves to the array.  Tasks here carry an
instructions-per-invocation cost and an invocation rate; the processor
admits tasks while capacity lasts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.telemetry import ALERT_DEADLINE, get_metrics, get_probes, get_tracer


class OverloadError(Exception):
    """Admitting the task would exceed the DSP's MIPS capacity."""


@dataclass(frozen=True)
class DspTask:
    """A periodic control task.

    ``instructions`` per invocation at ``rate_hz`` invocations/second;
    ``run`` optionally carries the Python implementation of the task so
    system models can actually execute it.
    """

    name: str
    instructions: float
    rate_hz: float
    run: Optional[Callable] = None

    def __post_init__(self) -> None:
        if self.instructions < 0 or self.rate_hz < 0:
            raise ValueError(f"{self.name}: negative cost or rate")

    @property
    def mips(self) -> float:
        """Sustained load in millions of instructions per second."""
        return self.instructions * self.rate_hz / 1e6


class DspProcessor:
    """A DSP with a MIPS budget (default: the paper's 1600-MIPS class
    device at 200 MHz)."""

    def __init__(self, *, name: str = "DSP", clock_hz: float = 200e6,
                 mips_capacity: float = 1600.0):
        if clock_hz <= 0 or mips_capacity <= 0:
            raise ValueError("clock and capacity must be positive")
        self.name = name
        self.clock_hz = clock_hz
        self.mips_capacity = mips_capacity
        self.tasks: list[DspTask] = []
        self.invocations: dict[str, int] = {}
        #: fault-injection surface: called as ``fault_hook(task)`` on
        #: every invocation; returns a slowdown factor (>1 stretches the
        #: invocation's execution time, possibly past its deadline).
        #: ``None``/1.0 leaves the invocation nominal.
        self.fault_hook: Optional[Callable[[DspTask], Optional[float]]] = None
        self.deadline_overruns: dict[str, int] = {}

    @property
    def load_mips(self) -> float:
        return sum(t.mips for t in self.tasks)

    @property
    def headroom_mips(self) -> float:
        return self.mips_capacity - self.load_mips

    @property
    def utilization(self) -> float:
        return self.load_mips / self.mips_capacity

    def admit(self, task: DspTask) -> None:
        """Register a periodic task; raises :class:`OverloadError` when
        the budget is exhausted."""
        if any(t.name == task.name for t in self.tasks):
            raise ValueError(f"task {task.name!r} already admitted")
        if self.load_mips + task.mips > self.mips_capacity:
            raise OverloadError(
                f"{self.name}: task {task.name!r} needs {task.mips:.1f} "
                f"MIPS but only {self.headroom_mips:.1f} are free")
        self.tasks.append(task)
        self.invocations.setdefault(task.name, 0)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(f"dsp.admit:{task.name}", "dsp",
                           args={"task": task.name, "mips": task.mips,
                                 "load_mips": self.load_mips,
                                 "headroom_mips": self.headroom_mips})
        self._update_load_metrics()

    def drop(self, name: str) -> None:
        before = len(self.tasks)
        self.tasks = [t for t in self.tasks if t.name != name]
        if len(self.tasks) == before:
            raise KeyError(f"no task named {name!r}")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(f"dsp.drop:{name}", "dsp",
                           args={"task": name, "load_mips": self.load_mips})
        self._update_load_metrics()

    def _update_load_metrics(self) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(f"dsp.load_mips.{self.name}").set(self.load_mips)
            metrics.gauge(f"dsp.utilization.{self.name}").set(self.utilization)

    def invoke(self, name: str, *args, **kwargs):
        """Execute a task's Python body (if it has one) and count it.

        With tracing on, each invocation is a ``dsp.task:<name>`` span
        whose ``args`` carry the task's instruction cost and MIPS share,
        profiling the control code against the processor's budget.
        """
        for t in self.tasks:
            if t.name == name:
                self.invocations[name] += 1
                tracer = get_tracer()
                metrics = get_metrics()
                if self.fault_hook is not None:
                    self._check_deadline(t)
                if metrics.enabled:
                    metrics.counter(f"dsp.invocations.{name}").inc()
                if tracer.enabled:
                    with tracer.span(f"dsp.task:{name}", "dsp",
                                     args={"task": name,
                                           "instructions": t.instructions,
                                           "mips": t.mips}):
                        if t.run is not None:
                            return t.run(*args, **kwargs)
                        return None
                if t.run is not None:
                    return t.run(*args, **kwargs)
                return None
        raise KeyError(f"no task named {name!r}")

    def _check_deadline(self, task: DspTask) -> None:
        """Apply the fault hook's slowdown and account deadline misses.

        A periodic task's deadline is its period: an invocation whose
        (stretched) execution time exceeds ``1/rate_hz`` overran.  The
        nominal execution time assumes one instruction per clock — the
        paper's 1600-MIPS-at-200-MHz class device sustains that only
        across eight parallel units, so a factor well above 8 is needed
        to overrun a task sized near its budget.
        """
        factor = float(self.fault_hook(task) or 1.0)
        if factor <= 1.0 or task.rate_hz <= 0:
            return
        exec_s = factor * task.instructions / self.clock_hz
        if exec_s <= 1.0 / task.rate_hz:
            return
        self.deadline_overruns[task.name] = \
            self.deadline_overruns.get(task.name, 0) + 1
        probes = get_probes()
        if probes.enabled:
            probes.alert(ALERT_DEADLINE, f"dsp.{task.name}", value=factor,
                         message=f"{task.name!r} invocation stretched "
                                 f"{factor:g}x past its "
                                 f"{1e6 / task.rate_hz:.0f}us deadline")
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(f"dsp.deadline_overruns.{task.name}").inc()

    def report(self) -> dict:
        return {
            "name": self.name,
            "capacity_mips": self.mips_capacity,
            "load_mips": self.load_mips,
            "utilization": self.utilization,
            "tasks": {t.name: t.mips for t in self.tasks},
            "deadline_overruns": dict(self.deadline_overruns),
        }

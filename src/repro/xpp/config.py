"""Configurations: software-defined netlists of array objects.

A configuration describes the behaviour of a set of processing elements
and the routing between them.  :class:`ConfigBuilder` is the programming
interface the kernels use — it plays the role of the paper's NML entry in
the XPP design flow (Fig. 3), at the Python level.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.xpp.alu import make_alu
from repro.xpp.errors import ConfigurationError
from repro.xpp.io import StreamSink, StreamSource
from repro.xpp.objects import DataflowObject, Probe
from repro.xpp.port import DEFAULT_CAPACITY, Wire
from repro.xpp.ram import FifoPae, RamPae


class Configuration:
    """A named set of array objects plus the wires connecting them."""

    def __init__(self, name: str):
        self.name = name
        self.objects: list[DataflowObject] = []
        self.wires: list[Wire] = []
        self.sources: dict[str, StreamSource] = {}
        self.sinks: dict[str, StreamSink] = {}
        self.probes: dict[str, Probe] = {}
        #: optional placement hints (a :class:`repro.pnr.place.Placement`)
        #: attached by the pnr compiler; the manager honours them
        #: best-effort at load time.
        self.placement = None

    # -- composition -----------------------------------------------------------

    def add(self, obj: DataflowObject) -> DataflowObject:
        if any(o.name == obj.name for o in self.objects):
            raise ConfigurationError(
                f"{self.name}: duplicate object name {obj.name!r}")
        self.objects.append(obj)
        if isinstance(obj, StreamSource):
            self.sources[obj.name] = obj
        elif isinstance(obj, StreamSink):
            self.sinks[obj.name] = obj
        elif isinstance(obj, Probe):
            self.probes[obj.name] = obj
        return obj

    def connect(self, src: DataflowObject, src_port, dst: DataflowObject,
                dst_port, *, capacity: int = DEFAULT_CAPACITY) -> Wire:
        """Route ``src.src_port`` to ``dst.dst_port`` (ports by index or name)."""
        out = src.out_port(src_port)
        inp = dst.in_port(dst_port)
        wire = Wire(f"{src.name}.{out.name}->{dst.name}.{inp.name}", capacity)
        out.bind(wire)
        inp.bind(wire)
        self.wires.append(wire)
        return wire

    # -- introspection -----------------------------------------------------------

    def requirements(self) -> Counter:
        """Resource demand by kind: ``{'alu': n, 'ram': m, 'io': k}``."""
        return Counter(o.KIND for o in self.objects if o.KIND is not None)

    def object(self, name: str) -> DataflowObject:
        for o in self.objects:
            if o.name == name:
                return o
        raise KeyError(f"{self.name}: no object named {name!r}")

    def wire(self, name: str) -> Wire:
        for w in self.wires:
            if w.name == name:
                return w
        raise KeyError(f"{self.name}: no wire named {name!r}")

    def reset(self) -> None:
        """Restore every object and wire to its build-time state.

        This is what a configuration *reload* means physically: the
        stored configuration words re-program the claimed PAEs, so
        registers, RAM images and FIFO preloads return to their
        initial values and all in-flight tokens are lost.  Recovery
        policies (:mod:`repro.faults.recovery`) call this before
        re-loading a configuration onto spare resources.
        """
        for o in self.objects:
            o.reset()
        for w in self.wires:
            w.reset()

    def validate(self) -> None:
        """Check the netlist is runnable: inputs that an object's firing
        rule waits on must be driven."""
        from repro.xpp.io import MemoryPort
        for o in self.objects:
            if isinstance(o, (RamPae, FifoPae, MemoryPort)):
                continue    # ports are optional by design
            required = o.inputs
            if isinstance(o, StreamSource):
                required = []
            for p in required:
                if not p.bound and not self._optional_input(o, p):
                    raise ConfigurationError(
                        f"{self.name}: {o.name}.{p.name} is unconnected")

    @staticmethod
    def _optional_input(obj: DataflowObject, port) -> bool:
        from repro.xpp.alu import BinaryAlu
        if isinstance(obj, BinaryAlu) and port.name == "b":
            return obj.const is not None
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        req = dict(self.requirements())
        return f"<Configuration {self.name!r} {req}>"


class ConfigBuilder:
    """Fluent construction of a :class:`Configuration`.

    Example::

        b = ConfigBuilder("mac")
        src = b.source("x")
        mul = b.alu("MUL", const=3)
        snk = b.sink("y")
        b.chain(src, mul, snk)
        cfg = b.build()
    """

    def __init__(self, name: str):
        self._cfg = Configuration(name)
        self._auto = 0

    def _name(self, prefix: str, name: Optional[str]) -> str:
        if name is not None:
            return name
        self._auto += 1
        return f"{prefix}{self._auto}"

    def alu(self, opcode: str, name: Optional[str] = None, **params):
        """Add an ALU-PAE with the given opcode."""
        return self._cfg.add(make_alu(self._name(opcode.lower(), name),
                                      opcode, **params))

    def ram(self, name: Optional[str] = None, **params) -> RamPae:
        """Add a RAM-PAE in RAM mode."""
        return self._cfg.add(RamPae(self._name("ram", name), **params))

    def fifo(self, name: Optional[str] = None, **params) -> FifoPae:
        """Add a RAM-PAE in FIFO mode."""
        return self._cfg.add(FifoPae(self._name("fifo", name), **params))

    def source(self, name: str, data=None, *, bits: int = 24) -> StreamSource:
        """Add an external input stream."""
        return self._cfg.add(StreamSource(name, data, bits=bits))

    def sink(self, name: str, *, expect: Optional[int] = None) -> StreamSink:
        """Add an external output stream."""
        return self._cfg.add(StreamSink(name, expect=expect))

    def probe(self, name: str) -> Probe:
        """Add a zero-cost wire probe (simulation-only)."""
        return self._cfg.add(Probe(name))

    def connect(self, src, src_port, dst, dst_port, **kw) -> Wire:
        return self._cfg.connect(src, src_port, dst, dst_port, **kw)

    def chain(self, *objs, capacity: int = DEFAULT_CAPACITY) -> None:
        """Connect ``objs[i].out0 -> objs[i+1].in0`` along the list."""
        for a, b in zip(objs, objs[1:]):
            self._cfg.connect(a, 0, b, 0, capacity=capacity)

    def build(self) -> Configuration:
        self._cfg.validate()
        return self._cfg

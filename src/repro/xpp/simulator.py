"""Synchronous cycle-driven simulation of the array.

All resources on the XPP execute completely synchronously in a single
clock domain.  Each simulated cycle has two phases: every object *plans*
a firing against the wire state at the start of the cycle, then all
planned firings *commit*.  Planning is read-only, so object evaluation
order cannot affect results.

Which objects get planned each cycle is delegated to a scheduler
(:mod:`repro.xpp.scheduler`).  The default :class:`EventScheduler` only
re-plans objects whose wires changed, which is bit-exact with the
exhaustive :class:`NaiveScheduler` under the two-phase protocol; pass
``scheduler="naive"`` (or set ``REPRO_XPP_SCHEDULER=naive``) to force
the reference behaviour.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry import get_metrics, get_tracer
from repro.xpp.config import Configuration
from repro.xpp.manager import ConfigurationManager
from repro.xpp.scheduler import make_scheduler
from repro.xpp.stats import (
    STOP_MAX_CYCLES,
    STOP_QUIESCENT,
    STOP_UNTIL,
    RunStats,
)


class Simulator:
    """Runs the objects currently loaded by a configuration manager.

    Telemetry: with a recording tracer installed (``telemetry.
    enable_tracing()`` or an explicit ``tracer=``), each run emits a
    ``sim.run`` span, per-step ``sim.firings`` / ``sim.energy``
    counters and a ``sim.stop`` instant carrying the stop reason; the
    tracer's clock is stamped with the cycle counter every step so
    events from the manager or DSP land at the right cycle.  With a
    recording metrics registry, firing rates, FIFO depths and
    throughput feed the ``sim.*`` instruments.  Both default to
    process-wide no-ops; ``run``/``step_n`` resolve them once per call,
    so the uninstrumented inner loop carries no telemetry lookups.
    """

    def __init__(self, manager: ConfigurationManager, *,
                 tracer=None, metrics=None, scheduler=None, faults=None):
        self.manager = manager
        self.cycle = 0
        self.tracer = tracer        # None -> use the process-wide tracer
        self.metrics = metrics      # None -> use the process-wide registry
        self.scheduler = make_scheduler(scheduler)
        self.scheduler.bind(manager)
        self.faults = faults        # a repro.faults.FaultInjector, or None
        if faults is not None:
            faults.attach(self)

    def _tracer(self):
        return self.tracer if self.tracer is not None else get_tracer()

    def _metrics(self):
        return self.metrics if self.metrics is not None else get_metrics()

    def step(self) -> int:
        """Advance one clock cycle; returns the number of firings.

        Single steps always run a full evaluation: callers that step
        manually may have mutated object or wire state in between (e.g.
        refilling a source), which the event scheduler cannot observe.
        Use :meth:`step_n` or :meth:`run` for the batched fast path.
        """
        self.scheduler.invalidate()
        fired = self.scheduler.step()
        self.cycle += 1
        return fired

    def step_n(self, n: int) -> int:
        """Advance ``n`` clock cycles; returns the total number of firings.

        The batched counterpart of :meth:`step`: the event scheduler's
        ready list stays warm across the whole batch, and telemetry is
        resolved once up front (per-step counters are still emitted when
        a recording tracer/metrics registry is installed).
        """
        sched = self.scheduler
        sched.invalidate()
        sched_step = sched.step
        tracer = self._tracer()
        metrics = self._metrics()
        tracing = tracer.enabled
        sampling = metrics.enabled
        total = 0
        if tracing or sampling:
            for _ in range(n):
                fired = sched_step()
                self.cycle += 1
                total += fired
                if tracing:
                    tracer.set_time(self.cycle)
                    tracer.counter("sim.firings", fired, "sim", ts=self.cycle)
                    tracer.counter("sim.energy", self._energy_now(), "sim",
                                   ts=self.cycle)
                if sampling:
                    self._sample_metrics(metrics, fired)
        else:
            batched = getattr(sched, "step_n", None)
            if batched is not None:
                total = batched(n)
            else:
                for _ in range(n):
                    total += sched_step()
            self.cycle += n
        return total

    def run(self, max_cycles: int, *, until: Optional[Callable[[], bool]] = None,
            quiescent_limit: int = 8) -> RunStats:
        """Run until ``until()`` is true, the array goes quiescent for
        ``quiescent_limit`` consecutive cycles, or ``max_cycles`` elapse.

        The returned stats carry which of the three stopped the run in
        ``stop_reason`` — a run that exhausted ``max_cycles`` with a
        stalled pipeline is not the same as one that drained cleanly.
        """
        start_cycle = self.cycle
        idle = 0
        stop_reason = STOP_MAX_CYCLES
        tracer = self._tracer()
        metrics = self._metrics()
        tracing = tracer.enabled
        sampling = metrics.enabled
        sched = self.scheduler
        sched.invalidate()
        sched_step = sched.step
        if tracing or sampling:
            if tracing:
                tracer.set_time(self.cycle)
            while self.cycle - start_cycle < max_cycles:
                if until is not None and until():
                    stop_reason = STOP_UNTIL
                    break
                fired = sched_step()
                self.cycle += 1
                if tracing:
                    tracer.set_time(self.cycle)
                    tracer.counter("sim.firings", fired, "sim", ts=self.cycle)
                    tracer.counter("sim.energy", self._energy_now(), "sim",
                                   ts=self.cycle)
                if sampling:
                    self._sample_metrics(metrics, fired)
                if fired == 0:
                    idle += 1
                    if idle >= quiescent_limit:
                        stop_reason = STOP_QUIESCENT
                        break
                else:
                    idle = 0
        elif until is not None:
            end = start_cycle + max_cycles
            while self.cycle < end:
                if until():
                    stop_reason = STOP_UNTIL
                    break
                fired = sched_step()
                self.cycle += 1
                if fired == 0:
                    idle += 1
                    if idle >= quiescent_limit:
                        stop_reason = STOP_QUIESCENT
                        break
                else:
                    idle = 0
        else:
            cycle = self.cycle
            end = start_cycle + max_cycles
            while cycle < end:
                fired = sched_step()
                cycle += 1
                if fired == 0:
                    idle += 1
                    if idle >= quiescent_limit:
                        stop_reason = STOP_QUIESCENT
                        break
                else:
                    idle = 0
            self.cycle = cycle
        cycles = self.cycle - start_cycle
        if tracing:
            tracer.complete("sim.run", ts=start_cycle, dur=cycles, cat="sim",
                            args={"stop_reason": stop_reason,
                                  "cycles": cycles})
            tracer.instant("sim.stop", "sim", ts=self.cycle,
                           args={"reason": stop_reason})
        stats = self.collect_stats(cycles)
        stats.stop_reason = stop_reason
        if sampling:
            self._finish_metrics(metrics, stats)
        return stats

    def drain(self, max_cycles: int = 100_000, *,
              quiescent_limit: int = 8) -> RunStats:
        """Run with no stop predicate until the array goes quiescent."""
        return self.run(max_cycles, quiescent_limit=quiescent_limit)

    # -- telemetry helpers (only called when tracing/metrics are on) ---------

    def _energy_now(self) -> float:
        """Cumulative firing energy of the active objects — sampled per
        step so spans can be attributed an energy cost."""
        return sum(o.fired * o.ENERGY for o in self.manager.active_objects())

    def _sample_metrics(self, metrics, fired: int) -> None:
        metrics.counter("sim.steps").inc()
        metrics.counter("sim.firings").inc(fired)
        metrics.histogram("sim.firings_per_cycle").observe(fired)
        depth = metrics.histogram("sim.fifo_depth")
        for w in self.manager.active_wires():
            depth.observe(len(w))
        metrics.maybe_snapshot(self.cycle)

    def _finish_metrics(self, metrics, stats: RunStats) -> None:
        metrics.counter("sim.runs").inc()
        metrics.counter(f"sim.stop.{stats.stop_reason}").inc()
        metrics.gauge("sim.mean_utilization").set(stats.mean_utilization())
        if stats.cycles:
            for name in stats.tokens_out:
                metrics.gauge(f"sim.tokens_per_cycle.{name}").set(
                    stats.throughput(name))
            for name in stats.firings:
                metrics.gauge(f"sim.firing_rate.{name}").set(
                    stats.utilization(name))

    def collect_stats(self, cycles: Optional[int] = None) -> RunStats:
        stats = RunStats(cycles=self.cycle if cycles is None else cycles)
        for obj in self.manager.active_objects():
            stats.firings[obj.name] = obj.fired
            stats.total_firings += obj.fired
            stats.energy += obj.fired * obj.ENERGY
        for entry in self.manager.loaded.values():
            for name, sink in entry.config.sinks.items():
                stats.tokens_out[name] = len(sink.received)
        return stats


class ExecResult:
    """Outputs and statistics of a one-shot configuration execution."""

    def __init__(self, outputs: dict, stats: RunStats, config: Configuration):
        self.outputs = outputs
        self.stats = stats
        self.config = config

    def __getitem__(self, sink_name: str) -> list:
        return self.outputs[sink_name]


def execute(config: Configuration, *, inputs: Optional[dict] = None,
            max_cycles: int = 100_000,
            manager: Optional[ConfigurationManager] = None,
            unload: bool = True, scheduler=None, faults=None) -> ExecResult:
    """Load a configuration, stream its inputs through, and collect sinks.

    ``inputs`` maps source names to sample sequences (sources may also be
    pre-filled at build time).  The run stops when every sink with an
    ``expect`` count is done, or when the array goes quiescent.

    ``faults`` optionally arms a :class:`repro.faults.FaultInjector`
    before the load, so configuration-load faults apply to this load
    and wire/RAM faults to this netlist.  The injector is detached
    again before returning.
    """
    mgr = manager if manager is not None else ConfigurationManager()
    if faults is not None:
        faults.arm_manager(mgr)
        faults.arm_config(config)
    mgr.load(config)
    if inputs:
        for name, data in inputs.items():
            config.sources[name].set_data(data)
    sim = Simulator(mgr, scheduler=scheduler)

    expected = [s for s in config.sinks.values() if s.expect is not None]
    if expected:
        stats = sim.run(max_cycles,
                        until=lambda: all(s.done for s in expected))
    else:
        stats = sim.run(max_cycles)
    outputs = {name: list(sink.received) for name, sink in config.sinks.items()}
    if unload:
        mgr.remove(config)
    if faults is not None:
        faults.detach()
    return ExecResult(outputs, stats, config)

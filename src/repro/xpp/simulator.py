"""Synchronous cycle-driven simulation of the array.

All resources on the XPP execute completely synchronously in a single
clock domain.  Each simulated cycle has two phases: every object *plans*
a firing against the wire state at the start of the cycle, then all
planned firings *commit*.  Planning is read-only, so object evaluation
order cannot affect results.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.xpp.config import Configuration
from repro.xpp.manager import ConfigurationManager
from repro.xpp.stats import RunStats


class Simulator:
    """Runs the objects currently loaded by a configuration manager."""

    def __init__(self, manager: ConfigurationManager):
        self.manager = manager
        self.cycle = 0

    def step(self) -> int:
        """Advance one clock cycle; returns the number of firings."""
        objects = self.manager.active_objects()
        wires = self.manager.active_wires()
        for w in wires:
            w.begin_cycle()
        fired = [o for o in objects if o.plan()]
        for o in fired:
            o.commit()
        for w in wires:
            w.end_cycle()
        self.cycle += 1
        return len(fired)

    def run(self, max_cycles: int, *, until: Optional[Callable[[], bool]] = None,
            quiescent_limit: int = 8) -> RunStats:
        """Run until ``until()`` is true, the array goes quiescent for
        ``quiescent_limit`` consecutive cycles, or ``max_cycles`` elapse."""
        start_cycle = self.cycle
        idle = 0
        while self.cycle - start_cycle < max_cycles:
            if until is not None and until():
                break
            fired = self.step()
            if fired == 0:
                idle += 1
                if idle >= quiescent_limit:
                    break
            else:
                idle = 0
        return self.collect_stats(self.cycle - start_cycle)

    def collect_stats(self, cycles: Optional[int] = None) -> RunStats:
        stats = RunStats(cycles=self.cycle if cycles is None else cycles)
        for obj in self.manager.active_objects():
            stats.firings[obj.name] = obj.fired
            stats.total_firings += obj.fired
            stats.energy += obj.fired * obj.ENERGY
        for entry in self.manager.loaded.values():
            for name, sink in entry.config.sinks.items():
                stats.tokens_out[name] = len(sink.received)
        return stats


class ExecResult:
    """Outputs and statistics of a one-shot configuration execution."""

    def __init__(self, outputs: dict, stats: RunStats, config: Configuration):
        self.outputs = outputs
        self.stats = stats
        self.config = config

    def __getitem__(self, sink_name: str) -> list:
        return self.outputs[sink_name]


def execute(config: Configuration, *, inputs: Optional[dict] = None,
            max_cycles: int = 100_000,
            manager: Optional[ConfigurationManager] = None,
            unload: bool = True) -> ExecResult:
    """Load a configuration, stream its inputs through, and collect sinks.

    ``inputs`` maps source names to sample sequences (sources may also be
    pre-filled at build time).  The run stops when every sink with an
    ``expect`` count is done, or when the array goes quiescent.
    """
    mgr = manager if manager is not None else ConfigurationManager()
    mgr.load(config)
    if inputs:
        for name, data in inputs.items():
            config.sources[name].set_data(data)
    sim = Simulator(mgr)

    def all_done() -> bool:
        expected = [s for s in config.sinks.values() if s.expect is not None]
        return bool(expected) and all(s.done for s in expected)

    stats = sim.run(max_cycles, until=all_done)
    outputs = {name: list(sink.received) for name, sink in config.sinks.items()}
    if unload:
        mgr.remove(config)
    return ExecResult(outputs, stats, config)

"""Token-carrying wires with the XPP handshake protocol.

The XPP communication resources implement a token-oriented data flow with
handshake (data is never lost, producers stall when consumers are not
ready).  Each point-to-point connection is modelled as a small elastic
buffer: the hardware's forward/shadow register pair gives every link a
slack of two tokens, which is what lets a full pipeline sustain one result
per clock cycle.

Simulation is two-phase per cycle: objects *plan* firings against the
buffer state at the start of the cycle (``available`` / ``space``), then
all firings *commit* (pops before pushes).  Planning never mutates, so the
evaluation order of objects within a cycle cannot change the outcome.

Wires also serve as the event source of the event-driven scheduler
(:mod:`repro.xpp.scheduler`): every pop/push during the commit phase
records the wire — once per cycle — on a scheduler-installed event list,
so the next cycle only needs to re-plan the objects watching wires whose
state actually changed.  Without a scheduler attached the recording
costs a single predicate per transfer.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.xpp.errors import ConfigurationError, SimulationError

#: Hardware slack of one link: forward register + shadow register.
DEFAULT_CAPACITY = 2


class Wire:
    """A point-to-point token buffer between one producer and one consumer."""

    __slots__ = ("name", "capacity", "_q", "_avail", "_space", "_pops",
                 "_pushes", "total_transfers", "_events", "_marked", "_tap")

    def __init__(self, name: str = "", capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ConfigurationError(f"wire capacity must be >= 1: {name}")
        self.name = name
        self.capacity = capacity
        self._q: deque = deque()
        self._avail = 0          # tokens visible to consumers this cycle
        self._space = capacity   # space visible to producers this cycle
        self._pops = 0
        self._pushes: list = []
        self.total_transfers = 0
        self._events: Optional[list] = None  # scheduler-installed event list
        self._marked = False                 # already on the event list?
        self._tap = None                     # fault-injector transfer tap

    # -- start of cycle -----------------------------------------------------

    def begin_cycle(self) -> None:
        """Latch the buffer state that this cycle's plans will see."""
        self._avail = len(self._q)
        self._space = self.capacity - len(self._q)
        self._pops = 0
        self._pushes = []

    # -- plan phase (read-only) ----------------------------------------------

    @property
    def available(self) -> int:
        """Tokens a consumer may take this cycle."""
        return self._avail - self._pops

    @property
    def space(self) -> int:
        """Tokens a producer may add this cycle."""
        return self._space - len(self._pushes)

    def peek(self, depth: int = 0) -> Any:
        """Look at a token without consuming it (plan phase)."""
        if depth >= self.available:
            raise SimulationError(f"peek beyond available tokens on {self.name}")
        return self._q[self._pops + depth]

    # -- commit phase ----------------------------------------------------------

    def pop(self) -> Any:
        """Consume the front token (commit phase)."""
        if self._pops >= self._avail:
            raise SimulationError(f"pop without available token on {self.name}")
        self._pops += 1
        self.total_transfers += 1
        if not self._marked and self._events is not None:
            self._marked = True
            self._events.append(self)
        return self._q.popleft()

    def push(self, value: Any) -> None:
        """Append a token (commit phase); lands at end of cycle."""
        if self._tap is not None:
            self._push_tapped(value)
            return
        if len(self._pushes) >= self._space:
            raise SimulationError(f"push without space on {self.name}")
        self._pushes.append(value)
        if not self._marked and self._events is not None:
            self._marked = True
            self._events.append(self)

    def _push_tapped(self, value: Any) -> None:
        """Push through an installed fault tap.

        The tap maps one produced token to the tokens that actually
        land on the wire: ``()`` models a dropped handshake token,
        two values a duplicated one, and a single different value a
        corrupted one.  A duplicate beyond the latched space is
        silently lost (the physical wire has nowhere to hold it); the
        event list is only marked when a token really lands, so the
        event scheduler's wakeup bookkeeping stays exact.
        """
        values = self._tap(value)
        if len(self._pushes) + len(values) > self._space:
            if not values:
                return
            values = values[:max(self._space - len(self._pushes), 0)]
        if not values:
            return
        self._pushes.extend(values)
        if not self._marked and self._events is not None:
            self._marked = True
            self._events.append(self)

    def end_cycle(self) -> None:
        """Fold this cycle's pushes into the buffer."""
        self._q.extend(self._pushes)
        self._pushes = []

    def reset(self) -> None:
        """Drop all buffered and in-flight tokens (configuration
        reload: the freed communication resources start empty)."""
        self._q.clear()
        self._pushes = []
        self._pops = 0
        self._avail = 0
        self._space = self.capacity

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._q)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Wire({self.name!r}, {list(self._q)!r})"


class InPort:
    """An object's input: reads from exactly one wire."""

    __slots__ = ("owner", "index", "name", "wire")

    def __init__(self, owner, index: int, name: str = ""):
        self.owner = owner
        self.index = index
        self.name = name or f"in{index}"
        self.wire: Optional[Wire] = None

    def bind(self, wire: Wire) -> None:
        if self.wire is not None:
            raise ConfigurationError(
                f"{self.owner.name}.{self.name} already driven")
        self.wire = wire

    @property
    def bound(self) -> bool:
        return self.wire is not None

    @property
    def available(self) -> int:
        return self.wire.available if self.wire is not None else 0

    def peek(self, depth: int = 0) -> Any:
        return self.wire.peek(depth)

    def pop(self) -> Any:
        return self.wire.pop()


class OutPort:
    """An object's output: fans out to zero or more wires."""

    __slots__ = ("owner", "index", "name", "wires")

    def __init__(self, owner, index: int, name: str = ""):
        self.owner = owner
        self.index = index
        self.name = name or f"out{index}"
        self.wires: list[Wire] = []

    def bind(self, wire: Wire) -> None:
        self.wires.append(wire)

    @property
    def bound(self) -> bool:
        return bool(self.wires)

    @property
    def space(self) -> int:
        """Free slots across the fan-out (min over destinations).

        An unconnected output is an infinite sink: tokens written to it
        are simply dropped, like an unrouted PAE output.
        """
        if not self.wires:
            return 1 << 30
        return min(w.space for w in self.wires)

    def push(self, value: Any) -> None:
        for w in self.wires:
            w.push(value)

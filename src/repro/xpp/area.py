"""Silicon-area proxy (the Fig. 12 die, architecturally).

The paper shows the XPP64A-1 layout in 0.13 µm ST HCMOS9.  We cannot
reproduce a die photo, but the architectural equivalent — how much of
the device's silicon a configuration occupies — follows from the
resource counts.  Calibration (documented assumptions for a 0.13 µm
coarse-grained array of this class):

* the XPP64A core is taken as ~32 mm²;
* a RAM-PAE (512x24 dual-ported SRAM + control) costs about twice an
  ALU-PAE; I/O and the configuration tree take a fixed share.

Absolute mm² are proxies; the *relative* areas (which configuration is
bigger, how much of the die a kernel needs) are the meaningful output.
"""

from __future__ import annotations

from repro.xpp.config import Configuration

#: Assumed XPP64A core area in 0.13 um (mm^2).
DIE_AREA_MM2 = 32.0
#: Fixed share for I/O ports, configuration tree and global routing.
OVERHEAD_SHARE = 0.20

_ALU_UNITS = 1.0
_RAM_UNITS = 2.0
_N_ALU = 64
_N_RAM = 16

_TOTAL_UNITS = _N_ALU * _ALU_UNITS + _N_RAM * _RAM_UNITS
_PAE_AREA = DIE_AREA_MM2 * (1.0 - OVERHEAD_SHARE)

#: Estimated area of one ALU-PAE / RAM-PAE (mm^2).
ALU_PAE_MM2 = _PAE_AREA * _ALU_UNITS / _TOTAL_UNITS
RAM_PAE_MM2 = _PAE_AREA * _RAM_UNITS / _TOTAL_UNITS


def config_area_mm2(config: Configuration) -> float:
    """Silicon-area proxy of one configuration's resources."""
    req = config.requirements()
    return req.get("alu", 0) * ALU_PAE_MM2 + req.get("ram", 0) * RAM_PAE_MM2


def die_fraction(config: Configuration) -> float:
    """Fraction of the XPP64A's PAE silicon this configuration uses."""
    return config_area_mm2(config) / _PAE_AREA


def area_report(configs) -> list:
    """Rows ``(name, alu, ram, mm2, die %)`` for a set of
    configurations."""
    rows = []
    for cfg in configs:
        req = cfg.requirements()
        rows.append((cfg.name, req.get("alu", 0), req.get("ram", 0),
                     config_area_mm2(cfg), 100.0 * die_fraction(cfg)))
    return rows

"""Coarse-grained reconfigurable array (XPP) simulator.

Models the PACT XPP-64A of the paper: an 8x8 array of 24-bit ALU-PAEs
flanked by RAM-PAE columns, token-handshake communication sustaining one
result per cycle through filled pipelines, and a configuration manager
that loads/removes configurations at run time without ever overwriting a
resident one.

Typical use::

    from repro.xpp import ConfigBuilder, execute

    b = ConfigBuilder("scale")
    src = b.source("x")
    mul = b.alu("MUL", const=3)
    snk = b.sink("y", expect=4)
    b.chain(src, mul, snk)

    result = execute(b.build(), inputs={"x": [1, 2, 3, 4]})
    assert result["y"] == [3, 6, 9, 12]
"""

from repro.xpp.alu import AluPae, make_alu, opcodes
from repro.xpp.array import Slot, XppArray
from repro.xpp.config import ConfigBuilder, Configuration
from repro.xpp.errors import (
    ConfigurationError,
    ResourceError,
    RoutingError,
    SimulationError,
    XppError,
)
from repro.xpp.io import MemoryPort, StreamSink, StreamSource
from repro.xpp.manager import (
    CONFIG_CYCLES_PER_OBJECT,
    ConfigurationManager,
    LoadedConfig,
)
from repro.xpp.objects import DataflowObject, Probe
from repro.xpp.port import DEFAULT_CAPACITY, Wire
from repro.xpp.ram import RAM_WORDS, FifoPae, RamPae
from repro.xpp.router import Router
from repro.xpp.scheduler import (
    SCHEDULER_ENV,
    EventScheduler,
    NaiveScheduler,
    make_scheduler,
)
from repro.xpp.diagnose import StallInfo, deadlock_report, diagnose
from repro.xpp.nml import dump_nml, parse_nml
from repro.xpp.power import (
    PowerEstimate,
    array_power,
    attribute_energy,
    dsp_energy_pj,
    dsp_kernel_instructions,
    energy_at,
)
from repro.xpp.simulator import ExecResult, Simulator, execute
from repro.xpp.stats import (
    STOP_MAX_CYCLES,
    STOP_QUIESCENT,
    STOP_UNTIL,
    RunStats,
)
from repro.xpp.vc import compile_dataflow, run_dataflow
from repro.xpp.visual import render_array, render_config, render_occupancy

__all__ = [
    "CONFIG_CYCLES_PER_OBJECT",
    "DEFAULT_CAPACITY",
    "RAM_WORDS",
    "AluPae",
    "ConfigBuilder",
    "Configuration",
    "ConfigurationError",
    "ConfigurationManager",
    "DataflowObject",
    "EventScheduler",
    "ExecResult",
    "FifoPae",
    "LoadedConfig",
    "MemoryPort",
    "NaiveScheduler",
    "Probe",
    "RamPae",
    "ResourceError",
    "Router",
    "RoutingError",
    "RunStats",
    "SimulationError",
    "Simulator",
    "Slot",
    "StreamSink",
    "StreamSource",
    "Wire",
    "PowerEstimate",
    "XppArray",
    "XppError",
    "StallInfo",
    "SCHEDULER_ENV",
    "STOP_MAX_CYCLES",
    "STOP_QUIESCENT",
    "STOP_UNTIL",
    "array_power",
    "attribute_energy",
    "compile_dataflow",
    "deadlock_report",
    "diagnose",
    "dsp_energy_pj",
    "dsp_kernel_instructions",
    "dump_nml",
    "energy_at",
    "execute",
    "make_alu",
    "make_scheduler",
    "opcodes",
    "parse_nml",
    "render_array",
    "render_config",
    "render_occupancy",
    "run_dataflow",
]

"""ALU processing array elements (ALU-PAEs).

Each ALU-PAE executes one configured operation of a DSP-oriented
instruction set on 24-bit words, firing under the token handshake rules.
The instruction set covers:

* scalar arithmetic/logic (``ADD``, ``SUB``, ``MUL``, shifts, compares...),
* packed complex arithmetic on 12/12-bit I/Q words (``CADD``, ``CMUL``,
  ``CCONJ``...) — the 'complex-arithmetic ALUs' of the paper's Fig. 9,
* data steering (``MUX``, ``DEMUX``, ``MERGE``, ``SWAP``, ``GATE``),
* sequence generators (``COUNTER``, ``CONST``, ``SEQ``) and
* stateful elements (``ACC``, ``REG``).

Use :func:`make_alu` (or the higher level ``ConfigBuilder``) to
instantiate an operation by opcode name.
"""

from __future__ import annotations

from typing import Optional

from repro.fixed import pack_complex, unpack_complex, wrap
from repro.xpp.errors import ConfigurationError
from repro.xpp.objects import DataflowObject

WORD_BITS = 24


def _shift(value: int, amount: int) -> int:
    """Arithmetic shift: positive = left, negative = right."""
    return value << amount if amount >= 0 else value >> (-amount)


class AluPae(DataflowObject):
    """Base class for all ALU-PAE operations."""

    KIND = "alu"
    OPCODE = "?"

    def __init__(self, name: str, n_in: int, n_out: int, *,
                 bits: int = WORD_BITS,
                 in_names: Optional[list] = None,
                 out_names: Optional[list] = None):
        super().__init__(name, n_in, n_out, in_names, out_names)
        self.bits = bits

    def _w(self, value: int) -> int:
        return wrap(value, self.bits)


# ---------------------------------------------------------------------------
# regular function ops: consume all connected inputs, produce one output
# ---------------------------------------------------------------------------

_BINARY_FUNCS = {
    "ADD": lambda a, b: a + b,
    "SUB": lambda a, b: a - b,
    "MUL": lambda a, b: a * b,
    "MIN": min,
    "MAX": max,
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "SHL": lambda a, b: a << b,
    "SHR": lambda a, b: a >> b,
    "CMPEQ": lambda a, b: int(a == b),
    "CMPNE": lambda a, b: int(a != b),
    "CMPLT": lambda a, b: int(a < b),
    "CMPLE": lambda a, b: int(a <= b),
    "CMPGT": lambda a, b: int(a > b),
    "CMPGE": lambda a, b: int(a >= b),
}

_UNARY_FUNCS = {
    "NEG": lambda a: -a,
    "NOT": lambda a: ~a,
    "ABS": abs,
    "PASS": lambda a: a,
}


class BinaryAlu(AluPae):
    """Two-operand ALU op.  If input B is left unconnected, the ``const``
    parameter provides the second operand (a PAE register constant)."""

    def __init__(self, name: str, opcode: str, *, const: Optional[int] = None,
                 shift: int = 0, bits: int = WORD_BITS):
        super().__init__(name, 2, 1, bits=bits, in_names=["a", "b"])
        if opcode not in _BINARY_FUNCS:
            raise ConfigurationError(f"unknown binary opcode {opcode!r}")
        self.OPCODE = opcode
        self._fn = _BINARY_FUNCS[opcode]
        self.const = const
        self.shift = shift
        if opcode == "MUL":
            self.ENERGY = 2.0       # the multiplier array dominates

    def compute(self, args: list) -> list:
        a, b = args
        if b is None:
            if self.const is None:
                raise ConfigurationError(
                    f"{self.name}: input b unconnected and no const set")
            b = self.const
        return [self._w(_shift(self._fn(a, b), -self.shift))]


class UnaryAlu(AluPae):
    """One-operand ALU op."""

    def __init__(self, name: str, opcode: str, *, bits: int = WORD_BITS):
        super().__init__(name, 1, 1, bits=bits, in_names=["a"])
        if opcode not in _UNARY_FUNCS:
            raise ConfigurationError(f"unknown unary opcode {opcode!r}")
        self.OPCODE = opcode
        self._fn = _UNARY_FUNCS[opcode]

    def compute(self, args: list) -> list:
        return [self._w(self._fn(args[0]))]


class ShiftAlu(AluPae):
    """Constant arithmetic shift (positive = left, negative = right)."""

    OPCODE = "SHIFT"

    def __init__(self, name: str, *, amount: int, bits: int = WORD_BITS):
        super().__init__(name, 1, 1, bits=bits, in_names=["a"])
        self.amount = amount

    def compute(self, args: list) -> list:
        return [self._w(_shift(args[0], self.amount))]


class LutAlu(AluPae):
    """Small lookup table (PAE register file used as a LUT).

    The paper's Fig. 5 uses this to translate the 2-bit scrambling code
    into the packed constants ±1±j.
    """

    OPCODE = "LUT"

    def __init__(self, name: str, *, table, bits: int = WORD_BITS):
        super().__init__(name, 1, 1, bits=bits, in_names=["index"])
        self.table = list(table)
        if not self.table:
            raise ConfigurationError(f"{self.name}: empty LUT")

    def compute(self, args: list) -> list:
        idx = args[0] % len(self.table)
        return [self._w(self.table[idx])]


# ---------------------------------------------------------------------------
# packed complex ops (the Fig. 9 complex-arithmetic ALUs)
# ---------------------------------------------------------------------------

class ComplexAlu(AluPae):
    """Base for packed complex ops: tokens carry I (high half) and Q (low
    half) as two ``half_bits``-wide two's-complement fields."""

    def __init__(self, name: str, n_in: int, *, half_bits: int = 12,
                 in_names: Optional[list] = None):
        super().__init__(name, n_in, 1, bits=2 * half_bits, in_names=in_names)
        self.half_bits = half_bits

    def _unpack(self, word: int) -> tuple:
        return unpack_complex(word, self.half_bits)

    def _pack(self, re: int, im: int) -> int:
        re = wrap(re, self.half_bits)
        im = wrap(im, self.half_bits)
        return pack_complex(re, im, self.half_bits)


class ComplexAdd(ComplexAlu):
    OPCODE = "CADD"

    def __init__(self, name: str, *, half_bits: int = 12, shift: int = 0):
        super().__init__(name, 2, half_bits=half_bits, in_names=["a", "b"])
        self.shift = shift

    def compute(self, args: list) -> list:
        ar, ai = self._unpack(args[0])
        br, bi = self._unpack(args[1])
        return [self._pack(_shift(ar + br, -self.shift),
                           _shift(ai + bi, -self.shift))]


class ComplexSub(ComplexAlu):
    OPCODE = "CSUB"

    def __init__(self, name: str, *, half_bits: int = 12, shift: int = 0):
        super().__init__(name, 2, half_bits=half_bits, in_names=["a", "b"])
        self.shift = shift

    def compute(self, args: list) -> list:
        ar, ai = self._unpack(args[0])
        br, bi = self._unpack(args[1])
        return [self._pack(_shift(ar - br, -self.shift),
                           _shift(ai - bi, -self.shift))]


class ComplexMul(ComplexAlu):
    """Packed complex multiply ``a * b`` (or ``a * conj(b)``) with a result
    right-shift to renormalise the fixed-point product.

    ``round_shift=True`` uses the DSP rounding shift (add half an LSB
    before shifting) instead of plain truncation — removing the
    toward-minus-infinity bias that otherwise accumulates through
    integrate-and-dump stages.
    """

    OPCODE = "CMUL"
    ENERGY = 4.0        # four scalar multiplies per firing

    def __init__(self, name: str, *, half_bits: int = 12, shift: int = 0,
                 conj_b: bool = False, round_shift: bool = False):
        super().__init__(name, 2, half_bits=half_bits, in_names=["a", "b"])
        self.shift = shift
        self.conj_b = conj_b
        self.round_shift = round_shift

    def compute(self, args: list) -> list:
        ar, ai = self._unpack(args[0])
        br, bi = self._unpack(args[1])
        if self.conj_b:
            bi = -bi
        re = ar * br - ai * bi
        im = ar * bi + ai * br
        if self.shift:
            if self.round_shift:
                half = 1 << (self.shift - 1)
                re = (re + half) >> self.shift
                im = (im + half) >> self.shift
            else:
                re >>= self.shift
                im >>= self.shift
        return [self._pack(re, im)]


class ComplexConj(ComplexAlu):
    OPCODE = "CCONJ"

    def __init__(self, name: str, *, half_bits: int = 12):
        super().__init__(name, 1, half_bits=half_bits, in_names=["a"])

    def compute(self, args: list) -> list:
        re, im = self._unpack(args[0])
        return [self._pack(re, -im)]


class ComplexNeg(ComplexAlu):
    OPCODE = "CNEG"

    def __init__(self, name: str, *, half_bits: int = 12):
        super().__init__(name, 1, half_bits=half_bits, in_names=["a"])

    def compute(self, args: list) -> list:
        re, im = self._unpack(args[0])
        return [self._pack(-re, -im)]


class ComplexMulJ(ComplexAlu):
    """Multiply by +j (``sign=+1``) or -j (``sign=-1``) — a swap/negate,
    used by the radix-4 butterfly."""

    OPCODE = "CMULJ"

    def __init__(self, name: str, *, sign: int = 1, half_bits: int = 12):
        super().__init__(name, 1, half_bits=half_bits, in_names=["a"])
        if sign not in (1, -1):
            raise ConfigurationError(f"{self.name}: sign must be +/-1")
        self.sign = sign

    def compute(self, args: list) -> list:
        re, im = self._unpack(args[0])
        if self.sign > 0:       # (re + j im) * j = -im + j re
            return [self._pack(-im, re)]
        return [self._pack(im, -re)]


class ComplexShift(ComplexAlu):
    """Shift both halves (the per-FFT-stage 2-bit right scaling)."""

    OPCODE = "CSHIFT"

    def __init__(self, name: str, *, amount: int, half_bits: int = 12):
        super().__init__(name, 1, half_bits=half_bits, in_names=["a"])
        self.amount = amount

    def compute(self, args: list) -> list:
        re, im = self._unpack(args[0])
        return [self._pack(_shift(re, self.amount), _shift(im, self.amount))]


class Pack(AluPae):
    """Join two scalar words into a packed complex token."""

    OPCODE = "PACK"

    def __init__(self, name: str, *, half_bits: int = 12):
        super().__init__(name, 2, 1, bits=2 * half_bits, in_names=["re", "im"])
        self.half_bits = half_bits

    def compute(self, args: list) -> list:
        re = wrap(args[0], self.half_bits)
        im = wrap(args[1], self.half_bits)
        return [pack_complex(re, im, self.half_bits)]


class Unpack(AluPae):
    """Split a packed complex token into scalar ``re``/``im`` words."""

    OPCODE = "UNPACK"

    def __init__(self, name: str, *, half_bits: int = 12):
        super().__init__(name, 1, 2, bits=2 * half_bits,
                         in_names=["a"], out_names=["re", "im"])
        self.half_bits = half_bits

    def compute(self, args: list) -> list:
        re, im = unpack_complex(args[0], self.half_bits)
        return [re, im]


# ---------------------------------------------------------------------------
# data steering
# ---------------------------------------------------------------------------

class Mux(AluPae):
    """Select one of two inputs by a select token; consumes all three."""

    OPCODE = "MUX"

    def __init__(self, name: str, *, bits: int = WORD_BITS):
        super().__init__(name, 3, 1, bits=bits, in_names=["sel", "a", "b"])

    def compute(self, args: list) -> list:
        sel, a, b = args
        return [b if sel else a]


class Demux(AluPae):
    """Route the data token to output ``sel``; the other output is idle."""

    OPCODE = "DEMUX"

    def __init__(self, name: str, *, bits: int = WORD_BITS):
        super().__init__(name, 2, 2, bits=bits, in_names=["sel", "a"],
                         out_names=["o0", "o1"])

    def plan(self) -> bool:
        sel_p, a_p = self.inputs
        if sel_p.available < 1 or a_p.available < 1:
            return False
        out = self.outputs[1 if sel_p.peek() else 0]
        return not out.bound or out.space >= 1

    def commit(self) -> None:
        sel = self.inputs[0].pop()
        a = self.inputs[1].pop()
        self.outputs[1 if sel else 0].push(a)
        self.fired += 1

    def compute(self, args):  # pragma: no cover - plan/commit overridden
        raise NotImplementedError


class Merge(AluPae):
    """Take a token from input ``sel`` only (the Fig. 5 'Merge 2x1')."""

    OPCODE = "MERGE"

    def __init__(self, name: str, *, bits: int = WORD_BITS):
        super().__init__(name, 3, 1, bits=bits, in_names=["sel", "a", "b"])

    def plan(self) -> bool:
        sel_p = self.inputs[0]
        if sel_p.available < 1:
            return False
        src = self.inputs[2 if sel_p.peek() else 1]
        if src.available < 1:
            return False
        return self.outputs[0].space >= 1

    def commit(self) -> None:
        sel = self.inputs[0].pop()
        value = self.inputs[2 if sel else 1].pop()
        self.outputs[0].push(value)
        self.fired += 1

    def compute(self, args):  # pragma: no cover - plan/commit overridden
        raise NotImplementedError


class Swap(AluPae):
    """Pass two streams straight (sel=0) or crossed (sel=1) — the 'Swap'
    element of the paper's channel-correction unit (Fig. 7)."""

    OPCODE = "SWAP"

    def __init__(self, name: str, *, bits: int = WORD_BITS):
        super().__init__(name, 3, 2, bits=bits, in_names=["sel", "a", "b"],
                         out_names=["x", "y"])

    def compute(self, args: list) -> list:
        sel, a, b = args
        return [b, a] if sel else [a, b]


class Gate(AluPae):
    """Pass the data token when ``ctrl`` is truthy, discard it otherwise.

    Used to shift out only the completed despreader results (Fig. 6's
    'Comparator (result shift out)')."""

    OPCODE = "GATE"

    def __init__(self, name: str, *, bits: int = WORD_BITS):
        super().__init__(name, 2, 1, bits=bits, in_names=["ctrl", "a"])

    def plan(self) -> bool:
        ctrl_p, a_p = self.inputs
        if ctrl_p.available < 1 or a_p.available < 1:
            return False
        if ctrl_p.peek():
            return self.outputs[0].space >= 1
        return True     # discarding needs no output space

    def commit(self) -> None:
        ctrl = self.inputs[0].pop()
        a = self.inputs[1].pop()
        if ctrl:
            self.outputs[0].push(a)
        self.fired += 1

    def compute(self, args):  # pragma: no cover - plan/commit overridden
        raise NotImplementedError


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------

class Counter(AluPae):
    """Free-running counter.

    Emits ``start, start+step, ...``; at ``limit`` (exclusive) it wraps
    (``mode='wrap'``) or stops (``mode='stop'``).  The optional second
    output emits 1 on the token that wraps and 0 otherwise, giving the
    symbol-boundary event the despreader's comparators use.
    ``count`` bounds the total number of tokens produced.
    """

    OPCODE = "COUNTER"

    def __init__(self, name: str, *, start: int = 0, step: int = 1,
                 limit: Optional[int] = None, mode: str = "wrap",
                 count: Optional[int] = None, bits: int = WORD_BITS):
        super().__init__(name, 0, 2, bits=bits, out_names=["value", "wrapev"])
        if mode not in ("wrap", "stop"):
            raise ConfigurationError(f"{self.name}: bad counter mode {mode!r}")
        self.start = start
        self.step = step
        self.limit = limit
        self.mode = mode
        self.count = count
        self._value = start
        self._emitted = 0
        self._stopped = False

    def reset(self) -> None:
        super().reset()
        self._value = self.start
        self._emitted = 0
        self._stopped = False

    def _has_work(self) -> bool:
        if self._stopped:
            return False
        return self.count is None or self._emitted < self.count

    def commit(self) -> None:
        value = self._value
        nxt = value + self.step
        wrapped = 0
        if self.limit is not None and nxt >= self.limit:
            if self.mode == "wrap":
                nxt = self.start
                wrapped = 1
            else:
                self._stopped = True
                wrapped = 1
        self._value = nxt
        self._emitted += 1
        self.outputs[0].push(self._w(value))
        self.outputs[1].push(wrapped)
        self.fired += 1

    def compute(self, args):  # pragma: no cover - commit overridden
        raise NotImplementedError


class Const(AluPae):
    """Emit a constant, ``count`` times (or forever)."""

    OPCODE = "CONST"

    def __init__(self, name: str, *, value: int, count: Optional[int] = None,
                 bits: int = WORD_BITS):
        super().__init__(name, 0, 1, bits=bits)
        self.value = value
        self.count = count
        self._emitted = 0

    def _has_work(self) -> bool:
        return self.count is None or self._emitted < self.count

    def reset(self) -> None:
        super().reset()
        self._emitted = 0

    def compute(self, args: list) -> list:
        self._emitted += 1
        return [self._w(self.value)]


class Seq(AluPae):
    """Emit a fixed sequence of values, optionally circularly.

    Models a preloaded PAE register bank; larger circular tables belong in
    a RAM-PAE FIFO.
    """

    OPCODE = "SEQ"

    def __init__(self, name: str, *, values, circular: bool = False,
                 bits: int = WORD_BITS):
        super().__init__(name, 0, 1, bits=bits)
        self.values = list(values)
        if not self.values:
            raise ConfigurationError(f"{self.name}: empty sequence")
        self.circular = circular
        self._pos = 0

    def _has_work(self) -> bool:
        return self.circular or self._pos < len(self.values)

    def reset(self) -> None:
        super().reset()
        self._pos = 0

    def compute(self, args: list) -> list:
        value = self.values[self._pos % len(self.values)]
        self._pos += 1
        return [self._w(value)]


# ---------------------------------------------------------------------------
# stateful elements
# ---------------------------------------------------------------------------

class Acc(AluPae):
    """Accumulate ``length`` tokens, then emit the sum and reset.

    A single-finger despreader integrate-and-dump.  ``shift`` is applied
    to the dumped sum.
    """

    OPCODE = "ACC"

    def __init__(self, name: str, *, length: int, shift: int = 0,
                 bits: int = WORD_BITS):
        super().__init__(name, 1, 1, bits=bits, in_names=["a"])
        if length < 1:
            raise ConfigurationError(f"{self.name}: length must be >= 1")
        self.length = length
        self.shift = shift
        self._sum = 0
        self._n = 0

    def reset(self) -> None:
        super().reset()
        self._sum = 0
        self._n = 0

    def plan(self) -> bool:
        if self.inputs[0].available < 1:
            return False
        if self._n + 1 >= self.length:      # this firing dumps
            return self.outputs[0].space >= 1
        return True

    def commit(self) -> None:
        self._sum += self.inputs[0].pop()
        self._n += 1
        if self._n >= self.length:
            self.outputs[0].push(self._w(_shift(self._sum, -self.shift)))
            self._sum = 0
            self._n = 0
        self.fired += 1

    def compute(self, args):  # pragma: no cover - plan/commit overridden
        raise NotImplementedError


class ComplexAcc(ComplexAlu):
    """Packed-complex integrate-and-dump over ``length`` tokens."""

    OPCODE = "CACC"

    def __init__(self, name: str, *, length: int, shift: int = 0,
                 half_bits: int = 12):
        super().__init__(name, 1, half_bits=half_bits, in_names=["a"])
        if length < 1:
            raise ConfigurationError(f"{self.name}: length must be >= 1")
        self.length = length
        self.shift = shift
        self._re = 0
        self._im = 0
        self._n = 0

    def reset(self) -> None:
        super().reset()
        self._re = 0
        self._im = 0
        self._n = 0

    def plan(self) -> bool:
        if self.inputs[0].available < 1:
            return False
        if self._n + 1 >= self.length:
            return self.outputs[0].space >= 1
        return True

    def commit(self) -> None:
        re, im = self._unpack(self.inputs[0].pop())
        self._re += re
        self._im += im
        self._n += 1
        if self._n >= self.length:
            self.outputs[0].push(self._pack(_shift(self._re, -self.shift),
                                            _shift(self._im, -self.shift)))
            self._re = 0
            self._im = 0
            self._n = 0
        self.fired += 1

    def compute(self, args):  # pragma: no cover - plan/commit overridden
        raise NotImplementedError


class Integrator(AluPae):
    """Running sum: emits the accumulated total on every input token.

    Models an ALU with its accumulator register fed back internally —
    single-cycle initiation interval, unlike an external REG feedback
    loop.  Used by the preamble correlator's windowed sum.
    """

    OPCODE = "INTEG"

    def __init__(self, name: str, *, init: int = 0, bits: int = WORD_BITS):
        super().__init__(name, 1, 1, bits=bits, in_names=["a"])
        self.init = init
        self._sum = init

    def reset(self) -> None:
        super().reset()
        self._sum = self.init

    def compute(self, args: list) -> list:
        self._sum = self._w(self._sum + args[0])
        return [self._sum]


class ComplexIntegrator(ComplexAlu):
    """Packed-complex running sum (per-component accumulator feedback)."""

    OPCODE = "CINTEG"

    def __init__(self, name: str, *, half_bits: int = 12):
        super().__init__(name, 1, half_bits=half_bits, in_names=["a"])
        self._re = 0
        self._im = 0

    def reset(self) -> None:
        super().reset()
        self._re = 0
        self._im = 0

    def compute(self, args: list) -> list:
        re, im = self._unpack(args[0])
        self._re = wrap(self._re + re, self.half_bits)
        self._im = wrap(self._im + im, self.half_bits)
        return [self._pack(self._re, self._im)]


class Reg(AluPae):
    """Pipeline register with optional preloaded initial tokens.

    Essential for feedback loops: the initial token breaks the
    chicken-and-egg deadlock of a cycle in the dataflow graph.
    """

    OPCODE = "REG"

    def __init__(self, name: str, *, init=(), bits: int = WORD_BITS):
        super().__init__(name, 1, 1, bits=bits, in_names=["a"])
        self.init = tuple(init)
        self._preload = list(init)

    def reset(self) -> None:
        super().reset()
        self._preload = list(self.init)

    def plan(self) -> bool:
        if self._preload:
            return self.outputs[0].space >= 1
        return (self.inputs[0].available >= 1
                and self.outputs[0].space >= 1)

    def commit(self) -> None:
        if self._preload:
            self.outputs[0].push(self._w(self._preload.pop(0)))
        else:
            self.outputs[0].push(self._w(self.inputs[0].pop()))
        self.fired += 1

    def compute(self, args):  # pragma: no cover - plan/commit overridden
        raise NotImplementedError


# ---------------------------------------------------------------------------
# opcode registry
# ---------------------------------------------------------------------------

_SPECIAL = {
    "SHIFT": ShiftAlu,
    "LUT": LutAlu,
    "CADD": ComplexAdd,
    "CSUB": ComplexSub,
    "CMUL": ComplexMul,
    "CCONJ": ComplexConj,
    "CNEG": ComplexNeg,
    "CMULJ": ComplexMulJ,
    "CSHIFT": ComplexShift,
    "PACK": Pack,
    "UNPACK": Unpack,
    "MUX": Mux,
    "DEMUX": Demux,
    "MERGE": Merge,
    "SWAP": Swap,
    "GATE": Gate,
    "COUNTER": Counter,
    "CONST": Const,
    "SEQ": Seq,
    "ACC": Acc,
    "CACC": ComplexAcc,
    "INTEG": Integrator,
    "CINTEG": ComplexIntegrator,
    "REG": Reg,
}


def opcodes() -> list:
    """All opcode names understood by :func:`make_alu`."""
    return sorted(set(_BINARY_FUNCS) | set(_UNARY_FUNCS) | set(_SPECIAL))


def make_alu(name: str, opcode: str, **params) -> AluPae:
    """Instantiate an ALU-PAE operation by opcode name."""
    if opcode in _SPECIAL:
        return _SPECIAL[opcode](name, **params)
    if opcode in _BINARY_FUNCS:
        return BinaryAlu(name, opcode, **params)
    if opcode in _UNARY_FUNCS:
        if params:
            raise ConfigurationError(
                f"{name}: opcode {opcode} takes no parameters, got {params}")
        return UnaryAlu(name, opcode)
    raise ConfigurationError(f"unknown opcode {opcode!r}")

"""Base class for array objects (PAEs, I/O ports).

Every object participates in the two-phase cycle protocol:

* ``plan()`` inspects input availability / output space (via the ports'
  read-only views) and returns ``True`` if the object will fire.  It must
  not mutate anything outside the object's scratch plan state.
* ``commit()`` performs the planned transfer: pops inputs, computes,
  pushes outputs, updates internal state.

The default ``plan`` implements the standard XPP firing rule: one token on
every connected input and space on every connected output.

Scheduling contract (relied on by :mod:`repro.xpp.scheduler`): the
outcome of ``plan()`` depends only on the state of the wires bound to the
object's ports plus the object's internal state, and internal state is
only mutated inside ``commit()`` (or ``on_load()``).  An object whose
``plan()`` returned False therefore cannot become ready until one of its
wires records a pop/push event — the invariant the event-driven scheduler
exploits to skip re-planning idle objects.  Subclasses that override
``plan``/``commit`` must preserve this contract.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.xpp.port import InPort, OutPort


class DataflowObject:
    """An array object living at some resource slot during a configuration."""

    #: resource kind this object occupies: 'alu', 'ram', 'io' or None
    #: (None = zero-cost pseudo object, e.g. a probe).
    KIND: Optional[str] = "alu"

    #: relative energy per firing, used by the power proxy in stats.
    ENERGY: float = 1.0

    #: scheduler scratch: an :class:`~repro.xpp.scheduler.EventScheduler`
    #: stores ``(input_wires, output_wires, has_work)`` here for objects
    #: that use the default firing rule (so planning is a few attribute
    #: loads; ``has_work`` is the bound ``_has_work`` override, or None
    #: when inherited) and ``None`` for objects with a custom ``plan``.
    _sched_fast = None

    def __init__(self, name: str, n_in: int, n_out: int,
                 in_names: Optional[list] = None,
                 out_names: Optional[list] = None):
        self.name = name
        self.inputs = [InPort(self, i, in_names[i] if in_names else "")
                       for i in range(n_in)]
        self.outputs = [OutPort(self, i, out_names[i] if out_names else "")
                        for i in range(n_out)]
        self.fired = 0          # lifetime firing count
        self.position = None    # (row, col) once placed on the array

    # -- port lookup -----------------------------------------------------------

    def in_port(self, key) -> InPort:
        """Input port by index or name."""
        if isinstance(key, int):
            return self.inputs[key]
        for p in self.inputs:
            if p.name == key:
                return p
        raise KeyError(f"{self.name}: no input port {key!r}")

    def out_port(self, key) -> OutPort:
        """Output port by index or name."""
        if isinstance(key, int):
            return self.outputs[key]
        for p in self.outputs:
            if p.name == key:
                return p
        raise KeyError(f"{self.name}: no output port {key!r}")

    def input_wires(self) -> list:
        """Wires driving this object's bound input ports."""
        return [p.wire for p in self.inputs if p.wire is not None]

    def output_wires(self) -> list:
        """Wires fed by this object's output ports (fan-out flattened)."""
        return [w for p in self.outputs for w in p.wires]

    # -- firing protocol -------------------------------------------------------

    def plan(self) -> bool:
        """Default rule: every connected input has a token and every
        connected output has space."""
        for p in self.inputs:
            if p.bound and p.available < 1:
                return False
        for p in self.outputs:
            if p.bound and p.space < 1:
                return False
        return self._has_work()

    def _has_work(self) -> bool:
        """Hook for generators/sinks to veto firing (e.g. data exhausted)."""
        return True

    def commit(self) -> None:
        """Perform the planned transfer.  Called only if plan() was True."""
        args = [p.wire.pop() if p.wire is not None else None
                for p in self.inputs]
        results = self.compute(args)
        if results is not None:
            for port, value in zip(self.outputs, results):
                if value is not None:
                    port.push(value)
        self.fired += 1

    def compute(self, args: list) -> Optional[list]:
        """Map consumed input tokens to output tokens (simple objects).

        Objects with irregular consumption override plan/commit instead.
        """
        raise NotImplementedError

    def on_load(self) -> None:
        """Hook invoked when the owning configuration is loaded."""

    def reset(self) -> None:
        """Restore the object's configured initial state.

        A configuration reload (remap after a fault, Fig. 10 style
        swap-back) streams the original configuration words through the
        configuration tree again, so PAE registers return to their
        build-time values.  Stateful subclasses override this to restore
        their internal registers; the base resets the firing counter.
        """
        self.fired = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class Probe(DataflowObject):
    """Zero-cost pass-through that records every token it sees.

    Not a hardware object: a simulator affordance for inspecting interior
    wires of a configuration without changing its timing (it adds one
    pipeline register, like routing through an extra segment).
    """

    KIND = None
    ENERGY = 0.0

    def __init__(self, name: str):
        super().__init__(name, 1, 1)
        self.seen: list[Any] = []

    def compute(self, args: list) -> list:
        self.seen.append(args[0])
        return [args[0]]

    def reset(self) -> None:
        super().reset()
        self.seen = []

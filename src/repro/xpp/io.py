"""External I/O ports of the array.

The XPP-64A has four dual-channel I/O ports working in streaming or
RAM-addressing mode.  For simulation, a :class:`StreamSource` feeds a
Python sequence into the array one token per cycle, and a
:class:`StreamSink` collects result tokens.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.fixed import wrap
from repro.xpp.objects import DataflowObject


class StreamSource(DataflowObject):
    """Streams a finite sequence into the array (one token per cycle when
    the consumer is ready)."""

    KIND = "io"
    ENERGY = 0.5

    def __init__(self, name: str, data: Optional[Iterable] = None,
                 *, bits: int = 24):
        super().__init__(name, 0, 1, out_names=["out"])
        self.bits = int(bits)       # reject list/str widths at build time
        self._data: list = []
        self._pos = 0
        if data is not None:
            self.set_data(data)

    def set_data(self, data: Iterable) -> None:
        """Attach (or replace) the sample stream this port will emit."""
        self._data = [wrap(int(v), self.bits) for v in data]
        self._pos = 0

    def reset(self) -> None:
        """Rewind to the start of the attached stream."""
        super().reset()
        self._pos = 0

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _has_work(self) -> bool:
        return not self.exhausted

    def compute(self, args: list) -> list:
        value = self._data[self._pos]
        self._pos += 1
        return [value]


class StreamSink(DataflowObject):
    """Collects tokens leaving the array."""

    KIND = "io"
    ENERGY = 0.5

    def __init__(self, name: str, *, expect: Optional[int] = None):
        super().__init__(name, 1, 0, in_names=["in"])
        self.received: list[Any] = []
        self.expect = expect if expect is None else int(expect)

    @property
    def done(self) -> bool:
        """True once the expected token count has arrived."""
        return self.expect is not None and len(self.received) >= self.expect

    def reset(self) -> None:
        """Discard collected tokens (configuration reload)."""
        super().reset()
        self.received = []

    def compute(self, args: list) -> None:
        self.received.append(args[0])
        return None


class MemoryPort(DataflowObject):
    """An I/O port in RAM-addressing mode.

    The XPP's I/O ports can address external memory directly: a read
    side (``raddr`` in -> ``rdata`` out) and a write side (``waddr`` +
    ``wdata`` in) against a host-provided memory image.  Both sides
    fire independently, like a RAM-PAE, but the storage lives outside
    the array.
    """

    KIND = "io"
    ENERGY = 1.0

    def __init__(self, name: str, memory=None, *, size: int = 65536,
                 bits: int = 24):
        super().__init__(name, 3, 1,
                         in_names=["raddr", "waddr", "wdata"],
                         out_names=["rdata"])
        self.bits = bits
        if memory is not None:
            self.memory = [wrap(int(v), bits) for v in memory]
        else:
            self.memory = [0] * size
        self._do_read = False
        self._do_write = False

    def plan(self) -> bool:
        raddr, waddr, wdata = self.inputs
        rdata = self.outputs[0]
        self._do_read = (raddr.bound and raddr.available >= 1
                         and rdata.space >= 1)
        self._do_write = (waddr.bound and waddr.available >= 1
                          and wdata.bound and wdata.available >= 1)
        return self._do_read or self._do_write

    def commit(self) -> None:
        if self._do_read:
            addr = self.inputs[0].pop() % len(self.memory)
            self.outputs[0].push(self.memory[addr])
        if self._do_write:
            addr = self.inputs[1].pop() % len(self.memory)
            self.memory[addr] = wrap(self.inputs[2].pop(), self.bits)
        self.fired += 1

    def compute(self, args):  # pragma: no cover - plan/commit overridden
        raise NotImplementedError

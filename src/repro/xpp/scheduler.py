"""Array schedulers: who gets planned each cycle.

The two-phase protocol (plan against latched wire state, then commit)
makes object evaluation order irrelevant — which leaves the scheduler
free to decide *which* objects are worth planning at all.  Two
implementations share one interface:

* :class:`NaiveScheduler` — the reference semantics: every cycle, latch
  every active wire, plan every active object, commit the firings.  This
  is the seed behaviour and the ground truth the event scheduler is
  differentially tested against.

* :class:`EventScheduler` — exploits the XPP token/handshake invariant
  that an *idle* PAE can only become ready when a port event arrives.
  Wires record pop/push events during the commit phase (see
  :mod:`repro.xpp.port`); the next cycle re-latches only the wires that
  changed and plans only a ready list: the objects that just fired
  (they may fire again off buffered tokens with no new event) plus
  directional wakeups — a pop frees space and readies the wire's
  producer, a push adds a token and readies its consumer.  Objects
  using the default firing rule additionally get an inlined plan — a
  handful of attribute loads instead of a method call through two
  property layers — and :meth:`EventScheduler.step_n` runs whole
  batches through one loop with all state loads hoisted.

Both schedulers fall back to a full evaluation whenever the
configuration manager's ``version`` changes (a ``load``/``remove``, so
mid-run reconfiguration stays bit-exact) and whenever
:meth:`invalidate` is called (``Simulator.run``/``step_n`` do this on
entry, and ``Simulator.step`` on every single step, so state mutated
from outside the simulator — e.g. ``StreamSource.set_data`` between
runs — is always picked up).

Equivalence guarantee: for any sequence of runs and reconfigurations,
the event scheduler fires exactly the same objects in exactly the same
cycles as the naive scheduler.  ``tests/test_scheduler_equivalence.py``
checks this cycle-for-cycle on every example kernel configuration.
"""

from __future__ import annotations

import os

from repro.telemetry.metrics import get_metrics
from repro.xpp.errors import ConfigurationError
from repro.xpp.objects import DataflowObject

#: Environment variable overriding the default scheduler choice
#: (``naive`` or ``event``) for simulators built without an explicit one.
SCHEDULER_ENV = "REPRO_XPP_SCHEDULER"


class NaiveScheduler:
    """Reference scheduler: plan every active object, every cycle.

    Reproduces the original simulator's evaluation loop verbatim — both
    its semantics and its cost model (the active object/wire lists are
    reassembled from the resident configurations each cycle, exactly as
    ``Simulator.step`` used to).  This is what the event scheduler's
    speedup is measured against.
    """

    name = "naive"

    def __init__(self):
        self.manager = None
        self._version = None

    def bind(self, manager) -> None:
        """Attach to a configuration manager (called by the simulator)."""
        self.manager = manager
        self._version = None

    def invalidate(self) -> None:
        """No-op: the naive scheduler always evaluates everything."""

    def step(self) -> int:
        """Advance one cycle; returns the number of firings."""
        mgr = self.manager
        if mgr.version != self._version:
            # detach any stale event lists a previous EventScheduler left
            # installed, so wires stop recording for a dead listener
            for w in mgr.active_wires():
                w._events = None
                w._marked = False
            self._version = mgr.version
        objects = []
        wires = []
        for entry in mgr.loaded.values():
            objects.extend(entry.config.objects)
            wires.extend(entry.config.wires)
        for w in wires:
            w.begin_cycle()
        fired = [o for o in objects if o.plan()]
        for o in fired:
            o.commit()
        for w in wires:
            w.end_cycle()
        return len(fired)

    def step_n(self, n: int) -> int:
        """Advance ``n`` cycles; returns the total number of firings."""
        step = self.step
        return sum(step() for _ in range(n))


class EventScheduler:
    """Ready-list scheduler driven by wire pop/push events.

    Per cycle it touches only: the wires that changed last cycle
    (``begin_cycle``), the objects watching them (plan), the firings
    (commit), and the wires those firings changed (``end_cycle``).
    Everything else on the array is left untouched — its latched wire
    views are still valid precisely because nothing changed them.
    """

    name = "event"

    def __init__(self):
        self.manager = None
        self._version = None
        self._full = True           # next step plans everything
        self._objects = ()
        self._wires = ()
        self._watchers = {}         # wire -> (producers, consumers)
        self._events = []           # shared event list installed in wires
        self._pending_begin = ()    # wires to re-latch next cycle
        self._ready = frozenset()

    def bind(self, manager) -> None:
        """Attach to a configuration manager (called by the simulator)."""
        self.manager = manager
        self._version = None
        self._full = True

    def invalidate(self) -> None:
        """Force a full evaluation on the next step.

        Cheap (structural maps are only rebuilt when the manager's
        version changed); use after mutating simulation state from
        outside the commit phase.
        """
        self._full = True

    # -- structure -----------------------------------------------------------

    def _rebuild(self) -> None:
        """Recompute the cached structure from the manager's active sets."""
        get_metrics().counter("scheduler.rebuilds").inc()
        mgr = self.manager
        objects = mgr.active_objects()
        wires = mgr.active_wires()
        self._objects = objects
        self._wires = wires

        # directional wakeups: a pop frees space, so it readies the
        # wire's *producer*; a push adds a token, readying its
        # *consumer*.  The endpoint that performed the transfer fired
        # this cycle and stays ready through the fired list.
        producers = {w: [] for w in wires}
        consumers = {w: [] for w in wires}
        default_plan = DataflowObject.plan
        default_work = DataflowObject._has_work
        for o in objects:
            in_wires = o.input_wires()
            out_wires = o.output_wires()
            for w in in_wires:
                if w in consumers:
                    consumers[w].append(o)
            for w in out_wires:
                if w in producers:
                    producers[w].append(o)
            cls = type(o)
            if cls.plan is default_plan:
                work = None if cls._has_work is default_work else o._has_work
                o._sched_fast = (tuple(in_wires), tuple(out_wires), work)
            else:
                o._sched_fast = None
        self._watchers = {
            w: (tuple(dict.fromkeys(producers[w])),
                tuple(dict.fromkeys(consumers[w])))
            for w in wires}

        self._events.clear()
        for w in wires:
            w._events = self._events
            w._marked = False
        self._pending_begin = ()
        self._version = mgr.version
        self._full = True

    # -- stepping ------------------------------------------------------------

    def step(self) -> int:
        """Advance one cycle; returns the number of firings."""
        return self.step_n(1)

    def step_n(self, n: int) -> int:
        """Advance ``n`` cycles as one batch; returns the total firings.

        Semantically identical to ``n`` calls of :meth:`step`.  Nothing
        outside the scheduler can run between batched cycles, so the
        manager version check happens once at entry and all scheduler
        state lives in locals across the whole batch.
        """
        mgr = self.manager
        if mgr.version != self._version:
            self._rebuild()

        events = self._events
        watchers = self._watchers
        all_objects = self._objects
        full = self._full
        ready = self._ready
        pending = self._pending_begin
        total = 0
        for _ in range(n):
            if full:
                for w in self._wires:
                    w.begin_cycle()
                del events[:]           # drop events from aborted cycles
                for w in self._wires:
                    w._marked = False
                candidates = all_objects
                full = False
            else:
                for w in pending:
                    # inlined Wire.begin_cycle (the hot loop)
                    qn = len(w._q)
                    w._avail = qn
                    w._space = w.capacity - qn
                    w._pops = 0
                    w._pushes = []
                # the ready set, not the full object list: plan order
                # varies with set iteration, but the two-phase protocol
                # makes plan and commit order unobservable, so results
                # are unaffected
                candidates = ready

            # plan phase: no commits have happened this cycle, so every
            # wire's plan view is exactly its latched _avail/_space
            fired = []
            append = fired.append
            for o in candidates:
                fast = o._sched_fast
                if fast is None:
                    if o.plan():
                        append(o)
                    continue
                inw, outw, work = fast
                for w in inw:
                    if w._avail < 1:
                        break
                else:
                    for w in outw:
                        if w._space < 1:
                            break
                    else:
                        if work is None or work():
                            append(o)

            for o in fired:
                o.commit()
            total += len(fired)

            # harvest this cycle's wire events into the next ready list.
            # Firing objects stay ready (they may fire again off
            # buffered tokens with no new event on their wires); idle
            # objects stay idle — their wires and internal state are
            # untouched, so their plan outcome cannot have changed (the
            # scheduling contract).
            ready = set(fired)
            if events:
                for w in events:
                    pushes = w._pushes
                    if w._pops:
                        ready.update(watchers[w][0])    # space freed
                    if pushes:
                        ready.update(watchers[w][1])    # tokens arriving
                        w._q.extend(pushes)             # inlined end_cycle
                        w._pushes = []
                    w._marked = False
                pending = events[:]
                del events[:]
            else:
                pending = ()
        self._full = full
        self._ready = ready
        self._pending_begin = pending
        return total


def _make_fastpath():
    # imported lazily: repro.fastpath.runtime imports EventScheduler
    # from this module, so a top-level import would be circular
    from repro.fastpath.runtime import FastpathScheduler
    return FastpathScheduler()


_SCHEDULERS = {
    "naive": NaiveScheduler,
    "event": EventScheduler,
    "fastpath": _make_fastpath,
}


def make_scheduler(spec=None):
    """Resolve a scheduler: an instance, a name, a class, or None.

    Names are case-insensitive (``"naive"``, ``"event"``,
    ``"fastpath"``).  ``None`` picks the default — ``event`` unless the
    ``REPRO_XPP_SCHEDULER`` environment variable says otherwise.
    """
    if spec is None:
        spec = os.environ.get(SCHEDULER_ENV, "event")
    if isinstance(spec, str):
        try:
            return _SCHEDULERS[spec.strip().lower()]()
        except KeyError:
            raise ConfigurationError(
                f"unknown scheduler {spec!r}; expected one of "
                f"{sorted(_SCHEDULERS)}") from None
    if isinstance(spec, type):
        return spec()
    if hasattr(spec, "step") and hasattr(spec, "bind"):
        return spec
    raise ConfigurationError(f"not a scheduler: {spec!r}")

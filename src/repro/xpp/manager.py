"""The configuration manager.

Responsible for resource handling on the array: loading configurations
(claiming PAE slots, routing their wires, accounting configuration time),
removing them at run time, and enforcing the hardware protocol that a
loaded configuration can never be overwritten by another one.

This is the mechanism behind the paper's Fig. 10: configuration 1 stays
resident, configuration 2a (preamble detection) is removed after
acquisition and configuration 2b (demodulation) is loaded into the freed
resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry import get_metrics, get_tracer
from repro.xpp.array import XppArray
from repro.xpp.config import Configuration
from repro.xpp.errors import ResourceError
from repro.xpp.router import Router

#: Cycles of configuration-bus traffic per object configured.  The XPP
#: streams configuration words through a hierarchical configuration tree;
#: a handful of cycles per PAE is the right order of magnitude.
CONFIG_CYCLES_PER_OBJECT = 4


@dataclass
class LoadedConfig:
    """Book-keeping for one resident configuration."""

    config: Configuration
    slots: list = field(default_factory=list)
    load_cycles: int = 0
    route_segments: int = 0


class ConfigurationManager:
    """Allocates array resources to configurations at run time."""

    def __init__(self, array: Optional[XppArray] = None, *,
                 router: Optional[Router] = None,
                 config_cycles_per_object: int = CONFIG_CYCLES_PER_OBJECT):
        self.array = array if array is not None else XppArray()
        self.router = router if router is not None else Router()
        self.config_cycles_per_object = config_cycles_per_object
        self.loaded: dict[str, LoadedConfig] = {}
        self.total_reconfig_cycles = 0
        self.pending: list[Configuration] = []
        #: fault-injection surface: called as ``load_hook(config)`` at the
        #: start of every :meth:`load`.  It may raise
        #: :class:`~repro.xpp.errors.ConfigLoadError` (the configuration
        #: bus dropped the load) or return extra configuration cycles (a
        #: slow load, e.g. bus contention).  ``None`` disables it.
        self.load_hook = None
        #: bumped on every load/remove; schedulers watch this to know when
        #: the cached active sets below (and their own maps) went stale
        self.version = 0
        self._objects_cache: Optional[tuple] = None
        self._wires_cache: Optional[tuple] = None

    # -- load / remove ------------------------------------------------------------

    def load(self, config: Configuration) -> LoadedConfig:
        """Place a configuration onto free array resources.

        Raises :class:`ResourceError` if the array cannot satisfy the
        request — resources owned by loaded configurations are protected
        and never reassigned.
        """
        if config.name in self.loaded:
            raise ResourceError(f"configuration {config.name!r} already loaded")
        extra_cycles = 0
        if self.load_hook is not None:
            # May raise ConfigLoadError before any state changes, so a
            # failed load leaves the manager exactly as it was.
            extra_cycles = int(self.load_hook(config) or 0)
        need = config.requirements()
        for kind, count in need.items():
            if self.array.free_count(kind) < count:
                raise ResourceError(
                    f"{config.name!r} needs {count} {kind} slots but only "
                    f"{self.array.free_count(kind)} are free")

        entry = LoadedConfig(config=config)
        hints = getattr(config, "placement", None)
        try:
            for obj in config.objects:
                if obj.KIND is None:
                    continue
                slot = None
                if hints is not None:
                    # Placement hints (pnr-compiled configs) are
                    # best-effort: when another resident configuration
                    # owns the hinted slot, fall back to first-fit so a
                    # hinted load never fails where an unhinted one
                    # would have succeeded.
                    pos = hints.position(obj.name)
                    if pos is not None:
                        slot = self.array.claim_at(obj.KIND, pos[0], pos[1],
                                                   config.name)
                if slot is None:
                    slot = self.array.claim(obj.KIND, config.name)
                obj.position = (slot.row, slot.col)
                entry.slots.append(slot)
        except ResourceError:
            self._rollback(entry, config.name)
            raise

        positions = {o.name: o.position for o in config.objects}
        for wire in config.wires:
            src_name, dst_name = _wire_endpoints(wire.name)
            entry.route_segments += self.router.route(
                wire.name, positions.get(src_name), positions.get(dst_name))

        entry.load_cycles = (self.config_cycles_per_object * len(entry.slots)
                             + extra_cycles)
        self.total_reconfig_cycles += entry.load_cycles
        self.loaded[config.name] = entry
        self._invalidate_active()
        for obj in config.objects:
            obj.on_load()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.complete(f"config.load:{config.name}",
                            ts=tracer.now(), dur=entry.load_cycles,
                            cat="config",
                            args={"config": config.name,
                                  "slots": len(entry.slots),
                                  "route_segments": entry.route_segments,
                                  "load_cycles": entry.load_cycles})
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("config.loads").inc()
            metrics.histogram("config.load_cycles").observe(entry.load_cycles)
            metrics.gauge("config.resident").set(len(self.loaded))
        return entry

    def request(self, config: Configuration) -> Optional[LoadedConfig]:
        """Load now if resources allow, otherwise queue the request.

        The configuration manager's request queue: deferred
        configurations load automatically (FIFO order) as removals free
        resources.  A new request never overtakes queued ones.  Returns
        the entry if loaded immediately, else None.
        """
        if config.name in self.loaded or \
                any(c.name == config.name for c in self.pending):
            raise ResourceError(
                f"configuration {config.name!r} already loaded or queued")
        tracer = get_tracer()
        if not self.pending:
            try:
                entry = self.load(config)
            except ResourceError:
                pass
            else:
                if tracer.enabled:
                    tracer.instant(f"config.request:{config.name}", "config",
                                   args={"config": config.name,
                                         "outcome": "loaded"})
                return entry
        if tracer.enabled:
            tracer.instant(f"config.request:{config.name}", "config",
                           args={"config": config.name, "outcome": "queued",
                                 "queue_depth": len(self.pending) + 1})
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("config.deferred_requests").inc()
        self.pending.append(config)
        return None

    def _drain_pending(self) -> list:
        """Load queued requests that now fit (in order, head first)."""
        loaded = []
        progress = True
        while progress and self.pending:
            progress = False
            for config in list(self.pending):
                try:
                    entry = self.load(config)
                except ResourceError:
                    break       # FIFO: don't let later requests overtake
                self.pending.remove(config)
                loaded.append(entry)
                progress = True
        return loaded

    def remove(self, config) -> int:
        """Remove a configuration, freeing its resources.

        Returns the cycles charged for the removal (release is cheap:
        one cycle per slot).  Queued requests that now fit are loaded.
        """
        name = config if isinstance(config, str) else config.name
        entry = self.loaded.pop(name, None)
        if entry is None:
            raise ResourceError(f"configuration {name!r} is not loaded")
        cycles = len(entry.slots)
        self._rollback(entry, name)
        self._invalidate_active()
        self.total_reconfig_cycles += cycles
        tracer = get_tracer()
        if tracer.enabled:
            tracer.complete(f"config.remove:{name}", ts=tracer.now(),
                            dur=cycles, cat="config",
                            args={"config": name, "remove_cycles": cycles})
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("config.removes").inc()
            metrics.histogram("config.remove_cycles").observe(cycles)
            metrics.gauge("config.resident").set(len(self.loaded))
        drained = self._drain_pending()
        if drained and tracer.enabled:
            tracer.instant("config.drained", "config",
                           args={"loaded": [e.config.name for e in drained]})
        return cycles

    def _rollback(self, entry: LoadedConfig, name: str) -> None:
        for slot in entry.slots:
            self.array.release(slot, name)
        entry.slots = []
        for wire in entry.config.wires:
            self.router.unroute(wire.name)

    def _invalidate_active(self) -> None:
        self.version += 1
        self._objects_cache = None
        self._wires_cache = None

    # -- prefetch ----------------------------------------------------------------

    def prefetch(self, config: Configuration, *, removing=(),
                 background: bool = False):
        """Warm the fastpath compile cache for a swap that hasn't landed.

        Fig. 10 swaps follow a known script — configuration 2a comes out,
        2b goes in — so the kernel for the post-swap netlist can be
        compiled while 2a is still running (K-PACT-style prefetch: the
        configuration is staged before it is requested).  Builds the
        hypothetical resident set (current objects/wires minus
        ``removing`` configuration names, plus ``config``) and compiles
        it into :mod:`repro.fastpath.cache`; when the swap lands, the
        scheduler's recompile is a cache hit.

        Returns the graph fingerprint, or None when the hypothetical
        netlist is not fastpath-compilable (the swap simply compiles
        nothing ahead; running it falls back exactly as without
        prefetch).  With ``background=True`` compilation runs on a
        daemon thread and the thread is returned instead.
        """
        if background:
            import threading
            t = threading.Thread(
                target=self.prefetch, args=(config,),
                kwargs={"removing": removing}, daemon=True,
                name=f"fastpath-prefetch:{config.name}")
            t.start()
            return t

        from repro.fastpath.cache import warmup
        from repro.fastpath.ir import UnsupportedGraphError

        drop = {removing} if isinstance(removing, str) else set(removing)
        objs = [o for name, entry in self.loaded.items() if name not in drop
                for o in entry.config.objects]
        wires = [w for name, entry in self.loaded.items() if name not in drop
                 for w in entry.config.wires]
        objs.extend(config.objects)
        wires.extend(config.wires)
        try:
            fp, hit = warmup(objs, wires)
        except UnsupportedGraphError:
            return None
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("fastpath.prefetch").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(f"config.prefetch:{config.name}", "config",
                           args={"config": config.name,
                                 "fingerprint": fp[:12], "cached": hit})
        return fp

    # -- queries -----------------------------------------------------------------

    def is_loaded(self, name: str) -> bool:
        return name in self.loaded

    def active_objects(self) -> tuple:
        """All objects of resident configurations (cached flat tuple)."""
        objs = self._objects_cache
        if objs is None:
            objs = tuple(o for entry in self.loaded.values()
                         for o in entry.config.objects)
            self._objects_cache = objs
        return objs

    def active_wires(self) -> tuple:
        """All wires of resident configurations (cached flat tuple)."""
        wires = self._wires_cache
        if wires is None:
            wires = tuple(w for entry in self.loaded.values()
                          for w in entry.config.wires)
            self._wires_cache = wires
        return wires

    def occupancy(self) -> dict:
        return self.array.occupancy()


def _wire_endpoints(wire_name: str) -> tuple:
    """Recover (src_object, dst_object) names from a wire's debug name."""
    src, _, dst = wire_name.partition("->")
    return src.rsplit(".", 1)[0], dst.rsplit(".", 1)[0]

"""Exception types for the XPP array simulator."""


class XppError(Exception):
    """Base class for all XPP simulator errors."""


class ConfigurationError(XppError):
    """A configuration netlist is malformed (bad ports, double drivers...)."""


class ResourceError(XppError):
    """The array cannot satisfy a configuration's resource request, or a
    configuration attempted to claim resources owned by another one (the
    paper's 'configurations cannot be overwritten illegally' protocol)."""


class RoutingError(XppError):
    """The routing resources of a row/column are exhausted."""


class ConfigLoadError(XppError):
    """A configuration load failed or stalled in the configuration bus
    (injected by :mod:`repro.faults`; the manager itself raises
    :class:`ResourceError` for protocol violations).  Recovery policies
    retry these with backoff per the Fig. 10 swap protocol."""


class SimulationError(XppError):
    """Runtime protocol violation during simulation."""

"""Stall diagnosis: why is a configuration not making progress?

When a dataflow graph deadlocks or starves, the symptom is silence.
:func:`diagnose` inspects every loaded object's firing rule against the
current wire state and reports, per idle object, exactly which input is
empty or which output is full — turning a hung simulation into a
readable report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xpp.io import StreamSink, StreamSource
from repro.xpp.manager import ConfigurationManager


@dataclass
class StallInfo:
    """Why one object cannot fire."""

    name: str
    opcode: str
    empty_inputs: list = field(default_factory=list)
    full_outputs: list = field(default_factory=list)
    note: str = ""

    def __str__(self) -> str:
        parts = []
        if self.empty_inputs:
            parts.append("waiting for " + ", ".join(self.empty_inputs))
        if self.full_outputs:
            parts.append("blocked on " + ", ".join(self.full_outputs))
        if self.note:
            parts.append(self.note)
        reason = "; ".join(parts) if parts else "custom firing rule unmet"
        return f"{self.name} ({self.opcode}): {reason}"


def diagnose(manager: ConfigurationManager) -> list:
    """Report every currently-idle object and the reason.

    Call between simulator steps (the wires must be inside a cycle for
    availability to be meaningful, so this latches a fresh view first).
    Objects that *can* fire are omitted.
    """
    wires = manager.active_wires()
    for w in wires:
        w.begin_cycle()
    stalls = []
    for obj in manager.active_objects():
        if obj.plan():
            continue
        info = StallInfo(name=obj.name,
                         opcode=getattr(obj, "OPCODE", type(obj).__name__))
        for p in obj.inputs:
            if p.bound and p.available < 1:
                info.empty_inputs.append(p.name)
        for p in obj.outputs:
            if p.bound and p.space < 1:
                info.full_outputs.append(p.name)
        if isinstance(obj, StreamSource) and obj.exhausted:
            info.note = "input stream exhausted"
        if isinstance(obj, StreamSink):
            info.note = f"received {len(obj.received)}" + (
                f" of {obj.expect}" if obj.expect is not None else "")
        stalls.append(info)
    return stalls


def deadlock_report(manager: ConfigurationManager) -> str:
    """Human-readable stall summary for all loaded configurations."""
    stalls = diagnose(manager)
    if not stalls:
        return "no stalled objects"
    lines = [f"{len(stalls)} stalled object(s):"]
    lines.extend(f"  {s}" for s in stalls)
    return "\n".join(lines)

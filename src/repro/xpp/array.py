"""The XPP array: geometry and resource slots.

The XPP-64A provides an 8x8 array of ALU-PAEs with a column of 8
RAM-PAEs on either side, and four dual-channel I/O ports.  The array
tracks which configuration owns each slot; the configuration manager
allocates and frees slots at run time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xpp.errors import ResourceError


@dataclass(frozen=True)
class Slot:
    """One physical resource: kind plus grid position.

    RAM-PAE columns sit at col -1 (left) and col ``alu_cols`` (right);
    I/O channels are at the array edge with col -2 / ``alu_cols + 1``.
    """

    kind: str       # 'alu' | 'ram' | 'io'
    row: int
    col: int


class XppArray:
    """Resource model of one XPP device (default: the XPP-64A)."""

    def __init__(self, *, alu_rows: int = 8, alu_cols: int = 8,
                 ram_per_side: int = 8, io_ports: int = 4,
                 channels_per_io: int = 2, name: str = "XPP-64A"):
        self.name = name
        self.alu_rows = alu_rows
        self.alu_cols = alu_cols
        self.ram_per_side = ram_per_side
        self.io_channels = io_ports * channels_per_io

        self.slots: dict[str, list[Slot]] = {"alu": [], "ram": [], "io": []}
        for r in range(alu_rows):
            for c in range(alu_cols):
                self.slots["alu"].append(Slot("alu", r, c))
        for r in range(ram_per_side):
            self.slots["ram"].append(Slot("ram", r, -1))
            self.slots["ram"].append(Slot("ram", r, alu_cols))
        for ch in range(self.io_channels):
            side = -2 if ch % 2 == 0 else alu_cols + 1
            self.slots["io"].append(Slot("io", ch // 2, side))

        #: slot -> owning configuration name
        self.owner: dict[Slot, str] = {}

    #: pseudo-owner marking a slot as faulty: quarantined slots are never
    #: free, so ``claim()`` routes new work around them automatically.
    QUARANTINE_OWNER = "__faulty__"

    # -- capacity ----------------------------------------------------------------

    def capacity(self, kind: str) -> int:
        return len(self.slots[kind])

    def free_count(self, kind: str) -> int:
        return sum(1 for s in self.slots[kind] if s not in self.owner)

    def free_slots(self, kind: str) -> list:
        return [s for s in self.slots[kind] if s not in self.owner]

    def occupancy(self) -> dict:
        """Used/total per resource kind."""
        return {kind: (len(self.slots[kind]) - self.free_count(kind),
                       len(self.slots[kind]))
                for kind in self.slots}

    # -- allocation (used by the configuration manager) ----------------------------

    def claim(self, kind: str, config_name: str) -> Slot:
        free = self.free_slots(kind)
        if not free:
            raise ResourceError(
                f"{self.name}: no free {kind} slot for configuration "
                f"{config_name!r} (protocol forbids overwriting loaded "
                f"configurations)")
        slot = free[0]
        self.owner[slot] = config_name
        return slot

    def claim_at(self, kind: str, row: int, col: int,
                 config_name: str):
        """Claim the specific slot at ``(row, col)`` if it exists and is
        free; returns None otherwise (callers fall back to
        :meth:`claim`).  This is how placement hints from the pnr
        compiler are applied without ever making a load fail that
        first-fit would have satisfied."""
        for slot in self.slots[kind]:
            if slot.row == row and slot.col == col:
                if slot in self.owner:
                    return None
                self.owner[slot] = config_name
                return slot
        return None

    def release(self, slot: Slot, config_name: str) -> None:
        if self.owner.get(slot) != config_name:
            raise ResourceError(
                f"{self.name}: configuration {config_name!r} does not own "
                f"slot {slot}")
        del self.owner[slot]

    def owned_by(self, config_name: str) -> list:
        return [s for s, owner in self.owner.items() if owner == config_name]

    # -- fault quarantine (used by repro.faults recovery policies) ----------------

    def quarantine(self, slot: Slot) -> None:
        """Mark a slot faulty so it is never claimed again.

        The slot must be free: a recovery policy first removes the
        configuration owning the bad PAE, then quarantines the slot,
        then reloads onto the remaining spares.
        """
        if slot in self.owner:
            raise ResourceError(
                f"{self.name}: cannot quarantine {slot}, owned by "
                f"{self.owner[slot]!r}")
        self.owner[slot] = self.QUARANTINE_OWNER

    def release_quarantine(self, slot: Slot) -> None:
        """Return a quarantined slot to service (e.g. after a transient
        fault cleared)."""
        self.release(slot, self.QUARANTINE_OWNER)

    def quarantined(self) -> list:
        """Slots currently marked faulty."""
        return self.owned_by(self.QUARANTINE_OWNER)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        occ = self.occupancy()
        return f"<XppArray {self.name} {occ}>"

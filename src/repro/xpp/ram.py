"""RAM processing array elements (RAM-PAEs).

Each RAM-PAE contains 512x24 bits of dual-ported SRAM, configurable as
standard RAM or as a FIFO (the paper's circular lookup tables are
preloaded FIFOs).  The two ports are independent: a read and a write can
fire in the same cycle.
"""

from __future__ import annotations

from collections import deque

from repro.fixed import wrap
from repro.xpp.errors import ConfigurationError
from repro.xpp.objects import DataflowObject

#: Words per RAM-PAE in the XPP-64A.
RAM_WORDS = 512
RAM_BITS = 24


class RamPae(DataflowObject):
    """Dual-ported RAM: read port (``raddr`` -> ``rdata``) and write port
    (``waddr`` + ``wdata``).

    ``preload`` initialises memory contents (lookup tables).  A read and a
    write may fire in the same cycle; a same-cycle read of a written
    address returns the old contents (read-before-write).
    """

    KIND = "ram"
    ENERGY = 1.5

    def __init__(self, name: str, *, words: int = RAM_WORDS,
                 bits: int = RAM_BITS, preload=None):
        super().__init__(name, 3, 1,
                         in_names=["raddr", "waddr", "wdata"],
                         out_names=["rdata"])
        if not 1 <= words <= RAM_WORDS:
            raise ConfigurationError(
                f"{name}: RAM-PAE holds at most {RAM_WORDS} words")
        self.words = words
        self.bits = bits
        self.mem = [0] * words
        if preload is not None:
            data = list(preload)
            if len(data) > words:
                raise ConfigurationError(f"{name}: preload exceeds {words} words")
            for i, v in enumerate(data):
                self.mem[i] = wrap(v, bits)
        self._preload = list(self.mem)
        self._do_read = False
        self._do_write = False

    def reset(self) -> None:
        """Restore the configured memory image (configuration reload)."""
        super().reset()
        self.mem = list(self._preload)
        self._do_read = False
        self._do_write = False

    def flip_bit(self, word: int, bit: int) -> int:
        """Flip one stored bit (an SRAM soft error); returns the new
        word value.  This is the injection surface of
        :class:`repro.faults.models.RamBitFlip` — flipping stored data
        never changes the firing rule, only the values later read out,
        which is what keeps fault runs scheduler-equivalent."""
        if not 0 <= word < self.words:
            raise ConfigurationError(
                f"{self.name}: no word {word} (holds {self.words})")
        self.mem[word] = wrap(self.mem[word] ^ (1 << (bit % self.bits)),
                              self.bits)
        return self.mem[word]

    def plan(self) -> bool:
        raddr, waddr, wdata = self.inputs
        rdata = self.outputs[0]
        self._do_read = (raddr.bound and raddr.available >= 1
                         and rdata.space >= 1)
        self._do_write = (waddr.bound and waddr.available >= 1
                          and wdata.bound and wdata.available >= 1)
        return self._do_read or self._do_write

    def commit(self) -> None:
        if self._do_read:
            addr = self.inputs[0].pop() % self.words
            self.outputs[0].push(self.mem[addr])
        if self._do_write:
            addr = self.inputs[1].pop() % self.words
            value = wrap(self.inputs[2].pop(), self.bits)
            self.mem[addr] = value
        self.fired += 1

    def compute(self, args):  # pragma: no cover - plan/commit overridden
        raise NotImplementedError


class FifoPae(DataflowObject):
    """RAM-PAE in FIFO mode.

    ``circular=True`` re-enqueues each output token at the tail — the
    paper's circular lookup table for FFT read/write addresses and twiddle
    factors.  Input and output sides fire independently.
    """

    KIND = "ram"
    ENERGY = 1.5

    def __init__(self, name: str, *, depth: int = RAM_WORDS,
                 bits: int = RAM_BITS, preload=None, circular: bool = False):
        super().__init__(name, 1, 1, in_names=["in"], out_names=["out"])
        if not 1 <= depth <= RAM_WORDS:
            raise ConfigurationError(
                f"{name}: FIFO depth of a RAM-PAE is at most {RAM_WORDS}")
        self.depth = depth
        self.bits = bits
        self.circular = circular
        self._q: deque = deque()
        if preload is not None:
            data = [wrap(v, bits) for v in preload]
            if len(data) > depth:
                raise ConfigurationError(f"{name}: preload exceeds depth")
            self._q.extend(data)
        self._preload = list(self._q)
        self._do_in = False
        self._do_out = False

    def __len__(self) -> int:
        return len(self._q)

    def reset(self) -> None:
        """Restore the configured FIFO contents (configuration reload)."""
        super().reset()
        self._q = deque(self._preload)
        self._do_in = False
        self._do_out = False

    def flip_bit(self, word: int, bit: int) -> int:
        """Flip one bit of the ``word``-th queued entry (SRAM soft
        error in the FIFO's backing RAM)."""
        if not self._q:
            raise ConfigurationError(f"{self.name}: FIFO empty, no bit "
                                     f"to flip")
        idx = word % len(self._q)
        self._q[idx] = wrap(self._q[idx] ^ (1 << (bit % self.bits)),
                            self.bits)
        return self._q[idx]

    def plan(self) -> bool:
        inp, out = self.inputs[0], self.outputs[0]
        self._do_in = (inp.bound and inp.available >= 1
                       and len(self._q) < self.depth)
        self._do_out = bool(self._q) and out.bound and out.space >= 1
        return self._do_in or self._do_out

    def commit(self) -> None:
        # Emit first so a full circular FIFO can still rotate.
        if self._do_out:
            value = self._q.popleft()
            self.outputs[0].push(value)
            if self.circular:
                self._q.append(value)
        if self._do_in:
            self._q.append(wrap(self.inputs[0].pop(), self.bits))
        self.fired += 1

    def compute(self, args):  # pragma: no cover - plan/commit overridden
        raise NotImplementedError

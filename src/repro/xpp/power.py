"""Power proxy for the array and the DSP alternative.

The paper's conclusion: "the pipeline-based parallelization ... also
results in low overall power consumption".  This module turns the
simulator's firing-energy units into comparable power figures so that
claim becomes a measurable experiment.

Calibration (documented assumptions, early-2000s 0.13 µm class):

* one firing-energy unit ≈ 2 pJ (a 24-bit ALU operation at ~1 V);
* leakage ≈ 0.05 pJ per occupied PAE slot per cycle (dual-Vt process);
* a programmable DSP costs ~500 pJ per instruction once fetch, decode,
  register file and memory traffic are included — one to two orders of
  magnitude above a bare datapath operation, which is exactly the gap
  the array exploits by configuring the datapath once and streaming.

Absolute numbers are proxies; the *ratios* are the reproducible claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.xpp.stats import RunStats

#: pJ per abstract firing-energy unit (one scalar ALU operation).
ENERGY_UNIT_PJ = 2.0
#: pJ of leakage per occupied slot per clock cycle.
LEAKAGE_PJ_PER_SLOT_CYCLE = 0.05
#: pJ per DSP instruction (fetch + decode + execute + traffic).
DSP_PJ_PER_INSTRUCTION = 500.0


@dataclass(frozen=True)
class PowerEstimate:
    """Energy and average power of one kernel execution."""

    dynamic_pj: float
    leakage_pj: float
    cycles: int
    clock_hz: float

    @property
    def total_pj(self) -> float:
        return self.dynamic_pj + self.leakage_pj

    @property
    def average_mw(self) -> float:
        """Average power at the given clock."""
        if self.cycles == 0:
            return 0.0
        seconds = self.cycles / self.clock_hz
        return self.total_pj * 1e-12 / seconds * 1e3

    def energy_per_result_pj(self, n_results: int) -> float:
        return self.total_pj / n_results if n_results else float("inf")


def array_power(stats: RunStats, occupied_slots: int, *,
                clock_hz: float = 69.12e6,
                energy_unit_pj: float = ENERGY_UNIT_PJ,
                leakage_pj: float = LEAKAGE_PJ_PER_SLOT_CYCLE
                ) -> PowerEstimate:
    """Power estimate of an array run from its statistics."""
    if occupied_slots < 0:
        raise ValueError("occupied_slots must be non-negative")
    dynamic = stats.energy * energy_unit_pj
    leak = occupied_slots * stats.cycles * leakage_pj
    return PowerEstimate(dynamic_pj=dynamic, leakage_pj=leak,
                         cycles=stats.cycles, clock_hz=clock_hz)


def dsp_energy_pj(n_instructions: float, *,
                  pj_per_instruction: float = DSP_PJ_PER_INSTRUCTION
                  ) -> float:
    """Energy of executing a kernel on the programmable DSP instead."""
    if n_instructions < 0:
        raise ValueError("instruction count must be non-negative")
    return n_instructions * pj_per_instruction


def dsp_kernel_instructions(n_results: int, ops_per_result: float,
                            overhead_factor: float = 2.0) -> float:
    """Instruction count of a software kernel: the arithmetic ops plus
    load/store/loop overhead (``overhead_factor`` x)."""
    return n_results * ops_per_result * overhead_factor


# -- per-span energy attribution --------------------------------------------------

def energy_at(samples, cycle: float) -> float:
    """Cumulative firing energy at ``cycle`` from ``sim.energy`` counter
    samples (``(ts, value)`` pairs, as returned by
    ``Tracer.counter_samples``): the last sample at or before the cycle,
    0 before the first."""
    energy = 0.0
    for ts, value in samples:
        if ts > cycle:
            break
        energy = value
    return energy


def attribute_energy(tracer, *, cat: Optional[str] = None,
                     energy_unit_pj: float = ENERGY_UNIT_PJ) -> dict:
    """Attribute simulated firing energy to traced spans.

    Requires a trace recorded with the instrumented simulator (which
    samples a cumulative ``sim.energy`` counter every cycle).  For each
    complete span, the energy spent inside it is the counter delta over
    ``[ts, ts + dur]``, converted to pJ.  Spans named alike accumulate;
    ``cat`` restricts attribution to one category.  This is the
    profiler's answer to *where the energy went*, the per-phase
    companion to :func:`array_power`.
    """
    samples = tracer.counter_samples("sim.energy")
    out: dict = {}
    for span in tracer.spans():
        if cat is not None and span.cat != cat:
            continue
        delta = energy_at(samples, span.ts + span.dur) \
            - energy_at(samples, span.ts)
        out[span.name] = out.get(span.name, 0.0) + delta * energy_unit_pj
    return out

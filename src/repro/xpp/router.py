"""Routing resource model.

Each PAE row and column carries a limited number of horizontal/vertical
bus segments.  After placement, every wire is routed with a Manhattan
L-path (horizontal first); the router accounts segment usage per
row/column and, in strict mode, rejects placements that exceed the
per-track capacity.
"""

from __future__ import annotations

from collections import Counter

from repro.xpp.errors import RoutingError

#: Horizontal bus segments per row / vertical segments per column in the
#: simplified XPP-64A routing model.
DEFAULT_TRACKS = 16


class Router:
    """Tracks routing usage of wires between placed objects."""

    def __init__(self, *, tracks_per_row: int = DEFAULT_TRACKS,
                 tracks_per_col: int = DEFAULT_TRACKS, strict: bool = False):
        self.tracks_per_row = tracks_per_row
        self.tracks_per_col = tracks_per_col
        self.strict = strict
        self.row_usage: Counter = Counter()
        self.col_usage: Counter = Counter()
        self._routes: dict = {}

    def route(self, wire_name: str, src_pos, dst_pos) -> int:
        """Route one wire; returns its Manhattan length in segments."""
        if src_pos is None or dst_pos is None:
            return 0    # endpoint not placed (pseudo object) - free routing
        (r0, c0), (r1, c1) = src_pos, dst_pos
        length = abs(c1 - c0) + abs(r1 - r0)
        # horizontal leg on the source row, vertical leg on the dest column
        if c1 != c0:
            self.row_usage[r0] += abs(c1 - c0)
        if r1 != r0:
            self.col_usage[c1] += abs(r1 - r0)
        self._routes[wire_name] = ((r0, c0), (r1, c1), length)
        if self.strict:
            if self.row_usage[r0] > self.tracks_per_row:
                raise RoutingError(f"row {r0} routing tracks exhausted")
            if self.col_usage[c1] > self.tracks_per_col:
                raise RoutingError(f"column {c1} routing tracks exhausted")
        return length

    def unroute(self, wire_name: str) -> None:
        route = self._routes.pop(wire_name, None)
        if route is None:
            return
        (r0, c0), (r1, c1), _ = route
        if c1 != c0:
            self.row_usage[r0] -= abs(c1 - c0)
        if r1 != r0:
            self.col_usage[c1] -= abs(r1 - r0)

    @property
    def total_segments(self) -> int:
        return sum(self.row_usage.values()) + sum(self.col_usage.values())

    def utilization(self) -> dict:
        """Fraction of row/column track capacity in use (max over tracks)."""
        row = max((v / self.tracks_per_row for v in self.row_usage.values()),
                  default=0.0)
        col = max((v / self.tracks_per_col for v in self.col_usage.values()),
                  default=0.0)
        return {"max_row_utilization": row, "max_col_utilization": col,
                "total_segments": self.total_segments}

"""XPP-VC — compiling a C-like expression subset onto the array.

The paper's design flow (Fig. 3) compiles a subset of C to NML via
XPP-VC.  This module is the analogue for the simulator: it compiles a
small assignment language into a dataflow configuration, one ALU-PAE
per operator, with constants folded into PAE register operands.

Example::

    cfg = compile_dataflow('''
        t = a * 3 + b
        y = (t >> 2) & 255
    ''')
    result = run_dataflow(cfg, a=[1, 2, 3], b=[10, 20, 30])
    result["y"]

Supported: ``+ - * & | ^ << >>`` (shift amounts constant), unary ``-``,
``abs(x)``, ``min(a, b)``, ``max(a, b)``, integer constants and
intermediate variables.  Every statement is ``name = expression``; free
variables become input streams, assigned names that are never reused
become output streams.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.xpp.config import ConfigBuilder, Configuration
from repro.xpp.errors import ConfigurationError
from repro.xpp.simulator import execute

_BINOPS = {
    ast.Add: "ADD",
    ast.Sub: "SUB",
    ast.Mult: "MUL",
    ast.BitAnd: "AND",
    ast.BitOr: "OR",
    ast.BitXor: "XOR",
    ast.LShift: "SHL",
    ast.RShift: "SHR",
}

_CALLS = {"min": "MIN", "max": "MAX"}


class _Compiler(ast.NodeVisitor):
    """Walks the AST, emitting one ALU per operator node."""

    def __init__(self, builder: ConfigBuilder):
        self.builder = builder
        self.env: dict[str, tuple] = {}     # name -> (obj, port)
        self.sources: dict[str, object] = {}
        self._n = 0

    def _tmp(self, prefix: str) -> str:
        self._n += 1
        return f"{prefix}_{self._n}"

    def _ref(self, name: str) -> tuple:
        """Resolve a variable: known value or a new input stream."""
        if name in self.env:
            return self.env[name]
        src = self.builder.source(name)
        self.sources[name] = src
        self.env[name] = (src, 0)
        return self.env[name]

    # -- expression compilation --------------------------------------------------

    def emit(self, node) -> tuple:
        """Compile an expression node; returns ``(obj, out_port)``."""
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, int):
                raise ConfigurationError(
                    f"only integer constants supported: {node.value!r}")
            const = self.builder.alu("CONST", name=self._tmp("const"),
                                     value=node.value)
            return const, 0
        if isinstance(node, ast.Name):
            return self._ref(node.id)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                inner = self.emit(node.operand)
                neg = self.builder.alu("NEG", name=self._tmp("neg"))
                self.builder.connect(inner[0], inner[1], neg, 0)
                return neg, 0
            raise ConfigurationError(
                f"unsupported unary operator {ast.dump(node.op)}")
        if isinstance(node, ast.BinOp):
            return self._emit_binop(node)
        if isinstance(node, ast.Call):
            return self._emit_call(node)
        raise ConfigurationError(f"unsupported expression {ast.dump(node)}")

    def _emit_binop(self, node: ast.BinOp) -> tuple:
        opcode = _BINOPS.get(type(node.op))
        if opcode is None:
            raise ConfigurationError(
                f"unsupported operator {type(node.op).__name__}")
        # constant right operand folds into the PAE's register (and a
        # constant shift becomes a SHIFT PAE)
        if isinstance(node.right, ast.Constant) \
                and isinstance(node.right.value, int):
            value = node.right.value
            if opcode in ("SHL", "SHR"):
                amount = value if opcode == "SHL" else -value
                op = self.builder.alu("SHIFT", name=self._tmp("shift"),
                                      amount=amount)
                left = self.emit(node.left)
                self.builder.connect(left[0], left[1], op, 0)
                return op, 0
            op = self.builder.alu(opcode, name=self._tmp(opcode.lower()),
                                  const=value)
            left = self.emit(node.left)
            self.builder.connect(left[0], left[1], op, "a")
            return op, 0
        op = self.builder.alu(opcode, name=self._tmp(opcode.lower()))
        left = self.emit(node.left)
        right = self.emit(node.right)
        self.builder.connect(left[0], left[1], op, "a")
        self.builder.connect(right[0], right[1], op, "b")
        return op, 0

    def _emit_call(self, node: ast.Call) -> tuple:
        if not isinstance(node.func, ast.Name):
            raise ConfigurationError("only simple calls supported")
        fname = node.func.id
        if fname == "abs":
            if len(node.args) != 1:
                raise ConfigurationError("abs() takes one argument")
            inner = self.emit(node.args[0])
            op = self.builder.alu("ABS", name=self._tmp("abs"))
            self.builder.connect(inner[0], inner[1], op, 0)
            return op, 0
        if fname in _CALLS:
            if len(node.args) != 2:
                raise ConfigurationError(f"{fname}() takes two arguments")
            op = self.builder.alu(_CALLS[fname], name=self._tmp(fname))
            a = self.emit(node.args[0])
            b = self.emit(node.args[1])
            self.builder.connect(a[0], a[1], op, "a")
            self.builder.connect(b[0], b[1], op, "b")
            return op, 0
        raise ConfigurationError(f"unsupported function {fname!r}")

    # -- statements ----------------------------------------------------------------

    def compile_statements(self, body) -> dict:
        """Process assignments; returns name -> (obj, port) of results."""
        assigned = {}
        for stmt in body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1 \
                    or not isinstance(stmt.targets[0], ast.Name):
                raise ConfigurationError(
                    "only single-target assignments are supported")
            name = stmt.targets[0].id
            if name in self.env:
                raise ConfigurationError(
                    f"single-assignment form required: {name!r} reassigned")
            value = self.emit(stmt.value)
            self.env[name] = value
            assigned[name] = value
        return assigned


def compile_dataflow(source: str, *, name: str = "vc",
                     outputs: Optional[list] = None) -> Configuration:
    """Compile assignment statements into an array configuration.

    ``outputs`` selects which assigned variables become output streams;
    by default every assigned variable not consumed by a later
    statement gets a sink.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise ConfigurationError(f"XPP-VC parse error: {exc}") from exc
    builder = ConfigBuilder(name)
    compiler = _Compiler(builder)
    assigned = compiler.compile_statements(tree.body)
    if not assigned:
        raise ConfigurationError("no assignments in source")

    if outputs is None:
        consumed = set()
        for stmt in tree.body:
            for node in ast.walk(stmt.value):
                if isinstance(node, ast.Name):
                    consumed.add(node.id)
        outputs = [n for n in assigned if n not in consumed]
        if not outputs:
            outputs = [list(assigned)[-1]]
    for out_name in outputs:
        if out_name not in assigned:
            raise ConfigurationError(f"{out_name!r} is not assigned")
        obj, port = assigned[out_name]
        sink = builder.sink(f"{out_name}_out")
        builder.connect(obj, port, sink, 0)
    return builder.build()


def run_dataflow(config: Configuration, *, max_cycles: int = 100_000,
                 **streams) -> dict:
    """Stream inputs through a compiled configuration.

    ``streams`` maps input variable names to sample sequences; returns
    ``{output_name: list}`` keyed by the assigned variable names.
    """
    lengths = {len(v) for v in streams.values()}
    if len(lengths) > 1:
        raise ConfigurationError("all input streams must have equal length")
    n = lengths.pop() if lengths else 0
    for sink in config.sinks.values():
        sink.expect = n
    missing = set(config.sources) - set(streams)
    if missing:
        raise ConfigurationError(f"missing input streams: {sorted(missing)}")
    result = execute(config, inputs=dict(streams), max_cycles=max_cycles)
    return {name[:-4] if name.endswith("_out") else name: values
            for name, values in result.outputs.items()}

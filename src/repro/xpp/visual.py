"""Text rendering of the array state and configurations.

Developer-facing views: an ASCII occupancy map of the 8x8+2x8 array
(who owns which PAE — the Fig. 10 style resource picture) and a
structural summary of a configuration's dataflow graph.
"""

from __future__ import annotations

from collections import Counter

from repro.xpp.array import XppArray
from repro.xpp.config import Configuration


def render_array(array: XppArray, *, legend: bool = True) -> str:
    """ASCII map of the array: one letter per owning configuration,
    ``.`` for free slots.  RAM-PAE columns flank the ALU grid, I/O
    channels sit outside them.
    """
    owners = sorted({name for name in array.owner.values()})
    symbol = {name: chr(ord("A") + i % 26) for i, name in enumerate(owners)}

    def cell(kind: str, row: int, col: int) -> str:
        for slot in array.slots[kind]:
            if slot.row == row and slot.col == col:
                owner = array.owner.get(slot)
                return symbol[owner] if owner else "."
        return " "

    lines = []
    io_cols = {-2: "left", array.alu_cols + 1: "right"}
    header = "     " + "".join(f"{c:2d}" for c in range(array.alu_cols))
    lines.append(f"{array.name}: ALU grid (RAM columns at the edges)")
    lines.append(header)
    for row in range(array.alu_rows):
        io_l = cell("io", row, -2) if row < -(-array.io_channels // 2) else " "
        ram_l = cell("ram", row, -1) if row < array.ram_per_side else " "
        alus = " ".join(cell("alu", row, c) for c in range(array.alu_cols))
        ram_r = cell("ram", row, array.alu_cols) \
            if row < array.ram_per_side else " "
        io_r = cell("io", row, array.alu_cols + 1) \
            if row < -(-array.io_channels // 2) else " "
        lines.append(f"{row:2d} {io_l}{ram_l}| {alus} |{ram_r}{io_r}")
    if legend and owners:
        lines.append("legend: " + ", ".join(
            f"{symbol[name]}={name}" for name in owners) + "  (.=free)")
    return "\n".join(lines)


def render_config(config: Configuration) -> str:
    """Structural summary of a configuration: resources, objects and
    connections."""
    req = Counter(config.requirements())
    lines = [f"configuration {config.name!r}: "
             + ", ".join(f"{v} {k}" for k, v in sorted(req.items()))]
    for obj in config.objects:
        opcode = getattr(obj, "OPCODE", type(obj).__name__)
        pos = f" @({obj.position[0]},{obj.position[1]})" \
            if obj.position else ""
        lines.append(f"  {obj.name}: {opcode}{pos}")
    lines.append("  wires:")
    for wire in config.wires:
        cap = f" (cap {wire.capacity})" if wire.capacity != 2 else ""
        lines.append(f"    {wire.name}{cap}")
    return "\n".join(lines)


def render_occupancy(array: XppArray) -> str:
    """One-line per-kind occupancy summary."""
    parts = []
    for kind, (used, total) in sorted(array.occupancy().items()):
        parts.append(f"{kind} {used}/{total}")
    return " | ".join(parts)

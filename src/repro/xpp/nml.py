"""NML — the textual configuration entry of the XPP design flow.

The paper's Fig. 3 shows configurations entering the flow as NML
(Native Mapping Language) next to the C path.  This module implements a
line-oriented NML dialect for the simulator: object declarations with
parameters, and routed connections with optional wire capacity.

Example::

    config descrambler
    source code
    source data bits=24
    alu code_mux LUT table=[5,1,7,3]
    alu mul CMUL shift=1
    sink out expect=16

    connect code.out0 -> code_mux.index
    connect code_mux.out0 -> mul.b capacity=4
    connect data.out0 -> mul.a
    connect mul.out0 -> out.in

:func:`parse_nml` builds a :class:`~repro.xpp.config.Configuration`;
:func:`dump_nml` serialises one back to text (a parse/dump round trip
is stable).
"""

from __future__ import annotations

import re
from typing import Any

from repro.xpp import alu as alu_mod
from repro.xpp.alu import make_alu
from repro.xpp.config import Configuration
from repro.xpp.errors import ConfigurationError
from repro.xpp.io import StreamSink, StreamSource
from repro.xpp.objects import Probe
from repro.xpp.port import DEFAULT_CAPACITY
from repro.xpp.ram import FifoPae, RamPae

_CONNECT_RE = re.compile(
    r"^connect\s+(\w+)\.(\w+)\s*->\s*(\w+)\.(\w+)(?:\s+capacity=(\d+))?$")

#: Bracket-nesting limit for parameter values.  No real netlist nests
#: lists at all; the guard turns fuzzer inputs like ``[[[[...`` into a
#: :class:`ConfigurationError` instead of a ``RecursionError``.
_MAX_LIST_DEPTH = 32


def _parse_value(text: str, _depth: int = 0) -> Any:
    """Parse one parameter value: int, bool, list of ints, or string."""
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        if _depth >= _MAX_LIST_DEPTH:
            raise ConfigurationError(
                f"parameter list nested deeper than {_MAX_LIST_DEPTH}")
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_parse_value(v, _depth + 1) for v in inner.split(",")]
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    try:
        return int(text, 0)
    except ValueError:
        return text


def _parse_params(tokens: list) -> dict:
    params = {}
    for tok in tokens:
        if "=" not in tok:
            raise ConfigurationError(f"malformed parameter {tok!r}")
        key, _, value = tok.partition("=")
        params[key] = _parse_value(value)
    return params


def _split_decl(line: str) -> list:
    """Split a declaration line, keeping [...] lists intact."""
    tokens, depth, cur = [], 0, ""
    for ch in line:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch.isspace() and depth == 0:
            if cur:
                tokens.append(cur)
                cur = ""
        else:
            cur += ch
    if cur:
        tokens.append(cur)
    return tokens


def _port_key(token: str):
    """Port reference: a name or in0/out0-style index."""
    m = re.fullmatch(r"(in|out)(\d+)", token)
    if m:
        return int(m.group(2))
    return token


def parse_nml(text: str) -> Configuration:
    """Parse NML text into a configuration (validated)."""
    cfg = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = _split_decl(line)
        kind = tokens[0]
        try:
            if kind == "config":
                if cfg is not None:
                    raise ConfigurationError("duplicate 'config' line")
                cfg = Configuration(tokens[1])
                continue
            if cfg is None:
                raise ConfigurationError("missing 'config <name>' header")
            if kind == "connect":
                m = _CONNECT_RE.match(line)
                if not m:
                    raise ConfigurationError(f"malformed connect: {line!r}")
                src, sp, dst, dp, cap = m.groups()
                cfg.connect(cfg.object(src), _port_key(sp),
                            cfg.object(dst), _port_key(dp),
                            capacity=int(cap) if cap else DEFAULT_CAPACITY)
            elif kind == "alu":
                name, opcode = tokens[1], tokens[2]
                cfg.add(make_alu(name, opcode, **_parse_params(tokens[3:])))
            elif kind == "source":
                params = _parse_params(tokens[2:])
                cfg.add(StreamSource(tokens[1],
                                     bits=params.get("bits", 24)))
            elif kind == "sink":
                params = _parse_params(tokens[2:])
                cfg.add(StreamSink(tokens[1],
                                   expect=params.get("expect")))
            elif kind == "ram":
                cfg.add(RamPae(tokens[1], **_parse_params(tokens[2:])))
            elif kind == "fifo":
                cfg.add(FifoPae(tokens[1], **_parse_params(tokens[2:])))
            elif kind == "probe":
                cfg.add(Probe(tokens[1]))
            else:
                raise ConfigurationError(f"unknown declaration {kind!r}")
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            # TypeError/ValueError cover constructor kwargs that parse
            # but do not fit (unknown names, wrong-typed values) — a
            # hostile netlist must fail structured, never crash
            raise ConfigurationError(
                f"NML line {lineno}: {raw.strip()!r}: {exc}") from exc
        except ConfigurationError as exc:
            raise ConfigurationError(f"NML line {lineno}: {exc}") from exc
    if cfg is None:
        raise ConfigurationError("empty NML text")
    cfg.validate()
    return cfg


# ---------------------------------------------------------------------------
# serialisation
# ---------------------------------------------------------------------------

def _fmt_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_fmt_value(v) for v in value) + "]"
    return str(value)


def _alu_params(obj) -> dict:
    """Recover constructor parameters from an ALU object."""
    params = {}
    if isinstance(obj, alu_mod.BinaryAlu):
        if obj.const is not None:
            params["const"] = obj.const
        if obj.shift:
            params["shift"] = obj.shift
    elif isinstance(obj, alu_mod.ShiftAlu):
        params["amount"] = obj.amount
    elif isinstance(obj, alu_mod.LutAlu):
        params["table"] = obj.table
    elif isinstance(obj, alu_mod.ComplexMul):
        if obj.shift:
            params["shift"] = obj.shift
        if obj.conj_b:
            params["conj_b"] = True
    elif isinstance(obj, (alu_mod.ComplexAdd, alu_mod.ComplexSub)):
        if obj.shift:
            params["shift"] = obj.shift
    elif isinstance(obj, alu_mod.ComplexMulJ):
        params["sign"] = obj.sign
    elif isinstance(obj, alu_mod.ComplexShift):
        params["amount"] = obj.amount
    elif isinstance(obj, alu_mod.Counter):
        defaults = {"start": 0, "step": 1, "limit": None, "count": None}
        for key, default in defaults.items():
            value = getattr(obj, key)
            if value != default:
                params[key] = value
        if obj.mode != "wrap":
            params["mode"] = obj.mode
    elif isinstance(obj, alu_mod.Const):
        params["value"] = obj.value
        if obj.count is not None:
            params["count"] = obj.count
    elif isinstance(obj, alu_mod.Seq):
        params["values"] = obj.values
        if obj.circular:
            params["circular"] = True
    elif isinstance(obj, (alu_mod.Acc, alu_mod.ComplexAcc)):
        params["length"] = obj.length
        if obj.shift:
            params["shift"] = obj.shift
    elif isinstance(obj, alu_mod.Integrator):
        if obj._sum:
            params["init"] = obj._sum
    elif isinstance(obj, alu_mod.Reg):
        if obj._preload:
            params["init"] = list(obj._preload)
    if isinstance(obj, alu_mod.ComplexAlu) and obj.half_bits != 12:
        params["half_bits"] = obj.half_bits
    return params


def _decl_line(obj) -> str:
    if isinstance(obj, StreamSource):
        extra = f" bits={obj.bits}" if obj.bits != 24 else ""
        return f"source {obj.name}{extra}"
    if isinstance(obj, StreamSink):
        extra = f" expect={obj.expect}" if obj.expect is not None else ""
        return f"sink {obj.name}{extra}"
    if isinstance(obj, Probe):
        return f"probe {obj.name}"
    if isinstance(obj, RamPae):
        parts = [f"ram {obj.name}", f"words={obj.words}"]
        if obj.bits != 24:
            parts.append(f"bits={obj.bits}")
        if any(obj.mem):
            parts.append(f"preload={_fmt_value(obj.mem)}")
        return " ".join(parts)
    if isinstance(obj, FifoPae):
        parts = [f"fifo {obj.name}", f"depth={obj.depth}"]
        if obj.bits != 24:
            parts.append(f"bits={obj.bits}")
        if obj.circular:
            parts.append("circular=true")
        if len(obj):
            parts.append(f"preload={_fmt_value(list(obj._q))}")
        return " ".join(parts)
    params = _alu_params(obj)
    parts = [f"alu {obj.name} {obj.OPCODE}"]
    parts.extend(f"{k}={_fmt_value(v)}" for k, v in params.items())
    return " ".join(parts)


def dump_nml(config: Configuration) -> str:
    """Serialise a configuration to NML text."""
    lines = [f"config {config.name}"]
    for obj in config.objects:
        lines.append(_decl_line(obj))
    lines.append("")
    for wire in config.wires:
        src, _, dst = wire.name.partition("->")
        src_obj, src_port = src.rsplit(".", 1)
        dst_obj, dst_port = dst.rsplit(".", 1)
        cap = f" capacity={wire.capacity}" \
            if wire.capacity != DEFAULT_CAPACITY else ""
        lines.append(f"connect {src_obj}.{src_port} -> "
                     f"{dst_obj}.{dst_port}{cap}")
    return "\n".join(lines) + "\n"

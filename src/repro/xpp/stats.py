"""Execution statistics: cycles, throughput, occupancy and a power proxy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


#: Why a :meth:`Simulator.run` returned (``RunStats.stop_reason``).
STOP_UNTIL = "until"            # the until() predicate fired
STOP_QUIESCENT = "quiescent"    # nothing fired for quiescent_limit cycles
STOP_MAX_CYCLES = "max_cycles"  # the cycle budget ran out


@dataclass
class RunStats:
    """Summary of one simulation run."""

    cycles: int = 0
    total_firings: int = 0
    firings: dict = field(default_factory=dict)     # object name -> count
    energy: float = 0.0                             # sum of per-firing energies
    tokens_out: dict = field(default_factory=dict)  # sink name -> count
    #: one of STOP_UNTIL / STOP_QUIESCENT / STOP_MAX_CYCLES, or None for
    #: stats not produced by Simulator.run (e.g. collect_stats snapshots).
    stop_reason: Optional[str] = None

    def utilization(self, name: str) -> float:
        """Fraction of cycles in which the named object fired."""
        if self.cycles == 0:
            return 0.0
        return self.firings.get(name, 0) / self.cycles

    def mean_utilization(self) -> float:
        """Average firing rate over all objects that fired at least once."""
        active = [c for c in self.firings.values() if c > 0]
        if not active or self.cycles == 0:
            return 0.0
        return sum(active) / (len(active) * self.cycles)

    def throughput(self, sink: str) -> float:
        """Results per cycle delivered to the named sink."""
        if self.cycles == 0:
            return 0.0
        return self.tokens_out.get(sink, 0) / self.cycles

    def energy_per_result(self, sink: str) -> float:
        """Power proxy: firing-energy units per delivered result."""
        n = self.tokens_out.get(sink, 0)
        return self.energy / n if n else float("inf")

    # -- aggregation / serialization ----------------------------------------

    def merge(self, other: "RunStats") -> "RunStats":
        """Aggregate with stats from another run or time-slice.

        Returns a new :class:`RunStats`: cycles, firings, energy and
        delivered tokens add; the merged ``stop_reason`` is kept only
        when both runs agree (a mixed aggregate has no single reason).
        """
        firings = dict(self.firings)
        for name, count in other.firings.items():
            firings[name] = firings.get(name, 0) + count
        tokens = dict(self.tokens_out)
        for name, count in other.tokens_out.items():
            tokens[name] = tokens.get(name, 0) + count
        return RunStats(
            cycles=self.cycles + other.cycles,
            total_firings=self.total_firings + other.total_firings,
            firings=firings,
            energy=self.energy + other.energy,
            tokens_out=tokens,
            stop_reason=self.stop_reason
            if self.stop_reason == other.stop_reason else None)

    def to_dict(self) -> dict:
        """JSON-serializable summary — the metrics exporter's per-run
        payload (see :func:`repro.telemetry.metrics_to_dict`)."""
        return {
            "cycles": self.cycles,
            "total_firings": self.total_firings,
            "firings": dict(self.firings),
            "energy": self.energy,
            "tokens_out": dict(self.tokens_out),
            "stop_reason": self.stop_reason,
            "mean_utilization": self.mean_utilization(),
            "throughput": {name: self.throughput(name)
                           for name in self.tokens_out},
        }

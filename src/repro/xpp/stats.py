"""Execution statistics: cycles, throughput, occupancy and a power proxy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class RunStats:
    """Summary of one simulation run."""

    cycles: int = 0
    total_firings: int = 0
    firings: dict = field(default_factory=dict)     # object name -> count
    energy: float = 0.0                             # sum of per-firing energies
    tokens_out: dict = field(default_factory=dict)  # sink name -> count

    def utilization(self, name: str) -> float:
        """Fraction of cycles in which the named object fired."""
        if self.cycles == 0:
            return 0.0
        return self.firings.get(name, 0) / self.cycles

    def mean_utilization(self) -> float:
        """Average firing rate over all objects that fired at least once."""
        active = [c for c in self.firings.values() if c > 0]
        if not active or self.cycles == 0:
            return 0.0
        return sum(active) / (len(active) * self.cycles)

    def throughput(self, sink: str) -> float:
        """Results per cycle delivered to the named sink."""
        if self.cycles == 0:
            return 0.0
        return self.tokens_out.get(sink, 0) / self.cycles

    def energy_per_result(self, sink: str) -> float:
        """Power proxy: firing-energy units per delivered result."""
        n = self.tokens_out.get(sink, 0)
        return self.energy / n if n else float("inf")

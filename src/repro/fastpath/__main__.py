"""``python -m repro.fastpath`` — compile diagnostics from the shell.

Currently one subcommand::

    python -m repro.fastpath explain --kernel descrambler
    python -m repro.fastpath explain --kernel despreader --json

loads a demo kernel netlist into a fresh configuration manager, runs
:func:`repro.fastpath.explain` over it and prints the
:class:`~repro.fastpath.explain.CompileReport` as text or JSON.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.fastpath.explain import DEFAULT_CYCLES, explain


def _build_kernel(name: str):
    """Demo netlists for the explain CLI, built with default shapes."""
    from repro import kernels
    if name == "descrambler":
        return kernels.build_descrambler_config()
    if name == "despreader":
        return kernels.build_despreader_config(2, 4)
    if name == "chancorr":
        return kernels.build_channel_correction_config([1 + 1j, 1 - 1j])
    if name == "fft_stage":
        return kernels.build_fft_stage_config(0, [0] * 64)
    if name == "scalar_cmul":
        return kernels.scalar_cmul_config()
    raise KeyError(name)


KERNELS = ("descrambler", "despreader", "chancorr", "fft_stage",
           "scalar_cmul")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fastpath",
        description="fastpath compiler diagnostics")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_explain = sub.add_parser(
        "explain", help="dry-run the compile pipeline over a demo kernel")
    p_explain.add_argument("--kernel", choices=KERNELS,
                           default="descrambler",
                           help="demo netlist to load (default: descrambler)")
    p_explain.add_argument("--cycles", type=int, default=DEFAULT_CYCLES,
                           help="replay probe window in cycles "
                                f"(default: {DEFAULT_CYCLES})")
    p_explain.add_argument("--json", action="store_true",
                           help="emit the report as JSON instead of text")

    args = parser.parse_args(argv)
    if args.cmd == "explain":
        from repro.xpp.manager import ConfigurationManager
        mgr = ConfigurationManager()
        mgr.load(_build_kernel(args.kernel))
        report = explain(mgr, cycles=args.cycles)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render())
        return 0 if report.ok else 1
    return 2


if __name__ == "__main__":
    sys.exit(main())

"""Trace sessions and the fastpath scheduler.

A :class:`TraceSession` owns one compiled run over a frozen snapshot of
the live netlist: the generated count kernel produces per-cycle firing
bitmasks ahead of the simulator's clock, and ``replay_step`` /
``replay_step_n`` then serve the simulator's stepping interface out of
that trace.  During replay only *observable* state is kept live —
``obj.fired``, sink ``received`` and probe ``seen`` lists — which is
exactly what ``Simulator`` stop predicates, telemetry counters and
``collect_stats`` read between steps.  Wire queues and internal object
registers stay frozen at the session snapshot until
:meth:`TraceSession.materialize` writes the count state at the replay
cursor back into the live objects (session close: an ``invalidate`` or
a manager version bump).

:class:`FastpathScheduler` plugs this in behind the standard scheduler
seam: it compiles on first step, recompiles from live state whenever
the configuration manager's version changes (the Fig. 10 mid-run swap),
and transparently falls back to an inner :class:`EventScheduler` —
with a :class:`FastpathFallbackWarning` — for graphs the compiler
cannot prove.
"""

from __future__ import annotations

import warnings
from collections import deque

from repro.fastpath.cache import compile_graph
from repro.fastpath.capture import capture, check_runtime_state
from repro.fastpath.ir import REASON_UNSUPPORTED_TYPE, UnsupportedGraphError
from repro.telemetry.metrics import get_metrics
from repro.fastpath.lower import (
    FIRES_CHECK,
    STATE_CHECK,
    _vunpack,
    node_budget,
    state_spec,
    value_streams,
)
from repro.fixed import wrap
from repro.xpp.scheduler import EventScheduler


class FastpathFallbackWarning(RuntimeWarning):
    """Emitted once per (netlist shape, reason code) per process when
    compilation is refused.

    ``code`` carries the machine-readable rejection reason (one of
    :data:`repro.fastpath.ir.REASON_CODES`) so tooling — campaign
    rollups, ``fastpath explain`` — can bucket fallbacks without
    parsing the message.  The ``fastpath.fallback{,.<code>}`` metrics
    counters still increment on *every* fallback; only the Python
    warning is deduplicated (repeated version bumps over the same
    falling-back config — e.g. campaign jobs in one shard — would
    otherwise spam one warning per run).
    """

    def __init__(self, message: str, code: str = REASON_UNSUPPORTED_TYPE):
        super().__init__(message)
        self.code = code


#: (netlist key, reason code) pairs that already warned in this process
_warned = set()


def reset_fallback_warnings() -> None:
    """Forget which (netlist, reason) pairs already warned.

    Test seam (and available to long-lived hosts that want the warning
    again after reconfiguring); the autouse fixture in tests/conftest.py
    calls this so every test observes its own first warning.
    """
    _warned.clear()


def initial_state(graph, spec) -> tuple:
    """Count-state tuple at session open, read from the live netlist."""
    vals = []
    for tag, idx in spec:
        if tag == "cyc" or tag == "p" or tag == "f" or tag == "fin" \
                or tag == "fout":
            vals.append(0)
        elif tag == "o":
            vals.append(len(graph.edges[idx].wire._q))
        elif tag == "g":
            vals.append(node_budget(graph.nodes[idx]))
        elif tag == "an":
            vals.append(graph.nodes[idx].obj._n)
        elif tag == "pre":
            vals.append(len(graph.nodes[idx].obj._preload))
        elif tag == "fl":
            vals.append(len(graph.nodes[idx].obj._q))
    return tuple(vals)


class TraceSession:
    """One compiled execution of the resident netlist."""

    def __init__(self, graph, trace, version, epochs=None):
        self.graph = graph
        self.trace = trace
        self.version = version
        self.epochs = epochs
        self.spec = state_spec(graph)
        self.s0 = initial_state(graph, self.spec)
        self.state = self.s0
        self.masks = []
        self.fchk = []      # cumulative firings every FIRES_CHECK cycles
        self.schk = []      # full count state every STATE_CHECK cycles
        self.cursor = 0     # cycles already replayed into live state
        self.z = None       # first all-idle cycle (absorbing), if seen
        self.limit = 0      # value-stream window (= trace cycle limit)
        self.edge_vals = None
        self._epoch_rt = {}     # per-SCC incremental kernel state
        self.sv = [None] * len(graph.edges)
        self._peeked = sorted({n.in_edges[0] for n in graph.nodes
                               if n.kind in ("demux", "merge", "gate")})
        # node index -> [live list, value list, consumed count]
        self.collect = {}
        for n in graph.nodes:
            if n.kind == "sink":
                self.collect[n.i] = [n.obj.received, None, 0]
            elif n.kind == "probe":
                self.collect[n.i] = [n.obj.seen, None, 0]
        # flat per-node lookups for the replay hot loop
        self._fobjs = [n.obj for n in graph.nodes]
        self._clist = [self.collect.get(i) for i in range(len(graph.nodes))]
        # firing bitmasks repeat heavily (steady-state pipelines fire the
        # same set every cycle), so replay decodes each distinct mask once
        self._decode = {}
        self._closed = False
        # snapshots of exactly the state materialize writes: a live
        # field that no longer matches its snapshot was mutated from
        # outside the session (set_data / reset between runs), and the
        # external mutation wins over the stale computed write-back
        self._wire_snap = [tuple(e.wire._q) for e in graph.edges]
        self._node_snap = [self._snap_node(n) for n in graph.nodes]

    @staticmethod
    def _snap_node(n):
        o = n.obj
        k = n.kind
        if k == "source":
            return (id(o._data), o._pos)
        if k == "const":
            return (o._emitted,)
        if k == "seq":
            return (o._pos,)
        if k == "counter":
            return (o._value, o._emitted, o._stopped)
        if k == "integ":
            return (o._sum,)
        if k == "cinteg":
            return (o._re, o._im)
        if k == "acc":
            return (o._sum, o._n)
        if k == "cacc":
            return (o._re, o._im, o._n)
        if k == "reg":
            return tuple(o._preload)
        if k == "fifo":
            return tuple(o._q)
        return None

    # -- tracing -------------------------------------------------------------

    def _grow_values(self, limit: int) -> None:
        """(Re)run the value pass over a longer window.  The live state
        is frozen during a session, so the recompute is deterministic and
        prefix-consistent with every list already handed out."""
        self.edge_vals = value_streams(self.graph, limit, self.epochs,
                                       self._epoch_rt)
        for j in self._peeked:
            self.sv[j] = self.edge_vals[j].tolist()
        for i, rec in self.collect.items():
            rec[1] = self.edge_vals[self.graph.nodes[i].in_edges[0]].tolist()
        self.limit = limit

    def ensure(self, t: int) -> None:
        """Extend the trace to cover at least ``t`` cycles (or quiet)."""
        while self.z is None and len(self.masks) < t:
            limit = max(t, 2 * len(self.masks), 256)
            self._grow_values(limit)
            done, self.state = self.trace(self.state, self.sv, self.masks,
                                          self.fchk, self.schk, limit)
            if done:
                self.z = len(self.masks) - 1

    # -- replay --------------------------------------------------------------

    def replay_step(self) -> int:
        t = self.cursor
        self.cursor = t + 1
        if self.z is not None and t >= self.z:
            # the array is absorbed: write the final state back now, so
            # a run that ends quiescent leaves no frozen session behind
            # (external mutation between runs then lands on live state)
            self.materialize()
            return 0
        self.ensure(t + 1)
        m = self.masks[t]
        dec = self._decode.get(m)
        if dec is None:
            dec = self._decode_mask(m)
        objs, recs, fired = dec
        for o in objs:
            o.fired += 1
        for rec in recs:
            rec[0].append(rec[1][rec[2]])
            rec[2] += 1
        return fired

    def _decode_mask(self, mask: int):
        """(firing objects, collect records, popcount) of one mask."""
        objs = []
        recs = []
        clist = self._clist
        fobjs = self._fobjs
        fired = 0
        m = mask
        while m:
            lsb = m & -m
            i = lsb.bit_length() - 1
            m ^= lsb
            objs.append(fobjs[i])
            if clist[i] is not None:
                recs.append(clist[i])
            fired += 1
        dec = (objs, recs, fired)
        if len(self._decode) < 4096:    # bound the cache for odd traces
            self._decode[mask] = dec
        return dec

    def replay_step_n(self, n: int) -> int:
        start = self.cursor
        target = start + n
        self.cursor = target
        if self.z is None:
            self.ensure(target)
        end = target if self.z is None else min(target, self.z)
        if end <= start:
            return 0
        cf0 = self._cum_fires(start)
        cf1 = self._cum_fires(end)
        total = 0
        for node in self.graph.nodes:
            d = cf1[node.i] - cf0[node.i]
            if d:
                node.obj.fired += d
                total += d
                rec = self.collect.get(node.i)
                if rec is not None:
                    k = rec[2]
                    rec[0].extend(rec[1][k:k + d])
                    rec[2] = k + d
        if self.z is not None and self.cursor > self.z:
            self.materialize()          # absorbed: see replay_step
        return total

    def _cum_fires(self, t: int) -> list:
        """Per-node firing counts over the first ``t`` traced cycles."""
        t = min(t, len(self.masks))
        k = t // FIRES_CHECK
        fires = list(self.fchk[k - 1]) if k else [0] * len(self.graph.nodes)
        for m in self.masks[k * FIRES_CHECK:t]:
            while m:
                lsb = m & -m
                fires[lsb.bit_length() - 1] += 1
                m ^= lsb
        return fires

    # -- state write-back ----------------------------------------------------

    def _state_at(self, t: int) -> tuple:
        """Exact count state after ``t`` cycles, via the nearest full
        checkpoint plus a deterministic re-run of the trace kernel."""
        t = min(t, len(self.masks))
        j = t // STATE_CHECK
        base = self.schk[j - 1] if j else self.s0
        if base[0] == t:
            return base
        _, st = self.trace(base, self.sv, [], [], [], t)
        return st

    def materialize(self) -> None:
        """Write the count state at the replay cursor back into the live
        wires and objects, closing the session (idempotent)."""
        if self._closed or self.cursor == 0:
            return
        self._closed = True
        st = self._state_at(self.cursor)
        sd = {key: v for key, v in zip(self.spec, st)}
        for e in self.graph.edges:
            w = e.wire
            if tuple(w._q) != self._wire_snap[e.j]:
                continue                # mutated externally: leave it
            o = sd[("o", e.j)]
            p = sd[("p", e.j)]
            w._q = deque(int(v) for v in self.edge_vals[e.j][p:p + o])
            w._pushes = []
            w._pops = 0
            w._avail = o
            w._space = e.cap - o
            w.total_transfers += p
        for n in self.graph.nodes:
            if self._node_snap[n.i] == self._snap_node(n):
                self._writeback(n, sd)

    def _writeback(self, n, sd) -> None:
        o = n.obj
        k = n.kind
        f = sd[("f", n.i)]
        if k in ("sink", "probe") or f == 0 and k != "fifo":
            return
        if k == "source":
            o._pos += f
        elif k == "const":
            o._emitted += f
        elif k == "seq":
            o._pos += f
        elif k == "counter":
            o._emitted += f
            if o.limit is not None and o.mode == "wrap":
                period = -(-(o.limit - o.start) // o.step)
                pos = ((o._value - o.start) // o.step + f) % period
                o._value = o.start + pos * o.step
            else:
                o._value += f * o.step
                if o.limit is not None and o.mode == "stop":
                    o._stopped = o._value >= o.limit
        elif k == "integ":
            x = self.edge_vals[n.in_edges[0]][:f]
            o._sum = wrap(o._sum + int(x.sum()), o.bits)
        elif k == "cinteg":
            re, im = _vunpack(self.edge_vals[n.in_edges[0]][:f], o.half_bits)
            o._re = wrap(o._re + int(re.sum()), o.half_bits)
            o._im = wrap(o._im + int(im.sum()), o.half_bits)
        elif k == "acc":
            x = self.edge_vals[n.in_edges[0]][:f]
            o._sum, o._n = self._acc_state(x, o.length, o._n, o._sum)
        elif k == "cacc":
            re, im = _vunpack(self.edge_vals[n.in_edges[0]][:f], o.half_bits)
            o._re, _ = self._acc_state(re, o.length, o._n, o._re)
            o._im, o._n = self._acc_state(im, o.length, o._n, o._im)
        elif k == "reg":
            pre = sd[("pre", n.i)]
            o._preload = o._preload[len(o._preload) - pre:]
        elif k == "fifo":
            fin = sd[("fin", n.i)]
            fout = sd[("fout", n.i)]
            if o.circular:
                snap = list(o._q)
                if snap and fout:
                    rot = fout % len(snap)
                    o._q = deque(snap[rot:] + snap[:rot])
            else:
                full = list(o._q)
                if n.in_edges[0] is not None and fin:
                    arrivals = self.edge_vals[n.in_edges[0]][:fin].tolist()
                    full += [wrap(v, o.bits) for v in arrivals]
                o._q = deque(full[fout:])
            o._do_in = False
            o._do_out = False

    @staticmethod
    def _acc_state(x, length, n0, s0):
        """(partial sum, in-block count) after consuming ``x``."""
        f = len(x)
        if f < length - n0:
            return s0 + int(x.sum()), n0 + f
        r = (n0 + f) % length
        return (int(x[f - r:].sum()) if r else 0), r


class FastpathScheduler:
    """Compiled-replay scheduler with a transparent event fallback."""

    name = "fastpath"

    def __init__(self):
        self.manager = None
        self._inner = EventScheduler()
        self._session = None
        self._structure = None          # (version, graph, trace, epochs)
        self._fallback_version = None

    def bind(self, manager) -> None:
        self.manager = manager
        self._inner.bind(manager)
        self._session = None            # fresh bind: no state to write back
        self._structure = None
        self._fallback_version = None

    def invalidate(self) -> None:
        """Close any open session (writing its state back), so state
        mutated outside the commit phase is picked up on the next step."""
        self._close_session()
        self._inner.invalidate()

    def _close_session(self) -> None:
        s = self._session
        if s is not None:
            self._session = None
            s.materialize()

    def _netlist_key(self) -> tuple:
        """Cheap structural key of the resident netlist for warning
        dedupe (full fingerprints need a compilable graph; fallbacks by
        definition may not have one)."""
        objs = self.manager.active_objects()
        return (tuple((o.name, type(o).__name__) for o in objs),
                len(self.manager.active_wires()))

    def _note_fallback(self, exc, version) -> None:
        self._fallback_version = version
        code = getattr(exc, "code", REASON_UNSUPPORTED_TYPE)
        metrics = get_metrics()
        metrics.counter("fastpath.fallback").inc()
        metrics.counter(f"fastpath.fallback.{code}").inc()
        key = (self._netlist_key(), code)
        if key not in _warned:
            _warned.add(key)
            warnings.warn(
                FastpathFallbackWarning(
                    f"fastpath: falling back to the event scheduler ({exc})",
                    code),
                stacklevel=4)
        self._inner.invalidate()

    def _ensure_session(self):
        mgr = self.manager
        s = self._session
        if s is not None:
            if s.version == mgr.version:
                return s
            self._close_session()       # mid-run reconfiguration: write
            s = None                    # back, then recompile below
        if self._fallback_version == mgr.version:
            return None
        st = self._structure
        if st is None or st[0] != mgr.version:
            try:
                graph = capture(mgr)
                trace, epochs, _, _ = compile_graph(graph)
            except UnsupportedGraphError as exc:
                self._note_fallback(exc, mgr.version)
                return None
            st = self._structure = (mgr.version, graph, trace, epochs)
        try:
            check_runtime_state(st[1])
        except UnsupportedGraphError as exc:
            self._note_fallback(exc, mgr.version)
            return None
        self._session = TraceSession(st[1], st[2], mgr.version,
                                     epochs=st[3])
        return self._session

    def step(self) -> int:
        s = self._ensure_session()
        if s is None:
            return self._inner.step()
        return s.replay_step()

    def step_n(self, n: int) -> int:
        s = self._ensure_session()
        if s is None:
            return self._inner.step_n(n)
        return s.replay_step_n(n)

"""Content-addressed compile cache for generated fastpath kernels.

Compiling a captured graph costs two codegen passes (the count-level
trace kernel plus one epoch kernel per feedback component) and a
CPython ``compile()`` each — pure overhead when the same netlist shape
is compiled again: every campaign shard compiles the identical config,
and every Fig. 10 version bump recompiles a config that was resident
minutes ago.  This module makes recompilation a lookup:

* **Fingerprint** — :func:`graph_fingerprint` hashes the *structural*
  descriptor of the graph: per-node kind + port bindings + exactly the
  parameters the code generators bake into source as literals, plus
  per-edge connectivity and capacities.  Runtime state (stream data,
  LUT contents, register preloads, accumulator partials) is *not*
  hashed — it is passed to the kernels via ``state``/``env`` tuples at
  call time, so two configs that differ only in data share one kernel.

* **In-process LRU** — fingerprint -> (trace fn, epoch fns).  A hit
  returns the very same function objects, skipping emit *and* compile.

* **On-disk artifact store** — optional, enabled by pointing
  ``REPRO_FASTPATH_CACHE_DIR`` at a directory (campaign workers get it
  from the pool, see :mod:`repro.campaign.runners`).  Artifacts are
  ``marshal``-serialized code objects tagged with the interpreter's
  bytecode magic and :data:`CACHE_VERSION`; a stale or corrupt artifact
  is treated as a miss and rewritten.  Writes are atomic (tempfile +
  ``os.replace``) so concurrent shards never observe torn files.

Hits/misses are observable via ``fastpath.cache.*`` metrics counters
and per-object in ``repro.fastpath.explain``.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import os
import tempfile
import threading
from collections import OrderedDict

from repro.fastpath.capture import capture_sets
from repro.fastpath.ir import Graph
from repro.fastpath.lower import FIRES_CHECK, STATE_CHECK, emit_epoch, emit_trace
from repro.telemetry.metrics import get_metrics

#: bump when generated-kernel semantics change; invalidates every
#: cached artifact (memory keys and disk files both embed it)
CACHE_VERSION = 1

#: max graphs kept compiled in this process
LRU_MAX = 64

#: environment variable naming the shared on-disk artifact directory
CACHE_DIR_ENV = "REPRO_FASTPATH_CACHE_DIR"

_lock = threading.Lock()
_lru = OrderedDict()        # fingerprint -> (trace_fn, tuple(epoch_fns))


#: per-kind object parameters that the code generators bake into the
#: emitted source as literals (everything else rides in at call time)
_PARAMS = {
    "binary": ("OPCODE", "const", "shift", "bits"),
    "unary": ("OPCODE", "bits"),
    "shiftalu": ("amount", "bits"),
    "lut": ("bits",),
    "cadd": ("half_bits", "shift"),
    "csub": ("half_bits", "shift"),
    "cmul": ("half_bits", "shift", "conj_b", "round_shift"),
    "cconj": ("half_bits",),
    "cneg": ("half_bits",),
    "cmulj": ("half_bits", "sign"),
    "cshift": ("half_bits", "amount"),
    "pack": ("half_bits",),
    "unpack": ("half_bits",),
    "acc": ("length", "shift", "bits"),
    "cacc": ("length", "shift", "half_bits"),
    "integ": ("bits",),
    "cinteg": ("half_bits",),
    "reg": ("bits",),
    "fifo": ("depth", "circular", "bits"),
}


def node_signature(node) -> tuple:
    """Structural signature of one node: everything about it that can
    change the generated source."""
    o = node.obj
    params = tuple((a, getattr(o, a)) for a in _PARAMS.get(node.kind, ()))
    if node.kind == "lut":
        params += (("tlen", len(o.table)),)
    return (node.kind, node.in_edges, node.out_ports, params)


def graph_fingerprint(graph: Graph) -> str:
    """Hex sha256 of the graph's structural descriptor (the cache key)."""
    desc = (
        CACHE_VERSION,
        (FIRES_CHECK, STATE_CHECK),
        tuple(node_signature(n) for n in graph.nodes),
        tuple((e.src, e.src_port, e.dst, e.dst_port, e.cap)
              for e in graph.edges),
    )
    return hashlib.sha256(repr(desc).encode()).hexdigest()


def cache_dir():
    """Artifact directory from the environment, or None (memory-only).

    Read dynamically on every call so campaign workers that export the
    variable after import (and tests) take effect immediately.
    """
    d = os.environ.get(CACHE_DIR_ENV)
    return d if d else None


def artifact_path(fp: str) -> str:
    return os.path.join(cache_dir(), fp + ".fpk")


# -- persistence -------------------------------------------------------------


def _codes(graph: Graph) -> list:
    """Compiled (not yet exec'd) code objects: trace first, then one
    epoch kernel per SCC in ``graph.sccs`` order."""
    codes = [compile(emit_trace(graph), "<fastpath-trace>", "exec")]
    for s in range(len(graph.sccs)):
        codes.append(compile(emit_epoch(graph, s), "<fastpath-epoch>",
                             "exec"))
    return codes


def _funcs(codes: list) -> tuple:
    ns = {}
    exec(codes[0], ns)
    trace = ns["_trace"]
    epochs = []
    for c in codes[1:]:
        ns = {}
        exec(c, ns)
        epochs.append(ns["_epoch"])
    return trace, tuple(epochs)


def _disk_load(fp: str):
    d = cache_dir()
    if d is None:
        return None
    try:
        with open(artifact_path(fp), "rb") as f:
            payload = marshal.load(f)
        magic, version, codes = payload
        if magic != importlib.util.MAGIC_NUMBER or version != CACHE_VERSION:
            return None                 # stale: interpreter or codegen moved
        return list(codes)
    except FileNotFoundError:
        return None
    except (OSError, EOFError, ValueError, TypeError):
        get_metrics().counter("fastpath.cache.error").inc()
        return None                     # corrupt artifact: recompile


def _disk_store(fp: str, codes: list) -> None:
    d = cache_dir()
    if d is None:
        return
    try:
        os.makedirs(d, exist_ok=True)
        payload = marshal.dumps(
            (importlib.util.MAGIC_NUMBER, CACHE_VERSION, tuple(codes)))
        fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(payload)
            os.replace(tmp, artifact_path(fp))
        except BaseException:
            os.unlink(tmp)
            raise
        get_metrics().counter("fastpath.cache.store").inc()
    except OSError:
        get_metrics().counter("fastpath.cache.error").inc()


# -- front door --------------------------------------------------------------


def compile_graph(graph: Graph) -> tuple:
    """``(trace_fn, epoch_fns, fingerprint, hit)`` for a captured graph.

    Memory hit returns the exact same function objects; disk hit
    deserializes the stored code objects; a miss runs both code
    generators and populates both layers.
    """
    fp = graph_fingerprint(graph)
    metrics = get_metrics()
    with _lock:
        cached = _lru.get(fp)
        if cached is not None:
            _lru.move_to_end(fp)
    if cached is not None:
        metrics.counter("fastpath.cache.hit").inc()
        metrics.counter("fastpath.cache.memory_hit").inc()
        return cached[0], cached[1], fp, True

    codes = _disk_load(fp)
    if codes is not None and len(codes) == 1 + len(graph.sccs):
        trace, epochs = _funcs(codes)
        _remember(fp, trace, epochs)
        metrics.counter("fastpath.cache.hit").inc()
        metrics.counter("fastpath.cache.disk_hit").inc()
        return trace, epochs, fp, True

    metrics.counter("fastpath.cache.miss").inc()
    codes = _codes(graph)
    trace, epochs = _funcs(codes)
    _remember(fp, trace, epochs)
    _disk_store(fp, codes)
    return trace, epochs, fp, False


def _remember(fp, trace, epochs) -> None:
    with _lock:
        _lru[fp] = (trace, epochs)
        _lru.move_to_end(fp)
        while len(_lru) > LRU_MAX:
            _lru.popitem(last=False)


def probe(fp: str) -> str:
    """Where a fingerprint would hit right now: ``"memory"``,
    ``"disk"`` or ``"miss"`` — without promoting or populating anything
    (the side-effect-free peek ``fastpath explain`` uses)."""
    with _lock:
        if fp in _lru:
            return "memory"
    d = cache_dir()
    if d is not None and os.path.exists(artifact_path(fp)):
        return "disk"
    return "miss"


def warmup(objs, wires) -> tuple:
    """Capture + compile an explicit object/wire set into the cache.

    ``(fingerprint, hit)`` on success; raises ``UnsupportedGraphError``
    for netlists the compiler rejects (callers doing speculative
    prefetch catch it — the eventual swap just compiles on first step,
    exactly as without warm-up).
    """
    graph = capture_sets(objs, wires)
    _, _, fp, hit = compile_graph(graph)
    return fp, hit


def clear_memory_cache() -> None:
    """Drop the in-process LRU (test seam; disk artifacts stay)."""
    with _lock:
        _lru.clear()

"""Capture the live netlist of a configuration manager into IR.

Walks every resident configuration's objects and wires, resolves each
wire's producer/consumer ports, classifies every object against the
supported-kind table and topologically schedules the result.  The
capture is purely structural — no simulation state is read here; the
runtime snapshots state separately each time it opens a trace session.
"""

from __future__ import annotations

from repro.fastpath.ir import (
    REASON_DANGLING_WIRE,
    REASON_EMPTY_NETLIST,
    REASON_FAULT_TAP,
    REASON_INSTANCE_OVERRIDE,
    Edge,
    Graph,
    Node,
    UnsupportedGraphError,
    build_schedule,
    classify,
)


def capture(manager) -> Graph:
    """Build a :class:`Graph` from the manager's active object/wire sets.

    Raises :class:`UnsupportedGraphError` when any resident object,
    parameter or wiring shape falls outside what the compiler can prove.
    """
    return capture_sets(manager.active_objects(), manager.active_wires())


def capture_sets(objs, wires) -> Graph:
    """Capture explicit object/wire sets (the manager-free seam used by
    :meth:`repro.xpp.manager.ConfigurationManager.prefetch` to compile a
    hypothetical post-swap resident set ahead of the swap)."""
    if not objs:
        raise UnsupportedGraphError("no resident configurations",
                                    code=REASON_EMPTY_NETLIST)

    producer = {}       # id(wire) -> (node, port)
    consumer = {}
    for i, o in enumerate(objs):
        for k, p in enumerate(o.inputs):
            if p.wire is not None:
                consumer[id(p.wire)] = (i, k)
        for k, p in enumerate(o.outputs):
            for w in p.wires:
                producer[id(w)] = (i, k)

    edges = []
    for j, w in enumerate(wires):
        src = producer.get(id(w))
        dst = consumer.get(id(w))
        if src is None or dst is None:
            raise UnsupportedGraphError(
                f"wire {w.name}: dangling endpoint",
                code=REASON_DANGLING_WIRE)
        edges.append(Edge(j=j, wire=w, src=src[0], src_port=src[1],
                          dst=dst[0], dst_port=dst[1], cap=w.capacity))

    by_in = {}          # (node, port) -> edge index
    by_out = {}         # (node, port) -> [edge indices]
    for e in edges:
        by_in[(e.dst, e.dst_port)] = e.j
        by_out.setdefault((e.src, e.src_port), []).append(e.j)

    nodes = []
    for i, o in enumerate(objs):
        kind = classify(o)
        in_edges = tuple(by_in.get((i, k)) for k in range(len(o.inputs)))
        out_ports = tuple(tuple(by_out.get((i, k), ()))
                          for k in range(len(o.outputs)))
        nodes.append(Node(i=i, obj=o, kind=kind,
                          in_edges=in_edges, out_ports=out_ports))

    topo, schedule, sccs = build_schedule(nodes, edges)
    return Graph(nodes=nodes, edges=edges, topo=topo,
                 schedule=schedule, sccs=sccs)


def check_runtime_state(graph: Graph) -> None:
    """Session-open checks on state the structure capture cannot see:
    fault-injector wire taps appear (and disappear) without a manager
    version bump, so they are re-checked every time a trace opens."""
    for e in graph.edges:
        if e.wire._tap is not None:
            raise UnsupportedGraphError(
                f"wire {e.wire.name}: fault tap installed",
                code=REASON_FAULT_TAP)
    for n in graph.nodes:
        if "plan" in n.obj.__dict__ or "commit" in n.obj.__dict__:
            raise UnsupportedGraphError(
                f"{n.obj.name}: instance-level plan/commit override",
                code=REASON_INSTANCE_OVERRIDE)

"""Compile "explain" diagnostics for the fastpath backend.

:func:`explain` dry-runs the whole compile pipeline — classify,
capture, runtime-state checks, value lowering, kernel emission,
bytecode compilation and a bounded replay — against a configuration
manager and reports what happened as a structured
:class:`CompileReport`:

* a per-object classify verdict (kind tag, or the machine-readable
  rejection ``code`` from :data:`repro.fastpath.ir.REASON_CODES` plus
  the human message) and, once the graph is scheduled, the lowering
  strategy the node landed on (``trace`` — vectorized whole-trace value
  pass — or ``epoch`` — inside a feedback SCC's time-stepped kernel);
* the graph-level verdict (dangling wires, fault taps …) with its own
  reason code, plus the SCC census (count and sizes of the feedback
  components the epoch lowering absorbs);
* the compile-cache outlook: the graph's content fingerprint and where
  a compile would hit right now (``memory`` / ``disk`` / ``miss``) —
  probed without populating anything, the dry-run stays side-effect
  free;
* the chosen lowering branch per op family (kind tag -> node count,
  generator families flagged);
* trace length of the bounded replay, kernel source size, and the
  checkpoint cadences (:data:`~repro.fastpath.lower.FIRES_CHECK`,
  :data:`~repro.fastpath.lower.STATE_CHECK`);
* wall-clock phase timings (capture / lower / emit / compile / replay)
  recorded as tracer spans, so the same report feeds Chrome traces.

The report is what the fallback warning is not: instead of one opaque
"falling back" line, every rejection branch in ``capture.py`` /
``ir.py`` surfaces its reason code, and a compilable graph shows where
compile time goes.  ``python -m repro.fastpath explain`` wraps this
for the command line.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.fastpath.cache import graph_fingerprint, probe
from repro.fastpath.capture import capture, check_runtime_state
from repro.fastpath.ir import GENERATORS, UnsupportedGraphError, classify
from repro.fastpath.lower import (
    FIRES_CHECK,
    STATE_CHECK,
    compile_trace,
    emit_epoch,
    emit_trace,
    value_streams,
)
from repro.telemetry.tracer import Tracer

#: default replay window for the trace-length probe
DEFAULT_CYCLES = 4096


@dataclass
class ObjectVerdict:
    """Classify outcome for one resident dataflow object."""

    name: str
    type: str
    ok: bool
    kind: Optional[str] = None      # kind tag when supported
    code: Optional[str] = None      # rejection reason code otherwise
    message: Optional[str] = None
    strategy: Optional[str] = None  # "trace" | "epoch" once scheduled

    def to_dict(self) -> dict:
        d = {"name": self.name, "type": self.type, "ok": self.ok}
        if self.ok:
            d["kind"] = self.kind
            if self.strategy is not None:
                d["strategy"] = self.strategy
        else:
            d["code"] = self.code
            d["message"] = self.message
        return d


@dataclass
class CompileReport:
    """Structured result of an :func:`explain` dry-run."""

    ok: bool
    version: int
    objects: list = field(default_factory=list)     # ObjectVerdict
    code: Optional[str] = None          # graph-level rejection reason
    message: Optional[str] = None
    lowering: dict = field(default_factory=dict)    # kind -> node count
    generators: list = field(default_factory=list)  # generator kinds present
    n_nodes: int = 0
    n_edges: int = 0
    scc_count: int = 0                  # feedback components (epoch kernels)
    scc_sizes: list = field(default_factory=list)   # nodes per SCC
    fingerprint: Optional[str] = None   # compile-cache content address
    cache: Optional[str] = None         # "memory" | "disk" | "miss"
    trace_cycles: int = 0               # cycles traced by the replay probe
    absorbed: bool = False              # trace hit the all-idle fixpoint
    kernel_lines: int = 0               # emitted kernel source size
    fires_check: int = FIRES_CHECK
    state_check: int = STATE_CHECK
    timings_s: dict = field(default_factory=dict)   # phase -> seconds

    @property
    def rejected(self) -> list:
        """Object verdicts that refused to classify."""
        return [v for v in self.objects if not v.ok]

    @property
    def reason_codes(self) -> list:
        """Every distinct rejection code in the report, sorted."""
        codes = {v.code for v in self.objects if not v.ok}
        if self.code is not None:
            codes.add(self.code)
        return sorted(codes)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "version": self.version,
            "objects": [v.to_dict() for v in self.objects],
            "code": self.code,
            "message": self.message,
            "reason_codes": self.reason_codes,
            "lowering": dict(sorted(self.lowering.items())),
            "generators": self.generators,
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "scc_count": self.scc_count,
            "scc_sizes": list(self.scc_sizes),
            "fingerprint": self.fingerprint,
            "cache": self.cache,
            "trace_cycles": self.trace_cycles,
            "absorbed": self.absorbed,
            "kernel_lines": self.kernel_lines,
            "fires_check": self.fires_check,
            "state_check": self.state_check,
            "timings_s": {k: round(v, 6)
                          for k, v in self.timings_s.items()},
        }

    def render(self) -> str:
        """One-screen human rendering of the report."""
        lines = []
        verdict = "compiles" if self.ok else f"falls back [{self.code}]"
        lines.append(f"fastpath explain: manager v{self.version} {verdict}")
        if self.message:
            lines.append(f"  reason: {self.message}")
        lines.append(f"  graph: {self.n_nodes} nodes, {self.n_edges} edges")
        if self.scc_count:
            sizes = ", ".join(str(n) for n in self.scc_sizes)
            lines.append(f"  feedback: {self.scc_count} SCC(s) "
                         f"[{sizes} nodes] -> epoch kernels")
        if self.fingerprint is not None:
            lines.append(f"  cache: {self.cache} "
                         f"({self.fingerprint[:12]}…)")
        if self.lowering:
            fams = ", ".join(
                f"{k}×{n}" + ("*" if k in self.generators else "")
                for k, n in sorted(self.lowering.items()))
            lines.append(f"  lowering: {fams} (* = generator budget)")
        for v in self.rejected:
            lines.append(f"  reject {v.name} ({v.type}): "
                         f"[{v.code}] {v.message}")
        if self.ok:
            absorbed = " (absorbed)" if self.absorbed else ""
            lines.append(f"  trace: {self.trace_cycles} cycles{absorbed}, "
                         f"kernel {self.kernel_lines} lines, "
                         f"checkpoints every {self.fires_check}/"
                         f"{self.state_check} cycles")
        if self.timings_s:
            per = ", ".join(f"{k} {v * 1e3:.2f}ms"
                            for k, v in self.timings_s.items())
            lines.append(f"  phases: {per}")
        return "\n".join(lines)


def _classify_all(manager) -> list:
    """Per-object verdicts, independent of each other."""
    verdicts = []
    for o in manager.active_objects():
        try:
            kind = classify(o)
        except UnsupportedGraphError as exc:
            verdicts.append(ObjectVerdict(
                name=o.name, type=type(o).__name__, ok=False,
                code=exc.code, message=str(exc)))
        else:
            verdicts.append(ObjectVerdict(
                name=o.name, type=type(o).__name__, ok=True, kind=kind))
    return verdicts


def explain(manager, *, cycles: int = DEFAULT_CYCLES,
            tracer: Optional[Tracer] = None) -> CompileReport:
    """Dry-run the compile pipeline and report what happened.

    Never raises ``UnsupportedGraphError`` and never mutates the live
    netlist: the replay probe runs the generated kernel against a copy
    of the initial count state without writing anything back.  Pass a
    ``tracer`` to also collect the phase spans as trace events (wall
    seconds on the span clock).
    """
    tr = tracer if tracer is not None else Tracer(clock=time.perf_counter)
    report = CompileReport(ok=False, version=manager.version)
    report.objects = _classify_all(manager)

    with tr.span("explain.capture", cat="fastpath"):
        t0 = time.perf_counter()
        try:
            graph = capture(manager)
            check_runtime_state(graph)
        except UnsupportedGraphError as exc:
            report.code = exc.code
            report.message = str(exc)
            graph = None
        report.timings_s["capture"] = time.perf_counter() - t0
    if graph is None:
        return report

    report.n_nodes = len(graph.nodes)
    report.n_edges = len(graph.edges)
    report.scc_count = len(graph.sccs)
    report.scc_sizes = [len(s) for s in graph.sccs]
    report.fingerprint = graph_fingerprint(graph)
    report.cache = probe(report.fingerprint)
    # capture enumerates active_objects() in order, so verdicts and
    # nodes line up index-for-index
    for v, n in zip(report.objects, graph.nodes):
        if v.ok:
            v.strategy = graph.strategy(n.i)
    for n in graph.nodes:
        report.lowering[n.kind] = report.lowering.get(n.kind, 0) + 1
    report.generators = sorted(k for k in report.lowering if k in GENERATORS)

    with tr.span("explain.lower", cat="fastpath"):
        t0 = time.perf_counter()
        edge_vals = value_streams(graph, cycles)
        report.timings_s["lower"] = time.perf_counter() - t0
    with tr.span("explain.emit", cat="fastpath"):
        t0 = time.perf_counter()
        src = emit_trace(graph)
        report.kernel_lines = src.count("\n") + 1
        for s in range(len(graph.sccs)):
            report.kernel_lines += emit_epoch(graph, s).count("\n") + 1
        report.timings_s["emit"] = time.perf_counter() - t0
    with tr.span("explain.compile", cat="fastpath"):
        t0 = time.perf_counter()
        trace = compile_trace(graph)
        report.timings_s["compile"] = time.perf_counter() - t0

    with tr.span("explain.replay", cat="fastpath"):
        t0 = time.perf_counter()
        from repro.fastpath.lower import state_spec
        from repro.fastpath.runtime import initial_state
        sv = [None] * len(graph.edges)
        for j in sorted({n.in_edges[0] for n in graph.nodes
                         if n.kind in ("demux", "merge", "gate")}):
            sv[j] = edge_vals[j].tolist()
        masks: list = []
        done, _ = trace(initial_state(graph, state_spec(graph)),
                        sv, masks, [], [], cycles)
        report.trace_cycles = len(masks)
        report.absorbed = bool(done)
        report.timings_s["replay"] = time.perf_counter() - t0

    report.ok = True
    return report

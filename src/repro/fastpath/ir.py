"""Compile-time IR of a captured dataflow graph.

The fastpath backend compiles the *structure* of the resident
configurations — objects, wires, port bindings and firing rules — into
a small intermediate representation.  A :class:`Graph` is a flat,
index-addressed view of the netlist: node ``i`` wraps one
``DataflowObject``, edge ``j`` wraps one ``Wire`` (every wire has
exactly one producer port and one consumer port), and the per-kind
lowering templates in :mod:`repro.fastpath.lower` key off
``Node.kind``.

Only graphs whose firing semantics the compiler can prove are
accepted: a fixed table of object types (exact type match — subclasses
may override anything) and parameter ranges that keep the vectorized
int64 arithmetic exact.  Everything else raises
:class:`UnsupportedGraphError`, which the runtime turns into a
transparent fallback to the event scheduler.

Cyclic wiring is *not* a rejection: feedback rings (the despreader's
integrate-and-dump loop, self-loop accumulators) are grouped into
strongly-connected components and lowered by a second strategy — a
generated time-stepped *epoch kernel* per SCC (see
:func:`repro.fastpath.lower.emit_epoch`) — while the acyclic remainder
keeps the whole-trace numpy value pass.  :func:`build_schedule`
computes the condensation order that interleaves both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xpp import alu, io, objects as xobjects, ram


#: Machine-readable rejection reasons.  Every ``UnsupportedGraphError``
#: raised by the compiler carries exactly one of these on ``.code``;
#: :mod:`repro.fastpath.explain` and the fallback warning surface them,
#: and campaign rollups key per-kernel fallback rates off them.
REASON_UNSUPPORTED_TYPE = "unsupported-type"
REASON_INSTANCE_OVERRIDE = "instance-override"
REASON_UNBOUND_INPUT = "unbound-input"
REASON_DYNAMIC_SHIFT = "dynamic-shift"
REASON_SHIFT_RANGE = "shift-range"
REASON_CONST_RANGE = "const-range"
REASON_COUNTER_STEP = "counter-step"
REASON_COUNTER_RANGE = "counter-range"
REASON_CIRCULAR_FIFO = "circular-fifo-input"
REASON_EMPTY_NETLIST = "empty-netlist"
REASON_DANGLING_WIRE = "dangling-wire"
REASON_FAULT_TAP = "fault-tap"

#: Retired codes: cycles compile since the epoch-kernel lowering landed.
#: Kept as importable names so old tooling that buckets by code keeps
#: working, but no compiler branch raises them anymore and they are no
#: longer part of :data:`REASON_CODES`.
REASON_SELF_LOOP = "self-loop"
REASON_FEEDBACK_CYCLE = "feedback-cycle"

#: All reason codes, for docs/CLI validation.
REASON_CODES = (
    REASON_UNSUPPORTED_TYPE, REASON_INSTANCE_OVERRIDE,
    REASON_UNBOUND_INPUT, REASON_DYNAMIC_SHIFT, REASON_SHIFT_RANGE,
    REASON_CONST_RANGE, REASON_COUNTER_STEP, REASON_COUNTER_RANGE,
    REASON_CIRCULAR_FIFO, REASON_EMPTY_NETLIST, REASON_DANGLING_WIRE,
    REASON_FAULT_TAP,
)


class UnsupportedGraphError(Exception):
    """The captured graph cannot be compiled; run it on the golden path.

    ``code`` is the machine-readable rejection reason (one of
    :data:`REASON_CODES`); the message stays the human explanation.
    """

    def __init__(self, message: str, *, code: str = REASON_UNSUPPORTED_TYPE):
        super().__init__(message)
        self.code = code


#: exact type -> kind tag.  Exact match on purpose: a subclass may
#: override plan/commit/compute, which the lowering templates cannot see.
KIND_OF = {
    io.StreamSource: "source",
    io.StreamSink: "sink",
    xobjects.Probe: "probe",
    alu.BinaryAlu: "binary",
    alu.UnaryAlu: "unary",
    alu.ShiftAlu: "shiftalu",
    alu.LutAlu: "lut",
    alu.ComplexAdd: "cadd",
    alu.ComplexSub: "csub",
    alu.ComplexMul: "cmul",
    alu.ComplexConj: "cconj",
    alu.ComplexNeg: "cneg",
    alu.ComplexMulJ: "cmulj",
    alu.ComplexShift: "cshift",
    alu.Pack: "pack",
    alu.Unpack: "unpack",
    alu.Mux: "mux",
    alu.Demux: "demux",
    alu.Merge: "merge",
    alu.Swap: "swap",
    alu.Gate: "gate",
    alu.Counter: "counter",
    alu.Const: "const",
    alu.Seq: "seq",
    alu.Acc: "acc",
    alu.ComplexAcc: "cacc",
    alu.Integrator: "integ",
    alu.ComplexIntegrator: "cinteg",
    alu.Reg: "reg",
    ram.FifoPae: "fifo",
}

#: kinds whose plan is the default firing rule gated by a token budget
GENERATORS = frozenset({"source", "const", "seq", "counter"})

#: largest safe constant shift: 24-bit operands stay well inside int64
MAX_SHIFT = 32

#: largest safe binary-op constant: |a op const| stays inside int64 for
#: every opcode when |const| <= 2**61 and a is a wrapped 24-bit word
MAX_CONST = 1 << 61


@dataclass
class Edge:
    """One wire: a single producer port feeding a single consumer port."""

    j: int
    wire: object
    src: int            # producer node index
    src_port: int
    dst: int            # consumer node index
    dst_port: int
    cap: int


@dataclass
class Node:
    """One dataflow object, with its port-to-edge bindings resolved."""

    i: int
    obj: object
    kind: str
    in_edges: tuple     # per input port: edge index or None (unbound)
    out_ports: tuple    # per output port: tuple of edge indices (fan-out)

    def out_edges(self):
        """All out edge indices across every port, in port order."""
        return [j for port in self.out_ports for j in port]


@dataclass
class Graph:
    """The captured netlist plus its two-level lowering schedule.

    ``schedule`` is the condensation (SCC DAG) in topological order:
    ``("node", i)`` units are acyclic nodes lowered by the vectorized
    value pass, ``("scc", s)`` units are feedback components lowered by
    the generated epoch kernel ``sccs[s]``.  ``topo`` flattens the
    schedule into one node order for the count-level trace kernel
    (whose plan/commit split makes node order irrelevant, cycles
    included).
    """

    nodes: list
    edges: list
    topo: list          # flat node order (schedule order, SCCs inlined)
    schedule: list = None   # ("node", i) | ("scc", s) units, topo order
    sccs: list = None       # non-trivial SCCs: tuples of node indices

    def __post_init__(self):
        if self.schedule is None:
            self.schedule = [("node", i) for i in self.topo]
        if self.sccs is None:
            self.sccs = []

    def epoch_nodes(self) -> set:
        """Node indices lowered by an epoch kernel (inside an SCC)."""
        return {i for scc in self.sccs for i in scc}

    def strategy(self, i: int) -> str:
        """Lowering strategy of node ``i``: ``"trace"`` or ``"epoch"``."""
        return "epoch" if i in self.epoch_nodes() else "trace"


def classify(obj) -> str:
    """Kind tag for a supported object, or raise UnsupportedGraphError."""
    kind = KIND_OF.get(type(obj))
    if kind is None:
        raise UnsupportedGraphError(
            f"{obj.name}: unsupported object type {type(obj).__name__}",
            code=REASON_UNSUPPORTED_TYPE)
    if "plan" in obj.__dict__ or "commit" in obj.__dict__:
        # e.g. a fault injector wrapped this instance's firing protocol
        raise UnsupportedGraphError(
            f"{obj.name}: instance-level plan/commit override",
            code=REASON_INSTANCE_OVERRIDE)
    if kind == "binary":
        if not obj.inputs[1].bound and obj.const is None:
            raise UnsupportedGraphError(
                f"{obj.name}: input b unconnected and no const",
                code=REASON_UNBOUND_INPUT)
        if obj.OPCODE in ("SHL", "SHR"):
            if obj.inputs[1].bound:
                raise UnsupportedGraphError(
                    f"{obj.name}: data-dependent shift amounts",
                    code=REASON_DYNAMIC_SHIFT)
            if not 0 <= obj.const <= MAX_SHIFT:
                raise UnsupportedGraphError(
                    f"{obj.name}: shift const {obj.const} out of range",
                    code=REASON_SHIFT_RANGE)
        if abs(obj.shift) > MAX_SHIFT:
            raise UnsupportedGraphError(
                f"{obj.name}: result shift {obj.shift} out of range",
                code=REASON_SHIFT_RANGE)
        if obj.const is not None and abs(obj.const) > MAX_CONST:
            # wrap-width ops survive int64 overflow (mod-2**64 is a
            # homomorphism onto mod-2**bits) but MIN/MAX/CMP* do not,
            # and np.int64() refuses Python ints >= 2**63 outright
            raise UnsupportedGraphError(
                f"{obj.name}: const {obj.const} outside the int64-safe range",
                code=REASON_CONST_RANGE)
    elif kind == "shiftalu":
        if abs(obj.amount) > MAX_SHIFT:
            raise UnsupportedGraphError(
                f"{obj.name}: shift amount {obj.amount} out of range",
                code=REASON_SHIFT_RANGE)
    elif kind == "counter":
        if obj.step < 1:
            raise UnsupportedGraphError(
                f"{obj.name}: counter step must be >= 1 to compile",
                code=REASON_COUNTER_STEP)
        if obj.limit is not None and obj.start >= obj.limit:
            raise UnsupportedGraphError(
                f"{obj.name}: counter start >= limit",
                code=REASON_COUNTER_RANGE)
    elif kind == "fifo":
        if obj.circular and obj.inputs[0].bound:
            raise UnsupportedGraphError(
                f"{obj.name}: circular FIFO with a bound input",
                code=REASON_CIRCULAR_FIFO)
    elif kind in ("acc", "cacc", "integ", "cinteg", "reg", "lut",
                  "unary", "cconj", "cneg", "cmulj", "cshift"):
        if not obj.inputs[0].bound:
            raise UnsupportedGraphError(f"{obj.name}: unbound input",
                                        code=REASON_UNBOUND_INPUT)
    if kind in ("cadd", "csub", "cmul", "pack", "mux", "swap",
                "demux", "merge", "gate", "unpack", "sink", "probe"):
        for p in obj.inputs:
            if not p.bound:
                raise UnsupportedGraphError(
                    f"{obj.name}: unbound input {p.name}",
                    code=REASON_UNBOUND_INPUT)
    if kind == "binary" and not obj.inputs[0].bound:
        raise UnsupportedGraphError(f"{obj.name}: unbound input a",
                                    code=REASON_UNBOUND_INPUT)
    return kind


def strongly_connected(nodes, edges) -> list:
    """Tarjan SCCs of the wiring graph (iterative, no recursion limit).

    Returns the components as sorted tuples of node indices, in
    *reverse* topological order of the condensation (Tarjan's natural
    emission order: a component is finished only after everything it
    reaches).
    """
    out = [[] for _ in nodes]
    for e in edges:
        out[e.src].append(e.dst)
    index = [None] * len(nodes)
    low = [0] * len(nodes)
    on_stack = [False] * len(nodes)
    stack = []
    comps = []
    counter = [0]

    for root in range(len(nodes)):
        if index[root] is not None:
            continue
        work = [(root, 0)]
        while work:
            v, pi = work.pop()
            if pi == 0:
                index[v] = low[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                on_stack[v] = True
            recurse = False
            for k in range(pi, len(out[v])):
                w = out[v][k]
                if index[w] is None:
                    work.append((v, k + 1))
                    work.append((w, 0))
                    recurse = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if recurse:
                continue
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == v:
                        break
                comps.append(tuple(sorted(comp)))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
    return comps


def _scc_member_order(scc, nodes, edges) -> list:
    """Deterministic firing order inside one SCC for the epoch kernel.

    A Kahn sweep over the component's internal wiring that, when stuck
    (every remaining node waits on a back edge), releases the
    smallest-indexed remaining node — i.e. the minimal deterministic
    back-edge break.  Values are schedule-independent (Kahn network);
    this order only minimizes fixpoint passes in the generated kernel.
    """
    members = set(scc)
    indeg = {i: 0 for i in scc}
    out = {i: [] for i in scc}
    for e in edges:
        if e.src in members and e.dst in members and e.src != e.dst:
            indeg[e.dst] += 1
            out[e.src].append(e.dst)
    remaining = set(scc)
    order = []
    while remaining:
        ready = sorted(i for i in remaining if indeg[i] == 0)
        nxt = ready[0] if ready else min(remaining)
        remaining.discard(nxt)
        order.append(nxt)
        for d in out[nxt]:
            if d in remaining:
                indeg[d] -= 1
    return order


def build_schedule(nodes, edges) -> tuple:
    """(topo, schedule, sccs) of the captured wiring.

    ``schedule`` walks the condensation in topological order; trivial
    components become ``("node", i)`` units for the vectorized value
    pass, feedback components (size > 1, or a self-loop) become
    ``("scc", s)`` units lowered by epoch kernels.  ``topo`` is the
    flat node order of the same walk.
    """
    self_loops = {e.src for e in edges if e.src == e.dst}
    comps = list(reversed(strongly_connected(nodes, edges)))
    topo = []
    schedule = []
    sccs = []
    for comp in comps:
        if len(comp) > 1 or comp[0] in self_loops:
            ordered = _scc_member_order(comp, nodes, edges)
            schedule.append(("scc", len(sccs)))
            sccs.append(tuple(ordered))
            topo.extend(ordered)
        else:
            schedule.append(("node", comp[0]))
            topo.append(comp[0])
    return topo, schedule, sccs

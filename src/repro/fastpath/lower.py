"""Lowering: value streams and the generated count-level trace kernel.

Two cooperating lowerings turn a captured :class:`~repro.fastpath.ir.Graph`
into something that executes whole runs per call:

* **Value pass** — under the two-phase handshake protocol the *sequence*
  of tokens crossing each edge is timing-independent (the netlists are
  Kahn process networks), so per-edge token values can be computed ahead
  of time as batched numpy int64 array ops in one topological sweep:
  each node maps its input streams to output-port streams with the same
  wrap/shift/pack arithmetic as its ``compute``, vectorized via
  :mod:`repro.fixed`.

* **Count pass** — *when* tokens move still depends on backpressure, so
  firing schedules are produced by a generated straight-line Python
  trace kernel: one int local per edge occupancy/pop-counter and per
  node phase variable, one plan boolean per node per cycle, and a
  per-cycle firing bitmask appended to a trace.  Checkpoints of firing
  counts (every 256 cycles) and of the full count state (every 2048)
  keep replay and state write-back O(1)-ish.  A zero mask is absorbing
  (no state changed, so no plan can change) and ends the trace.

Data-dependent routing (DEMUX/MERGE/GATE) is the one place values feed
back into scheduling; those select streams are handed to the trace
kernel as plain Python lists indexed by the select edge's pop counter.

Feedback cycles get a third piece.  The count pass is already
cycle-safe (every plan boolean is computed before any commit and each
edge has exactly one consumer, so node order is irrelevant), but the
vectorized value pass needs producers before consumers.  Each
strongly-connected component is therefore lowered by a generated
**epoch kernel** (:func:`emit_epoch`): a time-stepped scalar fixpoint
loop over just the component's nodes that consumes the surrounding
acyclic regions' numpy streams as plain lists and grows every edge the
component produces until the cycle-carried state stops advancing or
the window ``limit`` is reached.  Values stay exact (python ints with
the same wrap/saturate folds, applied per token), deterministic and
prefix-consistent, so :meth:`TraceSession._grow_values` regrowth and
the existing replay/materialize machinery work unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.fastpath.ir import GENERATORS, Graph

#: stand-in for an unbounded generator budget (avoids None checks in
#: the generated kernel's hot loop)
INF = 1 << 62

#: trace checkpoint strides (powers of two; the kernel uses bit masks)
FIRES_CHECK = 256
STATE_CHECK = 2048

# ---------------------------------------------------------------------------
# value pass
# ---------------------------------------------------------------------------


def _wrap(v, bits):
    """Vectorized two's-complement fold (int64-native)."""
    mask = np.int64((1 << bits) - 1)
    sign = 1 << (bits - 1)
    v = v.astype(np.int64) & mask
    return np.where(v >= sign, v - (int(mask) + 1), v)


def _vshift(x, amount):
    """Constant arithmetic shift, positive = left (matches alu._shift)."""
    return x << amount if amount >= 0 else x >> (-amount)


def _vunpack(w, hb):
    mask = (1 << hb) - 1
    sign = 1 << (hb - 1)
    im = w & mask
    re = (w >> hb) & mask
    re = np.where(re >= sign, re - (mask + 1), re)
    im = np.where(im >= sign, im - (mask + 1), im)
    return re, im


def _vpack(re, im, hb):
    mask = (1 << hb) - 1
    re = _wrap(re, hb)
    im = _wrap(im, hb)
    return ((re & mask) << hb) | (im & mask)


_E = np.zeros(0, dtype=np.int64)


def _arr(seq):
    return np.array(list(seq), dtype=np.int64) if len(seq) else _E.copy()


_BINFN = {
    "ADD": lambda a, b: a + b,
    "SUB": lambda a, b: a - b,
    "MUL": lambda a, b: a * b,
    "MIN": np.minimum,
    "MAX": np.maximum,
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "SHL": lambda a, b: a << b,
    "SHR": lambda a, b: a >> b,
    "CMPEQ": lambda a, b: (a == b).astype(np.int64),
    "CMPNE": lambda a, b: (a != b).astype(np.int64),
    "CMPLT": lambda a, b: (a < b).astype(np.int64),
    "CMPLE": lambda a, b: (a <= b).astype(np.int64),
    "CMPGT": lambda a, b: (a > b).astype(np.int64),
    "CMPGE": lambda a, b: (a >= b).astype(np.int64),
}


def node_budget(node) -> int:
    """Remaining firings a generator can make, from its live state."""
    o = node.obj
    k = node.kind
    if k == "source":
        return len(o._data) - o._pos
    if k == "const":
        return INF if o.count is None else max(o.count - o._emitted, 0)
    if k == "seq":
        return INF if o.circular else max(len(o.values) - o._pos, 0)
    if k == "counter":
        if o._stopped:
            return 0
        budget = INF if o.count is None else max(o.count - o._emitted, 0)
        if o.limit is not None and o.mode == "stop":
            rem = -(-(o.limit - o._value) // o.step)    # ceil division
            budget = min(budget, max(rem, 0))
        return budget
    return INF


def _counter_streams(o, n):
    """Value and wrap-event streams of a Counter from its live phase."""
    idx = np.arange(n, dtype=np.int64)
    if o.limit is not None and o.mode == "wrap":
        period = -(-(o.limit - o.start) // o.step)
        pos = ((o._value - o.start) // o.step + idx) % period
        vals = o.start + pos * o.step
        wev = (pos == period - 1).astype(np.int64)
    else:
        vals = o._value + idx * o.step
        if o.limit is not None:     # stop mode: flag the stopping token
            wev = (vals + o.step >= o.limit).astype(np.int64)
        else:
            wev = np.zeros(n, dtype=np.int64)
    return _wrap(vals, o.bits), wev


def _merge_stream(sel, a, b):
    """MERGE output: gather from a/b by select, truncated at the first
    firing whose selected branch has run dry."""
    take_b = sel != 0
    a_need = np.cumsum(~take_b)
    b_need = np.cumsum(take_b)
    ok = np.where(take_b, b_need <= len(b), a_need <= len(a))
    n = len(ok) if bool(ok.all()) else int(np.argmin(ok))
    take_b = take_b[:n]
    av = a[np.clip(a_need[:n] - 1, 0, None)] if len(a) \
        else np.zeros(n, dtype=np.int64)
    bv = b[np.clip(b_need[:n] - 1, 0, None)] if len(b) \
        else np.zeros(n, dtype=np.int64)
    return np.where(take_b, bv, av)


def _acc_sums(x, length, n0, s0):
    """Dump values of an integrate-and-dump fed ``x``, mid-block at
    (count ``n0``, partial sum ``s0``)."""
    k1 = length - n0
    if len(x) < k1:
        return _E.copy()
    first = s0 + int(x[:k1].sum())
    rest = x[k1:]
    nb = len(rest) // length
    if nb:
        sums = rest[:nb * length].reshape(nb, length).sum(axis=1)
        return np.concatenate([np.array([first], dtype=np.int64), sums])
    return np.array([first], dtype=np.int64)


def _node_streams(node, ins, limit):
    """Per-output-port value streams of one node (length-capped)."""
    o = node.obj
    k = node.kind

    if k == "source":
        return [_arr(o._data[o._pos:o._pos + limit])]
    if k == "const":
        n = min(limit, node_budget(node))
        from repro.fixed import wrap
        return [np.full(n, wrap(o.value, o.bits), dtype=np.int64)]
    if k == "seq":
        vals = _arr(o.values)
        if o.circular:
            idx = (o._pos + np.arange(limit, dtype=np.int64)) % len(vals)
            return [_wrap(vals[idx], o.bits)]
        return [_wrap(vals[o._pos:o._pos + limit], o.bits)]
    if k == "counter":
        n = min(limit, node_budget(node))
        vals, wev = _counter_streams(o, n)
        return [vals, wev]
    if k == "sink":
        return []
    if k == "probe":
        return [ins[0]]
    if k == "fifo":
        snap = _arr(o._q)
        if o.circular:
            if not len(snap):
                return [_E.copy()]
            reps = -(-limit // len(snap))
            return [np.tile(snap, reps)[:limit]]
        if ins[0] is not None:
            return [np.concatenate([snap, _wrap(ins[0], o.bits)])]
        return [snap]

    if k == "binary":
        a = ins[0]
        b = ins[1] if ins[1] is not None else o.const
        if isinstance(b, np.ndarray):
            n = min(len(a), len(b))
            a, b = a[:n], b[:n]
        r = _BINFN[o.OPCODE](a, b)
        return [_wrap(_vshift(r, -o.shift), o.bits)]
    if k == "unary":
        a = ins[0]
        r = {"NEG": lambda v: -v, "NOT": lambda v: ~v,
             "ABS": np.abs, "PASS": lambda v: v}[o.OPCODE](a)
        return [_wrap(r, o.bits)]
    if k == "shiftalu":
        return [_wrap(_vshift(ins[0], o.amount), o.bits)]
    if k == "lut":
        tbl = _wrap(_arr(o.table), o.bits)
        return [tbl[ins[0] % len(o.table)]]

    hb = getattr(o, "half_bits", 12)
    if k in ("cadd", "csub"):
        n = min(len(ins[0]), len(ins[1]))
        ar, ai = _vunpack(ins[0][:n], hb)
        br, bi = _vunpack(ins[1][:n], hb)
        if k == "cadd":
            re, im = ar + br, ai + bi
        else:
            re, im = ar - br, ai - bi
        return [_vpack(_vshift(re, -o.shift), _vshift(im, -o.shift), hb)]
    if k == "cmul":
        n = min(len(ins[0]), len(ins[1]))
        ar, ai = _vunpack(ins[0][:n], hb)
        br, bi = _vunpack(ins[1][:n], hb)
        if o.conj_b:
            bi = -bi
        re = ar * br - ai * bi
        im = ar * bi + ai * br
        if o.shift:
            if o.round_shift:
                half = 1 << (o.shift - 1)
                re = (re + half) >> o.shift
                im = (im + half) >> o.shift
            else:
                re >>= o.shift
                im >>= o.shift
        return [_vpack(re, im, hb)]
    if k == "cconj":
        re, im = _vunpack(ins[0], hb)
        return [_vpack(re, -im, hb)]
    if k == "cneg":
        re, im = _vunpack(ins[0], hb)
        return [_vpack(-re, -im, hb)]
    if k == "cmulj":
        re, im = _vunpack(ins[0], hb)
        return [_vpack(-im, re, hb) if o.sign > 0 else _vpack(im, -re, hb)]
    if k == "cshift":
        re, im = _vunpack(ins[0], hb)
        return [_vpack(_vshift(re, o.amount), _vshift(im, o.amount), hb)]
    if k == "pack":
        n = min(len(ins[0]), len(ins[1]))
        return [_vpack(ins[0][:n], ins[1][:n], o.half_bits)]
    if k == "unpack":
        re, im = _vunpack(ins[0], o.half_bits)
        return [re, im]

    if k == "mux":
        n = min(len(ins[0]), len(ins[1]), len(ins[2]))
        return [np.where(ins[0][:n] != 0, ins[2][:n], ins[1][:n])]
    if k == "swap":
        n = min(len(ins[0]), len(ins[1]), len(ins[2]))
        sel, a, b = ins[0][:n] != 0, ins[1][:n], ins[2][:n]
        return [np.where(sel, b, a), np.where(sel, a, b)]
    if k == "demux":
        n = min(len(ins[0]), len(ins[1]))
        sel = ins[0][:n] != 0
        a = ins[1][:n]
        return [a[~sel], a[sel]]
    if k == "merge":
        return [_merge_stream(ins[0], ins[1], ins[2])]
    if k == "gate":
        n = min(len(ins[0]), len(ins[1]))
        return [ins[1][:n][ins[0][:n] != 0]]

    if k == "acc":
        sums = _acc_sums(ins[0], o.length, o._n, o._sum)
        return [_wrap(_vshift(sums, -o.shift), o.bits)]
    if k == "cacc":
        re, im = _vunpack(ins[0], hb)
        rs = _acc_sums(re, o.length, o._n, o._re)
        is_ = _acc_sums(im, o.length, o._n, o._im)
        return [_vpack(_vshift(rs, -o.shift), _vshift(is_, -o.shift), hb)]
    if k == "integ":
        return [_wrap(o._sum + np.cumsum(ins[0]), o.bits)]
    if k == "cinteg":
        re, im = _vunpack(ins[0], hb)
        return [_vpack(o._re + np.cumsum(re), o._im + np.cumsum(im), hb)]
    if k == "reg":
        pre = _wrap(_arr(o._preload), o.bits)
        return [np.concatenate([pre, _wrap(ins[0], o.bits)])]

    raise AssertionError(f"no lowering for kind {k!r}")       # unreachable


def value_streams(graph: Graph, limit: int, epochs=None,
                  epoch_rt=None) -> list:
    """Per-edge token-value streams: the wire's queued tokens followed
    by every token its producer port will ever push, capped at ``limit``
    productions.  Acyclic schedule units are one vectorized numpy sweep
    over the live state; SCC units run their generated epoch kernel
    (``epochs[s]`` when supplied, else compiled on the fly).

    ``epoch_rt`` is the caller's persistent per-SCC runtime dict (see
    :func:`_run_epoch`): with it, regrowing to a larger ``limit`` only
    runs the epoch kernels over the *new* window instead of replaying
    from cycle zero — TraceSession passes its own so repeated
    ``ensure`` growth stays O(total), matching the trace kernel's
    incremental count state."""
    edge_vals = [None] * len(graph.edges)
    for tag, x in graph.schedule:
        if tag == "node":
            node = graph.nodes[x]
            ins = [edge_vals[j] if j is not None else None
                   for j in node.in_edges]
            ports = _node_streams(node, ins, limit)
            for k, js in enumerate(node.out_ports):
                for j in js:
                    init = _arr(graph.edges[j].wire._q)
                    edge_vals[j] = np.concatenate([init, ports[k][:limit]])
        else:
            fn = epochs[x] if epochs is not None else compile_epoch(graph, x)
            env = _run_epoch(graph, x, fn, edge_vals, limit, epoch_rt)
            for idx, (_, tag2, key) in enumerate(epoch_spec(graph, x)):
                if tag2 == "seed":
                    edge_vals[key] = _arr(env[idx])
    return edge_vals


# ---------------------------------------------------------------------------
# epoch kernels: generated scalar fixpoint loops for feedback components
# ---------------------------------------------------------------------------
#
# Inside an SCC the vectorized sweep has no valid node order, so each
# component gets a specialized scalar kernel instead: per produced edge a
# growable Python list (seeded with the wire's queued tokens plus any
# reg-preload / fifo-snapshot backlog), per consumed edge a read cursor,
# and per member node a drain loop that fires as long as tokens are
# available — all wrapped in an outer fixpoint loop that stops once a
# full pass over the component makes no progress.  Arithmetic is exact
# Python-int with the same wrap/fold/pack formulas as the numpy pass
# baked in as literals, so values are bit-identical.  Firings per node
# are capped at ``limit``: a node fires at most once per cycle, so this
# always covers everything the count-level trace can consume in a
# ``limit``-cycle window, and it bounds self-sustaining rings.  The
# member order (Kahn with deterministic back-edge break) makes output
# streams deterministic and prefix-consistent in ``limit``, which is
# what TraceSession regrowth relies on.


def scc_produced(graph: Graph, s: int) -> list:
    """Edge indices produced inside SCC ``s`` (sorted; kernel output
    order and the order ``value_streams`` assigns results back)."""
    return sorted({j for i in graph.sccs[s]
                   for j in graph.nodes[i].out_edges()})


def epoch_spec(graph: Graph, s: int) -> list:
    """Ordered ``(name, tag, key)`` layout of the epoch kernel's env
    tuple: external input streams, produced-edge seed lists, then
    per-node constant tables and live accumulator state."""
    scc = graph.sccs[s]
    produced = set(scc_produced(graph, s))
    ext = sorted({j for i in scc for j in graph.nodes[i].in_edges
                  if j is not None and j not in produced})
    spec = [(f"v{j}", "ext", j) for j in ext]
    spec += [(f"v{j}", "seed", j) for j in sorted(produced)]
    for i in scc:
        k = graph.nodes[i].kind
        if k == "lut":
            spec.append((f"t{i}", "table", i))
        elif k == "acc":
            spec += [(f"acn{i}", "accn", i), (f"acs{i}", "accs", i)]
        elif k == "cacc":
            spec += [(f"acn{i}", "accn", i), (f"acr{i}", "caccr", i),
                     (f"aci{i}", "cacci", i)]
        elif k == "integ":
            spec.append((f"ig{i}", "integ", i))
        elif k == "cinteg":
            spec += [(f"igr{i}", "cintegr", i), (f"igi{i}", "cintegi", i)]
    return spec


def _run_epoch(graph: Graph, s: int, fn, edge_vals: list, limit: int,
               rt=None) -> list:
    """Drive one epoch-kernel call; returns its env (whose seed entries
    are the produced streams, grown in place by the kernel).

    With ``rt`` (a dict the caller keeps per session), the env and the
    kernel's cursor/counter state persist across calls: external input
    lists are extended with just the newly grown suffix (prefix-
    consistency of the value pass makes that sound) and the kernel
    resumes where it stopped.  Without ``rt`` each call replays from
    cycle zero (the one-shot path explain's replay uses)."""
    spec = epoch_spec(graph, s)
    rec = rt.get(s) if rt is not None else None
    if rec is None:
        env = epoch_env(graph, s, edge_vals)
        st = None
    else:
        env, st = rec
        for idx, (_, tag, key) in enumerate(spec):
            if tag == "ext":
                lst = env[idx]
                new = edge_vals[key]
                if len(new) > len(lst):
                    lst.extend(new[len(lst):].tolist())
    st = fn(env, st, limit)
    if rt is not None:
        rt[s] = (env, st)
    return env


def epoch_env(graph: Graph, s: int, edge_vals: list) -> list:
    """Build the env tuple for one epoch-kernel call from the live
    state (mirrors what ``_node_streams`` reads for acyclic nodes)."""
    from repro.fixed import wrap

    env = []
    for _, tag, key in epoch_spec(graph, s):
        if tag == "ext":
            env.append(edge_vals[key].tolist())
        elif tag == "seed":
            e = graph.edges[key]
            vals = [int(x) for x in e.wire._q]
            n = graph.nodes[e.src]
            if n.kind == "reg":
                vals += [wrap(int(x), n.obj.bits) for x in n.obj._preload]
            elif n.kind == "fifo":
                vals += [int(x) for x in n.obj._q]
            env.append(vals)
        elif tag == "table":
            o = graph.nodes[key].obj
            env.append([wrap(int(x), o.bits) for x in o.table])
        elif tag == "accn":
            env.append(int(graph.nodes[key].obj._n))
        elif tag in ("accs", "integ"):
            env.append(int(graph.nodes[key].obj._sum))
        elif tag in ("caccr", "cintegr"):
            env.append(int(graph.nodes[key].obj._re))
        else:   # cacci / cintegi
            env.append(int(graph.nodes[key].obj._im))
    return env


def _swrap(x: str, bits: int) -> str:
    """Scalar two's-complement fold expression (matches _wrap/_vunpack)."""
    s = 1 << (bits - 1)
    m = (1 << bits) - 1
    return f"((({x}) + {s} & {m}) - {s})"


def _sshift(x: str, amount: int) -> str:
    if amount > 0:
        return f"(({x}) << {amount})"
    if amount < 0:
        return f"(({x}) >> {-amount})"
    return x


def _spack(re: str, im: str, hb: int) -> str:
    # mask-only pack: wrap-then-mask == mask (mod 2**hb arithmetic)
    m = (1 << hb) - 1
    return f"(((({re}) & {m}) << {hb}) | (({im}) & {m}))"


_BINSYM = {"ADD": "+", "SUB": "-", "MUL": "*", "AND": "&", "OR": "|",
           "XOR": "^", "CMPEQ": "==", "CMPNE": "!=", "CMPLT": "<",
           "CMPLE": "<=", "CMPGT": ">", "CMPGE": ">="}


def _epoch_emits(n, exprs) -> list:
    """Append lines pushing per-port result expressions to out edges."""
    lines = []
    for kp, js in enumerate(n.out_ports):
        if not js:
            continue
        if len(js) == 1:
            lines.append(f"a{js[0]}({exprs[kp]})")
        else:
            lines.append(f"r{kp} = {exprs[kp]}")
            lines += [f"a{j}(r{kp})" for j in js]
    return lines


def _epoch_inner(n, graph) -> list:
    """One-firing lines (fetch + compute + appends) for non-merge kinds."""
    i = n.i
    o = n.obj
    k = n.kind
    ins = [j for j in n.in_edges if j is not None]
    hb = getattr(o, "half_bits", 12)

    def fre(w):         # packed-word real part, folded
        return _swrap(f"{w} >> {hb}", hb)

    def fim(w):
        return _swrap(w, hb)

    fetch = [f"w{idx} = v{j}[q{j}]; q{j} += 1"
             for idx, j in enumerate(ins)]

    if k == "demux":
        e0, e1 = n.out_ports
        hi = [f"    a{j}(w1)" for j in e1] or ["    pass"]
        lo = [f"    a{j}(w1)" for j in e0] or ["    pass"]
        return fetch + ["if w0:"] + hi + ["else:"] + lo

    if k == "gate":
        outs = [f"    a{j}(w1)" for j in n.out_edges()]
        return fetch + (["if w0:"] + outs if outs else [])

    if k == "acc":
        dump = _swrap(_sshift(f"acs{i}", -o.shift), o.bits)
        body = fetch + [f"acs{i} += w0", f"acn{i} += 1",
                        f"if acn{i} >= {o.length}:"]
        body += ["    " + ln for ln in _epoch_emits(n, [dump])]
        return body + [f"    acn{i} = 0", f"    acs{i} = 0"]

    if k == "cacc":
        dump = _spack(_sshift(f"acr{i}", -o.shift),
                      _sshift(f"aci{i}", -o.shift), hb)
        body = fetch + [f"acr{i} += {fre('w0')}",
                        f"aci{i} += {fim('w0')}",
                        f"acn{i} += 1", f"if acn{i} >= {o.length}:"]
        body += ["    " + ln for ln in _epoch_emits(n, [dump])]
        return body + [f"    acn{i} = 0", f"    acr{i} = 0",
                       f"    aci{i} = 0"]

    if k == "integ":
        return (fetch + [f"ig{i} += w0"]
                + _epoch_emits(n, [_swrap(f"ig{i}", o.bits)]))

    if k == "cinteg":
        return (fetch + [f"igr{i} += {fre('w0')}",
                         f"igi{i} += {fim('w0')}"]
                + _epoch_emits(n, [_spack(f"igr{i}", f"igi{i}", hb)]))

    if k == "cmul":
        bi = fim("w1")
        if o.conj_b:
            bi = f"-{bi}"
        body = fetch + [f"ar = {fre('w0')}", f"ai = {fim('w0')}",
                        f"br = {fre('w1')}", f"bi = {bi}",
                        "x = ar * br - ai * bi", "y = ar * bi + ai * br"]
        if o.shift:
            if o.round_shift:
                half = 1 << (o.shift - 1)
                body += [f"x = (x + {half}) >> {o.shift}",
                         f"y = (y + {half}) >> {o.shift}"]
            else:
                body += [f"x >>= {o.shift}", f"y >>= {o.shift}"]
        return body + _epoch_emits(n, [_spack("x", "y", hb)])

    if k in ("cadd", "csub"):
        op = "+" if k == "cadd" else "-"
        xe = _sshift("({} {} {})".format(fre("w0"), op, fre("w1")),
                     -o.shift)
        ye = _sshift("({} {} {})".format(fim("w0"), op, fim("w1")),
                     -o.shift)
        return (fetch + [f"x = {xe}", f"y = {ye}"]
                + _epoch_emits(n, [_spack("x", "y", hb)]))

    # single-expression kinds
    if k == "probe":
        exprs = ["w0"]
    elif k in ("fifo", "reg"):
        exprs = [_swrap("w0", o.bits)]
    elif k == "binary":
        b = "w1" if n.in_edges[1] is not None else f"({o.const})"
        op = o.OPCODE
        if op.startswith("CMP"):
            r = f"(1 if w0 {_BINSYM[op]} {b} else 0)"
        elif op in ("MIN", "MAX"):
            r = f"{op.lower()}(w0, {b})"
        elif op == "SHL":
            r = f"(w0 << {o.const})"
        elif op == "SHR":
            r = f"(w0 >> {o.const})"
        else:
            r = f"(w0 {_BINSYM[op]} {b})"
        exprs = [_swrap(_sshift(r, -o.shift), o.bits)]
    elif k == "unary":
        r = {"NEG": "(-w0)", "NOT": "(~w0)",
             "ABS": "abs(w0)", "PASS": "w0"}[o.OPCODE]
        exprs = [_swrap(r, o.bits)]
    elif k == "shiftalu":
        exprs = [_swrap(_sshift("w0", o.amount), o.bits)]
    elif k == "lut":
        exprs = [f"t{i}[w0 % {len(o.table)}]"]
    elif k == "cconj":
        exprs = [_spack(fre("w0"), f"-{fim('w0')}", hb)]
    elif k == "cneg":
        exprs = [_spack(f"-{fre('w0')}", f"-{fim('w0')}", hb)]
    elif k == "cmulj":
        if o.sign > 0:
            exprs = [_spack(f"-{fim('w0')}", fre("w0"), hb)]
        else:
            exprs = [_spack(fim("w0"), f"-{fre('w0')}", hb)]
    elif k == "cshift":
        exprs = [_spack(_sshift(fre("w0"), o.amount),
                        _sshift(fim("w0"), o.amount), hb)]
    elif k == "pack":
        exprs = [_spack("w0", "w1", o.half_bits)]
    elif k == "unpack":
        exprs = [_swrap(f"w0 >> {o.half_bits}", o.half_bits),
                 _swrap("w0", o.half_bits)]
    elif k == "mux":
        exprs = ["(w2 if w0 else w1)"]
    elif k == "swap":
        exprs = ["(w2 if w0 else w1)", "(w1 if w0 else w2)"]
    else:   # generators/sinks have no in-edges, so never sit in an SCC
        raise AssertionError(f"kind {k!r} cannot appear in a feedback "
                             "component")                 # unreachable
    return fetch + _epoch_emits(n, exprs)


def _epoch_node(n, graph, ext) -> list:
    """Drain block for one SCC member.  ``ext`` is the set of external
    input edges, whose lengths are hoisted into ``n{j}`` locals (they
    cannot grow during one kernel call)."""
    i = n.i
    ins = [j for j in n.in_edges if j is not None]

    def vlen(j):
        return f"n{j}" if j in ext else f"len(v{j})"

    if n.kind == "merge":
        # variable consumption: the select token is only consumed once
        # the selected branch has a token, so drain stays a while-loop
        s, a, b = n.in_edges
        body = [f"if v{s}[q{s}]:",
                f"    if q{b} >= {vlen(b)}:",
                "        break",
                f"    x = v{b}[q{b}]; q{b} += 1",
                "else:",
                f"    if q{a} >= {vlen(a)}:",
                "        break",
                f"    x = v{a}[q{a}]; q{a} += 1",
                f"q{s} += 1"]
        body += _epoch_emits(n, ["x"])
        body += [f"f{i} += 1", "prog = 1"]
        return ([f"while f{i} < limit and q{s} < {vlen(s)}:"]
                + ["    " + ln for ln in body])

    inner = _epoch_inner(n, graph)
    if set(ins) & set(n.out_edges()):
        # self-loop: draining grows this node's own input, so the
        # availability check must stay inside the loop
        head = (f"while f{i} < limit"
                + "".join(f" and q{j} < {vlen(j)}" for j in ins) + ":")
        return ([head] + ["    " + ln for ln in inner]
                + [f"    f{i} += 1", "    prog = 1"])

    # bounded drain: firings available this pass are known up front, so
    # the hot loop iterates input slices directly and re-checks nothing
    nfetch = len(ins)
    inner = inner[nfetch:]      # fetches move into the for-header
    lines = [f"k = limit - f{i}"]
    for j in ins:
        avail = f"{vlen(j)} - q{j}"
        lines.append(f"if k > {avail}: k = {avail}")
    lines.append("if k > 0:")
    ws = ", ".join(f"w{x}" for x in range(nfetch))
    slices = [f"v{j}[q{j}:q{j} + k]" for j in ins]
    src = slices[0] if nfetch == 1 else "zip(" + ", ".join(slices) + ")"
    lines.append(f"    for {ws} in {src}:")
    lines += ["        " + ln for ln in inner]
    lines += [f"    q{j} += k" for j in ins]
    lines.append(f"    f{i} += k")
    lines.append("    prog = 1")
    return lines


def emit_epoch(graph: Graph, s: int) -> str:
    """Source of the specialized ``_epoch(env, st, limit)`` kernel for
    SCC ``s``.  ``st`` is the opaque resume state (cursors, firing
    counters, accumulator partials) returned by the previous call, or
    None to start from the session snapshot in ``env``."""
    scc = graph.sccs[s]         # already in member (firing) order
    spec = epoch_spec(graph, s)
    produced = scc_produced(graph, s)
    consumed = sorted({j for i in scc for j in graph.nodes[i].in_edges
                       if j is not None})
    ext = {key for _, tag, key in spec if tag == "ext"}
    state = ([f"q{j}" for j in consumed] + [f"f{i}" for i in scc]
             + [nm for nm, tag, _ in spec
                if tag not in ("ext", "seed", "table")])
    names = ", ".join(nm for nm, _, _ in spec)
    lines = ["def _epoch(env, st, limit):"]
    lines.append(f"    ({names},) = env")
    for j in produced:
        lines.append(f"    a{j} = v{j}.append")
    for j in sorted(ext):
        lines.append(f"    n{j} = len(v{j})")
    lines.append("    if st is None:")
    for nm in state:
        if nm[0] in "qf":       # accumulator partials come in via env
            lines.append(f"        {nm} = 0")
    lines.append("    else:")
    lines.append(f"        ({', '.join(state)},) = st")
    lines.append("    while 1:")
    lines.append("        prog = 0")
    for i in scc:
        for ln in _epoch_node(graph.nodes[i], graph, ext):
            lines.append("        " + ln)
    lines.append("        if not prog:")
    lines.append("            break")
    lines.append(f"    return ({', '.join(state)},)")
    return "\n".join(lines) + "\n"


def compile_epoch(graph: Graph, s: int):
    """exec() the generated epoch kernel; returns the ``_epoch`` callable."""
    ns = {}
    exec(compile(emit_epoch(graph, s), "<fastpath-epoch>", "exec"), ns)
    return ns["_epoch"]


def compile_epochs(graph: Graph) -> list:
    """Epoch kernels for every SCC, indexed like ``graph.sccs``."""
    return [compile_epoch(graph, s) for s in range(len(graph.sccs))]


# ---------------------------------------------------------------------------
# count pass: generated trace kernel
# ---------------------------------------------------------------------------


def state_spec(graph: Graph) -> list:
    """Canonical ``(tag, index)`` layout of the count-state tuple."""
    spec = [("cyc", -1)]
    spec += [("o", e.j) for e in graph.edges]
    spec += [("p", e.j) for e in graph.edges]
    spec += [("f", n.i) for n in graph.nodes]
    for n in graph.nodes:
        if n.kind in GENERATORS:
            spec.append(("g", n.i))
        elif n.kind in ("acc", "cacc"):
            spec.append(("an", n.i))
        elif n.kind == "reg":
            spec.append(("pre", n.i))
        elif n.kind == "fifo":
            spec += [("fl", n.i), ("fin", n.i), ("fout", n.i)]
    return spec


def _name(tag, idx):
    return "cyc" if tag == "cyc" else f"{tag}{idx}"


def _chk(edge_idxs, graph):
    """Space-check expression over a set of out edges ('True' if none)."""
    terms = [f"o{j} < {graph.edges[j].cap}" for j in edge_idxs]
    return " and ".join(terms) if terms else "True"


def _plan_line(n, graph):
    i = n.i
    ins = [j for j in n.in_edges if j is not None]
    outs = n.out_edges()
    k = n.kind
    if k == "demux":
        s, a = n.in_edges
        e0 = _chk(n.out_ports[0], graph)
        e1 = _chk(n.out_ports[1], graph)
        return [f"b{i} = o{s} > 0 and o{a} > 0 and "
                f"(({e1}) if sv{s}[p{s}] else ({e0}))"]
    if k == "merge":
        s, a, b = n.in_edges
        return [f"b{i} = o{s} > 0 and ({_chk(outs, graph)}) and "
                f"((o{b} > 0) if sv{s}[p{s}] else (o{a} > 0))"]
    if k == "gate":
        c, a = n.in_edges
        return [f"b{i} = o{c} > 0 and o{a} > 0 and "
                f"(({_chk(outs, graph)}) if sv{c}[p{c}] else True)"]
    if k in ("acc", "cacc"):
        x = n.in_edges[0]
        return [f"b{i} = o{x} > 0 and (True if an{i} + 1 < "
                f"{n.obj.length} else ({_chk(outs, graph)}))"]
    if k == "reg":
        x = n.in_edges[0]
        chk = _chk(outs, graph)
        return [f"b{i} = ({chk}) if pre{i} > 0 else "
                f"(o{x} > 0 and ({chk}))"]
    if k == "fifo":
        x = n.in_edges[0]
        lines = []
        if x is not None:
            lines.append(f"di{i} = o{x} > 0 and fl{i} < {n.obj.depth}")
        else:
            lines.append(f"di{i} = False")
        if outs:
            lines.append(f"do{i} = fl{i} > 0 and ({_chk(outs, graph)})")
        else:
            lines.append(f"do{i} = False")
        lines.append(f"b{i} = di{i} or do{i}")
        return lines
    # default firing rule (sources, sinks, probes, plain compute nodes)
    terms = [f"o{j} > 0" for j in ins] + \
            [f"o{j} < {graph.edges[j].cap}" for j in outs]
    if k in GENERATORS:
        terms.append(f"g{i} > 0")
    return [f"b{i} = " + (" and ".join(terms) if terms else "True")]


def _commit_block(n, graph):
    i = n.i
    k = n.kind
    body = []
    pops = [j for j in n.in_edges if j is not None]
    outs = n.out_edges()

    def pop(j):
        body.append(f"o{j} -= 1")
        body.append(f"p{j} += 1")

    def push(js, indent=""):
        for j in js:
            body.append(f"{indent}o{j} += 1")

    if k == "demux":
        s, a = n.in_edges
        e0, e1 = n.out_ports
        if e0 and e1:
            body.append(f"if sv{s}[p{s}]:")
            push(e1, "    ")
            body.append("else:")
            push(e0, "    ")
        elif e1:
            body.append(f"if sv{s}[p{s}]:")
            push(e1, "    ")
        elif e0:
            body.append(f"if not sv{s}[p{s}]:")
            push(e0, "    ")
        pop(s)
        pop(a)
    elif k == "merge":
        s, a, b = n.in_edges
        body.append(f"if sv{s}[p{s}]:")
        body.append(f"    o{b} -= 1")
        body.append(f"    p{b} += 1")
        body.append("else:")
        body.append(f"    o{a} -= 1")
        body.append(f"    p{a} += 1")
        pop(s)
        push(outs)
    elif k == "gate":
        c, a = n.in_edges
        if outs:
            body.append(f"if sv{c}[p{c}]:")
            push(outs, "    ")
        pop(c)
        pop(a)
    elif k in ("acc", "cacc"):
        pop(n.in_edges[0])
        body.append(f"an{i} += 1")
        body.append(f"if an{i} >= {n.obj.length}:")
        body.append(f"    an{i} = 0")
        push(outs, "    ")
    elif k == "reg":
        x = n.in_edges[0]
        body.append(f"if pre{i} > 0:")
        body.append(f"    pre{i} -= 1")
        body.append("else:")
        body.append(f"    o{x} -= 1")
        body.append(f"    p{x} += 1")
        push(outs)
    elif k == "fifo":
        x = n.in_edges[0]
        if outs:
            body.append(f"if do{i}:")
            body.append(f"    fout{i} += 1")
            if not n.obj.circular:
                body.append(f"    fl{i} -= 1")
            push(outs, "    ")
        if x is not None:
            body.append(f"if di{i}:")
            body.append(f"    o{x} -= 1")
            body.append(f"    p{x} += 1")
            body.append(f"    fin{i} += 1")
            body.append(f"    fl{i} += 1")
    else:
        for j in pops:
            pop(j)
        push(outs)
        if k in GENERATORS:
            body.append(f"g{i} -= 1")

    body.append(f"m += {1 << i}")
    body.append(f"f{i} += 1")
    return [f"if b{i}:"] + ["    " + ln for ln in body]


def emit_trace(graph: Graph) -> str:
    """Source of the specialized ``_trace`` kernel for this graph."""
    names = [_name(t, x) for t, x in state_spec(graph)]
    unpack = ", ".join(names)
    fnames = ", ".join(f"f{n.i}" for n in graph.nodes)
    peeked = sorted({n.in_edges[0] for n in graph.nodes
                     if n.kind in ("demux", "merge", "gate")})
    lines = ["def _trace(state, sv, masks, fchk, schk, limit):"]
    lines.append(f"    ({unpack}) = state")
    for j in peeked:
        lines.append(f"    sv{j} = sv[{j}]")
    lines.append("    _ma = masks.append")
    lines.append("    _fa = fchk.append")
    lines.append("    _sa = schk.append")
    lines.append("    while cyc < limit:")
    for i in graph.topo:
        for ln in _plan_line(graph.nodes[i], graph):
            lines.append("        " + ln)
    lines.append("        m = 0")
    for i in graph.topo:
        for ln in _commit_block(graph.nodes[i], graph):
            lines.append("        " + ln)
    lines.append("        _ma(m)")
    lines.append("        cyc += 1")
    lines.append(f"        if not cyc & {FIRES_CHECK - 1}:")
    lines.append(f"            _fa(({fnames},))")
    lines.append(f"            if not cyc & {STATE_CHECK - 1}:")
    lines.append(f"                _sa(({unpack}))")
    lines.append("        if not m:")
    lines.append(f"            return 1, ({unpack})")
    lines.append(f"    return 0, ({unpack})")
    return "\n".join(lines) + "\n"


def compile_trace(graph: Graph):
    """exec() the generated kernel; returns the ``_trace`` callable."""
    ns = {}
    exec(compile(emit_trace(graph), "<fastpath-trace>", "exec"), ns)
    return ns["_trace"]

"""repro.fastpath — compiled vectorized kernel backend.

Captures a loaded configuration's dataflow graph into compile-time IR,
schedules it topologically, and executes whole slots/symbols per call
as batched NumPy int64 operations instead of object-at-a-time
plan/commit dispatch.  Results are bit-exact with the event and naive
schedulers.  Feedback rings compile too: each strongly-connected
component is lowered into a generated time-stepped *epoch kernel*
while the acyclic remainder keeps the whole-trace value pass.  Graphs
the compiler cannot prove (custom firing rules, RAM-backed objects,
fault taps) transparently fall back to the event scheduler with a
:class:`FastpathFallbackWarning` (deduplicated per netlist shape and
reason per process).  Compiled kernels are cached content-addressed —
in-process LRU plus an optional on-disk artifact store
(:mod:`repro.fastpath.cache`).

Use it either through the scheduler seam::

    from repro.xpp import Simulator, make_scheduler
    sim = Simulator(mgr, scheduler=make_scheduler("fastpath"))

or through the drop-in sibling of :func:`repro.xpp.execute`::

    from repro import fastpath
    result = fastpath.execute(build_cfg, data)
"""

from __future__ import annotations

from repro.fastpath.cache import (
    CACHE_DIR_ENV,
    CACHE_VERSION,
    clear_memory_cache,
    compile_graph,
    graph_fingerprint,
    warmup,
)
from repro.fastpath.capture import capture, capture_sets, check_runtime_state
from repro.fastpath.explain import CompileReport, ObjectVerdict, explain
from repro.fastpath.ir import (
    REASON_CODES,
    Edge,
    Graph,
    Node,
    UnsupportedGraphError,
)
from repro.fastpath.lower import (
    compile_epoch,
    compile_trace,
    emit_epoch,
    emit_trace,
    value_streams,
)
from repro.fastpath.runtime import (
    FastpathFallbackWarning,
    FastpathScheduler,
    TraceSession,
    reset_fallback_warnings,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_VERSION",
    "REASON_CODES",
    "CompileReport",
    "Edge",
    "FastpathFallbackWarning",
    "FastpathScheduler",
    "Graph",
    "Node",
    "ObjectVerdict",
    "TraceSession",
    "UnsupportedGraphError",
    "capture",
    "capture_sets",
    "check_runtime_state",
    "clear_memory_cache",
    "compile_epoch",
    "compile_graph",
    "compile_trace",
    "emit_epoch",
    "emit_trace",
    "execute",
    "explain",
    "graph_fingerprint",
    "reset_fallback_warnings",
    "value_streams",
    "warmup",
]


def execute(*args, **kwargs):
    """Run a configuration to completion on the fastpath backend.

    Same signature and semantics as :func:`repro.xpp.execute`, with the
    scheduler pinned to ``"fastpath"`` — bit-exact results, batched
    execution for compilable graphs, transparent fallback otherwise.
    """
    if "scheduler" in kwargs:
        raise TypeError(
            "fastpath.execute() pins scheduler='fastpath'; "
            "use repro.xpp.execute() to choose another backend")
    from repro.xpp.simulator import execute as _execute
    return _execute(*args, scheduler="fastpath", **kwargs)

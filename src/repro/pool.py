"""Shared worker-process lifecycle: spawn, watch, time out, retry.

Two subsystems run simulator work in child processes: the campaign
executor (:mod:`repro.campaign.pool` — one process per shard, one
result per process) and the session service (:mod:`repro.serve` —
long-lived shard workers hosting resident sessions).  Both need the
same machinery underneath:

* a deterministic multiprocessing context (``fork`` where available,
  ``spawn`` otherwise);
* a handle pairing a child process with its pipe, with deadline
  bookkeeping and a kill switch;
* dead-worker detection — a worker that *raises* reports the error
  over its pipe, one that *dies* (segfault, ``os._exit``, kill -9)
  is detected by the closed pipe (EOF), one that *hangs* past its
  deadline is terminated;
* retry with exponential backoff, and graceful degradation when the
  retry budget is exhausted.

:class:`RetryingTaskPool` packages the one-task-per-process pattern
(the campaign executor's engine); :class:`WorkerHandle` and
:func:`wait_workers` are the lower-level pieces the serve shard pool
builds its long-lived workers from.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
from typing import Callable, Optional

from multiprocessing.connection import wait as _conn_wait


def resolve_mp_context(name: Optional[str] = None):
    """A multiprocessing context: ``name`` if given, else ``fork``
    where the platform supports it (cheap, inherits the parent's
    loaded modules), else ``spawn``."""
    if name is None:
        name = "fork" if "fork" in multiprocessing.get_all_start_methods() \
            else "spawn"
    return multiprocessing.get_context(name)


def exp_backoff(base_s: float, attempt: int) -> float:
    """Delay before retry number ``attempt + 1`` (attempt 0 failed)."""
    return base_s * 2 ** attempt


class WorkerDied(Exception):
    """The worker's pipe closed without a payload (EOF)."""


class WorkerHandle:
    """One child process plus the pipe the parent talks to it over.

    ``meta`` is caller-owned context (a task, a shard index, ...).
    ``deadline`` is an absolute ``time.monotonic()`` limit or None;
    :meth:`expired` checks it.  The handle never *polls* liveness by
    itself — combine :func:`wait_workers` (readable pipes) with
    :meth:`recv`'s :class:`WorkerDied` to detect death, exactly like
    the campaign pool does.
    """

    __slots__ = ("proc", "conn", "meta", "deadline", "started")

    def __init__(self, proc, conn, *, meta=None,
                 deadline: Optional[float] = None):
        self.proc = proc
        self.conn = conn
        self.meta = meta
        self.deadline = deadline
        self.started = time.monotonic()

    @classmethod
    def spawn(cls, ctx, target: Callable, args: tuple = (), *, meta=None,
              timeout_s: Optional[float] = None,
              duplex: bool = False) -> "WorkerHandle":
        """Start ``target(child_conn, *args)`` in a child process.

        The child end of the pipe is the target's first argument and is
        closed in the parent, so a dead child reads as EOF here.
        ``duplex=True`` gives a two-way pipe for long-lived workers.
        """
        parent, child = ctx.Pipe(duplex=duplex)
        proc = ctx.Process(target=target, args=(child,) + tuple(args))
        proc.start()
        child.close()
        now = time.monotonic()
        deadline = now + timeout_s if timeout_s is not None else None
        return cls(proc, parent, meta=meta, deadline=deadline)

    # -- talking ------------------------------------------------------------

    def send(self, obj) -> None:
        self.conn.send(obj)

    def recv(self):
        """The next payload; raises :class:`WorkerDied` on EOF."""
        try:
            return self.conn.recv()
        except EOFError:
            raise WorkerDied(
                f"worker pid={self.proc.pid} died without a result") \
                from None

    def readable(self, timeout: float = 0.0) -> bool:
        return self.conn.poll(timeout)

    # -- lifecycle ----------------------------------------------------------

    def alive(self) -> bool:
        return self.proc.is_alive()

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline

    def rearm(self, timeout_s: Optional[float]) -> None:
        """Reset the deadline ``timeout_s`` from now (None disarms)."""
        self.deadline = time.monotonic() + timeout_s \
            if timeout_s is not None else None

    def join(self, timeout: Optional[float] = None) -> None:
        self.proc.join(timeout)

    def terminate(self) -> None:
        """Kill the worker and release the pipe (idempotent)."""
        try:
            self.proc.terminate()
        except Exception:
            pass
        self.proc.join()
        self.close()

    def close(self) -> None:
        try:
            self.conn.close()
        except Exception:
            pass


def wait_workers(handles, timeout: Optional[float] = None) -> list:
    """The handles whose pipe is readable (payload or EOF) within
    ``timeout`` seconds — the select() of the worker plane."""
    handles = list(handles)
    if not handles:
        return []
    ready = _conn_wait([h.conn for h in handles], timeout=timeout)
    return [h for h in handles if h.conn in ready]


# -- one task per process, with retries ----------------------------------------------


def _task_entry(conn, entry: Callable, task, attempt: int) -> None:
    """Worker-process body: run one task, ship the result back."""
    try:
        payload = (True, entry(task, attempt))
    except BaseException as exc:
        payload = (False, f"{type(exc).__name__}: {exc}")
    try:
        conn.send(payload)
    except Exception:
        pass
    finally:
        conn.close()


class RetryingTaskPool:
    """Deterministic process-per-task executor with retry/backoff.

    Runs ``entry(task, attempt)`` in a child process per task, at most
    ``workers`` alive at a time.  An attempt fails when the worker
    raises, dies (EOF) or outlives its deadline (terminated); failed
    attempts are retried with exponential backoff up to ``retries``
    times, then reported as exhausted — degradation is the caller's
    policy, never the pool's.

    The caller observes everything through hooks (all optional except
    ``on_success``/``on_exhausted``):

    ``should_skip(task)`` / ``on_skip(task)``
        Checked at launch time; a skipped task consumes no budget.
    ``on_start(task, attempt)``
        An attempt's process is about to start.
    ``on_success(task, attempt, payload, duration_s)``
        The task's result arrived.
    ``on_retry(task, attempt, reason)``
        The attempt failed and a retry is scheduled.
    ``on_exhausted(task, attempts, reason)``
        The retry budget ran out.

    Task accessors: ``task_order(task)`` must return a unique integer
    giving the deterministic launch order (ties are impossible by
    construction); ``task_timeout(task)`` an optional per-task deadline
    overriding the pool-wide ``timeout_s``.

    ``budget`` bounds how many tasks (successes + exhausted failures,
    launched or in flight) the call may consume — the campaign's
    ``--max-shards`` semantics.
    """

    def __init__(self, entry: Callable, *, workers: int, retries: int = 2,
                 backoff_s: float = 0.25, timeout_s: Optional[float] = None,
                 mp_context: Optional[str] = None, noun: str = "task",
                 task_order: Callable = lambda t: t.flat_index,
                 task_timeout: Callable = lambda t: getattr(
                     t, "timeout_s", None)):
        self.entry = entry
        self.workers = workers
        self.retries = retries
        self.backoff_s = backoff_s
        self.timeout_s = timeout_s
        self.ctx = resolve_mp_context(mp_context)
        self.noun = noun
        self.task_order = task_order
        self.task_timeout = task_timeout

    def _limit(self, task) -> Optional[float]:
        per_task = self.task_timeout(task)
        return per_task if per_task is not None else self.timeout_s

    def run(self, tasks, *, budget: Optional[int] = None,
            should_skip: Callable = lambda task: False,
            on_skip: Callable = lambda task: None,
            on_start: Callable = lambda task, attempt: None,
            on_success: Callable = lambda task, attempt, payload, dur: None,
            on_retry: Callable = lambda task, attempt, reason: None,
            on_exhausted: Callable = lambda task, attempts, reason: None,
            ) -> int:
        """Drive ``tasks`` to completion; returns tasks consumed."""
        # (not_before, order, task, attempt); order keeps heap order
        # total and deterministic
        ready = [(0.0, self.task_order(t), t, 0) for t in tasks]
        heapq.heapify(ready)
        active: dict = {}
        consumed = 0

        def budget_left() -> bool:
            return budget is None or consumed + len(active) < budget

        def fail_attempt(handle: WorkerHandle, reason: str) -> None:
            nonlocal consumed
            task, attempt = handle.meta
            if attempt < self.retries:
                on_retry(task, attempt, reason)
                not_before = time.monotonic() \
                    + exp_backoff(self.backoff_s, attempt)
                heapq.heappush(ready, (not_before, self.task_order(task),
                                       task, attempt + 1))
            else:
                on_exhausted(task, attempt + 1, reason)
                consumed += 1

        try:
            while ready or active:
                now = time.monotonic()
                # launch whatever is due and affordable
                while ready and len(active) < self.workers \
                        and ready[0][0] <= now:
                    if not budget_left():
                        break
                    _nb, order, task, attempt = heapq.heappop(ready)
                    if should_skip(task):
                        on_skip(task)
                        continue
                    on_start(task, attempt)
                    handle = WorkerHandle.spawn(
                        self.ctx, _task_entry, (self.entry, task, attempt),
                        meta=(task, attempt), timeout_s=self._limit(task))
                    active[order] = handle

                if not active:
                    if ready and budget_left():
                        # back off until the earliest retry is due
                        time.sleep(min(max(ready[0][0] - time.monotonic(),
                                           0.0), 0.1) or 0.001)
                        continue
                    break   # budget exhausted or nothing left

                timeout = 0.05
                if any(h.deadline is not None for h in active.values()):
                    soonest = min(h.deadline for h in active.values()
                                  if h.deadline is not None)
                    timeout = min(timeout,
                                  max(soonest - time.monotonic(), 0.0))
                readable = wait_workers(active.values(), timeout=timeout)

                now = time.monotonic()
                for order, handle in list(active.items()):
                    task, attempt = handle.meta
                    if handle in readable:
                        del active[order]
                        try:
                            ok, payload = handle.recv()
                        except WorkerDied:
                            ok, payload = False, \
                                "worker died without a result"
                        handle.close()
                        handle.join()
                        if ok:
                            on_success(task, attempt, payload,
                                       time.monotonic() - handle.started)
                            consumed += 1
                        else:
                            fail_attempt(handle, payload)
                    elif handle.expired(now):
                        del active[order]
                        handle.terminate()
                        limit = self._limit(task)
                        fail_attempt(handle, f"timeout: {self.noun} "
                                             f"exceeded {limit:g}s")
        finally:
            for handle in active.values():
                handle.terminate()
        return consumed

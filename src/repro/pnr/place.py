"""Deterministic placement of kernel graphs onto the array.

Placement is a pure function of the graph: the same graph always lands
on the same PAEs, so placements can be committed as golden artifacts
and compared structurally across refactors.

The strategy follows how the hand-wired kernels are laid out in
practice:

1. **Levelize.**  Collapse feedback loops (strongly connected
   components, found with an iterative Tarjan) into single
   super-nodes, then compute longest-path levels over the resulting
   DAG.  The level of a node is its pipeline depth from the inputs.
2. **Place ALU ops one column per level.**  Dataflow runs left to
   right across the array — level ℓ lands in column ℓ, mirroring the
   paper's Fig. 5/6 mappings — with rows staggered per level so
   consecutive producer/consumer pairs sit on a short diagonal instead
   of stacking every level's first node on row 0 (the horizontal leg
   of the Manhattan route burns tracks on the *source* row, so
   spreading source rows spreads track load).  Overfull levels and
   graphs deeper than the fabric spill deterministically to the
   nearest free slot.
3. **Place Mem and stream nodes on the nearer side.**  Each RAM-PAE
   goes to the column (col -1 or col 8) closer to the mean column of
   the ALUs it talks to; I/O streams likewise pick the closer edge.

The result is a :class:`Placement` of *hints*: at load time the
:class:`~repro.xpp.manager.ConfigurationManager` honours them when the
slot is free and silently falls back to first-fit when another
resident configuration already owns it (placement must never make a
load fail that first-fit would have satisfied).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xpp.array import XppArray

#: graph node kind -> array slot kind
KIND_TO_SLOT = {"op": "alu", "const": "alu", "in": "io", "out": "io",
                "mem": "ram"}


# -- strongly connected components -------------------------------------------------


def strongly_connected_components(names, adjacency):
    """Tarjan's SCC algorithm, iterative (graphs may be deep).

    ``names`` fixes the iteration order, so the result is deterministic:
    components come out in reverse topological order.
    """
    index: dict = {}
    low: dict = {}
    on_stack: set = set()
    stack: list = []
    components: list[list] = []
    counter = [0]

    for root in names:
        if root in index:
            continue
        # each work item: (node, iterator over successors)
        work = [(root, iter(adjacency.get(root, ())))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def levelize(graph):
    """Longest-path pipeline level per node, feedback loops collapsed.

    Returns ``(levels, sccs)`` where ``levels`` maps every node name to
    its depth (all members of a feedback loop share one level) and
    ``sccs`` is the list of non-trivial (cyclic) components — including
    single nodes with a self-loop.
    """
    names = [n.name for n in graph.nodes]
    known = set(names)
    adjacency: dict = {name: [] for name in names}
    self_loops = set()
    for e in graph.edges:
        if e.src.node in known and e.dst.node in known:
            adjacency[e.src.node].append(e.dst.node)
            if e.src.node == e.dst.node:
                self_loops.add(e.src.node)

    components = strongly_connected_components(names, adjacency)
    comp_of = {}
    for i, members in enumerate(components):
        for m in members:
            comp_of[m] = i

    # condensation edges; Tarjan emits components in reverse topological
    # order, so iterating components in reverse IS a topological order.
    comp_succ: dict = {i: set() for i in range(len(components))}
    for src, succs in adjacency.items():
        for dst in succs:
            if comp_of[src] != comp_of[dst]:
                comp_succ[comp_of[src]].add(comp_of[dst])

    comp_level = {i: 0 for i in range(len(components))}
    for i in range(len(components) - 1, -1, -1):
        for succ in comp_succ[i]:
            comp_level[succ] = max(comp_level[succ], comp_level[i] + 1)

    levels = {name: comp_level[comp_of[name]] for name in names}
    cyclic = [sorted(members) for members in components
              if len(members) > 1 or members[0] in self_loops]
    return levels, cyclic


# -- placement ---------------------------------------------------------------------


@dataclass
class Placement:
    """Where every node of a compiled kernel should land on the array.

    ``slots`` maps node name to ``(kind, row, col)``; ``levels`` records
    the pipeline depth the placer derived (kept for diagnostics and the
    golden artifacts — area/power accounting reads positions from here).
    """

    graph_name: str
    array_name: str
    slots: dict = field(default_factory=dict)
    levels: dict = field(default_factory=dict)

    def position(self, node_name: str):
        """``(row, col)`` of a placed node, or None if unknown."""
        entry = self.slots.get(node_name)
        if entry is None:
            return None
        return (entry[1], entry[2])

    def to_dict(self) -> dict:
        return {
            "graph": self.graph_name,
            "array": self.array_name,
            "slots": {name: {"kind": kind, "row": row, "col": col}
                      for name, (kind, row, col) in sorted(self.slots.items())},
            "levels": {name: level
                       for name, level in sorted(self.levels.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Placement":
        p = cls(graph_name=payload["graph"], array_name=payload["array"])
        for name, entry in payload["slots"].items():
            p.slots[name] = (entry["kind"], entry["row"], entry["col"])
        p.levels = {name: int(level)
                    for name, level in payload.get("levels", {}).items()}
        return p


def place(graph, array: XppArray = None) -> Placement:
    """Deterministically assign every node a physical slot.

    Assumes the graph already passed the legality checks (node counts
    within capacity); with more nodes than slots the surplus is simply
    not placed — :mod:`repro.pnr.check` reports that case as a
    capacity diagnostic before placement runs.
    """
    if array is None:
        array = XppArray()
    levels, _ = levelize(graph)
    placement = Placement(graph_name=graph.name, array_name=array.name,
                          levels=dict(levels))

    order = {n.name: i for i, n in enumerate(graph.nodes)}
    alus = [n for n in graph.nodes if KIND_TO_SLOT.get(n.kind) == "alu"]
    mems = [n for n in graph.nodes if KIND_TO_SLOT.get(n.kind) == "ram"]
    ios = [n for n in graph.nodes if KIND_TO_SLOT.get(n.kind) == "io"]

    # 1. ALUs: column = pipeline level, rows staggered by level so the
    # horizontal route legs (charged to the source row) spread out.
    rows, cols = array.alu_rows, array.alu_cols
    used: set = set()

    def take(pref_row: int, pref_col: int):
        for dc in range(cols):
            c = (pref_col + dc) % cols
            for dr in range(rows):
                r = (pref_row + dr) % rows
                if (r, c) not in used:
                    used.add((r, c))
                    return r, c
        return None

    by_level: dict = {}
    for node in sorted(alus, key=lambda n: (levels[n.name], order[n.name])):
        level = levels[node.name]
        idx = by_level.get(level, 0)
        by_level[level] = idx + 1
        pos = take((level + idx) % rows, level % cols)
        if pos is None:
            continue    # over capacity: reported by the checker, not here
        placement.slots[node.name] = ("alu", pos[0], pos[1])

    # 2./3. Mems and streams: pick the side nearer the placed ALU
    # neighbours, filling that side's rows top-down.
    def neighbour_cols(names: set) -> dict:
        found: dict = {name: [] for name in names}
        for e in graph.edges:
            for me, other in ((e.src.node, e.dst.node),
                              (e.dst.node, e.src.node)):
                if me in found:
                    pos = placement.position(other)
                    if pos is not None:
                        found[me].append(pos[1])
        return found

    for nodes, kind, left_col, right_col in (
            (mems, "ram", -1, array.alu_cols),
            (ios, "io", -2, array.alu_cols + 1)):
        pools = {side: sorted((s for s in array.slots[kind]
                               if s.col == side), key=lambda s: s.row)
                 for side in (left_col, right_col)}
        cols_of = neighbour_cols({n.name for n in nodes})
        for node in sorted(nodes, key=lambda n: order[n.name]):
            near = cols_of[node.name]
            mean_col = (sum(near) / len(near)) if near else 0.0
            side = left_col if mean_col < (array.alu_cols - 1) / 2 \
                else right_col
            other = right_col if side == left_col else left_col
            pool = pools[side] or pools[other]
            if not pool:
                continue    # over capacity: reported by the checker
            slot = pool.pop(0)
            placement.slots[node.name] = (slot.kind, slot.row, slot.col)

    return placement

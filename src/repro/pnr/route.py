"""Routing and FIFO-depth inference for placed kernel graphs.

Two concerns live here:

**Wire capacities.**  Every link needs at least the hardware slack of
:data:`~repro.xpp.port.DEFAULT_CAPACITY` (forward + shadow register);
the handshake protocol means tokens are never lost regardless of
capacity — a shallow FIFO only stalls the producer, it cannot
overflow.  Inference therefore defaults every unannotated edge to the
hardware slack and honours explicit ``capacity=`` annotations verbatim
(they are register-balancing decisions, e.g. the despreader's depth-8
select wires).  ``balance=True`` additionally grants reconvergent
edges extra slack for the pipeline-level skew between their endpoints,
which shortens warm-up stalls on wide graphs.

**Track accounting.**  The placed graph is routed with the same
Manhattan L-path model the :class:`~repro.xpp.router.Router` applies
at load time, and rows/columns whose segment usage exceeds the track
capacity are reported as ``routing-tracks`` diagnostics (all of them,
not just the first).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pnr.diag import PNR_ROUTING_TRACKS, Diagnostic
from repro.pnr.place import levelize
from repro.xpp.port import DEFAULT_CAPACITY
from repro.xpp.router import Router


def infer_capacities(graph, *, balance: bool = False) -> dict:
    """Wire capacity per edge, keyed by edge label.

    Explicit annotations pass through untouched; unannotated edges get
    the hardware default, plus — with ``balance=True`` — one extra
    register per pipeline level the edge skips across, so tokens on a
    short reconvergent path don't stall its producer while the long
    path fills.
    """
    levels, _ = levelize(graph) if balance else ({}, None)
    caps: dict = {}
    for edge in graph.edges:
        if edge.capacity is not None:
            caps[edge.label] = edge.capacity
            continue
        slack = DEFAULT_CAPACITY
        if balance:
            skew = (levels.get(edge.dst.node, 0)
                    - levels.get(edge.src.node, 0) - 1)
            slack += max(0, skew)
        caps[edge.label] = slack
    return caps


@dataclass
class RoutingResult:
    """Per-edge Manhattan lengths plus aggregate track usage."""

    lengths: dict = field(default_factory=dict)
    total_segments: int = 0
    max_row_utilization: float = 0.0
    max_col_utilization: float = 0.0

    def to_dict(self) -> dict:
        return {
            "lengths": dict(sorted(self.lengths.items())),
            "total_segments": self.total_segments,
            "max_row_utilization": round(self.max_row_utilization, 4),
            "max_col_utilization": round(self.max_col_utilization, 4),
        }


def route_placement(graph, placement, *, tracks_per_row: int = None,
                    tracks_per_col: int = None):
    """Route every edge over the placement; returns
    ``(RoutingResult, diagnostics)`` with one ``routing-tracks``
    diagnostic per exhausted row/column."""
    router_kw = {}
    if tracks_per_row is not None:
        router_kw["tracks_per_row"] = tracks_per_row
    if tracks_per_col is not None:
        router_kw["tracks_per_col"] = tracks_per_col
    router = Router(**router_kw)     # non-strict: account first, judge after

    result = RoutingResult()
    for i, edge in enumerate(graph.edges):
        # distinct key per edge: parallel edges must each burn tracks
        length = router.route(f"{i}:{edge.label}",
                              placement.position(edge.src.node),
                              placement.position(edge.dst.node))
        result.lengths[edge.label] = length
    util = router.utilization()
    result.total_segments = util["total_segments"]
    result.max_row_utilization = util["max_row_utilization"]
    result.max_col_utilization = util["max_col_utilization"]

    diags = []
    for row, used in sorted(router.row_usage.items()):
        if used > router.tracks_per_row:
            diags.append(Diagnostic(
                PNR_ROUTING_TRACKS,
                f"row {row} needs {used} horizontal segments, has "
                f"{router.tracks_per_row} tracks"))
    for col, used in sorted(router.col_usage.items()):
        if used > router.tracks_per_col:
            diags.append(Diagnostic(
                PNR_ROUTING_TRACKS,
                f"column {col} needs {used} vertical segments, has "
                f"{router.tracks_per_col} tracks"))
    return result, diags

"""The kernel DSL: declarative operator graphs for the array.

A :class:`KernelGraph` describes a kernel the way the paper's Fig. 5/6
schematics do — operators and the streams between them — in about a
page of Python, without touching placement, wiring or the simulator:

    g = KernelGraph("descrambler")
    code = g.stream_in("code")
    data = g.stream_in("data", bits=24)
    lut  = g.op("LUT", name="code_mux", table=[...])
    cmul = g.op("CMUL", name="descramble_mul", shift=1)
    out  = g.stream_out("out")
    g.connect(code, lut)
    g.connect(lut, cmul["b"])
    g.connect(data, cmul["a"])
    g.connect(cmul, out)

Node kinds:

* ``op``    — one ALU-PAE operation, any opcode of
  :func:`repro.xpp.alu.opcodes` with its constructor parameters;
* ``const`` — sugar for an ``op`` running ``CONST`` (a PAE register
  constant generator);
* ``in`` / ``out`` — external streams (I/O channels), 12/12-bit packed
  complex or 24-bit scalar via ``bits``;
* ``mem``   — a RAM-PAE, ``mode="ram"`` or ``mode="fifo"``.

Building never raises: all validation happens in the compiler
(:mod:`repro.pnr.check`), which reports *every* problem as coded
diagnostics — so hostile graphs loaded from JSON corpora flow through
the same path as hand-written ones.  ``to_dict``/``from_dict`` give a
stable JSON form used by the fuzz corpus and the golden artifacts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.pnr.diag import PNR_MALFORMED, Diagnostic, PnrError

#: node kinds a graph may contain
NODE_KINDS = ("op", "const", "in", "out", "mem")

_PORT_INDEX_RE = re.compile(r"(?:in|out)(\d+)$")


def port_key(token: Any):
    """Normalise a port reference: ints pass through, ``in0``/``out2``
    style names become indices, anything else is a port name."""
    if isinstance(token, bool):
        return int(token)
    if isinstance(token, int):
        return token
    if isinstance(token, str):
        m = _PORT_INDEX_RE.fullmatch(token)
        if m:
            return int(m.group(1))
        if token.isdigit():
            return int(token)
    return token


@dataclass(frozen=True)
class PortRef:
    """A ``node.port`` endpoint reference (port by index or name)."""

    node: str
    port: Any = 0

    def __str__(self) -> str:
        return f"{self.node}.{self.port}"


class NodeRef:
    """Handle returned by the builder methods; indexable by port."""

    __slots__ = ("graph", "name")

    def __init__(self, graph: "KernelGraph", name: str):
        self.graph = graph
        self.name = name

    def __getitem__(self, port) -> PortRef:
        return PortRef(self.name, port_key(port))

    def port(self, port) -> PortRef:
        return self[port]

    def __repr__(self) -> str:   # pragma: no cover - debug aid
        return f"<NodeRef {self.name}>"


@dataclass
class Node:
    """One declarative node: kind, name, opcode (ops only), parameters."""

    kind: str
    name: str
    opcode: Optional[str] = None
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        d: dict = {"kind": self.kind, "name": self.name}
        if self.opcode is not None:
            d["opcode"] = self.opcode
        if self.params:
            d["params"] = dict(self.params)
        return d


@dataclass
class Edge:
    """A directed connection ``src.port -> dst.port``.

    ``capacity=None`` means "infer": the router assigns the hardware
    default slack (or balanced slack, see
    :func:`repro.pnr.route.infer_capacities`).  An explicit capacity is
    a register-balancing annotation and is honoured verbatim.
    """

    src: PortRef
    dst: PortRef
    capacity: Optional[int] = None

    @property
    def label(self) -> str:
        return f"{self.src}->{self.dst}"

    def to_dict(self) -> dict:
        d: dict = {"src": str(self.src), "dst": str(self.dst)}
        if self.capacity is not None:
            d["capacity"] = self.capacity
        return d


class KernelGraph:
    """A named operator graph, the unit the compiler consumes."""

    def __init__(self, name: str):
        self.name = str(name)
        self.nodes: list[Node] = []
        self.edges: list[Edge] = []
        self._auto = 0

    # -- builder API -----------------------------------------------------------

    def _name(self, prefix: str, name: Optional[str]) -> str:
        if name is not None:
            return str(name)
        self._auto += 1
        return f"{prefix}{self._auto}"

    def _add(self, kind: str, name: str, opcode: Optional[str] = None,
             **params) -> NodeRef:
        self.nodes.append(Node(kind=kind, name=name, opcode=opcode,
                               params=params))
        return NodeRef(self, name)

    def op(self, opcode: str, name: Optional[str] = None, **params) -> NodeRef:
        """An ALU-PAE operation by opcode name."""
        return self._add("op", self._name(str(opcode).lower(), name),
                         opcode=str(opcode), **params)

    def const(self, value: int, name: Optional[str] = None,
              **params) -> NodeRef:
        """A constant generator (an ALU-PAE register constant)."""
        return self._add("const", self._name("const", name),
                         opcode="CONST", value=value, **params)

    def stream_in(self, name: str, *, bits: int = 24) -> NodeRef:
        """An external input stream (I/O channel)."""
        return self._add("in", str(name), bits=bits)

    def stream_out(self, name: str, *,
                   expect: Optional[int] = None) -> NodeRef:
        """An external output stream (I/O channel)."""
        params = {} if expect is None else {"expect": expect}
        return self._add("out", str(name), **params)

    def mem(self, name: Optional[str] = None, *, mode: str = "fifo",
            **params) -> NodeRef:
        """A RAM-PAE: ``mode="fifo"`` (depth/preload/circular) or
        ``mode="ram"`` (words/preload)."""
        return self._add("mem", self._name(mode, name), mode=mode, **params)

    def connect(self, src, dst, *, capacity: Optional[int] = None) -> Edge:
        """Connect two endpoints; a bare :class:`NodeRef` means port 0."""
        edge = Edge(src=self._endpoint(src), dst=self._endpoint(dst),
                    capacity=capacity)
        self.edges.append(edge)
        return edge

    def chain(self, *refs, capacity: Optional[int] = None) -> None:
        """Connect ``refs[i] -> refs[i+1]`` along the list (port 0)."""
        for a, b in zip(refs, refs[1:]):
            self.connect(a, b, capacity=capacity)

    @staticmethod
    def _endpoint(ref) -> PortRef:
        if isinstance(ref, PortRef):
            return ref
        if isinstance(ref, NodeRef):
            return PortRef(ref.name, 0)
        if isinstance(ref, str):
            node, _, port = ref.partition(".")
            return PortRef(node, port_key(port) if port else 0)
        raise TypeError(f"not a node or port reference: {ref!r}")

    def node(self, name: str) -> Node:
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(f"{self.name}: no node named {name!r}")

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "nodes": [n.to_dict() for n in self.nodes],
            "edges": [e.to_dict() for e in self.edges],
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "KernelGraph":
        """Rebuild a graph from its JSON form.

        Tolerates hostile payloads: any structural problem raises
        :class:`PnrError` with a ``malformed-graph`` diagnostic —
        semantic problems (unknown opcodes, bad parameters ...) are
        left for the compiler so corpus entries exercise the checker.
        """
        def bad(msg: str) -> PnrError:
            return PnrError([Diagnostic(PNR_MALFORMED, msg)])

        if not isinstance(payload, dict):
            raise bad(f"graph payload must be an object, "
                      f"got {type(payload).__name__}")
        name = payload.get("name", "graph")
        if not isinstance(name, str):
            raise bad("graph name must be a string")
        g = cls(name)
        nodes = payload.get("nodes", [])
        edges = payload.get("edges", [])
        if not isinstance(nodes, list) or not isinstance(edges, list):
            raise bad("nodes/edges must be lists")
        for entry in nodes:
            if not isinstance(entry, dict):
                raise bad(f"node entry must be an object: {entry!r}")
            kind = entry.get("kind")
            nname = entry.get("name")
            if kind not in NODE_KINDS:
                raise bad(f"unknown node kind {kind!r}")
            if not isinstance(nname, str) or not nname:
                raise bad(f"node name must be a non-empty string: {nname!r}")
            params = entry.get("params", {})
            if not isinstance(params, dict) or \
                    not all(isinstance(k, str) for k in params):
                raise bad(f"params of {nname!r} must be a string-keyed "
                          f"object")
            opcode = entry.get("opcode")
            if kind in ("op", "const") and not isinstance(opcode, str):
                raise bad(f"node {nname!r} needs a string opcode")
            g.nodes.append(Node(kind=kind, name=nname, opcode=opcode,
                                params=dict(params)))
        for entry in edges:
            if not isinstance(entry, dict):
                raise bad(f"edge entry must be an object: {entry!r}")
            src, dst = entry.get("src"), entry.get("dst")
            if not isinstance(src, str) or not isinstance(dst, str):
                raise bad(f"edge endpoints must be strings: {entry!r}")
            cap = entry.get("capacity")
            if cap is not None and (isinstance(cap, bool)
                                    or not isinstance(cap, int)):
                raise bad(f"edge capacity must be an integer: {entry!r}")
            g.edges.append(Edge(src=cls._parse_endpoint(src),
                                dst=cls._parse_endpoint(dst),
                                capacity=cap))
        return g

    @staticmethod
    def _parse_endpoint(text: str) -> PortRef:
        node, sep, port = text.rpartition(".")
        if not sep:
            return PortRef(text, 0)
        return PortRef(node, port_key(port))

    def __repr__(self) -> str:   # pragma: no cover - debug aid
        return (f"<KernelGraph {self.name!r} {len(self.nodes)} nodes "
                f"{len(self.edges)} edges>")

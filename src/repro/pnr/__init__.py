"""Kernel DSL + place-and-route compiler for the array (ROADMAP item 2).

The paper's design-productivity claim is that kernels are *mapped*,
not hand-wired.  This package closes that gap for the reproduction:

* :mod:`repro.pnr.graph` — a declarative operator-graph DSL
  (:class:`KernelGraph`: ``op`` / ``const`` / ``stream_in`` /
  ``stream_out`` / ``mem`` nodes over the existing ALU opcode table);
* :mod:`repro.pnr.check` — legality checks against the fabric, every
  problem a coded :class:`Diagnostic`;
* :mod:`repro.pnr.place` — deterministic levelized placement onto the
  8x8 ALU fabric + RAM columns;
* :mod:`repro.pnr.route` — Manhattan track accounting and FIFO-depth
  (wire capacity) inference;
* :mod:`repro.pnr.compile` — the pipeline, emitting the exact
  :class:`~repro.xpp.config.Configuration` objects the
  :class:`~repro.xpp.manager.ConfigurationManager` loads.

``python -m repro.pnr compile`` wraps the pipeline for the command
line; :mod:`repro.kernels.dsl` re-expresses the descrambler and
despreader in the DSL, conformance-tested bit-exact against the
hand-wired configurations.
"""

from repro.pnr.compile import (
    CompiledKernel,
    PnrReport,
    compile_graph,
    emit_config,
    report_graph,
)
from repro.pnr.check import lint
from repro.pnr.diag import PNR_CODES, Diagnostic, PnrError
from repro.pnr.graph import Edge, KernelGraph, Node, NodeRef, PortRef
from repro.pnr.place import Placement, levelize, place
from repro.pnr.route import RoutingResult, infer_capacities, route_placement

__all__ = [
    "CompiledKernel",
    "Diagnostic",
    "Edge",
    "KernelGraph",
    "Node",
    "NodeRef",
    "PNR_CODES",
    "Placement",
    "PnrError",
    "PnrReport",
    "PortRef",
    "RoutingResult",
    "compile_graph",
    "emit_config",
    "infer_capacities",
    "levelize",
    "lint",
    "place",
    "report_graph",
    "route_placement",
]

"""Coded compile diagnostics for the place-and-route pipeline.

Every way a kernel graph can be rejected has a stable machine-readable
code, mirroring the reason codes of :mod:`repro.fastpath.explain`: a
tool (or a test) branches on ``diag.code``, a human reads
``diag.message``.  The compiler front end (:mod:`repro.pnr.check`)
collects *all* diagnostics for a graph instead of stopping at the
first, so one compile run reports every legality problem at once; the
fuzz contract is that a hostile graph always surfaces as a
:class:`PnrError` carrying coded diagnostics, never as a crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.xpp.errors import XppError

# -- the diagnostic vocabulary ------------------------------------------------------

#: the graph payload is not structurally a graph (bad JSON shapes ...)
PNR_MALFORMED = "malformed-graph"
#: an Op/Const node names an opcode outside :func:`repro.xpp.alu.opcodes`
PNR_UNKNOWN_OPCODE = "unknown-opcode"
#: node parameters were rejected by the object constructor
PNR_BAD_PARAMS = "bad-params"
#: two nodes share a name
PNR_DUPLICATE_NODE = "duplicate-node"
#: an edge references a node that does not exist
PNR_UNKNOWN_NODE = "unknown-node"
#: an edge references a port its endpoint does not have
PNR_UNKNOWN_PORT = "unknown-port"
#: two edges drive the same input port
PNR_DOUBLE_DRIVEN = "double-driven-input"
#: an input the firing rule waits on is unconnected
PNR_UNDRIVEN_INPUT = "undriven-input"
#: producer and consumer disagree on the token width (12/24-bit rule)
PNR_WIDTH_MISMATCH = "width-mismatch"
#: an explicit wire capacity below the hardware minimum of 1
PNR_WIRE_CAPACITY = "wire-capacity"
#: a Mem node larger than one RAM-PAE (512 words)
PNR_RAM_WORDS = "ram-words"
#: more ALU ops than the fabric has ALU-PAEs
PNR_ALU_CAPACITY = "alu-capacity"
#: more Mem nodes than RAM-PAEs in the side columns
PNR_RAM_CAPACITY = "ram-capacity"
#: more streams than I/O channels
PNR_IO_CAPACITY = "io-capacity"
#: a feedback cycle with no initial token (REG init / FIFO preload)
PNR_DEADLOCK_CYCLE = "deadlock-cycle"
#: routing tracks of a row/column exhausted by the placement
PNR_ROUTING_TRACKS = "routing-tracks"
#: the graph has no nodes at all
PNR_EMPTY_GRAPH = "empty-graph"

#: every code the pipeline can emit, with the one-line description the
#: CLI and docs table print
CODE_DESCRIPTIONS = {
    PNR_MALFORMED: "graph payload is not structurally a graph",
    PNR_UNKNOWN_OPCODE: "op names an opcode outside the ALU opcode table",
    PNR_BAD_PARAMS: "node parameters rejected by the object constructor",
    PNR_DUPLICATE_NODE: "two nodes share a name",
    PNR_UNKNOWN_NODE: "edge references a node that does not exist",
    PNR_UNKNOWN_PORT: "edge references a port its endpoint does not have",
    PNR_DOUBLE_DRIVEN: "two edges drive the same input port",
    PNR_UNDRIVEN_INPUT: "an input the firing rule waits on is unconnected",
    PNR_WIDTH_MISMATCH: "producer and consumer disagree on token width",
    PNR_WIRE_CAPACITY: "explicit wire capacity below the hardware minimum",
    PNR_RAM_WORDS: "Mem node larger than one RAM-PAE (512 words)",
    PNR_ALU_CAPACITY: "more ALU ops than the fabric has ALU-PAEs",
    PNR_RAM_CAPACITY: "more Mem nodes than RAM-PAEs in the side columns",
    PNR_IO_CAPACITY: "more streams than I/O channels",
    PNR_DEADLOCK_CYCLE: "feedback loop with no initial token",
    PNR_ROUTING_TRACKS: "row/column routing tracks exhausted",
    PNR_EMPTY_GRAPH: "graph has no nodes",
}

PNR_CODES = tuple(CODE_DESCRIPTIONS)


@dataclass
class Diagnostic:
    """One legality problem, attributed to a node or edge when known."""

    code: str
    message: str
    node: Optional[str] = None      # offending node name
    edge: Optional[str] = None      # offending edge as "src.port->dst.port"

    def to_dict(self) -> dict:
        d = {"code": self.code, "message": self.message}
        if self.node is not None:
            d["node"] = self.node
        if self.edge is not None:
            d["edge"] = self.edge
        return d

    def __str__(self) -> str:
        where = self.node or self.edge
        loc = f" at {where}" if where else ""
        return f"[{self.code}]{loc}: {self.message}"


class PnrError(XppError):
    """A kernel graph failed to compile.

    Carries the full diagnostic list; ``codes`` is the sorted set of
    distinct codes for quick assertions and tooling.
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        self.report = None      # attached by the compile pipeline
        if not self.diagnostics:    # defensive: an empty rejection is a bug
            self.diagnostics = [Diagnostic(PNR_MALFORMED, "unspecified")]
        summary = "; ".join(str(d) for d in self.diagnostics[:4])
        extra = len(self.diagnostics) - 4
        if extra > 0:
            summary += f" (+{extra} more)"
        super().__init__(f"graph does not compile: {summary}")

    @property
    def codes(self) -> list:
        return sorted({d.code for d in self.diagnostics})

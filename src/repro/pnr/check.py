"""Legality checking: every way a graph can fail to map, as coded diagnostics.

``lint`` is the compiler front end.  It instantiates a prototype array
object for every node (the same constructors the hand-wired kernels
use, so parameter validation is *exactly* the hardware model's), then
checks the graph against the fabric:

* node level    — opcode known, constructor accepts the parameters,
  names unique, RAM sizes within one RAM-PAE;
* edge level    — endpoints exist, ports exist, one driver per input,
  producer/consumer token widths agree, capacities >= 1;
* graph level   — inputs the firing rules wait on are driven, node
  counts fit the array, every feedback loop carries an initial token
  (a REG init or FIFO preload) so it cannot deadlock.

All problems are collected — one compile reports everything at once —
and the prototypes are returned so the emitter can reuse them as the
real configuration objects.
"""

from __future__ import annotations

from repro.pnr import diag as d
from repro.pnr.diag import Diagnostic
from repro.pnr.place import levelize
from repro.xpp.alu import BinaryAlu, Reg, make_alu, opcodes
from repro.xpp.array import XppArray
from repro.xpp.errors import ConfigurationError
from repro.xpp.io import StreamSink, StreamSource
from repro.xpp.ram import RAM_WORDS, FifoPae, RamPae

#: exceptions a constructor may raise on bad parameters; anything else
#: is a genuine bug and propagates (the fuzz contract covers these).
_CTOR_ERRORS = (ConfigurationError, TypeError, ValueError, OverflowError)


def _instantiate(node, diags: list):
    """Build the prototype object for a node, or None + diagnostics."""
    params = dict(node.params)
    if node.kind in ("op", "const"):
        if node.opcode not in opcodes():
            diags.append(Diagnostic(
                d.PNR_UNKNOWN_OPCODE, f"no such opcode {node.opcode!r}",
                node=node.name))
            return None
        try:
            return make_alu(node.name, node.opcode, **params)
        except _CTOR_ERRORS as exc:
            diags.append(Diagnostic(
                d.PNR_BAD_PARAMS,
                f"{node.opcode} rejected parameters {params!r}: {exc}",
                node=node.name))
            return None
    if node.kind == "in":
        try:
            return StreamSource(node.name, None, **params)
        except _CTOR_ERRORS as exc:
            diags.append(Diagnostic(
                d.PNR_BAD_PARAMS, f"stream rejected {params!r}: {exc}",
                node=node.name))
            return None
    if node.kind == "out":
        try:
            return StreamSink(node.name, **params)
        except _CTOR_ERRORS as exc:
            diags.append(Diagnostic(
                d.PNR_BAD_PARAMS, f"stream rejected {params!r}: {exc}",
                node=node.name))
            return None
    if node.kind == "mem":
        mode = params.pop("mode", "fifo")
        size_key = {"ram": "words", "fifo": "depth"}.get(mode)
        if size_key is None:
            diags.append(Diagnostic(
                d.PNR_BAD_PARAMS, f"mem mode must be 'ram' or 'fifo', "
                f"got {mode!r}", node=node.name))
            return None
        size = params.get(size_key, RAM_WORDS)
        if isinstance(size, int) and not isinstance(size, bool) \
                and not 1 <= size <= RAM_WORDS:
            diags.append(Diagnostic(
                d.PNR_RAM_WORDS,
                f"{size_key}={size} does not fit one RAM-PAE "
                f"(1..{RAM_WORDS} words)", node=node.name))
            params.pop(size_key)    # keep a prototype for port checks
        cls = RamPae if mode == "ram" else FifoPae
        try:
            return cls(node.name, **params)
        except _CTOR_ERRORS as exc:
            diags.append(Diagnostic(
                d.PNR_BAD_PARAMS, f"{mode} rejected {params!r}: {exc}",
                node=node.name))
            return None
    # unreachable via the builder / from_dict, defensive for direct use
    diags.append(Diagnostic(d.PNR_MALFORMED,
                            f"unknown node kind {node.kind!r}",
                            node=node.name))
    return None


def _has_initial_token(proto) -> bool:
    """Does this object inject a token before consuming one?  (What
    breaks the chicken-and-egg deadlock of a feedback loop.)"""
    if isinstance(proto, FifoPae):
        return len(proto) > 0
    if isinstance(proto, Reg):
        return len(proto.init) > 0
    return False


def lint(graph, array: XppArray = None):
    """Check a graph against the fabric.

    Returns ``(protos, diagnostics)`` where ``protos`` maps node name to
    its prototype array object (only nodes that instantiated cleanly)
    and ``diagnostics`` lists every legality problem found.  Never
    raises on graph content — the caller decides whether diagnostics
    are fatal.
    """
    if array is None:
        array = XppArray()
    diags: list[Diagnostic] = []

    if not graph.nodes:
        diags.append(Diagnostic(d.PNR_EMPTY_GRAPH, "graph has no nodes"))
        return {}, diags

    # -- nodes -----------------------------------------------------------------
    protos: dict = {}
    seen: set = set()
    for node in graph.nodes:
        if node.name in seen:
            diags.append(Diagnostic(
                d.PNR_DUPLICATE_NODE,
                f"node name {node.name!r} used more than once",
                node=node.name))
            continue
        seen.add(node.name)
        proto = _instantiate(node, diags)
        if proto is not None:
            protos[node.name] = proto

    # -- resource capacity ------------------------------------------------------
    demand = {"alu": 0, "ram": 0, "io": 0}
    for node in graph.nodes:
        kind = {"op": "alu", "const": "alu", "mem": "ram",
                "in": "io", "out": "io"}.get(node.kind)
        if kind:
            demand[kind] += 1
    for kind, code, what in (("alu", d.PNR_ALU_CAPACITY, "ALU-PAEs"),
                             ("ram", d.PNR_RAM_CAPACITY, "RAM-PAEs"),
                             ("io", d.PNR_IO_CAPACITY, "I/O channels")):
        if demand[kind] > array.capacity(kind):
            diags.append(Diagnostic(
                code, f"graph needs {demand[kind]} {what}, "
                f"{array.name} has {array.capacity(kind)}"))

    # -- edges -----------------------------------------------------------------
    driven: dict = {}     # (node, input index) -> first driving edge label
    for edge in graph.edges:
        ok = True
        for end, role in ((edge.src, "source"), (edge.dst, "dest")):
            if end.node not in protos:
                ok = False
                if not any(n.name == end.node for n in graph.nodes):
                    diags.append(Diagnostic(
                        d.PNR_UNKNOWN_NODE,
                        f"edge {role} references unknown node "
                        f"{end.node!r}", edge=edge.label))
                # node exists but failed to instantiate: already reported
        if edge.capacity is not None and edge.capacity < 1:
            diags.append(Diagnostic(
                d.PNR_WIRE_CAPACITY,
                f"capacity {edge.capacity} below the hardware minimum "
                f"of 1 token register", edge=edge.label))
        if not ok:
            continue
        src_proto, dst_proto = protos[edge.src.node], protos[edge.dst.node]
        try:
            src_proto.out_port(edge.src.port)
        except KeyError:
            diags.append(Diagnostic(
                d.PNR_UNKNOWN_PORT,
                f"{edge.src.node} has no output port {edge.src.port!r}",
                edge=edge.label))
            ok = False
        try:
            in_port = dst_proto.in_port(edge.dst.port)
        except KeyError:
            diags.append(Diagnostic(
                d.PNR_UNKNOWN_PORT,
                f"{edge.dst.node} has no input port {edge.dst.port!r}",
                edge=edge.label))
            ok = False
        if not ok:
            continue
        in_idx = next(i for i, p in enumerate(dst_proto.inputs)
                      if p is in_port)
        key = (edge.dst.node, in_idx)
        if key in driven:
            diags.append(Diagnostic(
                d.PNR_DOUBLE_DRIVEN,
                f"{edge.dst.node}.{in_port.name or in_idx} already driven "
                f"by {driven[key]}", edge=edge.label))
        else:
            driven[key] = edge.label
        src_bits = getattr(src_proto, "bits", None)
        dst_bits = getattr(dst_proto, "bits", None)
        if src_bits is not None and dst_bits is not None \
                and src_bits != dst_bits:
            diags.append(Diagnostic(
                d.PNR_WIDTH_MISMATCH,
                f"{edge.src.node} produces {src_bits}-bit tokens, "
                f"{edge.dst.node} consumes {dst_bits}-bit tokens",
                edge=edge.label))

    # -- undriven inputs (mirrors Configuration.validate) ------------------------
    for node in graph.nodes:
        proto = protos.get(node.name)
        if proto is None or isinstance(proto, (RamPae, FifoPae)):
            continue    # RAM/FIFO ports are optional by design
        if isinstance(proto, StreamSource):
            continue
        for i, port in enumerate(proto.inputs):
            if (node.name, i) in driven:
                continue
            if isinstance(proto, BinaryAlu) and port.name == "b" \
                    and proto.const is not None:
                continue    # register constant stands in for input b
            diags.append(Diagnostic(
                d.PNR_UNDRIVEN_INPUT,
                f"input {port.name or i} is unconnected but the firing "
                f"rule waits on it", node=node.name))

    # -- feedback loops must carry an initial token ------------------------------
    _, cyclic = levelize(graph)
    for members in cyclic:
        if not any(_has_initial_token(protos[m]) for m in members
                   if m in protos):
            diags.append(Diagnostic(
                d.PNR_DEADLOCK_CYCLE,
                f"feedback loop {{{', '.join(members)}}} has no initial "
                f"token (REG init or FIFO preload) and can never fire"))

    return protos, diags

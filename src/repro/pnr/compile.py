"""The compile pipeline: lint -> place -> route -> emit.

:func:`compile_graph` turns a :class:`~repro.pnr.graph.KernelGraph`
into exactly what the hand-wired kernels produce — a
:class:`~repro.xpp.config.Configuration` the
:class:`~repro.xpp.manager.ConfigurationManager` loads unmodified —
plus the placement plan and a structured :class:`PnrReport`
(the place-and-route sibling of
:class:`repro.fastpath.explain.CompileReport`).

An illegal graph raises :class:`~repro.pnr.diag.PnrError` carrying
*every* diagnostic the checker found; :func:`report_graph` runs the
same pipeline without raising, for tooling and the
``python -m repro.pnr`` CLI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.pnr.check import lint
from repro.pnr.diag import PnrError
from repro.pnr.graph import KernelGraph
from repro.pnr.place import Placement, place
from repro.pnr.route import RoutingResult, infer_capacities, route_placement
from repro.xpp.array import XppArray
from repro.xpp.config import Configuration


@dataclass
class PnrReport:
    """Structured result of one compile (or :func:`report_graph` dry run)."""

    graph_name: str
    ok: bool = False
    diagnostics: list = field(default_factory=list)
    resources: dict = field(default_factory=dict)   # kind -> node count
    n_nodes: int = 0
    n_edges: int = 0
    levels: int = 0                 # pipeline depth of the placed graph
    capacities: dict = field(default_factory=dict)  # edge label -> tokens
    routing: Optional[RoutingResult] = None
    timings_s: dict = field(default_factory=dict)   # phase -> seconds

    @property
    def codes(self) -> list:
        """Distinct diagnostic codes, sorted (empty when ok)."""
        return sorted({d.code for d in self.diagnostics})

    def to_dict(self) -> dict:
        return {
            "graph": self.graph_name,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "codes": self.codes,
            "resources": dict(sorted(self.resources.items())),
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "levels": self.levels,
            "capacities": dict(sorted(self.capacities.items())),
            "routing": self.routing.to_dict() if self.routing else None,
            "timings_s": {k: round(v, 6) for k, v in self.timings_s.items()},
        }

    def render(self) -> str:
        """One-screen human rendering, explain-style."""
        verdict = "compiles" if self.ok else \
            f"rejected [{', '.join(self.codes)}]"
        lines = [f"pnr compile: {self.graph_name} {verdict}"]
        res = ", ".join(f"{k}×{n}" for k, n in sorted(self.resources.items()))
        lines.append(f"  graph: {self.n_nodes} nodes, {self.n_edges} edges"
                     + (f" ({res})" if res else ""))
        for d in self.diagnostics:
            lines.append(f"  {d}")
        if self.ok and self.routing is not None:
            lines.append(
                f"  placed: {self.levels} pipeline levels, "
                f"{self.routing.total_segments} route segments, "
                f"track use {self.routing.max_row_utilization:.0%} row / "
                f"{self.routing.max_col_utilization:.0%} col")
            deep = {label: c for label, c in self.capacities.items() if c > 2}
            if deep:
                regs = ", ".join(f"{label} = {c}"
                                 for label, c in sorted(deep.items()))
                lines.append(f"  deep FIFOs: {regs}")
        if self.timings_s:
            per = ", ".join(f"{k} {v * 1e3:.2f}ms"
                            for k, v in sorted(self.timings_s.items()))
            lines.append(f"  phases: {per}")
        return "\n".join(lines)


@dataclass
class CompiledKernel:
    """Everything one compile produced."""

    graph: KernelGraph
    config: Configuration
    placement: Placement
    report: PnrReport


def emit_config(graph: KernelGraph, protos: dict,
                capacities: dict) -> Configuration:
    """Lower a linted graph to a runnable Configuration.

    Reuses the checker's prototype objects directly — they were built
    by the exact constructors the hand-wired kernels call, never fired,
    and carry the node's name — so a DSL kernel's objects are
    indistinguishable from hand-wired ones.
    """
    cfg = Configuration(graph.name)
    for node in graph.nodes:        # declaration order == load claim order
        cfg.add(protos[node.name])
    for edge in graph.edges:
        cfg.connect(protos[edge.src.node], edge.src.port,
                    protos[edge.dst.node], edge.dst.port,
                    capacity=capacities[edge.label])
    cfg.validate()
    return cfg


def compile_graph(graph: KernelGraph, *, array: XppArray = None,
                  balance: bool = False) -> CompiledKernel:
    """Compile a kernel graph down to a loadable configuration.

    Raises :class:`PnrError` with the full diagnostic list when the
    graph is illegal; otherwise returns the
    :class:`CompiledKernel` whose ``config`` has placement hints
    attached (``config.placement``) for the manager to honour.
    """
    kernel, error = _pipeline(graph, array=array, balance=balance)
    if error is not None:
        raise error
    return kernel


def report_graph(graph: KernelGraph, *, array: XppArray = None,
                 balance: bool = False) -> PnrReport:
    """Run the pipeline without raising; always returns the report."""
    kernel, error = _pipeline(graph, array=array, balance=balance)
    if error is not None:
        return error.report
    return kernel.report


def _pipeline(graph, *, array, balance):
    if array is None:
        array = XppArray()
    report = PnrReport(graph_name=graph.name, n_nodes=len(graph.nodes),
                       n_edges=len(graph.edges))
    for node in graph.nodes:
        report.resources[node.kind] = report.resources.get(node.kind, 0) + 1

    t0 = time.perf_counter()
    protos, diags = lint(graph, array)
    report.timings_s["lint"] = time.perf_counter() - t0
    if diags:
        report.diagnostics = diags
        return None, _error(report)

    t0 = time.perf_counter()
    placement = place(graph, array)
    report.levels = max(placement.levels.values(), default=-1) + 1
    report.timings_s["place"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    report.capacities = infer_capacities(graph, balance=balance)
    routing, route_diags = route_placement(graph, placement)
    report.routing = routing
    report.timings_s["route"] = time.perf_counter() - t0
    if route_diags:
        report.diagnostics = route_diags
        return None, _error(report)

    t0 = time.perf_counter()
    config = emit_config(graph, protos, report.capacities)
    config.placement = placement
    report.timings_s["emit"] = time.perf_counter() - t0

    report.ok = True
    return CompiledKernel(graph=graph, config=config, placement=placement,
                          report=report), None


def _error(report: PnrReport) -> PnrError:
    err = PnrError(report.diagnostics)
    err.report = report
    return err

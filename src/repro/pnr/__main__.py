"""Command-line front end: ``python -m repro.pnr``.

``compile`` runs the full pipeline on the DSL kernels (or a graph JSON
file), prints the report, and exits nonzero on any legality
diagnostic — which is exactly what the CI compile-smoke step asserts.
``codes`` prints the diagnostic vocabulary.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.pnr.compile import report_graph
from repro.pnr.diag import CODE_DESCRIPTIONS, PnrError
from repro.pnr.graph import KernelGraph


def _golden_path(directory: str, name: str) -> Path:
    return Path(directory) / f"pnr_{name}.json"


def _load_graphs(args) -> list:
    if args.graph:
        payloads = []
        for path in args.graph:
            payload = json.loads(Path(path).read_text())
            payloads.append(KernelGraph.from_dict(
                payload.get("graph", payload)))
        return payloads
    from repro.kernels.dsl import golden_kernels
    kernels = golden_kernels()
    names = args.kernels or sorted(kernels)
    missing = [n for n in names if n not in kernels]
    if missing:
        raise SystemExit(f"unknown kernel(s) {missing}; "
                         f"have {sorted(kernels)}")
    return [kernels[n] for n in names]


def _cmd_compile(args) -> int:
    try:
        graphs = _load_graphs(args)
    except PnrError as exc:     # malformed --graph file
        print(exc, file=sys.stderr)
        return 1
    status = 0
    reports = []
    for graph in graphs:
        report = report_graph(graph, balance=args.balance)
        reports.append(report)
        if not args.json:
            print(report.render())
        if not report.ok:
            status = 1
            continue
        if args.nml and not args.json:
            from repro.pnr.compile import compile_graph
            from repro.xpp.nml import dump_nml
            print(dump_nml(compile_graph(graph, balance=args.balance).config))
        if args.write_golden or args.check_golden:
            from repro.pnr.compile import compile_graph
            placement = compile_graph(graph,
                                      balance=args.balance).placement
            if args.write_golden:
                path = _golden_path(args.write_golden, graph.name)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(json.dumps(placement.to_dict(), indent=2,
                                           sort_keys=True) + "\n")
                if not args.json:
                    print(f"  wrote {path}")
            if args.check_golden:
                path = _golden_path(args.check_golden, graph.name)
                committed = json.loads(path.read_text())
                if committed != placement.to_dict():
                    status = 1
                    print(f"placement of {graph.name!r} differs from the "
                          f"golden artifact {path}.\nIf the change is "
                          f"intended, regenerate with:\n  python -m "
                          f"repro.pnr compile --write-golden "
                          f"{args.check_golden}", file=sys.stderr)
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    return status


def _cmd_codes(_args) -> int:
    width = max(len(c) for c in CODE_DESCRIPTIONS)
    for code, desc in CODE_DESCRIPTIONS.items():
        print(f"{code:<{width}}  {desc}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pnr",
        description="kernel DSL place-and-route compiler")
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile DSL kernels (exit 1 on any diagnostic)")
    p_compile.add_argument("kernels", nargs="*",
                           help="kernel names (default: all DSL kernels)")
    p_compile.add_argument("--graph", action="append", metavar="FILE",
                           help="compile a graph JSON file instead")
    p_compile.add_argument("--json", action="store_true",
                           help="machine-readable reports on stdout")
    p_compile.add_argument("--nml", action="store_true",
                           help="also print the emitted NML netlist")
    p_compile.add_argument("--balance", action="store_true",
                           help="skew-balanced FIFO-depth inference")
    p_compile.add_argument("--write-golden", metavar="DIR",
                           help="write placement golden artifacts")
    p_compile.add_argument("--check-golden", metavar="DIR",
                           help="compare placements against goldens")
    p_compile.set_defaults(func=_cmd_compile)

    p_codes = sub.add_parser("codes", help="print the diagnostic table")
    p_codes.set_defaults(func=_cmd_codes)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":      # pragma: no cover - exercised via CLI tests
    sys.exit(main())

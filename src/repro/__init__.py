"""repro — Reconfigurable Signal Processing in Wireless Terminals.

A full-system reproduction of the DATE 2003 paper by Helmschmidt et al.
(PACT XPP Technologies / Accent / STMicroelectronics): a coarse-grained
reconfigurable array (XPP) simulator, the W-CDMA rake receiver and
802.11a/HIPERLAN-2 OFDM decoder mapped onto it, and the SDR terminal
system model (DSP + dedicated hardware + reconfigurable array) they are
partitioned across.

Subpackages
-----------
``repro.fixed``   fixed-point arithmetic substrate
``repro.xpp``     the coarse-grained reconfigurable array simulator
``repro.dsp``     control-flow DSP/microcontroller model
``repro.wcdma``   W-CDMA downlink substrate (codes, tx, channel)
``repro.ofdm``    802.11a PHY substrate (coding, FFT, Viterbi, tx/rx)
``repro.kernels`` the paper's kernels mapped onto the array (Figs. 5-9)
``repro.rake``    rake receiver application (Sec. 3.1)
``repro.wlan``    OFDM decoder application (Sec. 3.2)
``repro.sdr``     terminal system: partitioning, board, time slicing
``repro.telemetry`` cycle-stamped tracing, metrics and profiling
"""

__version__ = "1.0.0"

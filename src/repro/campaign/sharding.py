"""Deterministic fan-out of jobs into reproducible shards.

Every shard of a campaign gets its own ``np.random.SeedSequence``
child, derived with :func:`repro.testing.spawn_seedseqs` from the
campaign's master seed and the shard's **flat index** (its position in
the spec-order enumeration of ``(job, shard)`` pairs).  The derivation
depends only on ``(master_seed, flat_index)`` — not on worker count,
execution order, retries or which shards a resume skips — so:

* any shard can be re-run in isolation and reproduce itself exactly;
* a 4-worker pool, a serial loop and a resumed run all draw identical
  random streams shard for shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.campaign.spec import CampaignSpec
from repro.testing import spawn_seedseqs


@dataclass(frozen=True)
class ShardTask:
    """One unit of work: shard ``shard_index`` of job ``job_id``."""

    job_id: str
    job_index: int
    shard_index: int
    flat_index: int
    kind: str
    params: tuple               # ((name, value), ...) as in JobSpec
    seed_seq: np.random.SeedSequence
    timeout_s: Optional[float] = None

    @property
    def key(self) -> tuple:
        return (self.job_index, self.shard_index)

    @property
    def param_dict(self) -> dict:
        return dict(self.params)

    def rng(self) -> np.random.Generator:
        """The shard's private random stream."""
        return np.random.default_rng(self.seed_seq)


def build_shards(spec: CampaignSpec) -> list:
    """All shard tasks of a campaign, in deterministic spec order."""
    seqs = spawn_seedseqs(spec.master_seed, spec.total_shards)
    tasks = []
    flat = 0
    for job_index, job in enumerate(spec.jobs):
        for shard_index in range(job.shards):
            tasks.append(ShardTask(
                job_id=job.job_id, job_index=job_index,
                shard_index=shard_index, flat_index=flat,
                kind=job.kind, params=job.params,
                seed_seq=seqs[flat], timeout_s=job.timeout_s))
            flat += 1
    return tasks

"""Deterministic fan-out of jobs into reproducible shards.

Every shard of a campaign gets its own ``np.random.SeedSequence``,
derived from the campaign's master seed and the shard's **flat index**
(its position in the spec-order enumeration of ``(job, shard)`` pairs)
as ``SeedSequence(master_seed, spawn_key=(flat_index,))`` — the same
child that ``SeedSequence(master_seed).spawn(n)[flat_index]`` would
produce, but re-derived *fresh on every access*.  The derivation
depends only on ``(master_seed, flat_index)`` — not on worker count,
execution order, retries or which shards a resume skips — so:

* any shard can be re-run in isolation and reproduce itself exactly;
* a 4-worker pool, a serial loop and a resumed run all draw identical
  random streams shard for shard;
* a *retried* attempt (worker killed mid-shard, timeout, flaky raise)
  is byte-identical to a first-try run.  Carrying a live
  ``SeedSequence`` object on the task would break this: spawning
  children from it mutates its spawn counter, so an in-process retry
  would see different child streams than a fresh worker process
  unpickling the task.  Deriving from the integers sidesteps the
  shared mutable state entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.campaign.spec import CampaignSpec


@dataclass(frozen=True)
class ShardTask:
    """One unit of work: shard ``shard_index`` of job ``job_id``."""

    job_id: str
    job_index: int
    shard_index: int
    flat_index: int
    kind: str
    params: tuple               # ((name, value), ...) as in JobSpec
    master_seed: int
    timeout_s: Optional[float] = None
    backend: str = "event"      # simulator scheduler for array runs
    telemetry: bool = False     # capture a flight-recorder payload
    max_events: int = 4096      # trace-event cap for the capture
    cache_dir: Optional[str] = None     # shared fastpath compile cache

    @property
    def key(self) -> tuple:
        return (self.job_index, self.shard_index)

    @property
    def param_dict(self) -> dict:
        return dict(self.params)

    @property
    def seed_seq(self) -> np.random.SeedSequence:
        """A fresh seed sequence for this shard (never shared, so no
        attempt can observe another attempt's spawn state)."""
        return np.random.SeedSequence(self.master_seed,
                                      spawn_key=(self.flat_index,))

    def rng(self) -> np.random.Generator:
        """The shard's private random stream (fresh each call)."""
        return np.random.default_rng(self.seed_seq)


def build_shards(spec: CampaignSpec, *, telemetry: bool = False,
                 max_events: int = 4096,
                 cache_dir: Optional[str] = None) -> list:
    """All shard tasks of a campaign, in deterministic spec order.

    ``telemetry`` arms the per-shard flight recorder
    (:mod:`repro.telemetry.flight`); ``cache_dir`` names a shared
    on-disk fastpath compile cache every worker mounts
    (:mod:`repro.fastpath.cache` — N shards of a config compile its
    kernels once).  Both are execution options, not part of the spec,
    so they do not move the campaign fingerprint — a flight-on or
    cached resume continues any checkpoint and vice versa.
    """
    tasks = []
    flat = 0
    for job_index, job in enumerate(spec.jobs):
        for shard_index in range(job.shards):
            tasks.append(ShardTask(
                job_id=job.job_id, job_index=job_index,
                shard_index=shard_index, flat_index=flat,
                kind=job.kind, params=job.params,
                master_seed=spec.master_seed, timeout_s=job.timeout_s,
                backend=job.backend, telemetry=telemetry,
                max_events=max_events, cache_dir=cache_dir))
            flat += 1
    return tasks

"""repro.campaign — sharded Monte-Carlo campaign runner.

The orchestration layer over the repo's link simulations: declarative
sweep specs (:mod:`~repro.campaign.spec`) fan out into deterministic,
independently-seeded shards (:mod:`~repro.campaign.sharding`) executed
by a fault-tolerant worker pool with per-shard timeouts, retry with
backoff and graceful degradation (:mod:`~repro.campaign.pool`),
checkpointed for exact resume (:mod:`~repro.campaign.checkpoint`) and
aggregated into BER/BLER/PER points with Wilson confidence intervals
(:mod:`~repro.campaign.aggregate`).  With ``flight_recorder=True``
every shard also captures cycle-stamped telemetry
(:mod:`repro.telemetry.flight`) that rides the checkpoint and merges
into one campaign-wide Chrome trace plus metric rollups.

The core guarantee: a campaign's aggregated results are a pure
function of (spec, master seed) — the same bytes for any worker count,
execution order, retry history or interrupt/resume split.

Typical use::

    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec.from_dict({
        "name": "dpch-ber", "master_seed": 12345,
        "sweeps": [{"kind": "wcdma_dpch",
                    "base": {"slot_format": 11, "n_slots": 150},
                    "axes": {"snr_db": [0, 2, 4, 6]},
                    "shards": 8,
                    "early_stop": {"min_error_events": 500}}]})
    run = run_campaign(spec, workers=4,
                       checkpoint_path="dpch.ckpt.jsonl")
    for job in run.results["jobs"]:
        print(job["job_id"], job["metrics"]["ber"])

or from the shell: ``python -m repro.campaign run --spec spec.json
--workers 4 --checkpoint ck.jsonl --out artifact.json``.
"""

from repro.campaign.aggregate import (
    KIND_METRICS,
    aggregate,
    included_prefix,
    relative_error,
    wilson_interval,
)
from repro.campaign.checkpoint import Checkpoint, open_checkpoint
from repro.campaign.pool import CampaignRun, ShardOutcome, run_campaign
from repro.campaign.report import results_markdown, to_run_report
from repro.campaign.runners import RUNNERS, run_shard
from repro.campaign.sharding import ShardTask, build_shards
from repro.campaign.spec import (
    CampaignError,
    CampaignSpec,
    EarlyStop,
    JobSpec,
    expand_sweep,
)

__all__ = [
    "KIND_METRICS",
    "RUNNERS",
    "CampaignError",
    "CampaignRun",
    "CampaignSpec",
    "Checkpoint",
    "EarlyStop",
    "JobSpec",
    "ShardOutcome",
    "ShardTask",
    "aggregate",
    "build_shards",
    "expand_sweep",
    "included_prefix",
    "open_checkpoint",
    "relative_error",
    "results_markdown",
    "run_campaign",
    "run_shard",
    "to_run_report",
    "wilson_interval",
]

"""Campaign reporting: Markdown curve reports and RunReport artifacts.

The Markdown report renders each sweep group as an ASCII curve
(:func:`repro.telemetry.render_bars` over the group's primary metric)
followed by the full per-job table with Wilson 95% intervals;
:func:`to_run_report` wraps the same results in a
:class:`repro.telemetry.RunReport` so campaign artifacts slot into the
existing benchmark/report pipeline (one JSON schema for CI to diff).
"""

from __future__ import annotations

from typing import Optional

from repro.campaign.aggregate import KIND_METRICS
from repro.telemetry import RunReport, render_bars


def _primary_metric(kind: str) -> Optional[str]:
    table = KIND_METRICS.get(kind) or ()
    return table[0][0] if table else None


def _groups(results: dict) -> dict:
    """Jobs grouped by sweep prefix (the ``job_id`` part before
    ``/``), in first-appearance order."""
    groups: dict = {}
    for job in results["jobs"]:
        prefix = job["job_id"].split("/", 1)[0]
        groups.setdefault(prefix, []).append(job)
    return groups


def _point_label(job: dict) -> str:
    parts = job["job_id"].split("/", 1)
    return parts[1] if len(parts) == 2 else parts[0]


def _reliability_lines(rel: dict) -> list:
    """The ``## Reliability`` section from a
    :func:`repro.telemetry.flight.reliability_summary` dict."""
    lines = ["## Reliability", ""]
    lines.append(f"- **shards finished**: {rel.get('shards_finished', 0)}")
    lines.append(f"- **retries**: {rel.get('retries', 0)}")
    lines.append(f"- **timeouts**: {rel.get('timeouts', 0)}")
    lines.append(f"- **degraded shards**: {rel.get('degraded_shards', 0)}")
    lines.append(f"- **skipped shards**: {rel.get('skipped_shards', 0)}")
    wc = rel.get("wall_clock_s") or {}
    if wc.get("count"):
        lines.append(
            f"- **shard wall-clock**: mean {wc['mean']:.3f}s, "
            f"p50 {wc['p50']:.3f}s, p95 {wc['p95']:.3f}s, "
            f"max {wc['max']:.3f}s over {wc['count']} shards")
    prog = rel.get("progress")
    if prog and prog.get("shards_per_s") is not None:
        lines.append(f"- **throughput**: {prog['shards_per_s']:.2f} "
                     f"shards/s ({prog.get('slots_per_s') or 0:.1f} "
                     f"slots/s)")
    fb = rel.get("fastpath_fallbacks")
    if fb is not None:
        by_code = ", ".join(f"{code}: {n}" for code, n in
                            fb.get("by_code", {}).items())
        lines.append(f"- **fastpath fallbacks**: {fb.get('total', 0)}"
                     + (f" ({by_code})" if by_code else ""))
    lines.append("")
    return lines


def results_markdown(results: dict, stats: Optional[dict] = None,
                     reliability: Optional[dict] = None) -> str:
    """Human-readable curve report of a campaign's aggregate.

    ``reliability`` (optional) is a
    :func:`repro.telemetry.flight.reliability_summary` fold of the
    campaign's lifecycle event log; when given, the report gains a
    wall-clock reliability section (retries, timeouts, degraded
    shards, per-shard p50/p95).
    """
    lines = [f"# Campaign: {results['campaign']}", ""]
    lines.append(f"- **master_seed**: {results['master_seed']}")
    lines.append(f"- **fingerprint**: `{results['fingerprint']}`")
    lines.append(f"- **complete**: {results['complete']}")
    if stats:
        for key in ("workers", "total_shards", "resumed_shards",
                    "executed_shards", "failed_shards", "skipped_shards",
                    "retries"):
            if key in stats:
                lines.append(f"- **{key}**: {stats[key]}")
        if "elapsed_s" in stats:
            lines.append(f"- **elapsed_s**: {stats['elapsed_s']:.2f}")
    lines.append("")

    if reliability is not None:
        lines.extend(_reliability_lines(reliability))

    # one ASCII curve per sweep group with a primary metric
    for prefix, jobs in _groups(results).items():
        metric = _primary_metric(jobs[0]["kind"])
        if metric is None or len(jobs) < 2:
            continue
        values = {}
        for job in jobs:
            rate = job["metrics"].get(metric, {}).get("rate")
            if rate is not None:
                values[_point_label(job)] = rate
        if not values:
            continue
        lines.append(f"## {prefix}: {metric} curve")
        lines.append("")
        lines.append("```")
        lines.append(render_bars(values, unit=metric))
        lines.append("```")
        lines.append("")

    lines.append(f"## Jobs ({len(results['jobs'])})")
    lines.append("")
    lines.append("| job | kind | shards | failed | stopped "
                 "| metric | rate | 95% CI | events/trials |")
    lines.append("|---|---|---|---|---|---|---|---|---|")
    for job in results["jobs"]:
        base = (f"| `{job['job_id']}` | {job['kind']} "
                f"| {job['shards_included']} | {job['shards_failed']} "
                f"| {'yes' if job['early_stopped'] else ''} ")
        if not job["metrics"]:
            lines.append(base + "| | | | |")
            continue
        first = True
        for name, m in job["metrics"].items():
            prefix_cells = base if first else "| | | | | "
            rate = f"{m['rate']:.3e}" if m["rate"] is not None else "n/a"
            lines.append(
                prefix_cells + f"| {name} | {rate} "
                f"| [{m['ci95_lo']:.3e}, {m['ci95_hi']:.3e}] "
                f"| {m['errors']}/{m['trials']} |")
            first = False
    lines.append("")
    return "\n".join(lines)


def to_run_report(results: dict, stats: Optional[dict] = None) -> RunReport:
    """The campaign aggregate as a :class:`repro.telemetry.RunReport`
    (its JSON form is the pipeline-compatible artifact body)."""
    report = RunReport(
        f"campaign {results['campaign']}",
        meta={"master_seed": results["master_seed"],
              "fingerprint": results["fingerprint"],
              "complete": results["complete"]})
    report.add_section("campaign", results)
    if stats:
        report.add_section("run_stats", stats)
    return report

"""Declarative campaign and job specifications.

A campaign is a named set of Monte-Carlo jobs over the repo's link
runners — the W-CDMA DPCH closed loop, the 802.11a OFDM decode chain
and the rake finger scenarios.  Each job is one operating point (one
combination of sweep-axis values) that fans out into ``shards``
independent shards at execution time; a sweep is the cross product of
axes expanded into jobs at parse time, so everything downstream of the
spec deals only in the flat job list.

The spec is pure data: :meth:`CampaignSpec.to_dict` /
:meth:`CampaignSpec.from_dict` round-trip through JSON, and
:meth:`CampaignSpec.fingerprint` hashes the canonical form so a
checkpoint can refuse to resume under a different spec.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Optional


class CampaignError(ValueError):
    """A campaign spec, checkpoint or run is invalid.

    A :class:`ValueError`: loaders promise hostile JSON surfaces as a
    structured error, never as a crash, and ``ValueError`` is the
    contract the fuzz suite holds them to.
    """


#: Job kinds the runner registry accepts (see
#: :data:`repro.campaign.runners.RUNNERS`).
KINDS = ("wcdma_dpch", "ofdm_link", "rake_scenarios", "fault", "chaos")

#: Simulator backends a job may pin (see
#: :data:`repro.xpp.scheduler._SCHEDULERS`); the shard runner exports
#: the choice through ``REPRO_XPP_SCHEDULER``.
BACKENDS = ("naive", "event", "fastpath")


@dataclass(frozen=True)
class EarlyStop:
    """Stop adding shards to a job once its primary error-rate estimate
    is good enough.

    Either bound may be set; the job stops at the first shard after
    which **any** configured criterion holds:

    * ``min_error_events`` — at least this many primary error events
      (bit errors, packet errors) have been observed;
    * ``target_rel_err`` — the Wilson half-width over the point
      estimate has dropped to this relative error or below.

    The decision is evaluated over shards **in shard-index order**
    (see :func:`repro.campaign.aggregate.included_prefix`), never over
    completion order, so aggregates stay identical for any worker
    count.
    """

    min_error_events: Optional[int] = None
    target_rel_err: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_error_events is None and self.target_rel_err is None:
            raise CampaignError("early_stop: set min_error_events and/or "
                                "target_rel_err")
        if self.min_error_events is not None and self.min_error_events < 1:
            raise CampaignError("early_stop: min_error_events must be >= 1")
        if self.target_rel_err is not None and not 0 < self.target_rel_err:
            raise CampaignError("early_stop: target_rel_err must be > 0")

    def to_dict(self) -> dict:
        out = {}
        if self.min_error_events is not None:
            out["min_error_events"] = self.min_error_events
        if self.target_rel_err is not None:
            out["target_rel_err"] = self.target_rel_err
        return out

    @classmethod
    def from_dict(cls, d: Optional[dict]) -> Optional["EarlyStop"]:
        if d is None:
            return None
        return cls(min_error_events=d.get("min_error_events"),
                   target_rel_err=d.get("target_rel_err"))


@dataclass(frozen=True)
class JobSpec:
    """One operating point of a campaign."""

    job_id: str
    kind: str
    params: tuple = ()          # sorted ((name, value), ...) pairs
    shards: int = 1
    early_stop: Optional[EarlyStop] = None
    timeout_s: Optional[float] = None
    backend: str = "event"      # simulator scheduler for array runs

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise CampaignError(f"unknown job kind {self.kind!r}; "
                                f"expected one of {KINDS}")
        if self.shards < 1:
            raise CampaignError(f"job {self.job_id!r}: shards must be >= 1")
        if self.backend not in BACKENDS:
            raise CampaignError(f"job {self.job_id!r}: unknown backend "
                                f"{self.backend!r}; expected one of "
                                f"{BACKENDS}")

    @property
    def param_dict(self) -> dict:
        return dict(self.params)

    def to_dict(self) -> dict:
        out = {"job_id": self.job_id, "kind": self.kind,
               "params": self.param_dict, "shards": self.shards}
        if self.early_stop is not None:
            out["early_stop"] = self.early_stop.to_dict()
        if self.timeout_s is not None:
            out["timeout_s"] = self.timeout_s
        if self.backend != "event":
            # emitted only when non-default so the canonical form — and
            # with it every existing fingerprint — is unchanged
            out["backend"] = self.backend
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        if not isinstance(d, dict):
            raise CampaignError(f"job spec must be a mapping, "
                                f"got {type(d).__name__}")
        if "job_id" not in d or "kind" not in d:
            raise CampaignError("job spec needs 'job_id' and 'kind'")
        early = d.get("early_stop")
        if early is not None and not isinstance(early, dict):
            raise CampaignError("'early_stop' must be a mapping")
        return cls(job_id=str(d["job_id"]), kind=str(d["kind"]),
                   params=_freeze_params(d.get("params", {})),
                   shards=int(d.get("shards", 1)),
                   early_stop=EarlyStop.from_dict(early),
                   timeout_s=d.get("timeout_s"),
                   backend=str(d.get("backend", "event")))


@dataclass(frozen=True)
class CampaignSpec:
    """A named, seeded set of jobs."""

    name: str
    master_seed: int
    jobs: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.jobs:
            raise CampaignError(f"campaign {self.name!r} has no jobs")
        ids = [j.job_id for j in self.jobs]
        dupes = {i for i in ids if ids.count(i) > 1}
        if dupes:
            raise CampaignError(f"duplicate job ids: {sorted(dupes)}")

    @property
    def total_shards(self) -> int:
        return sum(j.shards for j in self.jobs)

    def to_dict(self) -> dict:
        return {"name": self.name, "master_seed": self.master_seed,
                "jobs": [j.to_dict() for j in self.jobs]}

    def with_backend(self, backend: str) -> "CampaignSpec":
        """A copy of this campaign with every job pinned to ``backend``
        (a CLI ``--backend`` override).  Changing the backend changes
        the fingerprint, so a checkpoint recorded under one simulator
        backend refuses to resume under another."""
        jobs = tuple(dataclasses.replace(j, backend=backend)
                     for j in self.jobs)
        return dataclasses.replace(self, jobs=jobs)

    def fingerprint(self) -> str:
        """Hash of the canonical spec; sharding and checkpoints key off
        it, so any change to jobs, seed or shard counts is a different
        campaign."""
        canon = json.dumps(self.to_dict(), sort_keys=True,
                           separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()[:16]

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignSpec":
        """Build a spec from its JSON form, expanding any ``sweeps``.

        A sweep entry looks like::

            {"name": "dpch", "kind": "wcdma_dpch",
             "base": {"slot_format": 11, "n_slots": 30},
             "axes": {"snr_db": [0, 3, 6]},
             "shards": 4,
             "early_stop": {"min_error_events": 200}}

        and expands to one job per point of the axis cross product, in
        axis-declaration order, with ids like ``dpch/snr_db=3``.
        """
        if not isinstance(d, dict):
            raise CampaignError(f"campaign spec must be a mapping, "
                                f"got {type(d).__name__}")
        try:
            jobs_in = d.get("jobs", [])
            if not isinstance(jobs_in, (list, tuple)):
                raise CampaignError("'jobs' must be a list of job specs")
            jobs = [JobSpec.from_dict(j) for j in jobs_in]
            sweeps = d.get("sweeps", [])
            if not isinstance(sweeps, (list, tuple)):
                raise CampaignError("'sweeps' must be a list of sweeps")
            for sweep in sweeps:
                jobs.extend(expand_sweep(sweep))
            name = d.get("name")
            if not name or not isinstance(name, str):
                raise CampaignError("campaign spec needs a name")
            if "master_seed" not in d:
                raise CampaignError("campaign spec needs a master_seed")
            return cls(name=str(name), master_seed=int(d["master_seed"]),
                       jobs=tuple(jobs))
        except CampaignError:
            raise
        except (KeyError, TypeError, AttributeError, ValueError) as exc:
            # hostile JSON shapes (strings where mappings belong, lists
            # as scalars, words where numbers belong) must surface
            # structured, never as a crash
            raise CampaignError(
                f"malformed campaign spec: {type(exc).__name__}: "
                f"{exc}") from exc

    @classmethod
    def load(cls, path) -> "CampaignSpec":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def expand_sweep(sweep: dict) -> list:
    """Cross-product a sweep declaration into concrete :class:`JobSpec`
    points."""
    if not isinstance(sweep, dict):
        raise CampaignError(f"sweep must be a mapping, "
                            f"got {type(sweep).__name__}")
    kind = sweep.get("kind")
    if kind not in KINDS:
        raise CampaignError(f"sweep kind {kind!r} unknown")
    prefix = sweep.get("name", kind)
    base = sweep.get("base", {})
    if not isinstance(base, dict):
        raise CampaignError("sweep 'base' must be a mapping")
    base = dict(base)
    axes = sweep.get("axes", {})
    if not isinstance(axes, dict) or \
            any(not isinstance(v, (list, tuple)) for v in axes.values()):
        raise CampaignError("sweep 'axes' must map names to value lists")
    early = EarlyStop.from_dict(sweep.get("early_stop"))
    shards = int(sweep.get("shards", 1))
    timeout_s = sweep.get("timeout_s")
    backend = str(sweep.get("backend", "event"))
    if not axes:
        return [JobSpec(job_id=prefix, kind=kind,
                        params=_freeze_params(base), shards=shards,
                        early_stop=early, timeout_s=timeout_s,
                        backend=backend)]
    names = list(axes)
    jobs = []
    for values in itertools.product(*(axes[n] for n in names)):
        params = dict(base)
        params.update(zip(names, values))
        point = ",".join(f"{n}={v}" for n, v in zip(names, values))
        jobs.append(JobSpec(job_id=f"{prefix}/{point}", kind=kind,
                            params=_freeze_params(params), shards=shards,
                            early_stop=early, timeout_s=timeout_s,
                            backend=backend))
    return jobs


def _freeze_params(params: dict) -> tuple:
    """Sorted hashable param pairs; values must be JSON scalars."""
    if not isinstance(params, dict):
        raise CampaignError(f"params must be a mapping, "
                            f"got {type(params).__name__}")
    for k, v in params.items():
        if not isinstance(v, (str, int, float, bool, type(None))):
            raise CampaignError(f"param {k!r} must be a JSON scalar, "
                                f"got {type(v).__name__}")
    return tuple(sorted(params.items()))

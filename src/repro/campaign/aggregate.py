"""Order-independent aggregation of shard results.

The aggregate of a campaign must be a pure function of the spec and
the per-shard results — never of worker count, completion order or
scheduling luck.  Two rules make that hold:

* shards are always folded **in shard-index order** (the checkpoint
  and the pool may record them in any order);
* early stopping is a **deterministic prefix rule**: shards of a job
  are included one by one in index order and inclusion stops after the
  first shard at which the job's criterion holds.  A parallel pool may
  opportunistically have completed shards beyond that prefix (they
  were in flight when the criterion was met); they are recorded in the
  checkpoint but excluded here, so ``workers=4`` and ``workers=1``
  aggregate byte-identically.

Rates come with Wilson score confidence intervals — the right interval
for the small error counts a BER point at high Eb/N0 produces.
"""

from __future__ import annotations

import math

from repro.campaign.spec import CampaignSpec, EarlyStop
from repro.faults.policy import STATUS_FAILED, STATUS_OK, worst_status

#: Per-kind rate definitions: ``metric name -> (errors key, trials
#: key)`` over the summed shard counts.  The first entry is the
#: *primary* metric early stopping watches.
KIND_METRICS = {
    "wcdma_dpch": (("ber", "bit_errors", "data_bits"),
                   ("bler", "block_errors", "n_slots"),
                   ("tpc_error_rate", "tpc_errors", "n_slots")),
    "ofdm_link": (("ber", "bit_errors", "data_bits"),
                  ("per", "packet_errors", "n_packets")),
    "rake_scenarios": (),
    "fault": (),
    "chaos": (("degraded_rate", "degraded_runs", "runs"),
              ("fallback_rate", "golden_fallbacks", "runs")),
}

#: Normal quantile for the default 95% intervals.
Z_95 = 1.959963984540054


def wilson_interval(errors: int, trials: int, z: float = Z_95) -> tuple:
    """Wilson score interval for a binomial proportion.

    Returns ``(lo, hi)``; ``(0.0, 1.0)`` when there are no trials.
    Unlike the normal approximation it never collapses to a zero-width
    interval at 0 observed errors.
    """
    if trials <= 0:
        return (0.0, 1.0)
    p = errors / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p + z2 / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials
                                   + z2 / (4 * trials * trials))
    # at the boundaries centre == half analytically; clamp the
    # floating-point residue so 0 observed errors has lo exactly 0
    lo = 0.0 if errors == 0 else max(0.0, centre - half)
    hi = 1.0 if errors == trials else min(1.0, centre + half)
    return (lo, hi)


def relative_error(errors: int, trials: int, z: float = Z_95) -> float:
    """Wilson half-width over the point estimate (``inf`` when no
    errors were seen yet)."""
    if trials <= 0 or errors <= 0:
        return math.inf
    lo, hi = wilson_interval(errors, trials, z)
    return (hi - lo) / 2.0 / (errors / trials)


def _criterion_met(early: EarlyStop, errors: int, trials: int) -> bool:
    if early.min_error_events is not None \
            and errors >= early.min_error_events:
        return True
    if early.target_rel_err is not None \
            and relative_error(errors, trials) <= early.target_rel_err:
        return True
    return False


def included_prefix(job, outcomes_by_shard: dict) -> tuple:
    """The deterministic shard prefix the aggregate includes.

    ``outcomes_by_shard`` maps ``shard_index`` to a
    :class:`~repro.campaign.pool.ShardOutcome`-like object with
    ``ok``/``result`` attributes.  Returns ``(prefix_len, stopped)``:
    shards ``0..prefix_len-1`` are included, ``stopped`` says the
    job's early-stop criterion (if any) fired inside the prefix.

    Only *contiguously recorded* shards can be included: the prefix
    ends at the first shard index with no recorded outcome, so a
    partially-run campaign aggregates to the same values a resume of
    it will produce for those shards.
    """
    if job.early_stop is None:
        n = 0
        while n < job.shards and n in outcomes_by_shard:
            n += 1
        return n, False
    primary = KIND_METRICS.get(job.kind) or ()
    if not primary:
        raise ValueError(f"job {job.job_id!r}: early_stop set but kind "
                         f"{job.kind!r} has no primary metric")
    _name, err_key, try_key = primary[0]
    errors = 0
    trials = 0
    for i in range(job.shards):
        o = outcomes_by_shard.get(i)
        if o is None:
            return i, False
        if o.ok:
            errors += int(o.result["counts"].get(err_key, 0))
            trials += int(o.result["counts"].get(try_key, 0))
            if _criterion_met(job.early_stop, errors, trials):
                return i + 1, True
    return job.shards, False


def job_status(outcomes) -> str:
    """Fold a job's shard statuses to the worst one.

    A shard that errored out of the runner counts as ``failed``; a
    shard whose payload carries no ``status`` (every non-chaos kind)
    counts as ``ok``, so status folding is uniform across job kinds.
    """
    return worst_status(
        (o.result or {}).get("status", STATUS_OK) if o.ok else STATUS_FAILED
        for o in outcomes)


def merge_counts(outcomes) -> dict:
    """Sum the ``counts`` payloads of successful outcomes, in shard
    order."""
    total: dict = {}
    for o in sorted(outcomes, key=lambda o: o.shard_index):
        if not o.ok:
            continue
        for key, value in o.result["counts"].items():
            total[key] = total.get(key, 0) + value
    return total


def aggregate(spec: CampaignSpec, outcomes) -> dict:
    """Fold shard outcomes into the campaign's deterministic results.

    ``outcomes`` is any iterable of shard outcomes (order irrelevant).
    The returned dict contains only values that are a pure function of
    ``(spec, per-shard results)`` — timing and scheduling metadata
    belong in the artifact's ``meta`` section, not here.
    """
    by_job: dict = {i: {} for i in range(len(spec.jobs))}
    for o in outcomes:
        if getattr(o, "skipped", False):
            continue
        by_job.setdefault(o.job_index, {})[o.shard_index] = o

    jobs_out = []
    complete = True
    for job_index, job in enumerate(spec.jobs):
        recorded = by_job.get(job_index, {})
        prefix, stopped = included_prefix(job, recorded)
        included = [recorded[i] for i in range(prefix)]
        failed = sum(1 for o in included if not o.ok)
        counts = merge_counts(included)
        metrics = {}
        for name, err_key, try_key in KIND_METRICS.get(job.kind, ()):
            errors = int(counts.get(err_key, 0))
            trials = int(counts.get(try_key, 0))
            lo, hi = wilson_interval(errors, trials)
            metrics[name] = {
                "rate": errors / trials if trials else None,
                "errors": errors, "trials": trials,
                "ci95_lo": lo, "ci95_hi": hi,
            }
        info = next((o.result.get("info") for o in included
                     if o.ok and o.result.get("info")), None)
        job_complete = stopped or prefix == job.shards
        complete = complete and job_complete
        out = {
            "job_id": job.job_id,
            "kind": job.kind,
            "params": job.param_dict,
            "shards_included": prefix,
            "shards_failed": failed,
            "early_stopped": stopped,
            "complete": job_complete,
            "status": job_status(included),
            "counts": counts,
            "metrics": metrics,
        }
        if info is not None:
            out["info"] = info
        jobs_out.append(out)

    return {
        "campaign": spec.name,
        "master_seed": spec.master_seed,
        "fingerprint": spec.fingerprint(),
        "complete": complete,
        "status": worst_status(j["status"] for j in jobs_out),
        "jobs": jobs_out,
    }

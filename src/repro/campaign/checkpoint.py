"""JSON-lines checkpointing: crash-safe progress, exact resume.

The checkpoint is an append-only ``.jsonl`` file: a header line
binding it to one spec fingerprint, then one line per finished shard
(successful, failed-after-retries, or skipped by early stop).  Append
+ flush after every shard means a killed run loses at most the shard
in flight; a trailing partial line (the kill landed mid-write) is
ignored on load.

Resume is exact by construction: finished shards are skipped, the
shards that do run draw the same per-shard seed streams they always
would (:mod:`repro.campaign.sharding`), and the aggregate folds shards
in index order — so a resumed campaign's results are byte-identical to
an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.campaign.spec import CampaignError, CampaignSpec

FORMAT_VERSION = 1


class Checkpoint:
    """Append-only shard-outcome log bound to one spec fingerprint."""

    def __init__(self, path, spec: CampaignSpec):
        self.path = os.fspath(path)
        self.fingerprint = spec.fingerprint()
        self._fh = None

    # -- loading ------------------------------------------------------------

    def load(self) -> list:
        """Previously recorded outcome dicts, validating the header.

        Returns ``[]`` if the file does not exist yet.  Raises
        :class:`CampaignError` if the checkpoint belongs to a different
        spec.
        """
        if not os.path.exists(self.path):
            return []
        records = []
        with open(self.path) as fh:
            for i, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    # torn tail write from a killed run; everything
                    # before it is intact
                    break
                if i == 0:
                    if rec.get("type") != "header":
                        raise CampaignError(
                            f"{self.path}: not a campaign checkpoint")
                    if rec.get("fingerprint") != self.fingerprint:
                        raise CampaignError(
                            f"{self.path}: checkpoint fingerprint "
                            f"{rec.get('fingerprint')} does not match spec "
                            f"{self.fingerprint}; refusing to mix campaigns")
                elif rec.get("type") == "shard":
                    records.append(rec)
        return records

    # -- appending ----------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._fh is not None:
            return
        fresh = not os.path.exists(self.path) \
            or os.path.getsize(self.path) == 0
        self._fh = open(self.path, "a")
        if fresh:
            self._write({"type": "header", "version": FORMAT_VERSION,
                         "fingerprint": self.fingerprint})

    def _write(self, rec: dict) -> None:
        self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
        self._fh.flush()

    def append(self, outcome) -> None:
        """Record one finished shard (a
        :class:`~repro.campaign.pool.ShardOutcome`)."""
        self._ensure_open()
        self._write({"type": "shard", **outcome.to_dict()})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Checkpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_checkpoint(path: Optional[str], spec: CampaignSpec):
    """``(checkpoint, done records)`` — both empty when ``path`` is
    None (checkpointing disabled)."""
    if path is None:
        return None, []
    ck = Checkpoint(path, spec)
    return ck, ck.load()

"""``python -m repro.campaign`` / ``repro-campaign`` — run, resume and
report sharded Monte-Carlo campaigns.

Subcommands::

    run     --spec spec.json [--workers N] [--checkpoint ck.jsonl]
            [--out artifact.json] [--report report.md] [--retries N]
            [--backoff S] [--timeout S] [--max-shards N] [--quiet]
            [--flight] [--trace merged_trace.json]
    resume  (same flags; requires the checkpoint to exist)
    report  --artifact artifact.json [--out report.md]
    status  --checkpoint ck.jsonl [--spec spec.json] [--json]

``--flight`` arms the per-shard flight recorder; ``--trace`` writes
the merged campaign Chrome trace (one process lane per shard).
``status`` reads only the checkpoint and its ``.events.jsonl``
lifecycle log, so it is safe against a live campaign from another
terminal.

Exit codes: 0 — campaign complete; 3 — incomplete (``--max-shards``
budget hit or shards still missing): re-run ``resume`` with the same
spec and checkpoint to continue exactly where it left off.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.campaign.pool import run_campaign
from repro.campaign.report import results_markdown
from repro.campaign.spec import BACKENDS, CampaignError, CampaignSpec
from repro.telemetry import flight

EXIT_INCOMPLETE = 3


def _add_run_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--spec", required=True,
                     help="campaign spec JSON (jobs and/or sweeps)")
    sub.add_argument("--workers", type=int, default=1,
                     help="worker processes; 1 = in-process serial")
    sub.add_argument("--checkpoint",
                     help="JSONL checkpoint to append to / resume from")
    sub.add_argument("--out", help="write the JSON artifact here")
    sub.add_argument("--report", help="write the Markdown report here")
    sub.add_argument("--retries", type=int, default=2,
                     help="retry attempts per shard after a failure")
    sub.add_argument("--backoff", type=float, default=0.25,
                     help="base retry backoff in seconds (doubles "
                          "each attempt)")
    sub.add_argument("--timeout", type=float, default=None,
                     help="per-shard timeout in seconds (pool only)")
    sub.add_argument("--max-shards", type=int, default=None,
                     help="execute at most N shards, then exit "
                          "incomplete (checkpoint stays resumable)")
    sub.add_argument("--backend", choices=sorted(BACKENDS), default=None,
                     help="pin every job's simulator backend "
                          "(naive/event/fastpath); changes the campaign "
                          "fingerprint")
    sub.add_argument("--flight", action="store_true",
                     help="arm the per-shard flight recorder (tracer "
                          "spans, metrics and probes ride the checkpoint)")
    sub.add_argument("--max-trace-events", type=int, default=None,
                     help="per-shard trace-event cap for --flight")
    sub.add_argument("--trace",
                     help="write the merged campaign Chrome trace here "
                          "(per-shard lanes; needs --flight telemetry)")
    sub.add_argument("--cache-dir", default=None,
                     help="shared fastpath compile-cache directory "
                          "(default: <checkpoint>.fpcache when a "
                          "checkpoint is given; pass '' to disable)")
    sub.add_argument("--quiet", action="store_true",
                     help="no per-shard progress lines")


class _Progress:
    """Per-shard progress lines with running throughput and ETA."""

    def __init__(self):
        self.started = time.monotonic()
        self.executed = 0

    def __call__(self, outcome, done: int, total: int) -> None:
        state = "skip" if outcome.skipped else ("ok" if outcome.ok
                                                else "FAIL")
        line = (f"[{done}/{total}] {state:4s} {outcome.job_id} "
                f"shard {outcome.shard_index}")
        if outcome.error and not outcome.skipped:
            line += f" ({outcome.error})"
        if not outcome.skipped:
            self.executed += 1
            rate = self.executed / max(time.monotonic() - self.started,
                                       1e-9)
            eta = (total - done) / rate if rate > 0 else 0.0
            line += f"  [{rate:.2f} shards/s, eta {eta:.0f}s]"
        print(line, flush=True)


def _cmd_run(args, *, resume: bool) -> int:
    try:
        spec = CampaignSpec.load(args.spec)
    except (OSError, json.JSONDecodeError, CampaignError) as exc:
        print(f"error: cannot load spec {args.spec}: {exc}",
              file=sys.stderr)
        return 2
    if args.backend:
        spec = spec.with_backend(args.backend)
    if resume:
        if not args.checkpoint:
            print("error: resume needs --checkpoint", file=sys.stderr)
            return 2
        if not os.path.exists(args.checkpoint):
            print(f"error: checkpoint {args.checkpoint} does not exist; "
                  f"use `run` to start", file=sys.stderr)
            return 2
    extra = {}
    if args.max_trace_events is not None:
        extra["max_trace_events"] = args.max_trace_events
    try:
        run = run_campaign(
            spec, workers=args.workers, retries=args.retries,
            backoff_s=args.backoff, timeout_s=args.timeout,
            checkpoint_path=args.checkpoint, max_shards=args.max_shards,
            progress=None if args.quiet else _Progress(),
            flight_recorder=args.flight, cache_dir=args.cache_dir,
            **extra)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    reliability = None
    if args.checkpoint:
        reliability = flight.reliability_summary(
            flight.read_events(flight.events_path_for(args.checkpoint)))
    if args.flight:
        fallbacks = flight.fallback_rollup(run.outcomes)
        if reliability is None:
            reliability = {}
        reliability["fastpath_fallbacks"] = fallbacks
    if args.trace:
        run.write_merged_trace(args.trace)
    if args.out:
        artifact = {
            "title": f"campaign {spec.name}",
            "spec": spec.to_dict(),
            "results": run.results,
            "meta": {"stats": run.stats,
                     "python": platform.python_version()},
        }
        if args.flight:
            artifact["meta"]["telemetry"] = run.telemetry_rollups()
        if reliability is not None:
            artifact["meta"]["reliability"] = reliability
        with open(args.out, "w") as fh:
            json.dump(artifact, fh, indent=1, sort_keys=True)
            fh.write("\n")
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(results_markdown(run.results, run.stats,
                                      reliability=reliability))

    done = sum(1 for o in run.outcomes)
    print(f"campaign {spec.name}: {done}/{spec.total_shards} shards "
          f"recorded, {run.stats['failed_shards']} failed, "
          f"{run.stats['retries']} retries, "
          f"{run.stats['elapsed_s']:.2f}s "
          f"({'complete' if run.complete else 'incomplete'})")
    return 0 if run.complete else EXIT_INCOMPLETE


def _cmd_status(args) -> int:
    spec = None
    if args.spec:
        try:
            spec = CampaignSpec.load(args.spec)
        except (OSError, json.JSONDecodeError, CampaignError) as exc:
            print(f"error: cannot load spec {args.spec}: {exc}",
                  file=sys.stderr)
            return 2
    try:
        summary = flight.status_summary(args.checkpoint, spec)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summary, indent=1, sort_keys=True))
    else:
        print(flight.status_text(summary))
    if summary.get("complete"):
        return 0
    return EXIT_INCOMPLETE


def _cmd_report(args) -> int:
    try:
        with open(args.artifact) as fh:
            artifact = json.load(fh)
        results = artifact["results"]
        stats = artifact.get("meta", {}).get("stats")
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"error: cannot read artifact {args.artifact}: {exc}",
              file=sys.stderr)
        return 2
    text = results_markdown(results, stats)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        print(text)
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-campaign",
        description="sharded Monte-Carlo campaign runner")
    subs = ap.add_subparsers(dest="command", required=True)
    _add_run_args(subs.add_parser(
        "run", help="run a campaign (resumes a checkpoint if given)"))
    _add_run_args(subs.add_parser(
        "resume", help="continue a checkpointed campaign"))
    rep = subs.add_parser("report",
                          help="render an artifact's Markdown report")
    rep.add_argument("--artifact", required=True)
    rep.add_argument("--out")
    status = subs.add_parser(
        "status", help="snapshot a (running) campaign from its "
                       "checkpoint and event log, without touching "
                       "the pool")
    status.add_argument("--checkpoint", required=True,
                        help="the campaign's JSONL checkpoint path")
    status.add_argument("--spec",
                        help="spec JSON (validates the fingerprint and "
                             "adds the total shard count)")
    status.add_argument("--json", action="store_true",
                        help="emit the summary as JSON")
    args = ap.parse_args(argv)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "status":
        return _cmd_status(args)
    return _cmd_run(args, resume=args.command == "resume")

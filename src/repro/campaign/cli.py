"""``python -m repro.campaign`` / ``repro-campaign`` — run, resume and
report sharded Monte-Carlo campaigns.

Subcommands::

    run     --spec spec.json [--workers N] [--checkpoint ck.jsonl]
            [--out artifact.json] [--report report.md] [--retries N]
            [--backoff S] [--timeout S] [--max-shards N] [--quiet]
    resume  (same flags; requires the checkpoint to exist)
    report  --artifact artifact.json [--out report.md]

Exit codes: 0 — campaign complete; 3 — incomplete (``--max-shards``
budget hit or shards still missing): re-run ``resume`` with the same
spec and checkpoint to continue exactly where it left off.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

from repro.campaign.pool import run_campaign
from repro.campaign.report import results_markdown
from repro.campaign.spec import BACKENDS, CampaignError, CampaignSpec

EXIT_INCOMPLETE = 3


def _add_run_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--spec", required=True,
                     help="campaign spec JSON (jobs and/or sweeps)")
    sub.add_argument("--workers", type=int, default=1,
                     help="worker processes; 1 = in-process serial")
    sub.add_argument("--checkpoint",
                     help="JSONL checkpoint to append to / resume from")
    sub.add_argument("--out", help="write the JSON artifact here")
    sub.add_argument("--report", help="write the Markdown report here")
    sub.add_argument("--retries", type=int, default=2,
                     help="retry attempts per shard after a failure")
    sub.add_argument("--backoff", type=float, default=0.25,
                     help="base retry backoff in seconds (doubles "
                          "each attempt)")
    sub.add_argument("--timeout", type=float, default=None,
                     help="per-shard timeout in seconds (pool only)")
    sub.add_argument("--max-shards", type=int, default=None,
                     help="execute at most N shards, then exit "
                          "incomplete (checkpoint stays resumable)")
    sub.add_argument("--backend", choices=sorted(BACKENDS), default=None,
                     help="pin every job's simulator backend "
                          "(naive/event/fastpath); changes the campaign "
                          "fingerprint")
    sub.add_argument("--quiet", action="store_true",
                     help="no per-shard progress lines")


def _progress(outcome, done: int, total: int) -> None:
    state = "skip" if outcome.skipped else ("ok" if outcome.ok else "FAIL")
    line = (f"[{done}/{total}] {state:4s} {outcome.job_id} "
            f"shard {outcome.shard_index}")
    if outcome.error and not outcome.skipped:
        line += f" ({outcome.error})"
    print(line, flush=True)


def _cmd_run(args, *, resume: bool) -> int:
    try:
        spec = CampaignSpec.load(args.spec)
    except (OSError, json.JSONDecodeError, CampaignError) as exc:
        print(f"error: cannot load spec {args.spec}: {exc}",
              file=sys.stderr)
        return 2
    if args.backend:
        spec = spec.with_backend(args.backend)
    if resume:
        if not args.checkpoint:
            print("error: resume needs --checkpoint", file=sys.stderr)
            return 2
        if not os.path.exists(args.checkpoint):
            print(f"error: checkpoint {args.checkpoint} does not exist; "
                  f"use `run` to start", file=sys.stderr)
            return 2
    try:
        run = run_campaign(
            spec, workers=args.workers, retries=args.retries,
            backoff_s=args.backoff, timeout_s=args.timeout,
            checkpoint_path=args.checkpoint, max_shards=args.max_shards,
            progress=None if args.quiet else _progress)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.out:
        artifact = {
            "title": f"campaign {spec.name}",
            "spec": spec.to_dict(),
            "results": run.results,
            "meta": {"stats": run.stats,
                     "python": platform.python_version()},
        }
        with open(args.out, "w") as fh:
            json.dump(artifact, fh, indent=1, sort_keys=True)
            fh.write("\n")
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(results_markdown(run.results, run.stats))

    done = sum(1 for o in run.outcomes)
    print(f"campaign {spec.name}: {done}/{spec.total_shards} shards "
          f"recorded, {run.stats['failed_shards']} failed, "
          f"{run.stats['retries']} retries, "
          f"{run.stats['elapsed_s']:.2f}s "
          f"({'complete' if run.complete else 'incomplete'})")
    return 0 if run.complete else EXIT_INCOMPLETE


def _cmd_report(args) -> int:
    try:
        with open(args.artifact) as fh:
            artifact = json.load(fh)
        results = artifact["results"]
        stats = artifact.get("meta", {}).get("stats")
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"error: cannot read artifact {args.artifact}: {exc}",
              file=sys.stderr)
        return 2
    text = results_markdown(results, stats)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        print(text)
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-campaign",
        description="sharded Monte-Carlo campaign runner")
    subs = ap.add_subparsers(dest="command", required=True)
    _add_run_args(subs.add_parser(
        "run", help="run a campaign (resumes a checkpoint if given)"))
    _add_run_args(subs.add_parser(
        "resume", help="continue a checkpointed campaign"))
    rep = subs.add_parser("report",
                          help="render an artifact's Markdown report")
    rep.add_argument("--artifact", required=True)
    rep.add_argument("--out")
    args = ap.parse_args(argv)
    if args.command == "report":
        return _cmd_report(args)
    return _cmd_run(args, resume=args.command == "resume")

"""Campaign execution: serial loop or fault-tolerant worker pool.

``run_campaign`` drives a campaign to its aggregate.  Two executors
share all bookkeeping (checkpointing, retries, early stopping,
metrics):

* ``workers <= 1`` — an in-process serial loop, the reference
  executor.  No processes, no timeouts; exceptions are retried with
  the same backoff policy.
* ``workers >= 2`` — a ``multiprocessing`` pool, one process per
  shard, at most ``workers`` alive at a time.  A worker that *raises*
  reports the error over its pipe; one that *dies* (segfault,
  ``os._exit``) is detected by the closed pipe; one that *hangs* past
  its deadline is terminated.  All three fail the attempt, which is
  retried with exponential backoff up to ``retries`` times; a shard
  that exhausts its retries is recorded as **failed** and the campaign
  carries on — graceful degradation, never a fatal run.

Determinism: shard seeds depend only on ``(master_seed, flat
index)`` and the aggregate folds shards in index order with the
deterministic early-stop prefix rule, so the serial loop, any pool
width and any resume produce byte-identical results
(:mod:`repro.campaign.aggregate`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.campaign.aggregate import aggregate, included_prefix
from repro.campaign.checkpoint import open_checkpoint
from repro.campaign.runners import run_shard
from repro.campaign.sharding import ShardTask, build_shards
from repro.campaign.spec import CampaignSpec
from repro.pool import RetryingTaskPool
from repro.telemetry import flight
from repro.telemetry.metrics import get_metrics


@dataclass
class ShardOutcome:
    """The recorded fate of one shard.

    ``telemetry`` is the optional flight-recorder payload
    (:class:`repro.telemetry.flight.ShardTelemetry` as a dict).  It is
    serialized only when present, so checkpoints written without it
    are byte-identical to the pre-flight format, and old checkpoints
    load unchanged.  The aggregate never reads it.
    """

    job_id: str
    job_index: int
    shard_index: int
    ok: bool
    result: Optional[dict] = None   # {"counts": ..., "info": ...} when ok
    error: Optional[str] = None
    attempts: int = 0
    skipped: bool = False           # early stop cancelled it pre-launch
    telemetry: Optional[dict] = None

    def to_dict(self) -> dict:
        d = {"job_id": self.job_id, "job_index": self.job_index,
             "shard_index": self.shard_index, "ok": self.ok,
             "result": self.result, "error": self.error,
             "attempts": self.attempts, "skipped": self.skipped}
        if self.telemetry is not None:
            d["telemetry"] = self.telemetry
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ShardOutcome":
        return cls(job_id=d["job_id"], job_index=int(d["job_index"]),
                   shard_index=int(d["shard_index"]), ok=bool(d["ok"]),
                   result=d.get("result"), error=d.get("error"),
                   attempts=int(d.get("attempts", 0)),
                   skipped=bool(d.get("skipped", False)),
                   telemetry=d.get("telemetry"))


@dataclass
class CampaignRun:
    """What ``run_campaign`` returns."""

    spec: CampaignSpec
    outcomes: list                  # ShardOutcome, shard order
    results: dict                   # deterministic aggregate
    stats: dict = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return bool(self.results.get("complete"))

    # -- flight-recorder views (empty/None without telemetry capture) --------

    def telemetry_rollups(self) -> dict:
        """Campaign-wide metric and probe rollups of the shards'
        flight-recorder payloads (see :mod:`repro.telemetry.flight`)."""
        return {"metrics": flight.metric_rollups(self.outcomes),
                "probes": flight.probe_rollups(self.outcomes)}

    def merged_trace(self) -> dict:
        """One Chrome trace with a process lane per telemetry shard."""
        return flight.merged_chrome_trace(self.outcomes)

    def write_merged_trace(self, path) -> dict:
        return flight.write_merged_trace(path, self.outcomes)


def run_campaign(spec: CampaignSpec, *, workers: int = 1,
                 retries: int = 2, backoff_s: float = 0.25,
                 timeout_s: Optional[float] = None,
                 checkpoint_path=None, max_shards: Optional[int] = None,
                 progress=None, mp_context: Optional[str] = None,
                 flight_recorder: bool = False,
                 max_trace_events: int = flight.DEFAULT_MAX_EVENTS,
                 events_path=None, cache_dir=None) -> CampaignRun:
    """Run (or resume) a campaign and aggregate its results.

    ``timeout_s`` is the per-shard wall-clock limit (pool executor
    only; a job's own ``timeout_s`` takes precedence).  ``max_shards``
    bounds how many shards this call executes — the run exits
    incomplete with a valid checkpoint, which is how CI exercises
    resume.  ``progress(outcome, done, total)`` is called after every
    recorded shard.

    ``flight_recorder`` arms per-shard telemetry capture
    (:mod:`repro.telemetry.flight`): every shard records up to
    ``max_trace_events`` tracer events plus metric and probe dumps
    onto ``ShardOutcome.telemetry``.  The lifecycle event log is
    written to ``events_path`` (default: next to the checkpoint)
    whenever either is given; it carries wall-clock facts — shard
    durations, retries, timeouts, ETA/throughput — and is the one
    intentionally nondeterministic artifact.

    ``cache_dir`` mounts a shared on-disk fastpath compile cache in
    every shard (:mod:`repro.fastpath.cache`): the first worker to
    compile a config's kernels stores the artifact, every later shard
    — in this run or a resume — loads it.  Defaults to
    ``<checkpoint_path>.fpcache`` when a checkpoint is given, so
    resumable campaigns get kernel reuse for free; pass ``""`` to
    disable.  Purely an execution option: results are byte-identical
    with or without it.
    """
    started = time.perf_counter()
    if cache_dir is None and checkpoint_path is not None:
        cache_dir = str(checkpoint_path) + ".fpcache"
    tasks = build_shards(spec, telemetry=flight_recorder,
                         max_events=max_trace_events,
                         cache_dir=cache_dir or None)
    ck, done_records = open_checkpoint(checkpoint_path, spec)
    outcomes = {}
    for rec in done_records:
        o = ShardOutcome.from_dict(rec)
        outcomes[(o.job_index, o.shard_index)] = o
    resumed = len(outcomes)
    pending = [t for t in tasks if t.key not in outcomes]
    stats = {"workers": workers, "total_shards": len(tasks),
             "resumed_shards": resumed, "executed_shards": 0,
             "failed_shards": 0, "skipped_shards": 0, "retries": 0}

    if events_path is None and checkpoint_path is not None:
        events_path = flight.events_path_for(checkpoint_path)
    events = flight.EventLog(events_path) if events_path is not None else None
    state = _RunState(spec, outcomes, ck, stats, progress, len(tasks),
                      events)
    if events is not None:
        events.emit("campaign_start", campaign=spec.name,
                    fingerprint=spec.fingerprint(),
                    total_shards=len(tasks), workers=workers,
                    resumed_shards=resumed,
                    flight_recorder=flight_recorder)
    try:
        if workers <= 1:
            _run_serial(state, pending, retries, backoff_s, max_shards)
        else:
            _run_pool(state, pending, workers, retries, backoff_s,
                      timeout_s, max_shards, mp_context)
    finally:
        stats["elapsed_s"] = time.perf_counter() - started
        if events is not None:
            events.emit("campaign_end", recorded=len(outcomes),
                        failed=stats["failed_shards"],
                        retries=stats["retries"],
                        elapsed_s=round(stats["elapsed_s"], 3))
            events.close()
        if ck is not None:
            ck.close()

    ordered = [outcomes[t.key] for t in tasks if t.key in outcomes]
    return CampaignRun(spec=spec, outcomes=ordered,
                       results=aggregate(spec, ordered), stats=stats)


# -- shared bookkeeping --------------------------------------------------------------


#: result-count keys that measure work units for the slots/s throughput
_SLOT_KEYS = ("n_slots", "n_packets", "scenarios", "runs")


class _RunState:
    """Outcome recording shared by both executors."""

    def __init__(self, spec, outcomes, checkpoint, stats, progress, total,
                 events=None):
        self.spec = spec
        self.outcomes = outcomes
        self.checkpoint = checkpoint
        self.stats = stats
        self.progress = progress
        self.total = total
        self.metrics = get_metrics()
        self.events = events
        self.started = time.monotonic()
        self.executed = 0       # shards this run (resumed ones excluded)
        self.slots = 0          # work units this run, for slots/s

    def _emit(self, event: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(event, **fields)

    def shard_started(self, task: ShardTask, attempt: int) -> None:
        self._emit("shard_start", job_id=task.job_id,
                   shard_index=task.shard_index, attempt=attempt)

    def _emit_progress(self) -> None:
        if self.events is None:
            return
        done = len(self.outcomes)
        elapsed = max(time.monotonic() - self.started, 1e-9)
        rate = self.executed / elapsed
        remaining = max(self.total - done, 0)
        self._emit("progress", done=done, total=self.total,
                   shards_per_s=round(rate, 4),
                   slots_per_s=round(self.slots / elapsed, 2),
                   eta_s=round(remaining / rate, 1) if rate > 0 else None)

    def record(self, outcome: ShardOutcome,
               duration_s: Optional[float] = None) -> None:
        self.outcomes[(outcome.job_index, outcome.shard_index)] = outcome
        if self.checkpoint is not None:
            self.checkpoint.append(outcome)
        if outcome.skipped:
            self.stats["skipped_shards"] += 1
            self.metrics.counter("campaign.shards_skipped").inc()
            self._emit("shard_skip", job_id=outcome.job_id,
                       shard_index=outcome.shard_index)
        else:
            self.stats["executed_shards"] += 1
            self.executed += 1
            self.metrics.counter("campaign.shards_completed").inc()
            if outcome.ok:
                counts = (outcome.result or {}).get("counts") or {}
                self.slots += sum(int(counts.get(k, 0)) for k in _SLOT_KEYS)
                self._emit("shard_finish", job_id=outcome.job_id,
                           shard_index=outcome.shard_index,
                           attempts=outcome.attempts,
                           duration_s=round(duration_s, 4)
                           if duration_s is not None else None)
            else:
                self.stats["failed_shards"] += 1
                self.metrics.counter("campaign.shards_failed").inc()
                self._emit("shard_degraded", job_id=outcome.job_id,
                           shard_index=outcome.shard_index,
                           attempts=outcome.attempts, reason=outcome.error)
        self._emit_progress()
        if self.progress is not None:
            self.progress(outcome, len(self.outcomes), self.total)

    def note_retry(self, task: Optional[ShardTask] = None,
                   reason: Optional[str] = None) -> None:
        self.stats["retries"] += 1
        self.metrics.counter("campaign.retries").inc()
        if task is not None:
            self._emit("shard_retry", job_id=task.job_id,
                       shard_index=task.shard_index, reason=reason)

    def skippable(self, task: ShardTask) -> bool:
        """True when the deterministic early-stop prefix of the task's
        job already ends before this shard."""
        job = self.spec.jobs[task.job_index]
        if job.early_stop is None:
            return False
        recorded = {s: o for (j, s), o in self.outcomes.items()
                    if j == task.job_index and not o.skipped}
        prefix, stopped = included_prefix(job, recorded)
        return stopped and task.shard_index >= prefix

    def skip(self, task: ShardTask) -> None:
        self.record(ShardOutcome(
            job_id=task.job_id, job_index=task.job_index,
            shard_index=task.shard_index, ok=False, skipped=True,
            error="early stop"))


# -- serial executor -----------------------------------------------------------------


def _run_serial(state: _RunState, pending, retries: int,
                backoff_s: float, max_shards: Optional[int]) -> None:
    executed = 0
    for task in pending:
        if max_shards is not None and executed >= max_shards:
            return
        if state.skippable(task):
            state.skip(task)
            continue
        outcome = None
        duration = None
        for attempt in range(retries + 1):
            if attempt:
                state.note_retry(task, outcome.error)
                time.sleep(backoff_s * 2 ** (attempt - 1))
            state.shard_started(task, attempt)
            t0 = time.monotonic()
            try:
                result = run_shard(task, attempt)
            except Exception as exc:
                outcome = ShardOutcome(
                    job_id=task.job_id, job_index=task.job_index,
                    shard_index=task.shard_index, ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    attempts=attempt + 1)
                continue
            duration = time.monotonic() - t0
            outcome = ShardOutcome(
                job_id=task.job_id, job_index=task.job_index,
                shard_index=task.shard_index, ok=True, result=result,
                attempts=attempt + 1,
                telemetry=result.pop("telemetry", None))
            break
        state.record(outcome, duration)
        executed += 1


# -- process-pool executor -----------------------------------------------------------


def _run_pool(state: _RunState, pending, workers: int, retries: int,
              backoff_s: float, timeout_s: Optional[float],
              max_shards: Optional[int], mp_context: Optional[str]) -> None:
    """Campaign adapter over the shared :class:`repro.pool.RetryingTaskPool`:
    the pool owns spawn/EOF-death/timeout-terminate/retry-backoff, this
    function owns campaign semantics (early-stop skips, outcome
    recording, retry stats)."""

    def on_success(task: ShardTask, attempt: int, payload: dict,
                   duration: float) -> None:
        state.record(ShardOutcome(
            job_id=task.job_id, job_index=task.job_index,
            shard_index=task.shard_index, ok=True, result=payload,
            attempts=attempt + 1,
            telemetry=payload.pop("telemetry", None)), duration)

    def on_exhausted(task: ShardTask, attempts: int, reason: str) -> None:
        state.record(ShardOutcome(
            job_id=task.job_id, job_index=task.job_index,
            shard_index=task.shard_index, ok=False, error=reason,
            attempts=attempts))

    pool = RetryingTaskPool(run_shard, workers=workers, retries=retries,
                            backoff_s=backoff_s, timeout_s=timeout_s,
                            mp_context=mp_context, noun="shard")
    pool.run(pending, budget=max_shards,
             should_skip=state.skippable, on_skip=state.skip,
             on_start=state.shard_started, on_success=on_success,
             on_retry=lambda task, attempt, reason:
             state.note_retry(task, reason),
             on_exhausted=on_exhausted)

"""Shard runners: one Monte-Carlo work unit per job kind.

A runner executes one shard with the shard's private RNG and returns a
JSON-serializable payload::

    {"counts": {<summable integer fields>}, "info": {<optional, not
     summed — identical for every shard of a job>}}

``counts`` is what the aggregator sums across a job's shards; the
kind's metric table (:data:`repro.campaign.aggregate.KIND_METRICS`)
names which count pairs turn into rates with confidence intervals.

Runner kinds
------------

``wcdma_dpch``
    The closed-loop DPCH link of :class:`repro.wcdma.link.DpchLink`:
    ``n_slots`` slots at one (Eb/N0, speed, slot format) point.
    ``speed_kmh`` is accepted as an alternative to ``doppler_hz``
    (Doppler at ``carrier_ghz``, default 2 GHz).

``ofdm_link``
    The 802.11a chain: ``n_packets`` packets transmitted, passed
    through AWGN at ``snr_db`` and decoded by the golden
    :class:`~repro.ofdm.receiver.OfdmReceiver` (``receiver="golden"``),
    the fixed-point-FFT variant (``"fixed"``) or the cycle-accurate
    array receiver (``"array"``).  A packet that fails to decode
    counts one packet error and, conservatively, all of its payload
    bits as bit errors.

``rake_scenarios``
    The deterministic Table 1 grid walk — a smoke/consistency workload
    exercising :mod:`repro.rake.scenarios` (no randomness).

``fault``
    Test-only fault injection: raise, hang, die or succeed after ``k``
    failed attempts, to exercise retry/backoff/degradation paths.

``chaos``
    Hardware-fault chaos: the descrambler kernel run under a seeded
    :class:`repro.faults.FaultInjector` schedule with a
    :class:`repro.faults.RecoveryPolicy` absorbing the damage.  The
    shard payload carries the final link ``status``
    (``ok``/``recovered``/``degraded``/``failed``), which the
    aggregator folds job- and campaign-wide.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.campaign.spec import CampaignError
from repro.campaign.sharding import ShardTask

#: Doppler per km/h per GHz of carrier: v/c * f = (kmh/3.6)/3e8 * f.
_DOPPLER_HZ_PER_KMH_GHZ = 1e9 / 3.6 / 2.99792458e8


#: Environment variable the simulator backends key off (kept in sync
#: with :data:`repro.xpp.scheduler.SCHEDULER_ENV` without importing the
#: simulator into every worker at module load).
_SCHEDULER_ENV = "REPRO_XPP_SCHEDULER"

#: Shared fastpath compile-cache directory (kept in sync with
#: :data:`repro.fastpath.cache.CACHE_DIR_ENV`, same no-import rule).
_CACHE_DIR_ENV = "REPRO_FASTPATH_CACHE_DIR"


def run_shard(task: ShardTask, attempt: int = 0) -> dict:
    """Execute one shard; returns its result payload.

    The job's ``backend`` is exported through ``REPRO_XPP_SCHEDULER``
    for the duration of the shard, so every simulator the runner builds
    without an explicit scheduler picks it up; the previous value is
    restored afterwards (workers are reused across jobs with different
    backends).  ``task.cache_dir`` is exported the same way through
    ``REPRO_FASTPATH_CACHE_DIR`` so fastpath shards share one on-disk
    compile cache: the first shard of a config stores the kernels, the
    other N-1 load them.

    With ``task.telemetry`` set, the runner executes inside a
    :class:`repro.telemetry.flight.FlightRecorder` and the payload
    gains a ``"telemetry"`` key (cycle-stamped events, metric and probe
    dumps — deterministic for a given shard seed).  The pool lifts it
    onto ``ShardOutcome.telemetry`` so aggregation never sees it.
    """
    try:
        runner = RUNNERS[task.kind]
    except KeyError:
        raise CampaignError(f"no runner for kind {task.kind!r}")
    prev = os.environ.get(_SCHEDULER_ENV)
    prev_cache = os.environ.get(_CACHE_DIR_ENV)
    os.environ[_SCHEDULER_ENV] = task.backend
    if task.cache_dir is not None:
        os.environ[_CACHE_DIR_ENV] = task.cache_dir
    try:
        if not task.telemetry:
            return runner(task, attempt)
        from repro.telemetry.flight import FlightRecorder
        with FlightRecorder(max_events=task.max_events) as flight:
            result = runner(task, attempt)
        result["telemetry"] = flight.payload()
        return result
    finally:
        if prev is None:
            os.environ.pop(_SCHEDULER_ENV, None)
        else:
            os.environ[_SCHEDULER_ENV] = prev
        if task.cache_dir is not None:
            if prev_cache is None:
                os.environ.pop(_CACHE_DIR_ENV, None)
            else:
                os.environ[_CACHE_DIR_ENV] = prev_cache


# -- wcdma ---------------------------------------------------------------------------


def doppler_from_params(params: dict) -> float:
    """``doppler_hz`` directly, or derived from ``speed_kmh`` at the
    ``carrier_ghz`` carrier (default 2 GHz)."""
    if "doppler_hz" in params:
        return float(params["doppler_hz"])
    if "speed_kmh" in params:
        carrier = float(params.get("carrier_ghz", 2.0))
        return float(params["speed_kmh"]) * carrier * _DOPPLER_HZ_PER_KMH_GHZ
    return 10.0


def _run_wcdma_dpch(task: ShardTask, attempt: int) -> dict:
    from repro.wcdma.frames import SLOT_FORMATS
    from repro.wcdma.link import DpchLink, LinkReport

    params = task.param_dict
    fmt_number = int(params.get("slot_format", 11))
    if fmt_number not in SLOT_FORMATS:
        raise CampaignError(f"unknown slot format {fmt_number}; "
                            f"have {sorted(SLOT_FORMATS)}")
    from repro.telemetry import get_metrics, get_tracer

    link = DpchLink(
        SLOT_FORMATS[fmt_number],
        scrambling_number=int(params.get("scrambling_number", 0)),
        code_index=int(params.get("code_index", 1)),
        target_sir_db=float(params.get("target_sir_db", 8.0)),
        snr_db=float(params.get("snr_db", 6.0)),
        doppler_hz=doppler_from_params(params),
        rng=task.rng())
    report = LinkReport()
    tracer = get_tracer()
    # slot-indexed, value-deterministic telemetry: the flight payload
    # must not depend on wall clock or worker placement
    for slot in range(int(params.get("n_slots", 15))):
        link.run_slot(report)
        if tracer.enabled:
            tracer.complete("dpch_slot", ts=slot, dur=1, cat="wcdma")
            tracer.counter("wcdma.bit_errors", report.bit_errors,
                           "wcdma", ts=slot)
    d = report.to_dict()
    counts = {k: d[k] for k in ("n_slots", "data_bits", "bit_errors",
                                "block_errors", "tpc_errors")}
    metrics = get_metrics()
    for k in ("n_slots", "bit_errors", "block_errors"):
        metrics.counter(f"wcdma.{k}").inc(counts[k])
    return {"counts": counts}


# -- ofdm ----------------------------------------------------------------------------


def _make_ofdm_receiver(params: dict):
    from repro.ofdm.receiver import OfdmReceiver

    flavor = params.get("receiver", "golden")
    if flavor == "golden":
        return OfdmReceiver()
    if flavor == "fixed":
        return OfdmReceiver(use_fixed_fft=True,
                            input_frac_bits=int(params.get(
                                "input_frac_bits", 8)))
    if flavor == "array":
        from repro.wlan.decoder import ArrayOfdmReceiver
        return ArrayOfdmReceiver(
            input_frac_bits=int(params.get("input_frac_bits", 8)))
    raise CampaignError(f"unknown ofdm receiver {flavor!r}")


def _run_ofdm_link(task: ShardTask, attempt: int) -> dict:
    from repro.ofdm.receiver import PacketError
    from repro.ofdm.transmitter import OfdmTransmitter
    from repro.wcdma.channel import awgn

    from repro.telemetry import get_metrics, get_tracer

    params = task.param_dict
    rng = task.rng()
    rate = int(params.get("rate_mbps", 12))
    snr_db = float(params.get("snr_db", 10.0))
    length = int(params.get("length_bytes", 40))
    n_packets = int(params.get("n_packets", 4))
    pad = int(params.get("pad_samples", 40))
    tx = OfdmTransmitter(rate)
    receiver = _make_ofdm_receiver(params)
    tracer = get_tracer()

    counts = {"n_packets": 0, "packet_errors": 0, "data_bits": 0,
              "bit_errors": 0, "signal_failures": 0}
    for packet in range(n_packets):
        if tracer.enabled:
            # packet-indexed timebase keeps the payload deterministic
            tracer.complete("ofdm_packet", ts=packet, dur=1, cat="ofdm")
            tracer.counter("ofdm.bit_errors", counts["bit_errors"],
                           "ofdm", ts=packet)
        psdu = rng.integers(0, 2, 8 * length)
        ppdu = tx.transmit(psdu)
        sig = awgn(np.concatenate([np.zeros(pad, complex), ppdu.samples]),
                   snr_db, rng)
        counts["n_packets"] += 1
        counts["data_bits"] += psdu.size
        try:
            out, report = receiver.receive(sig, expected_rate=rate)
        except PacketError:
            counts["packet_errors"] += 1
            counts["bit_errors"] += psdu.size
            counts["signal_failures"] += 1
            continue
        if not report.signal_ok:
            counts["signal_failures"] += 1
        if out.size != psdu.size:
            counts["packet_errors"] += 1
            counts["bit_errors"] += psdu.size
            continue
        errors = int(np.sum(out != psdu))
        counts["bit_errors"] += errors
        counts["packet_errors"] += 1 if errors else 0
    metrics = get_metrics()
    for k in ("n_packets", "packet_errors", "bit_errors"):
        metrics.counter(f"ofdm.{k}").inc(counts[k])
    return {"counts": counts}


# -- rake scenarios ------------------------------------------------------------------


def _run_rake_scenarios(task: ShardTask, attempt: int) -> dict:
    from repro.rake.scenarios import FingerScenario, table1

    params = task.param_dict
    max_bs = int(params.get("max_basestations", 6))
    max_ch = int(params.get("max_channels", 2))
    max_mp = int(params.get("max_multipaths", 3))
    feasible = 0
    full_clock = 0
    fingers = 0
    total = 0
    for bs in range(1, max_bs + 1):
        for ch in range(1, max_ch + 1):
            for mp in range(1, max_mp + 1):
                total += 1
                s = FingerScenario(bs, ch, mp)
                if not s.feasible:
                    continue
                feasible += 1
                fingers += s.logical_fingers
                full_clock += 1 if s.requires_full_clock else 0
    rows = table1(max_basestations=max_bs, max_multipaths=max_mp)
    from repro.telemetry import get_metrics, get_tracer
    tracer = get_tracer()
    if tracer.enabled:
        tracer.complete("table1_walk", ts=0, dur=total, cat="rake")
        tracer.counter("rake.feasible", feasible, "rake", ts=total)
    get_metrics().counter("rake.scenarios").inc(total)
    return {"counts": {"scenarios": total, "feasible": feasible,
                       "full_clock": full_clock,
                       "logical_fingers": fingers},
            "info": {"table1_rows": [list(r) for r in rows]}}


# -- fault injection (tests) ---------------------------------------------------------


def _run_fault(task: ShardTask, attempt: int) -> dict:
    """Deterministic failures for the pool's fault-tolerance tests."""
    params = task.param_dict
    mode = params.get("mode", "ok")
    if mode == "raise":
        raise RuntimeError(f"injected fault (shard {task.shard_index})")
    if mode == "hang":
        time.sleep(float(params.get("sleep_s", 60.0)))
    elif mode == "die_once" and attempt < int(params.get("fail_attempts", 1)):
        # kill the worker mid-shard without a result (pool runs only:
        # under the serial runner this would take the campaign with it)
        os._exit(3)
    elif mode == "flaky" and attempt < int(params.get("fail_attempts", 1)):
        raise RuntimeError(f"injected flaky fault (attempt {attempt})")
    elif mode not in ("ok", "flaky", "die_once"):
        raise CampaignError(f"unknown fault mode {mode!r}")
    # a token draw so fault shards still exercise the RNG plumbing
    value = int(task.rng().integers(0, 1000))
    return {"counts": {"works": 1, "value": value,
                       "attempts_used": attempt + 1}}


# -- chaos (hardware fault injection) ------------------------------------------------


def _chaos_pass(cfg, mgr, code, packed, n_chips: int, half_bits: int):
    """One descrambler pass on whatever is currently resident."""
    from repro.fixed import unpack_array
    from repro.xpp.simulator import Simulator

    cfg.sources["code"].set_data(code)
    cfg.sources["data"].set_data(packed)
    sink = cfg.sinks["out"]
    sim = Simulator(mgr)
    sim.run(40 * n_chips + 400, until=lambda: sink.done)
    return unpack_array(np.array(sink.received, dtype=np.int64), half_bits)


def _run_chaos(task: ShardTask, attempt: int) -> dict:
    """Descrambler kernel under a seeded fault schedule with recovery.

    Fault rates come straight from the job params (``stuck_at``,
    ``transient``, ``token_drop``, ``token_dup``, ``ram_bit_flip``,
    ``config_load`` — expected injection counts fed to
    :func:`repro.faults.plan_faults`); ``load_failures`` additionally
    schedules that many deterministic configuration-bus failures, so a
    smoke campaign can force the retry budget to exhaust.  The payload
    ``status`` is the link's final state after the recovery policy has
    absorbed everything: corrupted output triggers a remap onto spare
    PAEs with the suspect slot quarantined, and when all else fails the
    golden software model keeps the link up at ``degraded``.
    """
    from repro.faults import (
        STATUS_DEGRADED,
        ConfigLoadFault,
        FaultInjector,
        RecoveryPolicy,
        plan_faults,
        worst_status,
    )
    from repro.fixed import pack_array
    from repro.kernels.descrambler import (
        build_descrambler_config,
        descrambler_golden,
    )
    from repro.xpp.manager import ConfigurationManager

    params = task.param_dict
    rng = task.rng()
    n_chips = int(params.get("n_chips", 64))
    retries = int(params.get("retries", 3))
    half_bits = 12
    lim = 1 << (half_bits - 1)
    data_re = rng.integers(-lim, lim, n_chips)
    data_im = rng.integers(-lim, lim, n_chips)
    code = rng.integers(0, 4, n_chips)
    golden = descrambler_golden(data_re, data_im, code)
    packed = pack_array(data_re + 1j * data_im, half_bits)

    cfg = build_descrambler_config(half_bits=half_bits)
    cfg.sinks["out"].expect = n_chips
    rates = {k: float(params.get(k, 0.0)) for k in
             ("stuck_at", "transient", "token_drop", "token_dup",
              "ram_bit_flip", "config_load")}
    faults = plan_faults(cfg, rng, rates=rates,
                         horizon=int(params.get("horizon", n_chips)))
    load_failures = int(params.get("load_failures", 0))
    if load_failures:
        faults.append(ConfigLoadFault(config=cfg.name, mode="fail",
                                      count=load_failures))

    injector = FaultInjector(faults)
    mgr = ConfigurationManager()
    injector.arm_manager(mgr)
    injector.arm_config(cfg)
    policy = RecoveryPolicy(mgr, retries=retries)

    counts = {"runs": 1, "planned_faults": len(faults),
              "output_errors": 0, "remaps": 0, "golden_fallbacks": 0}
    out = None
    if policy.load_with_recovery(cfg).ok:
        out = _chaos_pass(cfg, mgr, code, packed, n_chips, half_bits)
        errors = int(np.sum(out != golden)) if out.size == golden.size \
            else n_chips
        counts["output_errors"] = errors
        if errors:
            # corrupted output detected: a remapped load routes around
            # the suspect PAEs, so the rerun must leave the injected
            # wire/RAM faults behind — detach before remapping
            injector.detach()
            entry = mgr.loaded.get(cfg.name)
            bad = entry.slots[:1] if entry is not None else ()
            counts["remaps"] = 1
            out = _chaos_pass(cfg, mgr, code, packed, n_chips, half_bits) \
                if policy.handle_corruption(cfg, bad_slots=bad).ok else None

    status = policy.status
    if out is None or out.size != golden.size or bool(np.any(out != golden)):
        # terminal fallback: the golden software model keeps the link up
        counts["golden_fallbacks"] = 1
        policy.degrade(cfg.name, "array output unrecoverable")
        status = worst_status((status, STATUS_DEGRADED))
    injector.detach()
    counts["injections"] = len(injector.events)
    counts[f"{status}_runs"] = 1
    return {"counts": counts, "status": status}


RUNNERS = {
    "wcdma_dpch": _run_wcdma_dpch,
    "ofdm_link": _run_ofdm_link,
    "rake_scenarios": _run_rake_scenarios,
    "fault": _run_fault,
    "chaos": _run_chaos,
}

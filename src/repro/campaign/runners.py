"""Shard runners: one Monte-Carlo work unit per job kind.

A runner executes one shard with the shard's private RNG and returns a
JSON-serializable payload::

    {"counts": {<summable integer fields>}, "info": {<optional, not
     summed — identical for every shard of a job>}}

``counts`` is what the aggregator sums across a job's shards; the
kind's metric table (:data:`repro.campaign.aggregate.KIND_METRICS`)
names which count pairs turn into rates with confidence intervals.

Runner kinds
------------

``wcdma_dpch``
    The closed-loop DPCH link of :class:`repro.wcdma.link.DpchLink`:
    ``n_slots`` slots at one (Eb/N0, speed, slot format) point.
    ``speed_kmh`` is accepted as an alternative to ``doppler_hz``
    (Doppler at ``carrier_ghz``, default 2 GHz).

``ofdm_link``
    The 802.11a chain: ``n_packets`` packets transmitted, passed
    through AWGN at ``snr_db`` and decoded by the golden
    :class:`~repro.ofdm.receiver.OfdmReceiver` (``receiver="golden"``),
    the fixed-point-FFT variant (``"fixed"``) or the cycle-accurate
    array receiver (``"array"``).  A packet that fails to decode
    counts one packet error and, conservatively, all of its payload
    bits as bit errors.

``rake_scenarios``
    The deterministic Table 1 grid walk — a smoke/consistency workload
    exercising :mod:`repro.rake.scenarios` (no randomness).

``fault``
    Test-only fault injection: raise, hang or succeed after ``k``
    failed attempts, to exercise retry/backoff/degradation paths.
"""

from __future__ import annotations

import time

import numpy as np

from repro.campaign.spec import CampaignError
from repro.campaign.sharding import ShardTask

#: Doppler per km/h per GHz of carrier: v/c * f = (kmh/3.6)/3e8 * f.
_DOPPLER_HZ_PER_KMH_GHZ = 1e9 / 3.6 / 2.99792458e8


def run_shard(task: ShardTask, attempt: int = 0) -> dict:
    """Execute one shard; returns its result payload."""
    try:
        runner = RUNNERS[task.kind]
    except KeyError:
        raise CampaignError(f"no runner for kind {task.kind!r}")
    return runner(task, attempt)


# -- wcdma ---------------------------------------------------------------------------


def doppler_from_params(params: dict) -> float:
    """``doppler_hz`` directly, or derived from ``speed_kmh`` at the
    ``carrier_ghz`` carrier (default 2 GHz)."""
    if "doppler_hz" in params:
        return float(params["doppler_hz"])
    if "speed_kmh" in params:
        carrier = float(params.get("carrier_ghz", 2.0))
        return float(params["speed_kmh"]) * carrier * _DOPPLER_HZ_PER_KMH_GHZ
    return 10.0


def _run_wcdma_dpch(task: ShardTask, attempt: int) -> dict:
    from repro.wcdma.frames import SLOT_FORMATS
    from repro.wcdma.link import DpchLink, LinkReport

    params = task.param_dict
    fmt_number = int(params.get("slot_format", 11))
    if fmt_number not in SLOT_FORMATS:
        raise CampaignError(f"unknown slot format {fmt_number}; "
                            f"have {sorted(SLOT_FORMATS)}")
    link = DpchLink(
        SLOT_FORMATS[fmt_number],
        scrambling_number=int(params.get("scrambling_number", 0)),
        code_index=int(params.get("code_index", 1)),
        target_sir_db=float(params.get("target_sir_db", 8.0)),
        snr_db=float(params.get("snr_db", 6.0)),
        doppler_hz=doppler_from_params(params),
        rng=task.rng())
    report = LinkReport()
    for _ in range(int(params.get("n_slots", 15))):
        link.run_slot(report)
    d = report.to_dict()
    return {"counts": {k: d[k] for k in ("n_slots", "data_bits",
                                         "bit_errors", "block_errors",
                                         "tpc_errors")}}


# -- ofdm ----------------------------------------------------------------------------


def _make_ofdm_receiver(params: dict):
    from repro.ofdm.receiver import OfdmReceiver

    flavor = params.get("receiver", "golden")
    if flavor == "golden":
        return OfdmReceiver()
    if flavor == "fixed":
        return OfdmReceiver(use_fixed_fft=True,
                            input_frac_bits=int(params.get(
                                "input_frac_bits", 8)))
    if flavor == "array":
        from repro.wlan.decoder import ArrayOfdmReceiver
        return ArrayOfdmReceiver(
            input_frac_bits=int(params.get("input_frac_bits", 8)))
    raise CampaignError(f"unknown ofdm receiver {flavor!r}")


def _run_ofdm_link(task: ShardTask, attempt: int) -> dict:
    from repro.ofdm.receiver import PacketError
    from repro.ofdm.transmitter import OfdmTransmitter
    from repro.wcdma.channel import awgn

    params = task.param_dict
    rng = task.rng()
    rate = int(params.get("rate_mbps", 12))
    snr_db = float(params.get("snr_db", 10.0))
    length = int(params.get("length_bytes", 40))
    n_packets = int(params.get("n_packets", 4))
    pad = int(params.get("pad_samples", 40))
    tx = OfdmTransmitter(rate)
    receiver = _make_ofdm_receiver(params)

    counts = {"n_packets": 0, "packet_errors": 0, "data_bits": 0,
              "bit_errors": 0, "signal_failures": 0}
    for _ in range(n_packets):
        psdu = rng.integers(0, 2, 8 * length)
        ppdu = tx.transmit(psdu)
        sig = awgn(np.concatenate([np.zeros(pad, complex), ppdu.samples]),
                   snr_db, rng)
        counts["n_packets"] += 1
        counts["data_bits"] += psdu.size
        try:
            out, report = receiver.receive(sig, expected_rate=rate)
        except PacketError:
            counts["packet_errors"] += 1
            counts["bit_errors"] += psdu.size
            counts["signal_failures"] += 1
            continue
        if not report.signal_ok:
            counts["signal_failures"] += 1
        if out.size != psdu.size:
            counts["packet_errors"] += 1
            counts["bit_errors"] += psdu.size
            continue
        errors = int(np.sum(out != psdu))
        counts["bit_errors"] += errors
        counts["packet_errors"] += 1 if errors else 0
    return {"counts": counts}


# -- rake scenarios ------------------------------------------------------------------


def _run_rake_scenarios(task: ShardTask, attempt: int) -> dict:
    from repro.rake.scenarios import FingerScenario, table1

    params = task.param_dict
    max_bs = int(params.get("max_basestations", 6))
    max_ch = int(params.get("max_channels", 2))
    max_mp = int(params.get("max_multipaths", 3))
    feasible = 0
    full_clock = 0
    fingers = 0
    total = 0
    for bs in range(1, max_bs + 1):
        for ch in range(1, max_ch + 1):
            for mp in range(1, max_mp + 1):
                total += 1
                s = FingerScenario(bs, ch, mp)
                if not s.feasible:
                    continue
                feasible += 1
                fingers += s.logical_fingers
                full_clock += 1 if s.requires_full_clock else 0
    rows = table1(max_basestations=max_bs, max_multipaths=max_mp)
    return {"counts": {"scenarios": total, "feasible": feasible,
                       "full_clock": full_clock,
                       "logical_fingers": fingers},
            "info": {"table1_rows": [list(r) for r in rows]}}


# -- fault injection (tests) ---------------------------------------------------------


def _run_fault(task: ShardTask, attempt: int) -> dict:
    """Deterministic failures for the pool's fault-tolerance tests."""
    params = task.param_dict
    mode = params.get("mode", "ok")
    if mode == "raise":
        raise RuntimeError(f"injected fault (shard {task.shard_index})")
    if mode == "hang":
        time.sleep(float(params.get("sleep_s", 60.0)))
    elif mode == "flaky" and attempt < int(params.get("fail_attempts", 1)):
        raise RuntimeError(f"injected flaky fault (attempt {attempt})")
    elif mode not in ("ok", "flaky"):
        raise CampaignError(f"unknown fault mode {mode!r}")
    # a token draw so fault shards still exercise the RNG plumbing
    value = int(task.rng().integers(0, 1000))
    return {"counts": {"works": 1, "value": value,
                       "attempts_used": attempt + 1}}


RUNNERS = {
    "wcdma_dpch": _run_wcdma_dpch,
    "ofdm_link": _run_ofdm_link,
    "rake_scenarios": _run_rake_scenarios,
    "fault": _run_fault,
}

"""The OFDM decoder application on the terminal (paper Sec. 3.2).

The WLAN receive chain partitioned per Fig. 8 and scheduled on the
array per Fig. 10:

* :mod:`repro.wlan.frontend` — array kernels for down-sampling and the
  preamble-detection correlator (configuration 2a);
* :mod:`repro.wlan.decoder` — the receiver whose FFTs run on the
  simulated array (configuration 1's FFT64), plus the demodulator
  kernel (configuration 2b);
* :mod:`repro.wlan.schedule` — the Fig. 10 configuration lifecycle:
  config 1 resident, config 2a removed after acquisition, config 2b
  loaded into the freed resources.
"""

from repro.wlan.frontend import (
    build_downsampler_config,
    build_interpolator_config,
    build_preamble_correlator_config,
    DownsamplerKernel,
    InterpolatorKernel,
    PreambleCorrelatorKernel,
    interpolator_golden,
)
from repro.wlan.decoder import ArrayOfdmReceiver, build_equalizer_config
from repro.wlan.schedule import Fig10Schedule

__all__ = [
    "ArrayOfdmReceiver",
    "DownsamplerKernel",
    "Fig10Schedule",
    "InterpolatorKernel",
    "PreambleCorrelatorKernel",
    "build_downsampler_config",
    "build_equalizer_config",
    "build_interpolator_config",
    "build_preamble_correlator_config",
    "interpolator_golden",
]

"""The Fig. 10 configuration lifecycle.

Modules of configuration 1 (down-sampling, FFT64, descrambler) run
continuously and remain on the array.  Configuration 2a (the
preamble-detection correlator) is removed after acquisition; the freed
resources are then available for the demodulation tasks of
configuration 2b.
"""

from __future__ import annotations

from typing import Optional

from repro.kernels.fft64 import build_fft_stage_config
from repro.telemetry import get_metrics, get_tracer
from repro.wlan.decoder import build_equalizer_config
from repro.wlan.frontend import (
    build_downsampler_config,
    build_preamble_correlator_config,
)
from repro.xpp import ConfigurationManager, ResourceError, XppArray


class Fig10Schedule:
    """Drives the resident/acquisition/demodulation configuration set.

    States: ``idle`` -> ``acquiring`` (configs 1 + 2a loaded) ->
    ``demodulating`` (2a removed, 2b loaded into the freed resources).
    """

    def __init__(self, manager: Optional[ConfigurationManager] = None, *,
                 array: Optional[XppArray] = None):
        if manager is None:
            manager = ConfigurationManager(array if array is not None
                                           else XppArray())
        self.manager = manager
        self.state = "idle"
        self.reconfig_cycles = 0
        self.config1 = None
        self.config2a = None
        self.config2b = None

    # -- configuration factories ---------------------------------------------------

    @staticmethod
    def build_config1() -> list:
        """The always-resident modules: down-sampler + FFT64 stage
        hardware (with an idle RAM image) — the paper's configuration 1."""
        fft = build_fft_stage_config(0, [0] * 64, name="resident_fft")
        down = build_downsampler_config(2, name="resident_downsampler")
        return [down, fft]

    @staticmethod
    def build_config2a():
        """Preamble-detection correlator."""
        return build_preamble_correlator_config(name="acq_correlator")

    @staticmethod
    def build_config2b():
        """Demodulator (per-carrier equaliser over the 52 used
        carriers)."""
        return build_equalizer_config([1.0 + 0j] * 52, name="demodulator")

    # -- lifecycle ------------------------------------------------------------------

    def _set_state(self, new_state: str) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant("fig10.state", "wlan",
                           args={"from": self.state, "to": new_state})
        self.state = new_state

    def start_acquisition(self) -> None:
        if self.state != "idle":
            raise RuntimeError(f"cannot start acquisition from {self.state}")
        self.config1 = self.build_config1()
        self.config2a = self.build_config2a()
        for cfg in self.config1:
            self.reconfig_cycles += self.manager.load(cfg).load_cycles
        self.reconfig_cycles += self.manager.load(self.config2a).load_cycles
        self._set_state("acquiring")

    def acquisition_done(self) -> int:
        """Remove 2a and load 2b into the freed resources.

        Returns the reconfiguration cycles of the swap.  Configuration 1
        remains loaded throughout (verified against the manager).  With
        tracing on the swap is a ``fig10.swap`` span wrapping the
        manager's ``config.remove:acq_correlator`` and
        ``config.load:demodulator`` spans — the Fig. 10 picture in
        trace form.
        """
        if self.state != "acquiring":
            raise RuntimeError(f"cannot finish acquisition from {self.state}")
        tracer = get_tracer()
        swap_start = tracer.now()
        swap = self.manager.remove(self.config2a)
        self.config2b = self.build_config2b()
        swap += self.manager.load(self.config2b).load_cycles
        self.reconfig_cycles += swap
        for cfg in self.config1:
            if not self.manager.is_loaded(cfg.name):
                raise ResourceError(
                    f"resident configuration {cfg.name} was disturbed")
        if tracer.enabled:
            tracer.complete("fig10.swap", ts=swap_start, dur=swap, cat="wlan",
                            args={"removed": self.config2a.name,
                                  "loaded": self.config2b.name,
                                  "swap_cycles": swap})
        metrics = get_metrics()
        if metrics.enabled:
            metrics.histogram("fig10.swap_cycles").observe(swap)
        self._set_state("demodulating")
        return swap

    def stop(self) -> None:
        """Tear everything down."""
        for cfg in list(self.manager.loaded):
            self.reconfig_cycles += self.manager.remove(cfg)
        self._set_state("idle")

    # -- reporting ------------------------------------------------------------------

    def occupancy(self) -> dict:
        return self.manager.occupancy()

    def footprint(self) -> dict:
        """ALU/RAM demand of each configuration set (for the Fig. 10
        resource map)."""
        def req(cfgs):
            from collections import Counter
            total = Counter()
            for c in (cfgs if isinstance(cfgs, list) else [cfgs]):
                total.update(c.requirements())
            return dict(total)

        return {
            "config1": req(self.build_config1()),
            "config2a": req(self.build_config2a()),
            "config2b": req(self.build_config2b()),
        }

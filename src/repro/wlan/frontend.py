"""Array front-end kernels: down-sampling and preamble detection.

Fig. 8 maps 'framing and sync' onto the reconfigurable processor: the
complex input samples are down-sampled and propagated to the preamble
detection for framing and synchronisation.  The preamble-detection
correlator is configuration 2a of Fig. 10 — its resources are removed
after acquisition.
"""

from __future__ import annotations

import numpy as np

from repro.fixed import pack_array, unpack_array
from repro.xpp import ConfigBuilder, Configuration, execute

#: Lag of the delay-and-correlate detector: the short training symbol
#: period (16 samples at 20 MHz).
CORRELATOR_LAG = 16


def build_downsampler_config(factor: int = 2, *, half_bits: int = 12,
                             name: str = "downsampler") -> Configuration:
    """Keep every ``factor``-th complex sample (decimation)."""
    if factor < 1:
        raise ValueError("downsampling factor must be >= 1")
    b = ConfigBuilder(name)
    src = b.source("in", bits=2 * half_bits)
    counter = b.alu("COUNTER", name="phase", limit=factor)
    keep = b.alu("CMPEQ", name="keep_phase", const=0)
    gate = b.alu("GATE", name="decimate", bits=2 * half_bits)
    snk = b.sink("out")
    b.connect(counter, "value", keep, "a")
    b.connect(keep, 0, gate, "ctrl")
    b.connect(src, 0, gate, "a")
    b.connect(gate, 0, snk, 0)
    return b.build()


class DownsamplerKernel:
    """Runs the decimator on the array."""

    def __init__(self, factor: int = 2, *, half_bits: int = 12):
        self.factor = factor
        self.half_bits = half_bits

    def run(self, samples: np.ndarray):
        s = np.asarray(samples)
        cfg = build_downsampler_config(self.factor, half_bits=self.half_bits)
        cfg.sinks["out"].expect = -(-s.size // self.factor)
        result = execute(cfg, inputs={"in": pack_array(s, self.half_bits)},
                         max_cycles=20 * s.size + 200)
        return unpack_array(np.array(result["out"]), self.half_bits), \
            result.stats


def build_interpolator_config(*, half_bits: int = 12,
                              name: str = "interpolator") -> Configuration:
    """Linear x2 interpolator: ``y[2n] = x[n]``,
    ``y[2n+1] = (x[n] + x[n+1]) / 2``.

    Built from a register delay, a packed-complex averaging adder, a
    first-sample discard gate and an alternating merge — the
    'interpolated' step of the paper's front end.
    """
    b = ConfigBuilder(name)
    src = b.source("in", bits=2 * half_bits)
    delay = b.alu("REG", name="delay", init=[0], bits=2 * half_bits)
    avg = b.alu("CADD", name="average", half_bits=half_bits, shift=1)
    b.connect(src, 0, delay, 0)
    b.connect(src, 0, avg, "a")
    b.connect(delay, 0, avg, "b")

    # the first average pairs x[0] with the register's dummy 0: drop it
    skip_cnt = b.alu("COUNTER", name="skip_counter")
    skip_cmp = b.alu("CMPGE", name="skip_cmp", const=1)
    gate = b.alu("GATE", name="skip_first", bits=2 * half_bits)
    b.connect(skip_cnt, "value", skip_cmp, "a")
    b.connect(skip_cmp, 0, gate, "ctrl", capacity=8)
    b.connect(avg, 0, gate, "a")

    mrg_cnt = b.alu("COUNTER", name="merge_counter", limit=2)
    merge = b.alu("MERGE", name="interleave", bits=2 * half_bits)
    snk = b.sink("out")
    b.connect(mrg_cnt, "value", merge, "sel", capacity=8)
    b.connect(src, 0, merge, "a")
    b.connect(gate, 0, merge, "b")
    b.connect(merge, 0, snk, 0)
    return b.build()


def interpolator_golden(samples: np.ndarray) -> np.ndarray:
    """Reference for the x2 interpolator (integer halves truncate like
    the datapath shift)."""
    x = np.asarray(samples)
    n = x.size
    if n < 2:
        return x[:0]
    out = np.empty(2 * (n - 1), dtype=np.complex128)
    out[0::2] = x[:-1]
    sums = x[:-1] + x[1:]
    out[1::2] = (sums.real.astype(np.int64) >> 1) \
        + 1j * (sums.imag.astype(np.int64) >> 1)
    return out


class InterpolatorKernel:
    """Runs the x2 interpolator on the array."""

    def __init__(self, *, half_bits: int = 12):
        self.half_bits = half_bits

    def run(self, samples: np.ndarray):
        s = np.asarray(samples)
        if s.size < 2:
            raise ValueError("need at least two samples")
        cfg = build_interpolator_config(half_bits=self.half_bits)
        cfg.sinks["out"].expect = 2 * (s.size - 1)
        result = execute(cfg, inputs={"in": pack_array(s, self.half_bits)},
                         max_cycles=30 * s.size + 300)
        return unpack_array(np.array(result["out"]), self.half_bits), \
            result.stats


def build_preamble_correlator_config(*, lag: int = CORRELATOR_LAG,
                                     window: int = 32,
                                     half_bits: int = 12,
                                     product_shift: int = 8,
                                     threshold: int = 400,
                                     name: str = "preamble_corr"
                                     ) -> Configuration:
    """The delay-and-correlate packet detector (configuration 2a).

    ``c[n] = sum_{k<window} r[n-k] * conj(r[n-k-lag])`` built from a
    lag-delay FIFO, a conjugating complex multiplier (products scaled by
    ``2^-product_shift``), a window-delay FIFO with a running-sum
    feedback register, and an |re|+|im| magnitude proxy compared against
    ``threshold``.  Outputs the metric stream and the detection flags.
    """
    b = ConfigBuilder(name)
    src = b.source("in", bits=2 * half_bits)
    delay = b.fifo(name="lag_delay", depth=lag, preload=[0] * lag,
                   bits=2 * half_bits)
    prod = b.alu("CMUL", name="lag_corr", half_bits=half_bits,
                 shift=product_shift, conj_b=True)
    b.connect(src, 0, delay, 0)
    b.connect(src, 0, prod, "a")
    b.connect(delay, 0, prod, "b")

    # running windowed sum: sum += p[n] - p[n-window]; the accumulator
    # register feeds back inside the ALU (single-cycle recurrence)
    win_delay = b.fifo(name="window_delay", depth=window,
                       preload=[0] * window, bits=2 * half_bits)
    diff = b.alu("CSUB", name="new_minus_old", half_bits=half_bits)
    acc = b.alu("CINTEG", name="running_sum", half_bits=half_bits)
    b.connect(prod, 0, win_delay, 0)
    b.connect(prod, 0, diff, "a")
    b.connect(win_delay, 0, diff, "b")
    b.connect(diff, 0, acc, 0)

    # |re| + |im| magnitude proxy and threshold comparison
    unpack = b.alu("UNPACK", name="mag_unpack", half_bits=half_bits)
    abs_re = b.alu("ABS", name="abs_re")
    abs_im = b.alu("ABS", name="abs_im")
    mag = b.alu("ADD", name="mag_sum")
    detect = b.alu("CMPGE", name="detect_cmp", const=threshold)
    metric_snk = b.sink("metric")
    flag_snk = b.sink("detect")
    b.connect(acc, 0, unpack, 0)
    b.connect(unpack, "re", abs_re, 0)
    b.connect(unpack, "im", abs_im, 0)
    b.connect(abs_re, 0, mag, "a")
    b.connect(abs_im, 0, mag, "b")
    b.connect(mag, 0, metric_snk, 0)
    b.connect(mag, 0, detect, "a")
    b.connect(detect, 0, flag_snk, 0)
    return b.build()


class PreambleCorrelatorKernel:
    """Runs the configuration-2a correlator on the array."""

    def __init__(self, **params):
        self.params = params

    def run(self, samples: np.ndarray):
        """Returns ``(metric, flags, stats)`` streams, one per sample."""
        s = np.asarray(samples)
        half_bits = self.params.get("half_bits", 12)
        cfg = build_preamble_correlator_config(**self.params)
        cfg.sinks["metric"].expect = s.size
        cfg.sinks["detect"].expect = s.size
        result = execute(cfg, inputs={"in": pack_array(s, half_bits)},
                         max_cycles=40 * s.size + 500)
        return (np.array(result["metric"]), np.array(result["detect"]),
                result.stats)

    def first_detection(self, samples: np.ndarray) -> int:
        """Sample index of the first detection flag, or -1."""
        _metric, flags, _stats = self.run(samples)
        hits = np.nonzero(flags)[0]
        return int(hits[0]) if hits.size else -1

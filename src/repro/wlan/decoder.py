"""OFDM decoding with the data path on the simulated array.

:class:`ArrayOfdmReceiver` is the reference receiver with its FFTs
executed by the Fig. 9 array kernel (configuration 1's FFT64) instead
of floating-point numpy; :func:`build_equalizer_config` is the
demodulator of configuration 2b — per-carrier channel weighting with a
circular weight FIFO, mirroring the rake's channel correction.
"""

from __future__ import annotations


import numpy as np

from repro.fixed import pack_array, to_fixed, unpack_array
from repro.kernels.fft64 import Fft64Kernel
from repro.ofdm.fft import N_STAGES, STAGE_SHIFT
from repro.ofdm.params import N_FFT
from repro.ofdm.receiver import OfdmReceiver
from repro.xpp import ConfigBuilder, Configuration, execute


class ArrayOfdmReceiver(OfdmReceiver):
    """The 802.11a receiver with its datapath on the array.

    Every 64-point FFT runs on the Fig. 9 kernel (configuration 1);
    with ``use_array_equalizer=True`` the per-carrier channel
    equalisation also runs on the configuration-2b kernel.  Slower than
    the golden receiver (it simulates the hardware cycle by cycle) but
    demonstrates the real datapath: quantisation to the input widths,
    per-stage scaling, weight FIFOs.  Collects cumulative array
    statistics in :attr:`fft_invocations`, :attr:`equalizer_invocations`
    and :attr:`array_cycles`.
    """

    #: Logical carrier order the equaliser weight FIFO cycles through.
    _USED_CARRIERS = tuple(k for k in range(-26, 27) if k != 0)

    def __init__(self, *, input_frac_bits: int = 8,
                 use_array_equalizer: bool = False,
                 carrier_frac_bits: int = 7, **kw):
        kw.pop("use_fixed_fft", None)
        super().__init__(use_fixed_fft=False, input_frac_bits=input_frac_bits,
                         **kw)
        self.kernel = Fft64Kernel()
        self.use_array_equalizer = use_array_equalizer
        self.carrier_frac_bits = carrier_frac_bits
        self.fft_invocations = 0
        self.equalizer_invocations = 0
        self.array_cycles = 0
        self._eq_config_h = None
        self._eq_weights = None

    def _fft(self, samples: np.ndarray) -> np.ndarray:
        scale = float(1 << self.input_frac_bits)
        re = np.round(np.real(samples) * scale).astype(np.int64)
        im = np.round(np.imag(samples) * scale).astype(np.int64)
        yr, yi = self.kernel.run(re, im)
        self.fft_invocations += 1
        self.array_cycles += sum(s.cycles for s in self.kernel.last_stats)
        norm = scale / float(1 << (N_STAGES * STAGE_SHIFT))
        return (yr + 1j * yi) / norm / np.sqrt(N_FFT)

    def _equalized_symbol(self, rx: np.ndarray, start: int,
                          h: np.ndarray, polarity: int) -> np.ndarray:
        if not self.use_array_equalizer:
            return super()._equalized_symbol(rx, start, h, polarity)
        from repro.ofdm.params import DATA_CARRIERS, N_CP, PILOT_CARRIERS, \
            PILOT_VALUES
        from repro.ofdm.receiver import SYMBOL

        bins = self._fft(rx[start + N_CP:start + SYMBOL])
        if self._eq_weights is None or self._eq_config_h is not h:
            # DSP side: conj(h)/|h|^2 per used carrier (clamped by the
            # weight quantiser on deeply faded carriers)
            weights = []
            for k in self._USED_CARRIERS:
                hk = h[k % 64]
                weights.append(np.conj(hk) / abs(hk) ** 2 if abs(hk) > 1e-6
                               else 0j)
            self._eq_weights = weights
            self._eq_config_h = h

        carriers = np.array([bins[k % 64] for k in self._USED_CARRIERS])
        scale = float(1 << self.carrier_frac_bits)
        quantised = np.round(carriers.real * scale) \
            + 1j * np.round(carriers.imag * scale)
        eq_int, stats = run_equalizer(quantised, self._eq_weights)
        self.equalizer_invocations += 1
        self.array_cycles += stats.cycles
        eq = dict(zip(self._USED_CARRIERS, eq_int / scale))

        pilot_ref = polarity * np.array(PILOT_VALUES, dtype=np.complex128)
        pilot_rx = np.array([eq[k] for k in PILOT_CARRIERS])
        cpe = np.vdot(pilot_ref, pilot_rx)
        phase = cpe / np.abs(cpe) if np.abs(cpe) > 0 else 1.0
        return np.array([eq[k] for k in DATA_CARRIERS]) * np.conj(phase)


def build_equalizer_config(channel_weights, *, half_bits: int = 12,
                           frac_bits: int = 10,
                           name: str = "demodulator") -> Configuration:
    """Configuration 2b: per-carrier equalisation.

    ``channel_weights`` are the complex multipliers (typically
    ``conj(h_k)/|h_k|^2`` for the used carriers, precomputed by the
    DSP); they cycle from a circular weight FIFO into a complex
    multiplier, one carrier per cycle.
    """
    weights = list(channel_weights)
    if not weights:
        raise ValueError("need at least one carrier weight")
    b = ConfigBuilder(name)
    src = b.source("carriers", bits=2 * half_bits)
    packed = []
    for w in weights:
        wre = int(to_fixed(complex(w).real, frac_bits, half_bits))
        wim = int(to_fixed(complex(w).imag, frac_bits, half_bits))
        packed.append((wre & ((1 << half_bits) - 1)) << half_bits
                      | (wim & ((1 << half_bits) - 1)))
    fifo = b.fifo(name="carrier_weights", depth=len(packed), preload=packed,
                  circular=True, bits=2 * half_bits)
    mul = b.alu("CMUL", name="equalise", half_bits=half_bits,
                shift=frac_bits)
    snk = b.sink("out")
    b.connect(src, 0, mul, "a")
    b.connect(fifo, 0, mul, "b")
    b.connect(mul, 0, snk, 0)
    return b.build()


def run_equalizer(carriers: np.ndarray, channel_weights, *,
                  half_bits: int = 12, frac_bits: int = 10):
    """Equalise a carrier stream (symbol-major) through the 2b kernel."""
    c = np.asarray(carriers)
    cfg = build_equalizer_config(channel_weights, half_bits=half_bits,
                                 frac_bits=frac_bits)
    cfg.sinks["out"].expect = c.size
    result = execute(cfg, inputs={"carriers": pack_array(c, half_bits)},
                     max_cycles=20 * c.size + 300)
    return unpack_array(np.array(result["out"]), half_bits), result.stats

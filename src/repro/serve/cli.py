"""``repro-serve`` — run, inspect and drain the session service.

Subcommands
===========

``run``
    Start a broker over N shards and serve a mix of rake/OFDM
    sessions, either ad hoc (``--rake 4 --ofdm 4``) or from a JSON
    service spec (``--config service.json``, the
    :func:`repro.serve.session.expand_sessions` format).  With
    ``--resume`` the incomplete sessions of an existing journal are
    re-admitted from their last checkpoints first.

``status``
    Fold a journal into service-level facts (admitted / complete /
    migrations / shed / last progress).  Exit 0 when the journal is
    readable, even mid-run — status is a read-only observer.

``drain``
    Drop the drain flag next to the journal; the running broker polls
    it between rounds, checkpoints every resident session and exits
    with status ``drained``.  ``repro-serve run --resume`` picks the
    work back up.

Chaos knobs (``--kill-shard`` / ``--kill-after``) arm one shard to
``os._exit(9)`` mid-traffic — the acceptance drill for migration.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.serve.broker import SessionBroker, service_report
from repro.serve.journal import (
    journal_summary,
    read_journal,
    request_drain,
)
from repro.serve.session import expand_sessions


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-serve",
        description="persistent multi-terminal session service")
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="serve sessions over a shard pool")
    run.add_argument("--shards", type=int, default=2)
    run.add_argument("--rake", type=int, default=0,
                     help="number of ad-hoc rake sessions")
    run.add_argument("--ofdm", type=int, default=0,
                     help="number of ad-hoc OFDM sessions")
    run.add_argument("--slots", type=int, default=8,
                     help="slots per ad-hoc session")
    run.add_argument("--seed", type=int, default=0, help="master seed")
    run.add_argument("--config", help="JSON service spec "
                     "(sessions/load groups; overrides --rake/--ofdm)")
    run.add_argument("--journal", help="JSONL lifecycle journal path")
    run.add_argument("--resume", action="store_true",
                     help="re-admit the journal's incomplete sessions")
    run.add_argument("--report", help="write the Markdown serve report")
    run.add_argument("--json", dest="json_out",
                     help="write the result dict as JSON")
    run.add_argument("--trace", help="write a merged Chrome trace "
                     "(implies --flight)")
    run.add_argument("--flight", action="store_true",
                     help="record per-shard flight telemetry")
    run.add_argument("--queue-depth", type=int, default=64)
    run.add_argument("--max-active", type=int, default=None)
    run.add_argument("--tenant-quota", type=int, default=None)
    run.add_argument("--deadline", type=float, default=None,
                     help="per-slot deadline in seconds")
    run.add_argument("--checkpoint-interval", type=int, default=4)
    run.add_argument("--backend", help="REPRO_XPP_SCHEDULER for shards")
    run.add_argument("--cache-dir",
                     help="shared fastpath compile cache directory")
    run.add_argument("--mp-context", choices=("fork", "spawn"))
    run.add_argument("--no-respawn", action="store_true",
                     help="do not replace dead shards")
    run.add_argument("--no-warmup", action="store_true",
                     help="skip kernel prefetch on admit")
    run.add_argument("--kill-shard", type=int, default=None,
                     help="chaos: this shard dies mid-traffic")
    run.add_argument("--kill-after", type=int, default=2,
                     help="chaos: steps before the kill")

    status = sub.add_parser("status", help="summarize a journal")
    status.add_argument("--journal", required=True)
    status.add_argument("--json", dest="json_out", action="store_true",
                        help="emit machine-readable JSON")

    drain = sub.add_parser("drain", help="ask a running broker to drain")
    drain.add_argument("--journal", required=True)
    return p


def _specs_from_args(args) -> list:
    if args.config:
        with open(args.config) as fh:
            return expand_sessions(json.load(fh))
    spec = {"master_seed": args.seed, "load": []}
    if args.rake:
        spec["load"].append({"kind": "rake", "count": args.rake,
                             "tenant": "rake", "n_slots": args.slots})
    if args.ofdm:
        spec["load"].append({"kind": "ofdm", "count": args.ofdm,
                             "tenant": "ofdm", "n_slots": args.slots})
    return expand_sessions(spec)


def _cmd_run(args) -> int:
    specs = _specs_from_args(args)
    resumed = []
    if args.resume:
        if not args.journal:
            print("--resume requires --journal", file=sys.stderr)
            return 2
        from repro.serve.broker import resumable_sessions
        resumed = resumable_sessions(args.journal)
        taken = {spec.session_id for spec, _ in resumed}
        specs = [s for s in specs if s.session_id not in taken]
    if not specs and not resumed:
        print("nothing to serve: give --rake/--ofdm/--config or --resume",
              file=sys.stderr)
        return 2

    chaos = None
    if args.kill_shard is not None:
        chaos = {"kill_shard": args.kill_shard,
                 "after_steps": args.kill_after}
    broker = SessionBroker(
        args.shards, max_active=args.max_active,
        queue_depth=args.queue_depth, tenant_quota=args.tenant_quota,
        slot_deadline_s=args.deadline,
        checkpoint_interval=args.checkpoint_interval,
        journal_path=args.journal, mp_context=args.mp_context,
        backend=args.backend, cache_dir=args.cache_dir,
        flight=args.flight or bool(args.trace), chaos=chaos,
        respawn_dead=not args.no_respawn, warmup=not args.no_warmup)
    result = broker.run(list(resumed) + list(specs))

    if args.report:
        with open(args.report, "w") as fh:
            fh.write(service_report(result))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(result.to_dict(), fh, indent=1)
    if args.trace:
        trace = result.chrome_trace()
        if trace is not None:
            with open(args.trace, "w") as fh:
                json.dump(trace, fh)

    stats = result.stats
    done = stats["sessions_completed"]
    print(f"serve {result.status}: {done}/{stats['sessions_admitted']} "
          f"sessions, {stats['sessions_per_s']:.3g}/s, "
          f"p95 slot {stats['p95_slot_s'] or 0:.4f}s, "
          f"{stats['migrations']} migrations, "
          f"{stats['shed_sessions']} shed")
    for a in result.alerts:
        print(f"ALERT {a['kind']}: {a['message']}")
    return 0 if result.ok and done == stats["sessions_admitted"] else 1


def _cmd_status(args) -> int:
    records = read_journal(args.journal)
    if not records:
        print(f"no journal records at {args.journal}", file=sys.stderr)
        return 1
    summary = journal_summary(records)
    if args.json_out:
        print(json.dumps(summary, indent=1, sort_keys=True))
        return 0
    for key in ("admitted", "complete", "checkpointed", "active", "shed",
                "migrations", "shard_deaths", "shards_seen",
                "shard_steps", "alerts"):
        print(f"{key:>14}: {summary[key]}")
    progress = summary.get("progress")
    if progress:
        parts = [f"{k}={v}" for k, v in progress.items() if v is not None]
        print(f"{'progress':>14}: " + " ".join(parts))
    return 0


def _cmd_drain(args) -> int:
    flag = request_drain(args.journal)
    print(f"drain requested: {flag}")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "status":
        return _cmd_status(args)
    return _cmd_drain(args)


if __name__ == "__main__":
    sys.exit(main())

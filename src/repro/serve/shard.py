"""Shard workers: long-lived simulator processes hosting sessions.

A shard is one child process that stays up for the life of the
service, hosting a set of *resident* sessions and advancing each of
them one slot per ``step`` command — the paper's physical-finger
time-multiplexing applied at process level.  The broker talks to it
over a duplex pipe with a strict request/reply protocol (every reply
doubles as a heartbeat):

===========================  ==========================================
parent -> child              child -> parent
===========================  ==========================================
``("admit", spec, state,     ``("ok", "admit", {session_id,
warmup)``                    slot_cursor})``
``("step",)``                ``("ok", "step", {advanced: [...],
                             slot_s: [...]})``
``("drain", sid)``           ``("ok", "drain", {session_id, state})``
``("drain_all",)``           ``("ok", "drain_all", {states: {...}})``
``("stop",)``                ``("ok", "stop", {flight}])`` then exit
===========================  ==========================================

Worker-side errors come back as ``("error", message)``; a worker that
*dies* (kill -9, chaos ``os._exit``) is detected by the parent as EOF
on the pipe, exactly like a dead campaign worker.

Every ``step`` reply carries each advanced session's full resumable
state (:meth:`repro.serve.session.SessionWorkload.state`), so the
broker always holds a current checkpoint: migration after a shard
death is "re-admit the last returned state on another shard", with no
replay gap, and planned (live) migration is ``drain`` -> ``admit``.

Shards mount the shared fastpath compile cache
(``REPRO_FASTPATH_CACHE_DIR``) and can warm it on admit via
:meth:`repro.xpp.manager.ConfigurationManager.prefetch` — the K-PACT
idiom: the first shard to admit a session kind compiles its kernels,
every other resident shard loads the ``.fpk`` artifact.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.pool import WorkerHandle, resolve_mp_context, wait_workers
from repro.serve.journal import ServeJournal
from repro.serve.session import SessionSpec, workload_from_state

#: Environment keys exported into every shard worker (kept in sync with
#: the campaign runner's no-import rule).
_SCHEDULER_ENV = "REPRO_XPP_SCHEDULER"
_CACHE_DIR_ENV = "REPRO_FASTPATH_CACHE_DIR"


def _warmup_kernels(kind: str) -> int:
    """Prefetch-compile the kernels a session kind maps onto the array.

    Returns how many configurations were warmed.  Failures are
    swallowed — warm-up is an optimisation, never a correctness
    dependency — but counted on the ``serve.warmup_failed`` metric.
    """
    from repro.telemetry import get_metrics
    from repro.xpp.manager import ConfigurationManager

    builders = []
    if kind == "rake":
        from repro.kernels.descrambler import build_descrambler_config
        from repro.kernels.despreader import build_despreader_config
        builders = [lambda: build_descrambler_config(),
                    lambda: build_despreader_config(3, 16)]
    elif kind == "ofdm":
        from repro.kernels.fft64 import build_fft_stage_config
        builders = [lambda: build_fft_stage_config(0, [0] * 64)]
    warmed = 0
    mgr = ConfigurationManager()
    for build in builders:
        try:
            if mgr.prefetch(build()) is not None:
                warmed += 1
        except Exception:
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("serve.warmup_failed").inc()
    return warmed


def shard_main(conn, shard_index: int, options: Optional[dict] = None):
    """Worker-process body: serve commands until ``stop`` or EOF."""
    options = options or {}
    if options.get("backend"):
        os.environ[_SCHEDULER_ENV] = options["backend"]
    if options.get("cache_dir"):
        os.environ[_CACHE_DIR_ENV] = options["cache_dir"]

    flight = None
    if options.get("flight"):
        from repro.telemetry.flight import FlightRecorder
        flight = FlightRecorder(
            max_events=int(options.get("max_events", 4096)))
        flight.__enter__()

    journal = ServeJournal(options["journal_path"]) \
        if options.get("journal_path") else None
    chaos = options.get("chaos") or {}
    die_after = chaos.get("die_after_steps")

    resident: dict = {}
    steps = 0
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break                   # broker went away
            if msg and msg[0] == "stop":
                payload = flight.payload() if flight is not None else None
                try:
                    conn.send(("ok", "stop", {"flight": payload}))
                except Exception:
                    pass
                break
            try:
                reply = _handle(msg, resident, shard_index, journal,
                                steps, die_after)
            except Exception as exc:
                reply = ("error", f"{type(exc).__name__}: {exc}")
            if msg and msg[0] == "step":
                steps += 1
            try:
                conn.send(reply)
            except Exception:
                break
    finally:
        if journal is not None:
            journal.close()
        if flight is not None:
            flight.__exit__(None, None, None)
        try:
            conn.close()
        except Exception:
            pass


def _handle(msg, resident, shard_index, journal, steps, die_after):
    cmd = msg[0]
    if cmd == "admit":
        _cmd, spec_dict, state, warmup = msg
        spec = SessionSpec.from_dict(spec_dict)
        workload = workload_from_state(spec, state)
        resident[spec.session_id] = workload
        warmed = _warmup_kernels(spec.kind) if warmup else 0
        return ("ok", "admit", {"session_id": spec.session_id,
                                "slot_cursor": workload.slot_cursor,
                                "warmed": warmed})
    if cmd == "step":
        if die_after is not None and steps + 1 >= int(die_after):
            # chaos seam: a kill -9 mid-traffic, no goodbye on the pipe
            os._exit(9)
        advanced = []
        slot_s = []
        for sid in sorted(resident):
            workload = resident[sid]
            if workload.done:
                continue
            t0 = time.perf_counter()
            workload.run_slot()
            slot_s.append(round(time.perf_counter() - t0, 6))
            advanced.append({"session_id": sid,
                             "slot_cursor": workload.slot_cursor,
                             "done": workload.done,
                             "counts": dict(workload.counts),
                             "digest": workload.digest,
                             "state": workload.state()})
        for rec in advanced:
            if rec["done"]:
                resident.pop(rec["session_id"], None)
        if journal is not None:
            journal.emit("shard_step", shard=shard_index,
                         sessions=len(advanced), step=steps + 1)
        return ("ok", "step", {"advanced": advanced, "slot_s": slot_s})
    if cmd == "drain":
        _cmd, sid = msg
        workload = resident.pop(sid, None)
        if workload is None:
            return ("error", f"session {sid!r} is not resident on "
                             f"shard {shard_index}")
        return ("ok", "drain", {"session_id": sid,
                                "state": workload.state()})
    if cmd == "drain_all":
        states = {sid: w.state() for sid, w in sorted(resident.items())}
        resident.clear()
        return ("ok", "drain_all", {"states": states})
    if cmd == "ping":
        return ("ok", "ping", {"resident": len(resident),
                               "steps": steps})
    return ("error", f"unknown command {cmd!r}")


class ShardState:
    """Parent-side bookkeeping for one shard worker."""

    __slots__ = ("index", "handle", "resident", "outstanding", "steps",
                 "deaths", "flight_payload")

    def __init__(self, index: int):
        self.index = index
        self.handle: Optional[WorkerHandle] = None
        self.resident: set = set()
        self.outstanding: int = 0       # replies not yet collected
        self.steps = 0
        self.deaths = 0
        self.flight_payload = None

    @property
    def alive(self) -> bool:
        return self.handle is not None


class ShardPool:
    """A pool of long-lived shard workers (parent side).

    Mechanics only — spawn/respawn, ordered request/reply over duplex
    pipes, EOF death detection, collection with deadline.  Placement,
    migration and admission *policy* live in
    :class:`repro.serve.broker.SessionBroker`.
    """

    def __init__(self, n_shards: int, *, mp_context: Optional[str] = None,
                 backend: Optional[str] = None,
                 cache_dir: Optional[str] = None,
                 journal_path=None, flight: bool = False,
                 max_events: int = 4096, chaos: Optional[dict] = None):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.ctx = resolve_mp_context(mp_context)
        self.options = {"backend": backend, "cache_dir": cache_dir,
                        "journal_path": os.fspath(journal_path)
                        if journal_path is not None else None,
                        "flight": flight, "max_events": max_events}
        self.chaos = chaos or {}
        self.shards = [ShardState(i) for i in range(n_shards)]
        self.respawns = 0

    # -- lifecycle ----------------------------------------------------------

    def _options_for(self, index: int) -> dict:
        options = dict(self.options)
        if int(self.chaos.get("kill_shard", -1)) == index:
            options["chaos"] = {
                "die_after_steps": self.chaos.get("after_steps", 1)}
        return options

    def start(self) -> None:
        for shard in self.shards:
            self._spawn(shard)

    def _spawn(self, shard: ShardState) -> None:
        shard.handle = WorkerHandle.spawn(
            self.ctx, shard_main, (shard.index,
                                   self._options_for(shard.index)),
            meta=shard.index, duplex=True)
        shard.outstanding = 0
        shard.resident = set()

    def respawn(self, shard: ShardState, *, chaos: bool = False) -> None:
        """Replace a dead shard with a fresh worker (chaos config is
        dropped on respawn unless asked for — a respawned chaos shard
        would just die again)."""
        if shard.handle is not None:
            shard.handle.terminate()
        options = self._options_for(shard.index) if chaos \
            else dict(self.options)
        shard.handle = WorkerHandle.spawn(
            self.ctx, shard_main, (shard.index, options),
            meta=shard.index, duplex=True)
        shard.outstanding = 0
        shard.resident = set()
        self.respawns += 1

    def mark_dead(self, shard: ShardState) -> None:
        if shard.handle is not None:
            shard.handle.terminate()
            shard.handle = None
        shard.outstanding = 0
        shard.deaths += 1

    def stop(self, timeout_s: float = 10.0) -> None:
        """Graceful stop: collect flight payloads, then terminate."""
        for shard in self.shards:
            if not shard.alive:
                continue
            try:
                shard.handle.send(("stop",))
            except Exception:
                self.mark_dead(shard)
                continue
        deadline = time.monotonic() + timeout_s
        for shard in self.shards:
            if not shard.alive:
                continue
            try:
                while time.monotonic() < deadline:
                    if shard.handle.readable(0.05):
                        reply = shard.handle.recv()
                        if reply[0] == "ok" and reply[1] == "stop":
                            shard.flight_payload = \
                                reply[2].get("flight")
                            break
                    if not shard.handle.alive():
                        break
            except Exception:
                pass
            shard.handle.terminate()
            shard.handle = None

    # -- request / reply ----------------------------------------------------

    def alive_shards(self) -> list:
        return [s for s in self.shards if s.alive]

    def send(self, shard: ShardState, msg: tuple) -> bool:
        """Queue one command; False (and a dead mark) if the pipe is
        already broken."""
        try:
            shard.handle.send(msg)
        except Exception:
            self.mark_dead(shard)
            return False
        shard.outstanding += 1
        return True

    def collect(self, timeout_s: float):
        """Collect every outstanding reply or declare shards dead.

        Returns ``(replies, dead)`` where ``replies`` is a list of
        ``(shard, reply)`` in arrival order and ``dead`` the shards
        that EOF'd or blew the deadline with replies still pending.
        """
        replies = []
        dead = []
        deadline = time.monotonic() + timeout_s
        while any(s.alive and s.outstanding for s in self.shards):
            waiting = [s for s in self.shards if s.alive and s.outstanding]
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for shard in waiting:
                    self.mark_dead(shard)
                    dead.append((shard, "heartbeat timeout"))
                break
            ready = wait_workers([s.handle for s in waiting],
                                 timeout=min(remaining, 0.1))
            handles = {s.handle: s for s in waiting}
            for handle in ready:
                shard = handles[handle]
                try:
                    reply = handle.recv()
                except Exception:
                    self.mark_dead(shard)
                    dead.append((shard, "worker died (EOF)"))
                    continue
                shard.outstanding -= 1
                replies.append((shard, reply))
        return replies, dead

"""Terminal sessions: the unit of work the service multiplexes.

A *session* is one logical terminal — a rake (WCDMA) or OFDM (802.11a)
receiver — progressing through ``n_slots`` slots of traffic.  The
paper time-multiplexes one physical finger across many logical
fingers; the service applies the same trick one level up, multiplexing
many sessions across a pool of simulator shards, so a session must be
**suspendable**: its entire inter-slot state serializes to a JSON dict
(:meth:`SessionWorkload.state`) and a fresh process can resume it
bit-exactly (:func:`workload_from_state`).

Determinism is the migration contract.  Slot ``k`` of a session draws
its randomness from ``SeedSequence(seed, spawn_key=(k,))`` — never
from a carried generator — so the stimulus depends only on ``(seed,
slot index)``; everything else a slot depends on (trackers, counters,
receiver mode flags) lives in the DSP snapshot.  A session that is
checkpointed, migrated, or replayed on another shard therefore
produces byte-identical output, which the running :attr:`digest`
(a chained SHA-256 over every slot's decoded bits) makes checkable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

SESSION_KINDS = ("rake", "ofdm")


@dataclass(frozen=True)
class SessionSpec:
    """Declaration of one terminal session.

    ``params`` is a canonical ``((name, value), ...)`` tuple, as in
    :class:`repro.campaign.spec.JobSpec`, so specs are hashable and
    their dict form round-trips.
    """

    session_id: str
    kind: str = "rake"
    tenant: str = "default"
    n_slots: int = 8
    seed: int = 0
    params: tuple = ()

    def __post_init__(self):
        if self.kind not in SESSION_KINDS:
            raise ValueError(f"unknown session kind {self.kind!r}; "
                             f"have {SESSION_KINDS}")
        if self.n_slots < 1:
            raise ValueError("a session needs at least one slot")

    @property
    def param_dict(self) -> dict:
        return dict(self.params)

    def to_dict(self) -> dict:
        return {"session_id": self.session_id, "kind": self.kind,
                "tenant": self.tenant, "n_slots": self.n_slots,
                "seed": self.seed, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, d: dict) -> "SessionSpec":
        params = d.get("params") or {}
        return cls(session_id=str(d["session_id"]),
                   kind=d.get("kind", "rake"),
                   tenant=str(d.get("tenant", "default")),
                   n_slots=int(d.get("n_slots", 8)),
                   seed=int(d.get("seed", 0)),
                   params=tuple(sorted(params.items())))


def slot_rng(seed: int, slot: int) -> np.random.Generator:
    """Slot ``slot``'s private random stream — a pure function of
    ``(seed, slot)``, the campaign sharding idiom applied per slot so
    replay after migration redraws identical stimulus."""
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(slot,)))


def _chain_digest(digest_hex: str, payload: bytes) -> str:
    """One link of the per-session output chain."""
    return hashlib.sha256(bytes.fromhex(digest_hex) + payload).hexdigest()


class SessionWorkload:
    """Base class: slot loop, counts, digest, state round-trip."""

    KIND = ""

    def __init__(self, spec: SessionSpec):
        self.spec = spec
        self.slot_cursor = 0
        self.counts: dict = {"n_slots": 0}
        self.digest = hashlib.sha256(b"").hexdigest()

    @property
    def done(self) -> bool:
        return self.slot_cursor >= self.spec.n_slots

    def run_slot(self) -> dict:
        """Advance one slot; returns the per-slot facts (counts
        delta already folded into :attr:`counts`)."""
        if self.done:
            raise RuntimeError(
                f"session {self.spec.session_id} already complete")
        slot = self.slot_cursor
        out_bytes, facts = self._slot(slot, slot_rng(self.spec.seed, slot))
        self.digest = _chain_digest(self.digest, out_bytes)
        self.slot_cursor += 1
        self.counts["n_slots"] += 1
        return facts

    def _slot(self, slot: int, rng: np.random.Generator):
        raise NotImplementedError

    # -- checkpoint / migration --------------------------------------------------

    def state(self) -> dict:
        """The session's complete resumable state, JSON-serializable."""
        return {"kind": self.KIND, "slot_cursor": self.slot_cursor,
                "counts": dict(self.counts), "digest": self.digest,
                "dsp": self._dsp_state()}

    def load_state(self, state: dict) -> None:
        self.slot_cursor = int(state["slot_cursor"])
        self.counts = {k: int(v) for k, v in state["counts"].items()}
        self.digest = str(state["digest"])
        self._restore_dsp(state["dsp"])

    def _dsp_state(self) -> dict:
        return {}

    def _restore_dsp(self, dsp: dict) -> None:
        pass


class RakeSessionWorkload(SessionWorkload):
    """A WCDMA terminal in soft handover: one rake control loop.

    Each slot transmits a fresh downlink block, passes it through a
    slowly drifting multipath channel (``drift_every`` slots per chip
    of delay drift, so the tracker state genuinely matters across a
    migration) and runs :class:`repro.rake.session.RakeSession` on it.
    """

    KIND = "rake"

    def __init__(self, spec: SessionSpec):
        super().__init__(spec)
        from repro.rake import RakeSession

        p = spec.param_dict
        self.sf = int(p.get("sf", 16))
        self.code_index = int(p.get("code_index", 3))
        self.block_chips = int(p.get("block_chips", 3072))
        self.snr_db = float(p.get("snr_db", 12.0))
        self.base_delay = int(p.get("delay", 5))
        self.drift_every = int(p.get("drift_every", 2))
        self.n_symbols = int(p.get(
            "n_symbols", self.block_chips // self.sf - 4))
        active_set = list(p.get("active_set", (0,)))
        self.session = RakeSession(
            sf=self.sf, code_index=self.code_index, active_set=active_set,
            reacquire_interval=int(p.get("reacquire_interval", 10)))
        self.counts.update({"data_bits": 0, "bit_errors": 0,
                            "reacquisitions": 0})

    def _delay(self, slot: int) -> int:
        return self.base_delay + slot // max(self.drift_every, 1)

    def _slot(self, slot: int, rng: np.random.Generator):
        from repro.wcdma import (
            Basestation,
            DownlinkChannelConfig,
            MultipathChannel,
            awgn,
        )

        # soft handover: every active basestation transmits the *same*
        # dedicated-channel payload, each through its own multipath
        n_sym = self.block_chips // self.sf
        payload = rng.integers(0, 2, size=2 * n_sym)
        streams = []
        for bs_number in self.session.active_set:
            bs = Basestation(
                bs_number,
                [DownlinkChannelConfig(sf=self.sf,
                                       code_index=self.code_index)],
                rng=rng)
            ants, _bits = bs.transmit(self.block_chips,
                                      data_bits={0: payload})
            ch = MultipathChannel(delays=[self._delay(slot)], gains=[1.0],
                                  rng=rng)
            streams.append(ch.apply(ants[0])[:self.block_chips + 16])
        rx = awgn(np.sum(streams, axis=0), self.snr_db, rng) \
            if streams else np.zeros(self.block_chips + 16, complex)
        out, info = self.session.process_block(rx, self.n_symbols)
        ref = payload[:out.size]
        errors = int(np.sum(out[:ref.size] != ref))
        self.counts["data_bits"] += int(out.size)
        self.counts["bit_errors"] += errors
        self.counts["reacquisitions"] += len(info.reacquired)
        return_bytes = np.asarray(out, dtype=np.uint8).tobytes()
        return return_bytes, {"bit_errors": errors,
                              "reacquired": list(info.reacquired),
                              "fingers": info.logical_fingers}

    def _dsp_state(self) -> dict:
        return {"session": self.session.snapshot()}

    def _restore_dsp(self, dsp: dict) -> None:
        from repro.rake import RakeSession
        self.session = RakeSession.from_snapshot(dsp["session"])


class OfdmSessionWorkload(SessionWorkload):
    """An 802.11a terminal: one packet per slot through AWGN.

    The receiver's persistent mode flags (fixed-point FFT, fault
    degradation) ride the DSP snapshot; the per-packet pipeline is
    stateless by design, so the interesting migrating state is the
    accumulated counts and output digest.
    """

    KIND = "ofdm"

    def __init__(self, spec: SessionSpec):
        super().__init__(spec)
        from repro.ofdm.transmitter import OfdmTransmitter
        from repro.ofdm.receiver import OfdmReceiver

        p = spec.param_dict
        self.rate_mbps = int(p.get("rate_mbps", 12))
        self.snr_db = float(p.get("snr_db", 10.0))
        self.length_bytes = int(p.get("length_bytes", 40))
        self.pad_samples = int(p.get("pad_samples", 40))
        self.tx = OfdmTransmitter(self.rate_mbps)
        self.receiver = OfdmReceiver(
            use_fixed_fft=bool(p.get("use_fixed_fft", False)),
            input_frac_bits=int(p.get("input_frac_bits", 8)))
        self.counts.update({"data_bits": 0, "bit_errors": 0,
                            "packet_errors": 0})

    def _slot(self, slot: int, rng: np.random.Generator):
        from repro.ofdm.receiver import PacketError
        from repro.wcdma.channel import awgn

        psdu = rng.integers(0, 2, 8 * self.length_bytes)
        ppdu = self.tx.transmit(psdu)
        sig = awgn(np.concatenate([np.zeros(self.pad_samples, complex),
                                   ppdu.samples]), self.snr_db, rng)
        self.counts["data_bits"] += int(psdu.size)
        try:
            out, _report = self.receiver.receive(
                sig, expected_rate=self.rate_mbps)
        except PacketError:
            self.counts["packet_errors"] += 1
            self.counts["bit_errors"] += int(psdu.size)
            return b"\xff" + slot.to_bytes(4, "big"), \
                {"bit_errors": int(psdu.size), "packet_error": True}
        errors = int(np.sum(out != psdu)) if out.size == psdu.size \
            else int(psdu.size)
        self.counts["bit_errors"] += errors
        if errors:
            self.counts["packet_errors"] += 1
        return np.asarray(out, dtype=np.uint8).tobytes(), \
            {"bit_errors": errors, "packet_error": bool(errors)}

    def _dsp_state(self) -> dict:
        return {"receiver": self.receiver.snapshot()}

    def _restore_dsp(self, dsp: dict) -> None:
        self.receiver.restore(dsp["receiver"])


_WORKLOADS = {"rake": RakeSessionWorkload, "ofdm": OfdmSessionWorkload}


def build_workload(spec: SessionSpec) -> SessionWorkload:
    """A fresh (slot 0) workload for ``spec``."""
    return _WORKLOADS[spec.kind](spec)


def workload_from_state(spec: SessionSpec,
                        state: Optional[dict]) -> SessionWorkload:
    """A workload resumed from a checkpoint ``state`` (fresh when
    None) — the restore half of checkpoint/migration."""
    workload = build_workload(spec)
    if state is not None:
        if state.get("kind", spec.kind) != spec.kind:
            raise ValueError(
                f"state kind {state.get('kind')!r} does not match spec "
                f"kind {spec.kind!r} for session {spec.session_id}")
        workload.load_state(state)
    return workload


def expand_sessions(spec: dict) -> list:
    """Session specs from a service spec dict (the CLI's JSON format).

    Explicit ``sessions`` entries are taken as-is (each may omit
    ``seed``, derived from ``master_seed`` and its position).  ``load``
    entries generate ``count`` sessions each::

        {"master_seed": 7,
         "sessions": [{"session_id": "vip", "kind": "rake", ...}],
         "load": [{"kind": "ofdm", "count": 10, "tenant": "bulk",
                   "n_slots": 4, "params": {...}}]}

    Seeds derive as ``SeedSequence(master_seed, spawn_key=(index,))``
    over the flat enumeration order, so a spec file pins every
    session's stimulus without spelling out seeds.
    """
    master = int(spec.get("master_seed", 0))
    out = []

    def derived_seed(index: int) -> int:
        return int(np.random.SeedSequence(
            master, spawn_key=(index,)).generate_state(1)[0])

    index = 0
    for entry in spec.get("sessions", ()):
        d = dict(entry)
        d.setdefault("seed", derived_seed(index))
        out.append(SessionSpec.from_dict(d))
        index += 1
    for group in spec.get("load", ()):
        count = int(group.get("count", 1))
        kind = group.get("kind", "rake")
        tenant = group.get("tenant", kind)
        for k in range(count):
            out.append(SessionSpec.from_dict({
                "session_id": group.get("prefix", f"{tenant}/{kind}")
                + f"-{k}",
                "kind": kind, "tenant": tenant,
                "n_slots": group.get("n_slots", 8),
                "seed": derived_seed(index),
                "params": group.get("params") or {}}))
            index += 1
    ids = [s.session_id for s in out]
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate session_id in service spec")
    return out

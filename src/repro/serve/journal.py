"""The session journal: a multi-appender JSONL lifecycle log.

The broker and every shard worker append structured events to one
JSONL file — admission, assignment, checkpoints, migrations,
completions from the broker; per-step heartbeats from the shards.
Appends are single ``write()`` calls of one ``\\n``-terminated line in
``O_APPEND`` mode, so concurrent appenders interleave at line
granularity.

Reading follows the campaign checkpoint discipline, adapted for many
writers: a line that does not parse is **skipped**, not treated as the
end of the file — with interleaved appenders a torn line (a writer
killed mid-write, a kill -9 truncation) is not necessarily the last
one.  Every intact record survives, which is what
:func:`recover_sessions` relies on to rebuild a killed service from
its admitted specs and their latest checkpoints.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional


class ServeJournal:
    """Append-only JSONL event log safe for concurrent appenders.

    Each :meth:`emit` writes exactly one line in append mode and
    flushes, so a crash loses at most the line in flight and
    concurrent writers never interleave *within* a line (POSIX
    ``O_APPEND`` single-write semantics for short lines).
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._fh = None

    def emit(self, event: str, **fields) -> dict:
        rec = {"t": round(time.time(), 3), "event": event, **fields}
        if self._fh is None:
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
        self._fh.flush()
        return rec

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ServeJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path) -> list:
    """All intact records of a session journal (``[]`` if absent).

    Undecodable lines — torn tails from killed writers — are skipped
    rather than ending the read, because later lines from *other*
    appenders are still intact.
    """
    if not os.path.exists(path):
        return []
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue                # torn line from one appender
            if isinstance(rec, dict) and "event" in rec:
                records.append(rec)
    return records


# -- drain flag ----------------------------------------------------------------------


def drain_flag_path(journal_path) -> str:
    """The conventional drain-request flag next to a journal."""
    return os.fspath(journal_path) + ".drain"


def request_drain(journal_path) -> str:
    """Ask a running broker (polling between rounds) to drain."""
    flag = drain_flag_path(journal_path)
    with open(flag, "w") as fh:
        fh.write(json.dumps({"t": round(time.time(), 3)}) + "\n")
    return flag


def drain_requested(journal_path) -> bool:
    return os.path.exists(drain_flag_path(journal_path))


def clear_drain(journal_path) -> None:
    try:
        os.unlink(drain_flag_path(journal_path))
    except FileNotFoundError:
        pass


# -- recovery ------------------------------------------------------------------------


def recover_sessions(records) -> dict:
    """Rebuild session fates from journal records.

    Returns ``session_id -> {"spec": spec dict, "state": latest
    checkpointed state or None, "complete": bool, "digest": final
    digest when complete}`` for every admitted session.  Feeding the
    incomplete entries back through the broker resumes a killed or
    drained service from its last checkpoints.
    """
    sessions: dict = {}
    for rec in records:
        event = rec.get("event")
        sid = rec.get("session_id")
        if event == "session_admitted" and sid is not None:
            sessions[sid] = {"spec": rec.get("spec"), "state": None,
                             "complete": False, "digest": None}
        elif sid in sessions:
            entry = sessions[sid]
            if event == "session_checkpoint":
                state = rec.get("state")
                prev = entry["state"]
                if state is not None and (
                        prev is None or int(state.get("slot_cursor", 0))
                        >= int(prev.get("slot_cursor", 0))):
                    entry["state"] = state
            elif event == "session_complete":
                entry["complete"] = True
                entry["digest"] = rec.get("digest")
    return sessions


def journal_summary(records) -> dict:
    """Service-level facts folded from a journal (for ``status``)."""
    sessions = recover_sessions(records)
    counts = {"admitted": len(sessions),
              "complete": sum(1 for s in sessions.values()
                              if s["complete"]),
              "checkpointed": sum(1 for s in sessions.values()
                                  if s["state"] is not None
                                  and not s["complete"]),
              "shed": 0, "migrations": 0, "shard_deaths": 0,
              "shard_steps": 0, "alerts": 0}
    shards = set()
    last_progress: Optional[dict] = None
    for rec in records:
        event = rec.get("event")
        if event == "session_shed":
            counts["shed"] += 1
        elif event == "session_migrated":
            counts["migrations"] += 1
        elif event == "shard_dead":
            counts["shard_deaths"] += 1
        elif event == "shard_step":
            counts["shard_steps"] += 1
            if rec.get("shard") is not None:
                shards.add(rec["shard"])
        elif event == "shard_start" and rec.get("shard") is not None:
            shards.add(rec["shard"])
        elif event == "alert":
            counts["alerts"] += 1
        elif event == "progress":
            last_progress = rec
    out = dict(counts)
    out["active"] = counts["admitted"] - counts["complete"]
    out["shards_seen"] = len(shards)
    if last_progress is not None:
        out["progress"] = {k: last_progress.get(k) for k in
                           ("completed", "admitted", "sessions_per_s",
                            "slots_per_s", "p95_slot_s")}
    return out

"""The session broker: admission, placement, migration, telemetry.

:class:`SessionBroker` is the parent-side service loop.  It owns a
:class:`repro.serve.shard.ShardPool` and drives it in synchronous
*rounds*; each round places queued sessions on the least-loaded alive
shard, advances every resident session one slot (``step``), folds the
replies into per-session state, and handles any shard that died —
which is where the service earns its keep:

* **Admission control** — a bounded queue with per-tenant quotas.
  When the queue is full the session is *shed* (rejected, journaled,
  counted) and the watchdog raises a structured
  :data:`~repro.telemetry.ALERT_QUEUE_SATURATED` alert.
* **Migration** — every ``step`` reply carries the session's full
  resumable state, so the broker always holds a current checkpoint.
  A dead shard's sessions re-enter the queue *with their state* and
  resume on a survivor with no replay gap; the per-slot RNG is a pure
  function of ``(seed, slot)``, so the migrated run is bit-exact with
  an unmigrated one (the chained digest is the proof).
* **Deadlines** — a slot that runs past ``slot_deadline_s`` raises
  :data:`~repro.telemetry.ALERT_DEADLINE`, mirroring the paper's
  hard real-time framing of the slot schedule.

The broker journals the whole lifecycle through
:class:`repro.serve.journal.ServeJournal`; a killed service resumes
from :func:`repro.serve.journal.recover_sessions`.
"""

from __future__ import annotations

import time
from collections import deque
from types import SimpleNamespace
from typing import Optional

from repro.serve.journal import (
    ServeJournal,
    clear_drain,
    drain_requested,
    read_journal,
    recover_sessions,
)
from repro.serve.session import SessionSpec
from repro.serve.shard import ShardPool
from repro.telemetry import (
    ALERT_DEADLINE,
    ALERT_QUEUE_SATURATED,
    MetricsRegistry,
    ProbeBoard,
    RunReport,
)
from repro.telemetry.flight import _exact_percentile, merged_chrome_trace

#: Consecutive rounds with no slot progress before the broker declares
#: the service wedged and stops (shards all dead and not respawning,
#: or a protocol bug).
STALL_ROUNDS = 10


class SessionEntry:
    """Broker-side record of one admitted session."""

    __slots__ = ("spec", "state", "digest", "counts", "done", "shard",
                 "migrations", "slots_done", "shard_history", "slot_s")

    def __init__(self, spec: SessionSpec, state: Optional[dict] = None):
        self.spec = spec
        self.state = state              # latest resumable state
        self.digest: Optional[str] = None
        self.counts: dict = {}
        self.done = False
        self.shard: Optional[int] = None
        self.migrations = 0
        self.slots_done = 0 if state is None \
            else int(state.get("slot_cursor", 0))
        self.shard_history: list = []
        self.slot_s: list = []


class ServiceResult:
    """What a broker run produced: session fates plus service stats."""

    def __init__(self, *, sessions, stats, alerts, session_reports,
                 flight_payloads, status):
        self.sessions = sessions
        self.stats = stats
        self.alerts = alerts
        self.session_reports = session_reports
        self.flight_payloads = flight_payloads
        self.status = status            # "complete" | "drained" | "stalled"

    @property
    def ok(self) -> bool:
        return self.status in ("complete", "drained")

    def chrome_trace(self) -> Optional[dict]:
        """One merged Chrome trace with a process lane per shard."""
        outcomes = [SimpleNamespace(job_index=0, shard_index=i,
                                    job_id=f"serve-shard-{i}",
                                    telemetry=payload)
                    for i, payload in sorted(self.flight_payloads.items())
                    if payload is not None]
        if not outcomes:
            return None
        return merged_chrome_trace(outcomes)

    def to_dict(self) -> dict:
        return {"status": self.status, "stats": dict(self.stats),
                "alerts": list(self.alerts),
                "sessions": {sid: dict(rec)
                             for sid, rec in self.sessions.items()}}


def service_report(result: ServiceResult) -> str:
    """Render a broker run as Markdown, reliability news first."""
    stats = result.stats
    lines = ["# Serve report", ""]
    lines.append(f"- **status**: {result.status}")
    for key in ("shards", "rounds", "wall_s", "sessions_admitted",
                "sessions_completed", "sessions_per_s", "slots_total",
                "slots_per_s", "p50_slot_s", "p95_slot_s"):
        if stats.get(key) is not None:
            value = stats[key]
            text = f"{value:.4g}" if isinstance(value, float) else value
            lines.append(f"- **{key}**: {text}")
    lines.append("")

    lines.append("## Reliability")
    lines.append("")
    for key in ("shed_sessions", "migrations", "shard_deaths",
                "shard_respawns", "deadline_misses"):
        lines.append(f"- **{key}**: {stats.get(key, 0)}")
    lines.append("")
    if result.alerts:
        lines.append("| kind | probe | value | message |")
        lines.append("|---|---|---|---|")
        for a in result.alerts:
            lines.append(f"| {a['kind']} | `{a['probe']}` "
                         f"| {a['value']:g} | {a['message']} |")
    else:
        lines.append("no alerts")
    lines.append("")

    if result.sessions:
        lines.append(f"## Sessions ({len(result.sessions)})")
        lines.append("")
        lines.append("| session | kind | tenant | slots | done "
                     "| migrations | digest |")
        lines.append("|---|---|---|---|---|---|---|")
        for sid in sorted(result.sessions):
            rec = result.sessions[sid]
            digest = (rec["digest"] or "")[:12]
            lines.append(
                f"| `{sid}` | {rec['kind']} | {rec['tenant']} "
                f"| {rec['slots_done']}/{rec['n_slots']} | {rec['done']} "
                f"| {rec['migrations']} | `{digest}` |")
        lines.append("")
    return "\n".join(lines)


class SessionBroker:
    """Admission control and round-robin scheduling over a shard pool."""

    def __init__(self, n_shards: int = 2, *,
                 max_active: Optional[int] = None,
                 queue_depth: int = 64,
                 tenant_quota: Optional[int] = None,
                 slot_deadline_s: Optional[float] = None,
                 checkpoint_interval: int = 4,
                 journal_path=None,
                 mp_context: Optional[str] = None,
                 backend: Optional[str] = None,
                 cache_dir: Optional[str] = None,
                 flight: bool = False,
                 chaos: Optional[dict] = None,
                 respawn_dead: bool = True,
                 warmup: bool = True,
                 step_timeout_s: float = 120.0):
        self.pool = ShardPool(n_shards, mp_context=mp_context,
                              backend=backend, cache_dir=cache_dir,
                              journal_path=journal_path, flight=flight,
                              chaos=chaos)
        self.journal = ServeJournal(journal_path) \
            if journal_path is not None else None
        self.journal_path = journal_path
        self.max_active = max_active if max_active is not None \
            else 4 * n_shards
        self.queue_depth = queue_depth
        self.tenant_quota = tenant_quota
        self.slot_deadline_s = slot_deadline_s
        self.checkpoint_interval = max(1, checkpoint_interval)
        self.respawn_dead = respawn_dead
        self.warmup = warmup
        self.step_timeout_s = step_timeout_s

        self.probes = ProbeBoard(keep_samples=0)
        self.metrics = MetricsRegistry()
        self.entries: dict = {}
        self.queue: deque = deque()
        self.shed: list = []
        self._warmed: dict = {}         # shard index -> set of kinds
        self._slot_s: list = []
        self._deadline_misses = 0
        self._migrations = 0
        self._rounds = 0

    # -- admission -----------------------------------------------------------

    def _tenant_load(self, tenant: str) -> int:
        return sum(1 for e in self.entries.values()
                   if e.spec.tenant == tenant and not e.done)

    def submit(self, spec: SessionSpec,
               state: Optional[dict] = None) -> bool:
        """Admit a session to the queue, or shed it.

        Shedding happens when the bounded queue is full or the tenant
        is over quota; both are journaled, counted, and the queue-full
        case raises the :data:`ALERT_QUEUE_SATURATED` watchdog alert.
        """
        if spec.session_id in self.entries:
            raise ValueError(f"duplicate session id {spec.session_id!r}")
        reason = None
        if len(self.queue) >= self.queue_depth:
            reason = f"queue full ({self.queue_depth})"
            self.probes.alert(
                ALERT_QUEUE_SATURATED, "serve.admission_queue",
                value=len(self.queue),
                message=f"admission queue saturated at "
                        f"{len(self.queue)} pending sessions")
        elif self.tenant_quota is not None \
                and self._tenant_load(spec.tenant) >= self.tenant_quota:
            reason = f"tenant {spec.tenant!r} over quota " \
                     f"({self.tenant_quota})"
        if reason is not None:
            self.shed.append({"session_id": spec.session_id,
                              "tenant": spec.tenant, "reason": reason})
            self.metrics.counter("serve.sessions_shed").inc()
            if self.journal is not None:
                self.journal.emit("session_shed",
                                  session_id=spec.session_id,
                                  tenant=spec.tenant, reason=reason)
            return False
        self.entries[spec.session_id] = SessionEntry(spec, state)
        self.queue.append(spec.session_id)
        self.metrics.counter("serve.sessions_admitted").inc()
        if self.journal is not None:
            self.journal.emit("session_admitted",
                              session_id=spec.session_id,
                              tenant=spec.tenant, spec=spec.to_dict(),
                              resumed=state is not None)
        return True

    # -- placement & rounds --------------------------------------------------

    def _active(self) -> int:
        return sum(1 for e in self.entries.values()
                   if e.shard is not None and not e.done)

    def _pick_shard(self):
        alive = self.pool.alive_shards()
        if not alive:
            return None
        return min(alive, key=lambda s: (len(s.resident), s.index))

    def _place_queued(self) -> None:
        admits = []
        while self.queue and self._active() < self.max_active:
            shard = self._pick_shard()
            if shard is None:
                break
            sid = self.queue.popleft()
            entry = self.entries[sid]
            warmed = self._warmed.setdefault(shard.index, set())
            warm = self.warmup and entry.spec.kind not in warmed
            if not self.pool.send(shard, ("admit", entry.spec.to_dict(),
                                          entry.state, warm)):
                self.queue.appendleft(sid)
                continue
            warmed.add(entry.spec.kind)
            entry.shard = shard.index
            entry.shard_history.append(shard.index)
            shard.resident.add(sid)
            admits.append((shard, sid))
            if self.journal is not None:
                self.journal.emit("session_placed", session_id=sid,
                                  shard=shard.index,
                                  slot_cursor=entry.slots_done)
        if admits:
            replies, dead = self.pool.collect(self.step_timeout_s)
            for shard, reply in replies:
                if reply[0] != "ok":
                    raise RuntimeError(
                        f"admit failed on shard {shard.index}: {reply[1]}")
            self._handle_dead(dead)

    def _handle_dead(self, dead) -> None:
        """Migrate every session resident on a dead shard."""
        for shard, reason in dead:
            self.metrics.counter("serve.shard_deaths").inc()
            if self.journal is not None:
                self.journal.emit("shard_dead", shard=shard.index,
                                  reason=reason,
                                  resident=sorted(shard.resident))
            for sid in sorted(shard.resident):
                entry = self.entries[sid]
                if entry.done:
                    continue
                entry.shard = None
                entry.migrations += 1
                self._migrations += 1
                self.metrics.counter("serve.migrations").inc()
                self.queue.appendleft(sid)
                if self.journal is not None:
                    self.journal.emit(
                        "session_migrated", session_id=sid,
                        from_shard=shard.index, reason=reason,
                        slot_cursor=entry.slots_done)
            shard.resident = set()
            if self.respawn_dead:
                self.pool.respawn(shard)
                if self.journal is not None:
                    self.journal.emit("shard_start", shard=shard.index,
                                      respawn=True)

    def _drain_session(self, sid: str) -> Optional[dict]:
        """Live-migrate one session off its shard: drain -> re-queue.

        Returns the drained state (also stored on the entry), or None
        if the shard died during the drain — the entry's last stepped
        state then stands in, via the normal dead-shard path.
        """
        entry = self.entries[sid]
        if entry.shard is None or entry.done:
            return entry.state
        shard = self.pool.shards[entry.shard]
        if not shard.alive or not self.pool.send(shard, ("drain", sid)):
            return None
        replies, dead = self.pool.collect(self.step_timeout_s)
        self._handle_dead(dead)
        for rshard, reply in replies:
            if reply[0] == "ok" and reply[1] == "drain" \
                    and reply[2]["session_id"] == sid:
                entry.state = reply[2]["state"]
                shard.resident.discard(sid)
                entry.shard = None
                entry.migrations += 1
                self._migrations += 1
                self.metrics.counter("serve.migrations").inc()
                self.queue.appendleft(sid)
                if self.journal is not None:
                    self.journal.emit("session_migrated", session_id=sid,
                                      from_shard=shard.index,
                                      reason="drain",
                                      slot_cursor=entry.slots_done)
                return entry.state
        return None

    def _step_round(self) -> int:
        """Advance every resident session one slot; returns how many
        slots actually ran."""
        stepped = []
        for shard in self.pool.alive_shards():
            if not shard.resident:
                continue
            if self.pool.send(shard, ("step",)):
                stepped.append(shard)
        if not stepped:
            return 0
        replies, dead = self.pool.collect(self.step_timeout_s)
        advanced = 0
        for shard, reply in replies:
            if reply[0] != "ok" or reply[1] != "step":
                self.pool.mark_dead(shard)
                dead.append((shard, f"bad step reply: {reply!r}"))
                continue
            payload = reply[2]
            for slot_s in payload["slot_s"]:
                self._slot_s.append(slot_s)
                self.probes.record("serve.slot_s", slot_s, unit="s")
                if self.slot_deadline_s is not None \
                        and slot_s > self.slot_deadline_s:
                    self._deadline_misses += 1
                    self.metrics.counter("serve.deadline_misses").inc()
                    self.probes.alert(
                        ALERT_DEADLINE, "serve.slot_s", value=slot_s,
                        message=f"slot ran {slot_s:.4f}s, deadline "
                                f"{self.slot_deadline_s:g}s", once=False)
            for rec in payload["advanced"]:
                advanced += 1
                entry = self.entries[rec["session_id"]]
                entry.state = rec["state"]
                entry.digest = rec["digest"]
                entry.counts = rec["counts"]
                entry.slots_done = rec["slot_cursor"]
                self.metrics.counter("serve.slots_total").inc()
                if rec["done"]:
                    entry.done = True
                    entry.shard = None
                    shard.resident.discard(rec["session_id"])
                    self.metrics.counter("serve.sessions_completed").inc()
                    if self.journal is not None:
                        self.journal.emit(
                            "session_complete",
                            session_id=rec["session_id"],
                            digest=rec["digest"], counts=rec["counts"],
                            shard=shard.index,
                            migrations=entry.migrations)
                elif entry.slots_done % self.checkpoint_interval == 0:
                    if self.journal is not None:
                        self.journal.emit(
                            "session_checkpoint",
                            session_id=rec["session_id"],
                            state=rec["state"], shard=shard.index)
        self._handle_dead(dead)
        return advanced

    # -- service loop --------------------------------------------------------

    def run(self, specs=()) -> ServiceResult:
        """Serve until every admitted session completes (or a drain is
        requested / the service stalls); returns the fates."""
        for item in specs:
            if isinstance(item, tuple):
                self.submit(item[0], item[1])
            else:
                self.submit(item)
        self.pool.start()
        if self.journal is not None:
            for shard in self.pool.shards:
                self.journal.emit("shard_start", shard=shard.index,
                                  respawn=False)
        t0 = time.monotonic()
        status = "complete"
        stalled = 0
        try:
            while any(not e.done for e in self.entries.values()):
                if self.journal_path is not None \
                        and drain_requested(self.journal_path):
                    self._drain_service()
                    clear_drain(self.journal_path)
                    status = "drained"
                    break
                self._rounds += 1
                self._place_queued()
                advanced = self._step_round()
                if advanced == 0:
                    stalled += 1
                    if not self.pool.alive_shards() \
                            and not self.respawn_dead:
                        status = "stalled"
                        break
                    if stalled >= STALL_ROUNDS:
                        status = "stalled"
                        break
                else:
                    stalled = 0
                if self.journal is not None:
                    self._emit_progress(t0)
        finally:
            self.pool.stop()
            if self.journal is not None:
                self.journal.close()
        return self._result(time.monotonic() - t0, status)

    def _drain_service(self) -> None:
        """Checkpoint every resident session and release the shards."""
        for shard in self.pool.alive_shards():
            if shard.resident:
                self.pool.send(shard, ("drain_all",))
        replies, dead = self.pool.collect(self.step_timeout_s)
        for shard, reply in replies:
            if reply[0] != "ok" or reply[1] != "drain_all":
                continue
            for sid, state in reply[2]["states"].items():
                entry = self.entries.get(sid)
                if entry is None:
                    continue
                entry.state = state
                entry.shard = None
                if self.journal is not None:
                    self.journal.emit("session_checkpoint",
                                      session_id=sid, state=state,
                                      shard=shard.index, drain=True)
            shard.resident = set()

    def _emit_progress(self, t0: float) -> None:
        wall = max(time.monotonic() - t0, 1e-9)
        completed = sum(1 for e in self.entries.values() if e.done)
        slots = len(self._slot_s)
        self.journal.emit(
            "progress", completed=completed, admitted=len(self.entries),
            sessions_per_s=round(completed / wall, 4),
            slots_per_s=round(slots / wall, 4),
            p95_slot_s=_exact_percentile(self._slot_s, 95.0))

    # -- results -------------------------------------------------------------

    def _result(self, wall: float, status: str) -> ServiceResult:
        sessions = {}
        reports = {}
        for sid, entry in sorted(self.entries.items()):
            sessions[sid] = {
                "kind": entry.spec.kind, "tenant": entry.spec.tenant,
                "n_slots": entry.spec.n_slots,
                "slots_done": entry.slots_done, "done": entry.done,
                "digest": entry.digest, "counts": dict(entry.counts),
                "migrations": entry.migrations,
                "shard_history": list(entry.shard_history),
            }
            report = RunReport(
                f"session {sid}",
                meta={"session_id": sid, "kind": entry.spec.kind,
                      "tenant": entry.spec.tenant,
                      "seed": entry.spec.seed,
                      "migrations": entry.migrations,
                      "shards": ",".join(map(str, entry.shard_history))})
            report.add_section("session", sessions[sid])
            reports[sid] = report
        completed = sum(1 for rec in sessions.values() if rec["done"])
        stats = {
            "shards": len(self.pool.shards),
            "rounds": self._rounds,
            "wall_s": round(wall, 4),
            "sessions_admitted": len(self.entries),
            "sessions_completed": completed,
            "sessions_per_s": round(completed / max(wall, 1e-9), 4),
            "slots_total": len(self._slot_s),
            "slots_per_s": round(len(self._slot_s) / max(wall, 1e-9), 4),
            "p50_slot_s": _exact_percentile(self._slot_s, 50.0),
            "p95_slot_s": _exact_percentile(self._slot_s, 95.0),
            "shed_sessions": len(self.shed),
            "migrations": self._migrations,
            "shard_deaths": sum(s.deaths for s in self.pool.shards),
            "shard_respawns": self.pool.respawns,
            "deadline_misses": self._deadline_misses,
        }
        flight_payloads = {s.index: s.flight_payload
                           for s in self.pool.shards}
        return ServiceResult(
            sessions=sessions, stats=stats,
            alerts=[a.to_dict() for a in self.probes.alerts],
            session_reports=reports, flight_payloads=flight_payloads,
            status=status)


def resumable_sessions(journal_path) -> list:
    """(spec, state) pairs for a journal's incomplete sessions —
    ready to feed back through :meth:`SessionBroker.run`."""
    fates = recover_sessions(read_journal(journal_path))
    out = []
    for sid in sorted(fates):
        fate = fates[sid]
        if fate["complete"] or fate["spec"] is None:
            continue
        out.append((SessionSpec.from_dict(fate["spec"]), fate["state"]))
    return out

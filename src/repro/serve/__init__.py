"""``repro.serve`` — a persistent multi-terminal session service.

The campaign layer (:mod:`repro.campaign`) answers "run this sweep to
completion"; ``repro.serve`` answers the paper's actual deployment
question: many *terminals* (rake and OFDM sessions) sharing a small
pool of reconfigurable compute, admitted, scheduled slot by slot,
checkpointed, and migrated live between simulator shards.

Pieces:

* :class:`~repro.serve.session.SessionSpec` /
  :func:`~repro.serve.session.build_workload` — deterministic
  per-terminal workloads whose per-slot stimulus is a pure function of
  ``(seed, slot)`` and whose inter-slot DSP state round-trips through
  JSON, making sessions migratable with bit-exact output (chained
  SHA-256 digests prove it).
* :class:`~repro.serve.shard.ShardPool` — long-lived worker processes
  built on :mod:`repro.pool`, each hosting resident sessions and
  advancing them one slot per ``step``.
* :class:`~repro.serve.broker.SessionBroker` — admission control
  (bounded queue, tenant quotas, shedding), placement, checkpoint
  journaling and migration of sessions off dead shards.
* :mod:`~repro.serve.journal` — the multi-appender JSONL lifecycle
  log that makes a killed service resumable.

Entry point: ``repro-serve run|status|drain`` (see
:mod:`repro.serve.cli`).
"""

from repro.serve.broker import (
    ServiceResult,
    SessionBroker,
    resumable_sessions,
    service_report,
)
from repro.serve.journal import (
    ServeJournal,
    clear_drain,
    drain_requested,
    journal_summary,
    read_journal,
    recover_sessions,
    request_drain,
)
from repro.serve.session import (
    SESSION_KINDS,
    OfdmSessionWorkload,
    RakeSessionWorkload,
    SessionSpec,
    SessionWorkload,
    build_workload,
    expand_sessions,
    slot_rng,
    workload_from_state,
)
from repro.serve.shard import ShardPool, shard_main

__all__ = [
    "SESSION_KINDS",
    "OfdmSessionWorkload",
    "RakeSessionWorkload",
    "ServeJournal",
    "ServiceResult",
    "SessionBroker",
    "SessionSpec",
    "SessionWorkload",
    "ShardPool",
    "build_workload",
    "clear_drain",
    "drain_requested",
    "expand_sessions",
    "journal_summary",
    "read_journal",
    "recover_sessions",
    "request_drain",
    "resumable_sessions",
    "service_report",
    "shard_main",
    "slot_rng",
    "workload_from_state",
]

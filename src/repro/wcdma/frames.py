"""Downlink DPCH slot/frame structure and inner-loop power control.

The dedicated physical channel interleaves data with control fields in
every 2560-chip slot (3GPP TS 25.211): Data1, TPC (transmit power
control), TFCI, Data2 and the pilot bits the channel estimator uses.
Fifteen slots form a 10 ms radio frame.

The TPC bits close the fast power-control loop: each slot the receiver
compares its pilot-measured SIR against a target and commands the
transmitter one step up or down — the kind of tightly-timed
control-flow task the paper assigns to the DSP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.wcdma.modulation import bits_to_qpsk, qpsk_to_bits
from repro.wcdma.params import SLOT_CHIPS


@dataclass(frozen=True)
class SlotFormat:
    """One downlink DPCH slot format: bits per field in one slot.

    Field order on air: Data1, TPC, TFCI, Data2, Pilot.  The QPSK slot
    carries ``2 * 2560 / sf`` bits in total.
    """

    number: int
    sf: int
    data1: int
    tpc: int
    tfci: int
    data2: int
    pilot: int

    @property
    def bits_per_slot(self) -> int:
        return self.data1 + self.tpc + self.tfci + self.data2 + self.pilot

    @property
    def data_bits(self) -> int:
        return self.data1 + self.data2

    def __post_init__(self) -> None:
        expected = 2 * SLOT_CHIPS // self.sf
        if self.bits_per_slot != expected:
            raise ValueError(
                f"slot format {self.number}: fields sum to "
                f"{self.bits_per_slot} bits but SF {self.sf} carries "
                f"{expected}")


#: A representative subset of the TS 25.211 table 11 downlink formats.
SLOT_FORMATS = {
    0: SlotFormat(0, sf=512, data1=0, tpc=2, tfci=0, data2=4, pilot=4),
    2: SlotFormat(2, sf=256, data1=2, tpc=2, tfci=0, data2=14, pilot=2),
    8: SlotFormat(8, sf=128, data1=6, tpc=2, tfci=0, data2=24, pilot=8),
    11: SlotFormat(11, sf=64, data1=24, tpc=4, tfci=8, data2=36, pilot=8),
}

#: Known pilot bit pattern: alternating 1 0 (maps to the +-1 QPSK rails).
def pilot_bits(n: int) -> np.ndarray:
    return np.tile([1, 0], -(-n // 2))[:n]


def tpc_bits(command: int, n: int) -> np.ndarray:
    """TPC field: all ones = power up, all zeros = power down."""
    if command not in (+1, -1):
        raise ValueError("TPC command must be +1 (up) or -1 (down)")
    return np.full(n, 1 if command > 0 else 0, dtype=np.int64)


def build_slot_bits(fmt: SlotFormat, data: np.ndarray,
                    tpc_command: int = +1,
                    tfci: Optional[np.ndarray] = None) -> np.ndarray:
    """Assemble one slot's bit stream in on-air field order."""
    data = np.asarray(data, dtype=np.int64)
    if data.size != fmt.data_bits:
        raise ValueError(f"slot format {fmt.number} carries "
                         f"{fmt.data_bits} data bits, got {data.size}")
    tfci_field = np.zeros(fmt.tfci, dtype=np.int64) if tfci is None \
        else np.asarray(tfci, dtype=np.int64)
    if tfci_field.size != fmt.tfci:
        raise ValueError(f"TFCI field is {fmt.tfci} bits")
    return np.concatenate([
        data[:fmt.data1],
        tpc_bits(tpc_command, fmt.tpc),
        tfci_field,
        data[fmt.data1:],
        pilot_bits(fmt.pilot),
    ])


@dataclass
class SlotFields:
    """Decoded fields of one received slot."""

    data: np.ndarray
    tpc_command: int
    tfci: np.ndarray
    pilot_symbols: np.ndarray


def parse_slot_symbols(fmt: SlotFormat, symbols: np.ndarray) -> SlotFields:
    """Split one slot's despread QPSK symbols back into fields.

    ``symbols`` must hold ``bits_per_slot / 2`` symbols.  The pilot
    symbols are returned raw (for SIR estimation); the other fields are
    hard-decided.
    """
    symbols = np.asarray(symbols, dtype=np.complex128)
    if 2 * symbols.size != fmt.bits_per_slot:
        raise ValueError(f"slot format {fmt.number} has "
                         f"{fmt.bits_per_slot // 2} symbols per slot, "
                         f"got {symbols.size}")
    bits = qpsk_to_bits(symbols)
    i = 0
    data1 = bits[i:i + fmt.data1]
    i += fmt.data1
    tpc_field = bits[i:i + fmt.tpc]
    i += fmt.tpc
    tfci_field = bits[i:i + fmt.tfci]
    i += fmt.tfci
    data2 = bits[i:i + fmt.data2]
    i += fmt.data2
    pilot_start = i // 2
    pilots = symbols[pilot_start:]
    # majority vote on the TPC field
    command = +1 if int(tpc_field.sum()) * 2 >= fmt.tpc else -1
    return SlotFields(data=np.concatenate([data1, data2]),
                      tpc_command=command, tfci=tfci_field,
                      pilot_symbols=pilots)


def estimate_sir_db(pilot_symbols: np.ndarray,
                    fmt: SlotFormat) -> float:
    """Pilot-based SIR estimate: signal power of the mean vs residual
    variance, after removing the known pilot modulation."""
    pilots = np.asarray(pilot_symbols, dtype=np.complex128)
    if pilots.size == 0:
        return float("-inf")
    ref = bits_to_qpsk(pilot_bits(fmt.pilot))
    derotated = pilots * np.conj(ref[:pilots.size]) / np.sqrt(2.0)
    mean = np.mean(derotated)
    signal = np.abs(mean) ** 2
    noise = np.mean(np.abs(derotated - mean) ** 2)
    if noise <= 0:
        return float("inf")
    return float(10 * np.log10(signal / noise))


class InnerLoopPowerControl:
    """The 1500 Hz fast power-control loop (one decision per slot).

    The receiver side: compare the pilot SIR against the target and
    emit the TPC command; the transmitter side: step its gain by
    ``step_db`` per command.
    """

    def __init__(self, *, target_sir_db: float = 6.0, step_db: float = 1.0,
                 min_gain_db: float = -30.0, max_gain_db: float = 30.0):
        self.target_sir_db = target_sir_db
        self.step_db = step_db
        self.min_gain_db = min_gain_db
        self.max_gain_db = max_gain_db
        self.gain_db = 0.0
        self.history: list = []

    def command_for(self, measured_sir_db: float) -> int:
        """Receiver side: up if below target, down otherwise."""
        return +1 if measured_sir_db < self.target_sir_db else -1

    def apply_command(self, command: int) -> float:
        """Transmitter side: step the gain; returns the new gain (dB)."""
        if command not in (+1, -1):
            raise ValueError("TPC command must be +1 or -1")
        self.gain_db = float(np.clip(self.gain_db + command * self.step_db,
                                     self.min_gain_db, self.max_gain_db))
        return self.gain_db

    def slot_update(self, measured_sir_db: float) -> float:
        """One full loop iteration; returns the new transmit gain."""
        command = self.command_for(measured_sir_db)
        gain = self.apply_command(command)
        self.history.append((measured_sir_db, command, gain))
        return gain

    @property
    def linear_gain(self) -> float:
        return 10.0 ** (self.gain_db / 20.0)

"""Frame-level DPCH downlink link simulation.

Ties the W-CDMA pieces into the closed loop a live terminal runs: each
2560-chip slot carries Data/TPC/TFCI/Pilot fields; the receiver
despreads, estimates the channel from the slot pilots, corrects the
data, measures the SIR and feeds the TPC command back; the transmitter
steps its power.  Fading evolves slot by slot.

This is the system context the paper's partitioning lives in: the slot
datapath is the array's job, the per-slot estimation/decision loop the
DSP's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.telemetry.probes import get_probes
from repro.wcdma.codes import scrambling_code
from repro.wcdma.fading import FadingMultipathChannel
from repro.wcdma.frames import (
    InnerLoopPowerControl,
    SlotFormat,
    build_slot_bits,
    estimate_sir_db,
    parse_slot_symbols,
    pilot_bits,
)
from repro.wcdma.modulation import bits_to_qpsk, descramble, despread, \
    scramble, spread
from repro.wcdma.params import CHIP_RATE_HZ, FRAME_SLOTS, SLOT_CHIPS


@dataclass
class LinkReport:
    """Outcome of a DPCH link run."""

    n_slots: int = 0
    data_bits: int = 0
    bit_errors: int = 0
    block_errors: int = 0       # slots with at least one data bit error
    tpc_errors: int = 0
    sir_trace: list = field(default_factory=list)
    gain_trace: list = field(default_factory=list)

    @property
    def ber(self) -> float:
        return self.bit_errors / self.data_bits if self.data_bits else 0.0

    @property
    def bler(self) -> float:
        """Block (slot) error rate: fraction of slots decoded with any
        data bit error."""
        return self.block_errors / self.n_slots if self.n_slots else 0.0

    @property
    def tpc_error_rate(self) -> float:
        return self.tpc_errors / self.n_slots if self.n_slots else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable summary mirroring
        :meth:`repro.xpp.stats.RunStats.to_dict` — the payload a
        campaign shard ships back.

        The per-slot ``sir_trace``/``gain_trace`` lists grow without
        bound, so the serialized form carries only their summary
        statistics (count / mean / min / max / last).
        """
        return {
            "n_slots": self.n_slots,
            "data_bits": self.data_bits,
            "bit_errors": self.bit_errors,
            "block_errors": self.block_errors,
            "tpc_errors": self.tpc_errors,
            "ber": self.ber,
            "bler": self.bler,
            "tpc_error_rate": self.tpc_error_rate,
            "sir_db": _trace_summary(self.sir_trace),
            "gain_db": _trace_summary(self.gain_trace),
        }


def _trace_summary(trace: list) -> dict:
    """Bounded summary of an unbounded per-slot trace."""
    if not trace:
        return {"count": 0, "mean": None, "min": None, "max": None,
                "last": None}
    return {"count": len(trace), "mean": float(np.mean(trace)),
            "min": float(np.min(trace)), "max": float(np.max(trace)),
            "last": float(trace[-1])}


class DpchLink:
    """A closed-loop downlink DPCH between one basestation and one
    terminal."""

    def __init__(self, slot_format: SlotFormat, *, scrambling_number: int = 0,
                 code_index: int = 1, target_sir_db: float = 8.0,
                 snr_db: float = 6.0, doppler_hz: float = 10.0,
                 rng: Optional[np.random.Generator] = None):
        self.fmt = slot_format
        self.scrambling_number = scrambling_number
        self.code_index = code_index
        self.snr_db = snr_db
        self.rng = rng if rng is not None else np.random.default_rng()
        self.channel = FadingMultipathChannel(
            delays=[0], powers=[1.0], doppler=doppler_hz,
            chip_rate_hz=CHIP_RATE_HZ, rng=self.rng)
        self.loop = InnerLoopPowerControl(target_sir_db=target_sir_db)
        self.code = scrambling_code(scrambling_number, SLOT_CHIPS)
        self._pilot_ref = bits_to_qpsk(pilot_bits(self.fmt.pilot))
        self._pending_command = +1

    # -- one slot each way -----------------------------------------------------------

    def _transmit_slot(self, data: np.ndarray) -> np.ndarray:
        bits = build_slot_bits(self.fmt, data,
                               tpc_command=self._pending_command)
        symbols = bits_to_qpsk(bits)
        chips = spread(symbols, self.fmt.sf, self.code_index)
        return scramble(chips, self.code) * self.loop.linear_gain

    def _receive_slot(self, rx: np.ndarray):
        symbols = despread(descramble(rx[:SLOT_CHIPS], self.code),
                           self.fmt.sf, self.code_index)
        n_pilot_sym = self.fmt.pilot // 2
        pilots = symbols[-n_pilot_sym:]
        # per-slot channel estimate from the pilots
        h = np.mean(pilots * np.conj(self._pilot_ref[:n_pilot_sym])) \
            / np.sqrt(2.0)
        if abs(h) > 0:
            corrected = symbols * np.conj(h) / abs(h) ** 2
        else:
            corrected = symbols
        fields = parse_slot_symbols(self.fmt, corrected)
        sir = estimate_sir_db(fields.pilot_symbols, self.fmt)
        return fields, sir

    def run_slot(self, report: LinkReport) -> None:
        """One slot: transmit, fade, receive, close the TPC loop."""
        data = self.rng.integers(0, 2, self.fmt.data_bits)
        sent_command = self._pending_command
        tx = self._transmit_slot(data)
        t0 = report.n_slots * SLOT_CHIPS / CHIP_RATE_HZ
        faded = self.channel.apply(tx, t0=t0)[:SLOT_CHIPS]
        # fixed noise floor; the signal level follows gain and fading
        rx = faded + self._noise(SLOT_CHIPS)
        fields, sir = self._receive_slot(rx)

        slot_errors = int(np.sum(fields.data != data))
        report.n_slots += 1
        report.data_bits += data.size
        report.bit_errors += slot_errors
        report.block_errors += 1 if slot_errors else 0
        report.tpc_errors += int(fields.tpc_command != sent_command)
        report.sir_trace.append(sir)
        report.gain_trace.append(self.loop.gain_db)

        probes = get_probes()
        if probes.enabled:
            probes.record("wcdma.link.sir_db", sir, unit="dB")
            probes.record("wcdma.link.slot_ber",
                          slot_errors / data.size if data.size else 0.0,
                          unit="ratio")
            probes.record("wcdma.link.slot_errors", slot_errors,
                          unit="bits")
            probes.record("wcdma.link.block_error",
                          1.0 if slot_errors else 0.0, unit="ratio")
            probes.record("wcdma.link.tx_gain_db", self.loop.gain_db,
                          unit="dB")

        # the terminal's decision for the *next* slot
        self._pending_command = self.loop.command_for(sir)
        self.loop.apply_command(self._pending_command)

    def _noise(self, n: int) -> np.ndarray:
        # unit-power reference signal at 0 dB gain defines the noise floor
        noise_power = 10.0 ** (-self.snr_db / 10.0)
        scale = np.sqrt(noise_power / 2.0)
        return scale * (self.rng.standard_normal(n)
                        + 1j * self.rng.standard_normal(n))

    def run_frames(self, n_frames: int) -> LinkReport:
        """Simulate whole 15-slot radio frames; returns the report."""
        report = LinkReport()
        for _ in range(n_frames * FRAME_SLOTS):
            self.run_slot(report)
        probes = get_probes()
        if probes.enabled:
            probes.record("wcdma.link.ber", report.ber, unit="ratio")
            probes.record("wcdma.link.bler", report.bler, unit="ratio")
        return report

"""UMTS/W-CDMA downlink physical-layer constants (FDD)."""

#: Chip rate of UMTS/W-CDMA (the paper's 3.84 MHz).
CHIP_RATE_HZ = 3_840_000

#: Chips per slot and slots per 10 ms radio frame.
SLOT_CHIPS = 2560
FRAME_SLOTS = 15
FRAME_CHIPS = SLOT_CHIPS * FRAME_SLOTS   # 38400

#: Downlink spreading-factor range supported by the rake design
#: ("Spreading Factors: 4 to 512").
MIN_SF = 4
MAX_SF = 512

#: Period of the scrambling-code LFSRs (18-bit Gold generators).
SCRAMBLING_LFSR_PERIOD = (1 << 18) - 1

"""Multipath fading channel and AWGN models.

The paper's operational scenario is a soft handover with up to six
basestations and three multipaths per basestation.  Our channel applies
integer-chip path delays with complex path coefficients (optionally
Rayleigh-drawn), sums the contributions and adds white Gaussian noise —
the synthetic stand-in for the air interface of the authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


def awgn(signal: np.ndarray, snr_db: float,
         rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Add complex white Gaussian noise at the given SNR (dB) relative to
    the measured signal power."""
    rng = rng if rng is not None else np.random.default_rng()
    s = np.asarray(signal, dtype=np.complex128)
    power = np.mean(np.abs(s) ** 2)
    if power == 0:
        return s.copy()
    noise_power = power / (10.0 ** (snr_db / 10.0))
    scale = np.sqrt(noise_power / 2.0)
    noise = scale * (rng.standard_normal(s.shape)
                     + 1j * rng.standard_normal(s.shape))
    return s + noise


@dataclass
class MultipathChannel:
    """A tapped-delay-line channel: ``delays`` in chips, complex ``gains``.

    ``rayleigh=True`` re-draws each tap's gain as a complex Gaussian with
    the configured average power (block fading: constant within one
    :meth:`apply` call).
    """

    delays: Sequence[int]
    gains: Sequence[complex]
    rayleigh: bool = False
    rng: Optional[np.random.Generator] = None
    _drawn: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if len(self.delays) != len(self.gains):
            raise ValueError("delays and gains must have equal length")
        if any(d < 0 for d in self.delays):
            raise ValueError("path delays must be non-negative chips")
        if self.rng is None:
            self.rng = np.random.default_rng()

    @property
    def n_paths(self) -> int:
        return len(self.delays)

    @property
    def max_delay(self) -> int:
        return max(self.delays) if self.delays else 0

    def tap_gains(self, redraw: bool = False) -> np.ndarray:
        """Current complex tap gains (drawing them if Rayleigh fading)."""
        base = np.asarray(self.gains, dtype=np.complex128)
        if not self.rayleigh:
            return base
        if self._drawn is None or redraw:
            mags = np.abs(base)
            fade = (self.rng.standard_normal(base.size)
                    + 1j * self.rng.standard_normal(base.size)) / np.sqrt(2.0)
            self._drawn = mags * fade
        return self._drawn

    def apply(self, signal: np.ndarray, *, snr_db: Optional[float] = None,
              redraw: bool = False) -> np.ndarray:
        """Run a chip-rate signal through the channel.

        Output length is ``len(signal) + max_delay``; noise is added
        afterwards if ``snr_db`` is given.
        """
        s = np.asarray(signal, dtype=np.complex128)
        gains = self.tap_gains(redraw=redraw)
        out = np.zeros(s.size + self.max_delay, dtype=np.complex128)
        for delay, gain in zip(self.delays, gains):
            out[delay:delay + s.size] += gain * s
        if snr_db is not None:
            out = awgn(out, snr_db, self.rng)
        return out

    @classmethod
    def single_path(cls, gain: complex = 1.0 + 0j) -> "MultipathChannel":
        """A flat (single-tap) channel."""
        return cls(delays=[0], gains=[gain])

    @classmethod
    def typical_urban(cls, n_paths: int = 3, spacing_chips: int = 4,
                      decay_db_per_path: float = 3.0,
                      rng: Optional[np.random.Generator] = None,
                      rayleigh: bool = False) -> "MultipathChannel":
        """A simple exponentially-decaying multipath profile, used as the
        synthetic stand-in for the paper's three-multipath scenario."""
        delays = [i * spacing_chips for i in range(n_paths)]
        gains = [10.0 ** (-decay_db_per_path * i / 20.0) for i in range(n_paths)]
        norm = np.sqrt(sum(g ** 2 for g in gains))
        gains = [g / norm for g in gains]
        return cls(delays=delays, gains=gains, rayleigh=rayleigh, rng=rng)

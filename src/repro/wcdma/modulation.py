"""QPSK mapping, spreading and scrambling for the W-CDMA downlink."""

from __future__ import annotations

import numpy as np

from repro.wcdma.codes import ovsf_code


def bits_to_qpsk(bits: np.ndarray) -> np.ndarray:
    """Map pairs of bits to QPSK symbols: (b0, b1) -> (1-2*b0) + j(1-2*b1).

    ``bits`` must have even length.
    """
    b = np.asarray(bits, dtype=np.int64)
    if b.size % 2:
        raise ValueError("QPSK needs an even number of bits")
    if np.any((b != 0) & (b != 1)):
        raise ValueError("bits must be 0/1")
    i_part = 1 - 2 * b[0::2]
    q_part = 1 - 2 * b[1::2]
    return (i_part + 1j * q_part).astype(np.complex128)


def qpsk_to_bits(symbols: np.ndarray) -> np.ndarray:
    """Hard-decide QPSK symbols back to a bit stream."""
    s = np.asarray(symbols, dtype=np.complex128)
    bits = np.empty(2 * s.size, dtype=np.int64)
    bits[0::2] = (s.real < 0).astype(np.int64)
    bits[1::2] = (s.imag < 0).astype(np.int64)
    return bits


def spread(symbols: np.ndarray, sf: int, code_index: int) -> np.ndarray:
    """Spread symbols by the OVSF code: each symbol becomes ``sf`` chips."""
    code = ovsf_code(sf, code_index)
    s = np.asarray(symbols, dtype=np.complex128)
    return (s[:, None] * code[None, :]).reshape(-1)


def despread(chips: np.ndarray, sf: int, code_index: int) -> np.ndarray:
    """Integrate-and-dump despreading: inverse of :func:`spread` (after
    descrambling), normalised by the spreading factor."""
    code = ovsf_code(sf, code_index)
    c = np.asarray(chips, dtype=np.complex128)
    if c.size % sf:
        c = c[:c.size - c.size % sf]
    blocks = c.reshape(-1, sf)
    return blocks @ code / sf


def scramble(chips: np.ndarray, code: np.ndarray) -> np.ndarray:
    """Apply the complex scrambling code (transmitter side).

    The code is the unnormalised {+-1 +-j} sequence; descrambling divides
    by its squared magnitude (2) when using the conjugate, so we keep the
    convention: scramble multiplies by ``code / sqrt(2)`` to preserve
    power.
    """
    c = np.asarray(chips, dtype=np.complex128)
    k = np.asarray(code, dtype=np.complex128)[:c.size]
    if k.size < c.size:
        raise ValueError("scrambling code shorter than chip stream")
    return c * k / np.sqrt(2.0)


def descramble(chips: np.ndarray, code: np.ndarray) -> np.ndarray:
    """Remove the scrambling code: multiply by conj(code)/sqrt(2)."""
    c = np.asarray(chips, dtype=np.complex128)
    k = np.asarray(code, dtype=np.complex128)[:c.size]
    if k.size < c.size:
        raise ValueError("scrambling code shorter than chip stream")
    return c * np.conj(k) / np.sqrt(2.0)

"""UMTS/W-CDMA downlink substrate.

Everything the rake receiver of Sec. 3.1 needs from the surrounding
system: OVSF channelisation codes, Gold scrambling codes (including the
2-bit hardware representation the dedicated code generators deliver to
the array), QPSK symbol mapping, spreading, STTD transmit diversity, a
multi-basestation downlink transmitter and a multipath fading channel.
"""

from repro.wcdma.params import (
    CHIP_RATE_HZ,
    FRAME_CHIPS,
    FRAME_SLOTS,
    MAX_SF,
    MIN_SF,
    SLOT_CHIPS,
)
from repro.wcdma.codes import (
    code_from_2bit,
    code_to_2bit,
    ovsf_code,
    ovsf_tree_conflicts,
    scrambling_code,
    scrambling_code_2bit,
)
from repro.wcdma.modulation import (
    bits_to_qpsk,
    descramble,
    despread,
    qpsk_to_bits,
    scramble,
    spread,
)
from repro.wcdma.fading import (
    FadingMultipathChannel,
    JakesFader,
    doppler_hz,
)
from repro.wcdma.frames import (
    SLOT_FORMATS,
    InnerLoopPowerControl,
    SlotFields,
    SlotFormat,
    build_slot_bits,
    estimate_sir_db,
    parse_slot_symbols,
)
from repro.wcdma.link import DpchLink, LinkReport
from repro.wcdma.sttd import sttd_decode, sttd_encode
from repro.wcdma.channel import MultipathChannel, awgn
from repro.wcdma.transmitter import (
    Basestation,
    DownlinkChannelConfig,
    build_downlink_frame,
)

__all__ = [
    "CHIP_RATE_HZ",
    "FRAME_CHIPS",
    "FRAME_SLOTS",
    "MAX_SF",
    "MIN_SF",
    "SLOT_CHIPS",
    "Basestation",
    "DownlinkChannelConfig",
    "DpchLink",
    "FadingMultipathChannel",
    "LinkReport",
    "InnerLoopPowerControl",
    "JakesFader",
    "doppler_hz",
    "MultipathChannel",
    "SLOT_FORMATS",
    "SlotFields",
    "SlotFormat",
    "build_slot_bits",
    "estimate_sir_db",
    "parse_slot_symbols",
    "awgn",
    "bits_to_qpsk",
    "build_downlink_frame",
    "code_from_2bit",
    "code_to_2bit",
    "descramble",
    "despread",
    "ovsf_code",
    "ovsf_tree_conflicts",
    "qpsk_to_bits",
    "scramble",
    "scrambling_code",
    "scrambling_code_2bit",
    "spread",
    "sttd_decode",
    "sttd_encode",
]

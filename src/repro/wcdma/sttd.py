"""Space Time Transmit Diversity (STTD) encoding and decoding.

Downlink open-loop transmit diversity (3GPP TS 25.211): the symbol stream
is split over two antennas.  For each symbol pair ``(s0, s1)``:

* antenna 1 transmits ``s0, s1`` (unchanged), and
* antenna 2 transmits ``-conj(s1), conj(s0)`` (reordered conjugates).

At the receiver, with per-antenna channel coefficients ``h1, h2`` and
received symbols ``r0, r1``::

    s0_hat = conj(h1) * r0 + h2 * conj(r1)
    s1_hat = conj(h1) * r1 - h2 * conj(r0)

This is the combination performed by the paper's channel-correction unit
(Fig. 7) together with the per-finger channel weighting.
"""

from __future__ import annotations

import numpy as np


def sttd_encode(symbols: np.ndarray) -> tuple:
    """Split a symbol stream into the two antenna streams.

    Returns ``(antenna1, antenna2)``; the stream length must be even.
    """
    s = np.asarray(symbols, dtype=np.complex128)
    if s.size % 2:
        raise ValueError("STTD needs an even number of symbols")
    ant1 = s.copy()
    ant2 = np.empty_like(s)
    ant2[0::2] = -np.conj(s[1::2])
    ant2[1::2] = np.conj(s[0::2])
    return ant1, ant2


def sttd_decode(received: np.ndarray, h1: np.ndarray,
                h2: np.ndarray) -> np.ndarray:
    """Decode an STTD stream received through channels ``h1``/``h2``.

    ``h1``/``h2`` may be scalars or per-pair arrays (one coefficient per
    symbol pair, block-constant over the pair).
    """
    r = np.asarray(received, dtype=np.complex128)
    if r.size % 2:
        raise ValueError("STTD needs an even number of received symbols")
    pairs = r.reshape(-1, 2)
    h1 = np.broadcast_to(np.asarray(h1, dtype=np.complex128), (pairs.shape[0],))
    h2 = np.broadcast_to(np.asarray(h2, dtype=np.complex128), (pairs.shape[0],))
    r0, r1 = pairs[:, 0], pairs[:, 1]
    s0 = np.conj(h1) * r0 + h2 * np.conj(r1)
    s1 = np.conj(h1) * r1 - h2 * np.conj(r0)
    out = np.empty_like(r)
    out[0::2] = s0
    out[1::2] = s1
    # normalise by the diversity channel energy so decisions are unbiased
    gain = (np.abs(h1) ** 2 + np.abs(h2) ** 2)
    gain = np.where(gain == 0, 1.0, gain)
    out[0::2] /= gain
    out[1::2] /= gain
    return out

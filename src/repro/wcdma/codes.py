"""Spreading and scrambling code generation.

These are the paper's *dedicated hardware* blocks ("Scrambling Code
Generation", "Spreading Code Generation" in Fig. 4), modelled
bit-accurately:

* OVSF channelisation codes (3GPP TS 25.213 sec. 4.3.1) for spreading
  factors 4..512,
* downlink Gold scrambling codes built from the two 18-bit LFSRs of
  TS 25.213 sec. 5.2.2, and
* the 2-bit code representation the code generators feed to the
  reconfigurable array, which translates it to +-1 +-j with a multiplexer
  (Fig. 5).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.wcdma.params import FRAME_CHIPS, MAX_SF, SCRAMBLING_LFSR_PERIOD


# ---------------------------------------------------------------------------
# OVSF channelisation codes
# ---------------------------------------------------------------------------

@lru_cache(maxsize=None)
def _ovsf_cached(sf: int, index: int) -> tuple:
    if sf == 1:
        return (1,)
    parent = _ovsf_cached(sf // 2, index // 2)
    if index % 2 == 0:
        return parent + parent
    return parent + tuple(-c for c in parent)


def ovsf_code(sf: int, index: int) -> np.ndarray:
    """OVSF code ``C_ch,sf,index`` as a +-1 integer array of length ``sf``.

    ``sf`` must be a power of two (1..512); ``index`` in ``[0, sf)``.
    """
    if sf < 1 or sf > MAX_SF or sf & (sf - 1):
        raise ValueError(f"spreading factor must be a power of 2 in 1..512: {sf}")
    if not 0 <= index < sf:
        raise ValueError(f"code index must be in [0, {sf}): {index}")
    return np.array(_ovsf_cached(sf, index), dtype=np.int64)


def ovsf_tree_conflicts(sf_a: int, idx_a: int, sf_b: int, idx_b: int) -> bool:
    """True if two OVSF codes are on the same tree branch (one is an
    ancestor of the other), i.e. they may NOT be allocated together."""
    if sf_a == sf_b:
        return idx_a == idx_b
    if sf_a > sf_b:
        sf_a, idx_a, sf_b, idx_b = sf_b, idx_b, sf_a, idx_a
    # (sf_a, idx_a) is the shorter code: ancestor iff idx_b's prefix is idx_a
    ratio = sf_b // sf_a
    return idx_b // ratio == idx_a


# ---------------------------------------------------------------------------
# downlink scrambling codes (TS 25.213 sec. 5.2.2 Gold sequences)
# ---------------------------------------------------------------------------

@lru_cache(maxsize=1)
def _x_sequence() -> np.ndarray:
    """The m-sequence x: x(i+18) = x(i+7) + x(i) mod 2, seed 100...0."""
    n = SCRAMBLING_LFSR_PERIOD
    x = np.zeros(n + 18, dtype=np.int8)
    x[0] = 1
    for i in range(n):
        x[i + 18] = x[i + 7] ^ x[i]
    return x[:n]


@lru_cache(maxsize=1)
def _y_sequence() -> np.ndarray:
    """The m-sequence y: y(i+18) = y(i+10) + y(i+7) + y(i+5) + y(i),
    seed all ones."""
    n = SCRAMBLING_LFSR_PERIOD
    y = np.zeros(n + 18, dtype=np.int8)
    y[:18] = 1
    for i in range(n):
        y[i + 18] = y[i + 10] ^ y[i + 7] ^ y[i + 5] ^ y[i]
    return y[:n]


@lru_cache(maxsize=32)
def _scrambling_code_cached(n: int, length: int) -> np.ndarray:
    x = _x_sequence()
    y = _y_sequence()
    period = SCRAMBLING_LFSR_PERIOD
    idx = np.arange(length)
    z = (x[(idx + n) % period] ^ y[idx % period]).astype(np.int64)
    zq = (x[(idx + n + 131072) % period] ^ y[(idx + 131072) % period]) \
        .astype(np.int64)
    i_part = 1 - 2 * z
    q_part = 1 - 2 * zq
    code = i_part + 1j * q_part
    code.setflags(write=False)
    return code


def scrambling_code(n: int, length: int = FRAME_CHIPS) -> np.ndarray:
    """Complex downlink scrambling code ``S_dl,n`` of the given length.

    Values are in {+-1 +-j} (the unnormalised QPSK constellation the
    descrambler's multiplexer produces).

    Cached per ``(n, length)`` — a full 38400-chip frame takes a few ms
    to generate and every link/benchmark run asks for the same handful
    of codes.  The returned array is read-only; ``.copy()`` it to
    mutate.
    """
    if not 0 <= n < SCRAMBLING_LFSR_PERIOD:
        raise ValueError(f"scrambling code number out of range: {n}")
    if length < 0:
        raise ValueError("length must be non-negative")
    return _scrambling_code_cached(n, length)


def code_to_2bit(code: np.ndarray) -> np.ndarray:
    """Encode a {+-1 +-j} code into the 2-bit representation delivered by
    the dedicated code-generation hardware: bit1 = I is negative,
    bit0 = Q is negative."""
    arr = np.asarray(code)
    bit1 = (arr.real < 0).astype(np.int64)
    bit0 = (arr.imag < 0).astype(np.int64)
    return (bit1 << 1) | bit0


def code_from_2bit(bits: np.ndarray) -> np.ndarray:
    """Decode the 2-bit representation back to {+-1 +-j} — the multiplexer
    translation the reconfigurable hardware performs in Fig. 5."""
    b = np.asarray(bits, dtype=np.int64)
    if np.any((b < 0) | (b > 3)):
        raise ValueError("2-bit code symbols must be in 0..3")
    i_part = 1 - 2 * (b >> 1)
    q_part = 1 - 2 * (b & 1)
    return i_part + 1j * q_part


def scrambling_code_2bit(n: int, length: int = FRAME_CHIPS) -> np.ndarray:
    """Scrambling code ``S_dl,n`` in the 2-bit hardware representation."""
    return code_to_2bit(scrambling_code(n, length))

"""Time-varying fading: Jakes Doppler model.

The mobility axis of the paper's Fig. 2 — a terminal at vehicular speed
sees its channel coefficients rotate at the Doppler rate, which is what
the rake's channel estimator and tracker must follow.  This module
generates correlated Rayleigh fading with the classic Jakes
sum-of-sinusoids and provides a time-varying multipath channel built
on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

#: Speed of light, for Doppler computation.
C_M_S = 299_792_458.0


def doppler_hz(speed_kmh: float, carrier_hz: float = 2.14e9) -> float:
    """Maximum Doppler shift of a terminal moving at ``speed_kmh``."""
    if speed_kmh < 0:
        raise ValueError("speed must be non-negative")
    return speed_kmh / 3.6 * carrier_hz / C_M_S


class JakesFader:
    """Sum-of-sinusoids Rayleigh fader (Jakes' model).

    Produces a unit-average-power complex gain process whose
    autocorrelation follows J0(2 pi f_D tau).  Independent instances
    (different seeds) fade independently — one per path.
    """

    def __init__(self, doppler_hz: float, *, n_oscillators: int = 16,
                 rng: Optional[np.random.Generator] = None):
        if doppler_hz < 0:
            raise ValueError("Doppler must be non-negative")
        if n_oscillators < 4:
            raise ValueError("need at least 4 oscillators")
        self.doppler = doppler_hz
        rng = rng if rng is not None else np.random.default_rng()
        # random arrival angles and phases per oscillator
        self._angles = rng.uniform(0, 2 * np.pi, n_oscillators)
        self._phases_i = rng.uniform(0, 2 * np.pi, n_oscillators)
        self._phases_q = rng.uniform(0, 2 * np.pi, n_oscillators)
        self._n = n_oscillators

    def gains(self, t: np.ndarray) -> np.ndarray:
        """Complex gains at times ``t`` (seconds); unit average power."""
        t = np.atleast_1d(np.asarray(t, dtype=np.float64))
        w = 2 * np.pi * self.doppler * np.cos(self._angles)
        arg = np.outer(t, w)
        i_part = np.cos(arg + self._phases_i).sum(axis=1)
        q_part = np.cos(arg + self._phases_q).sum(axis=1)
        return (i_part + 1j * q_part) / np.sqrt(self._n)

    def gain_at(self, t: float) -> complex:
        return complex(self.gains(np.array([t]))[0])


@dataclass
class FadingMultipathChannel:
    """Tapped-delay-line channel with Jakes-faded taps.

    ``delays`` in chips, ``powers`` the average linear power per tap.
    :meth:`apply` runs a block starting at time ``t0`` with the fading
    held block-constant (slot-level fading) or sampled per-chip
    (``per_sample=True``).
    """

    delays: Sequence[int]
    powers: Sequence[float]
    doppler: float
    chip_rate_hz: float = 3.84e6
    rng: Optional[np.random.Generator] = None
    _faders: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if len(self.delays) != len(self.powers):
            raise ValueError("delays and powers must match")
        if any(p < 0 for p in self.powers):
            raise ValueError("tap powers must be non-negative")
        rng = self.rng if self.rng is not None else np.random.default_rng()
        self._faders = [JakesFader(self.doppler, rng=rng)
                        for _ in self.delays]

    @property
    def max_delay(self) -> int:
        return max(self.delays) if self.delays else 0

    def tap_gains_at(self, t: float) -> np.ndarray:
        """Instantaneous complex tap gains at time ``t`` (seconds)."""
        return np.array([np.sqrt(p) * f.gain_at(t)
                         for p, f in zip(self.powers, self._faders)])

    def apply(self, signal: np.ndarray, *, t0: float = 0.0,
              per_sample: bool = False) -> np.ndarray:
        """Run a chip block through the channel starting at ``t0``."""
        s = np.asarray(signal, dtype=np.complex128)
        out = np.zeros(s.size + self.max_delay, dtype=np.complex128)
        if per_sample:
            t = t0 + np.arange(s.size) / self.chip_rate_hz
            for delay, p, fader in zip(self.delays, self.powers,
                                       self._faders):
                g = np.sqrt(p) * fader.gains(t)
                out[delay:delay + s.size] += g * s
        else:
            gains = self.tap_gains_at(t0)
            for delay, g in zip(self.delays, gains):
                out[delay:delay + s.size] += g * s
        return out

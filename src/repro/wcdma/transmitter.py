"""W-CDMA downlink transmitter: basestations, physical channels, CPICH.

Synthesises the chip-rate signal a mobile terminal receives: each
basestation sums its pilot (CPICH) and data channels (DPCHs, each with
its own OVSF code), scrambles with its own Gold code and, if STTD is
enabled, emits two antenna streams with the diversity pilot pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.wcdma.codes import ovsf_tree_conflicts, scrambling_code
from repro.wcdma.modulation import bits_to_qpsk, spread
from repro.wcdma.sttd import sttd_encode

#: CPICH is always spreading factor 256, channelisation code 0.
CPICH_SF = 256
CPICH_CODE_INDEX = 0
#: CPICH pre-defined symbol (the 3GPP 'A' symbol, unnormalised).
CPICH_SYMBOL = 1 + 1j


@dataclass
class DownlinkChannelConfig:
    """One dedicated physical channel (DPCH) of a basestation."""

    sf: int
    code_index: int
    gain: float = 1.0
    sttd: bool = False

    def symbols_per_chips(self, n_chips: int) -> int:
        return n_chips // self.sf


@dataclass
class Basestation:
    """A downlink transmitter with one CPICH and a set of DPCHs."""

    scrambling_code_number: int
    channels: list = field(default_factory=list)
    cpich_gain: float = 1.0
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = np.random.default_rng()
        for i, a in enumerate(self.channels):
            if a.sf == CPICH_SF and a.code_index == CPICH_CODE_INDEX:
                raise ValueError("DPCH collides with the CPICH code")
            for b in self.channels[i + 1:]:
                if ovsf_tree_conflicts(a.sf, a.code_index, b.sf, b.code_index):
                    raise ValueError(
                        f"OVSF allocation conflict: ({a.sf},{a.code_index}) "
                        f"vs ({b.sf},{b.code_index})")

    def add_channel(self, channel: DownlinkChannelConfig) -> None:
        self.channels.append(channel)

    def cpich_symbols(self, n_chips: int, antenna: int = 1) -> np.ndarray:
        """The known pilot symbol sequence for one antenna.

        Antenna 1 sends the constant A symbol; antenna 2 sends the
        diversity pattern A, -A, A, -A... so the receiver can separate
        the two propagation channels.
        """
        n_sym = n_chips // CPICH_SF
        if antenna == 1:
            return np.full(n_sym, CPICH_SYMBOL, dtype=np.complex128)
        pattern = np.where(np.arange(n_sym) % 2 == 0, 1.0, -1.0)
        return CPICH_SYMBOL * pattern

    def transmit(self, n_chips: int, *, data_bits: Optional[dict] = None):
        """Generate one transmission.

        Returns ``(antennas, bits)`` where ``antennas`` is a list of one
        or two chip arrays (two iff any channel uses STTD) and ``bits``
        maps channel index -> the transmitted payload bits.
        """
        if n_chips % CPICH_SF:
            raise ValueError(f"n_chips must be a multiple of {CPICH_SF}")
        any_sttd = any(ch.sttd for ch in self.channels)
        ant1 = np.zeros(n_chips, dtype=np.complex128)
        ant2 = np.zeros(n_chips, dtype=np.complex128)

        # pilot
        ant1 += self.cpich_gain * spread(self.cpich_symbols(n_chips, 1),
                                         CPICH_SF, CPICH_CODE_INDEX)
        if any_sttd:
            ant2 += self.cpich_gain * spread(self.cpich_symbols(n_chips, 2),
                                             CPICH_SF, CPICH_CODE_INDEX)

        bits_out = {}
        for idx, ch in enumerate(self.channels):
            n_sym = ch.symbols_per_chips(n_chips)
            if n_sym % 2 and ch.sttd:
                n_sym -= 1
            if data_bits is not None and idx in data_bits:
                bits = np.asarray(data_bits[idx], dtype=np.int64)
                if bits.size != 2 * n_sym:
                    raise ValueError(
                        f"channel {idx} needs {2 * n_sym} bits, "
                        f"got {bits.size}")
            else:
                bits = self.rng.integers(0, 2, size=2 * n_sym)
            bits_out[idx] = bits
            symbols = bits_to_qpsk(bits)
            if ch.sttd:
                s1, s2 = sttd_encode(symbols)
                chips1 = spread(s1, ch.sf, ch.code_index)
                chips2 = spread(s2, ch.sf, ch.code_index)
                ant1[:chips1.size] += ch.gain * chips1
                ant2[:chips2.size] += ch.gain * chips2
            else:
                chips = spread(symbols, ch.sf, ch.code_index)
                ant1[:chips.size] += ch.gain * chips

        code = scrambling_code(self.scrambling_code_number, n_chips)
        ant1 = ant1 * code / np.sqrt(2.0)
        antennas = [ant1]
        if any_sttd:
            ant2 = ant2 * code / np.sqrt(2.0)
            antennas.append(ant2)
        return antennas, bits_out


def build_downlink_frame(basestation: Basestation, n_chips: int,
                         **kw) -> tuple:
    """Convenience wrapper around :meth:`Basestation.transmit`."""
    return basestation.transmit(n_chips, **kw)

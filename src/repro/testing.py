"""Shared helpers for the test and benchmark harnesses.

Both ``tests/`` and ``benchmarks/`` seed numpy's legacy global RNG the
same way so code that has not yet migrated to an explicit
``np.random.Generator`` stays reproducible across the two suites.
"""

from __future__ import annotations

import numpy as np

#: The seed both suites use; changing it invalidates committed
#: benchmark baselines that depend on data-dependent control flow.
DEFAULT_SEED = 12345


def seed_numpy(seed: int = DEFAULT_SEED) -> None:
    """Seed numpy's global legacy RNG (used by ``np.random.seed`` era
    call sites); explicit ``default_rng`` users are unaffected."""
    np.random.seed(seed)

"""Shared helpers for the test and benchmark harnesses.

Both ``tests/`` and ``benchmarks/`` seed numpy's legacy global RNG the
same way so code that has not yet migrated to an explicit
``np.random.Generator`` stays reproducible across the two suites.

:func:`spawn_rngs` is the modern counterpart: independent
``np.random.Generator`` streams derived from one master seed via
``np.random.SeedSequence``, the scheme the campaign sharder
(:mod:`repro.campaign.sharding`) uses so every Monte-Carlo shard is
reproducible in isolation.
"""

from __future__ import annotations

import numpy as np

#: The seed both suites use; changing it invalidates committed
#: benchmark baselines that depend on data-dependent control flow.
DEFAULT_SEED = 12345


def seed_numpy(seed: int = DEFAULT_SEED) -> None:
    """Seed numpy's global legacy RNG (used by ``np.random.seed`` era
    call sites); explicit ``default_rng`` users are unaffected."""
    np.random.seed(seed)


def spawn_seedseqs(master_seed: int, n: int) -> list:
    """``n`` independent child :class:`~numpy.random.SeedSequence`
    objects spawned from one master seed.

    Child ``i`` equals ``SeedSequence(master_seed, spawn_key=(i,))``:
    the derivation depends only on ``(master_seed, i)``, never on how
    many siblings exist or in which order they are consumed, which is
    what makes campaign shards reproducible in isolation.
    """
    return np.random.SeedSequence(master_seed).spawn(n)


def spawn_rngs(master_seed: int, n: int) -> list:
    """``n`` statistically independent ``np.random.Generator`` streams
    derived from ``master_seed`` (one per :func:`spawn_seedseqs`
    child)."""
    return [np.random.default_rng(ss) for ss in spawn_seedseqs(master_seed, n)]

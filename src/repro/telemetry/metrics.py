"""Counters, gauges and histograms with periodic snapshotting.

The registry is the numeric companion to the tracer: where the tracer
answers *when*, metrics answer *how much* — reconfiguration latency
distributions, per-object firing rates, FIFO depth histograms,
tokens per cycle.  Like the tracer there is a process-wide registry
(:func:`get_metrics`) whose default is a no-op :class:`NullMetrics`,
so instrumented code pays nothing when metrics are off.

Snapshotting: a registry built with ``snapshot_every=N`` records a
full snapshot of every instrument each time :meth:`MetricsRegistry.
maybe_snapshot` crosses an N-cycle boundary; the simulator calls it
once per step, giving a time series of the run at zero cost to code
that never asks for it.
"""

from __future__ import annotations

import math
from typing import Optional

#: Default histogram bucket upper bounds (powers of two cover cycle
#: counts, FIFO depths and latencies equally well).
DEFAULT_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment")
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (load, occupancy, finger count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with sum/min/max tracking.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last bound.  An observation equal to a bound
    lands in that bound's bucket.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total",
                 "min", "max")

    def __init__(self, name: str, bounds=DEFAULT_BOUNDS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram {name!r}: bounds must be non-empty and sorted")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket where the
        q-fraction rank lands (the overflow bucket reports the max)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= rank and n:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def percentile(self, q: float) -> float:
        """:meth:`quantile` on the 0..100 scale (``percentile(95)`` is
        the p95 the run reports print)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        return self.quantile(q / 100.0)

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.percentile(50) if self.count else None,
            "p95": self.percentile(95) if self.count else None,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Named instruments with get-or-create semantics."""

    enabled = True

    def __init__(self, *, snapshot_every: Optional[int] = None):
        self._instruments: dict = {}
        self.snapshot_every = snapshot_every
        self.snapshots: list[dict] = []
        self._last_snapshot_cycle: Optional[float] = None

    # -- instruments --------------------------------------------------------

    def _get(self, name: str, cls, *args):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(f"metric {name!r} is a {type(inst).__name__}, "
                            f"not a {cls.__name__}")
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, bounds=DEFAULT_BOUNDS) -> Histogram:
        return self._get(name, Histogram, bounds)

    def names(self) -> list:
        return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    # -- snapshotting -------------------------------------------------------

    def to_dict(self) -> dict:
        """Serializable state of every instrument."""
        return {name: inst.to_dict()
                for name, inst in sorted(self._instruments.items())}

    def take_snapshot(self, cycle: float) -> dict:
        snap = {"cycle": cycle, "metrics": self.to_dict()}
        self.snapshots.append(snap)
        self._last_snapshot_cycle = cycle
        return snap

    def maybe_snapshot(self, cycle: float) -> Optional[dict]:
        """Snapshot when ``snapshot_every`` cycles have elapsed since the
        last one; returns the snapshot taken, else None."""
        if self.snapshot_every is None:
            return None
        last = self._last_snapshot_cycle
        if last is None or cycle - last >= self.snapshot_every:
            return self.take_snapshot(cycle)
        return None

    def clear(self) -> None:
        self._instruments = {}
        self.snapshots = []
        self._last_snapshot_cycle = None


class _NullInstrument:
    """Shared sink for the metrics-off path: accepts any update."""

    __slots__ = ()
    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The metrics-off default registry: hands out one shared no-op
    instrument and never snapshots."""

    enabled = False
    snapshots: list = []
    snapshot_every = None

    def counter(self, name: str):
        return _NULL_INSTRUMENT

    def gauge(self, name: str):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds=DEFAULT_BOUNDS):
        return _NULL_INSTRUMENT

    def names(self) -> list:
        return []

    def to_dict(self) -> dict:
        return {}

    def take_snapshot(self, cycle: float) -> dict:
        return {"cycle": cycle, "metrics": {}}

    def maybe_snapshot(self, cycle: float) -> None:
        return None

    def clear(self) -> None:
        pass

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0


NULL_METRICS = NullMetrics()

_metrics = NULL_METRICS


def get_metrics():
    """The process-wide metrics registry (no-op unless installed)."""
    return _metrics


def set_metrics(registry):
    """Install ``registry`` process-wide; returns the previous one."""
    global _metrics
    previous = _metrics
    _metrics = registry if registry is not None else NULL_METRICS
    return previous


def enable_metrics(*, snapshot_every: Optional[int] = None) -> MetricsRegistry:
    """Install and return a fresh recording registry."""
    registry = MetricsRegistry(snapshot_every=snapshot_every)
    set_metrics(registry)
    return registry


def disable_metrics() -> None:
    set_metrics(NULL_METRICS)


class collecting:
    """Context manager scoping a recording metrics registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None, *,
                 snapshot_every: Optional[int] = None):
        self.registry = registry if registry is not None \
            else MetricsRegistry(snapshot_every=snapshot_every)
        self._previous = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_metrics(self.registry)
        return self.registry

    def __exit__(self, *exc) -> None:
        set_metrics(self._previous)

"""ASCII rendering of a trace — ``xpp.visual`` for time.

Where :mod:`repro.xpp.visual` draws the array in *space* (who owns
which PAE), this renders the recorded events in *time*: one row per
span name, a cycle axis, ``=`` bars for spans and ``|`` marks for
instants.  It is the quick-look companion to the Chrome export for
terminals and test logs.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.tracer import iter_events


def render_timeline(tracer_or_events, *, width: int = 64,
                    cats: Optional[list] = None,
                    include_counters: bool = False) -> str:
    """Render spans and instants as an ASCII timeline.

    ``width`` is the number of character cells on the cycle axis;
    ``cats`` restricts the rows to the named categories.  Counter
    events are omitted unless ``include_counters`` (they render as
    their last sampled value, not a bar).
    """
    events = [e for e in iter_events(tracer_or_events)
              if cats is None or (e.cat or "main") in cats]
    drawable = [e for e in events if e.ph in ("X", "i")]
    if not drawable:
        return "(empty trace)"

    t0 = min(e.ts for e in drawable)
    t1 = max(e.ts + (e.dur if e.ph == "X" else 0) for e in drawable)
    extent = max(t1 - t0, 1.0)
    scale = (width - 1) / extent

    def col(ts: float) -> int:
        return min(width - 1, max(0, int((ts - t0) * scale)))

    # one row per (category, name), rows ordered by first appearance
    rows: dict = {}
    for e in drawable:
        key = (e.cat or "main", e.name)
        rows.setdefault(key, []).append(e)

    label_w = max(len(f"{cat}:{name}") for cat, name in rows) + 1
    lines = [f"cycles {t0:.0f}..{t1:.0f} "
             f"({extent:.0f} cycles, {extent / (width - 1):.1f}/cell)"]
    ruler = [" "] * width
    ruler[0] = "+"
    ruler[-1] = "+"
    lines.append(" " * label_w + "".join(ruler))

    for (cat, name), evs in rows.items():
        cells = [" "] * width
        for e in evs:
            if e.ph == "X":
                a, b = col(e.ts), col(e.ts + e.dur)
                for c in range(a, b + 1):
                    cells[c] = "="
                cells[a] = "["
                if b > a:
                    cells[b] = "]"
            else:
                c = col(e.ts)
                cells[c] = "|" if cells[c] == " " else "#"
        label = f"{cat}:{name}"
        lines.append(f"{label:<{label_w}}" + "".join(cells))

    if include_counters:
        last: dict = {}
        for e in iter_events(tracer_or_events):
            if e.ph == "C" and (cats is None or (e.cat or "main") in cats):
                last[e.name] = e.args["value"]
        for name, value in sorted(last.items()):
            lines.append(f"{name:<{label_w}}(last={value})")
    return "\n".join(lines)

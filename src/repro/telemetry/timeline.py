"""ASCII rendering of a trace — ``xpp.visual`` for time.

Where :mod:`repro.xpp.visual` draws the array in *space* (who owns
which PAE), this renders the recorded events in *time*: one row per
span name, a cycle axis, ``=`` bars for spans and ``|`` marks for
instants.  It is the quick-look companion to the Chrome export for
terminals and test logs.

The signal-domain companions live here too: :func:`render_constellation`
scatter-plots complex symbols on an I/Q grid and :func:`render_bars`
draws labelled horizontal bars (per-finger SINR, per-stage overflow
counts) — the terminal renderings of the quantities the probe board
collects.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.telemetry.tracer import iter_events


def render_timeline(tracer_or_events, *, width: int = 64,
                    cats: Optional[list] = None,
                    include_counters: bool = False) -> str:
    """Render spans and instants as an ASCII timeline.

    ``width`` is the number of character cells on the cycle axis;
    ``cats`` restricts the rows to the named categories.  Counter
    events are omitted unless ``include_counters`` (they render as
    their last sampled value, not a bar).
    """
    events = [e for e in iter_events(tracer_or_events)
              if cats is None or (e.cat or "main") in cats]
    drawable = [e for e in events if e.ph in ("X", "i")]
    if not drawable:
        return "(empty trace)"

    t0 = min(e.ts for e in drawable)
    t1 = max(e.ts + (e.dur if e.ph == "X" else 0) for e in drawable)
    extent = max(t1 - t0, 1.0)
    scale = (width - 1) / extent

    def col(ts: float) -> int:
        return min(width - 1, max(0, int((ts - t0) * scale)))

    # one row per (category, name), rows ordered by first appearance
    rows: dict = {}
    for e in drawable:
        key = (e.cat or "main", e.name)
        rows.setdefault(key, []).append(e)

    label_w = max(len(f"{cat}:{name}") for cat, name in rows) + 1
    lines = [f"cycles {t0:.0f}..{t1:.0f} "
             f"({extent:.0f} cycles, {extent / (width - 1):.1f}/cell)"]
    ruler = [" "] * width
    ruler[0] = "+"
    ruler[-1] = "+"
    lines.append(" " * label_w + "".join(ruler))

    for (cat, name), evs in rows.items():
        cells = [" "] * width
        for e in evs:
            if e.ph == "X":
                a, b = col(e.ts), col(e.ts + e.dur)
                for c in range(a, b + 1):
                    cells[c] = "="
                cells[a] = "["
                if b > a:
                    cells[b] = "]"
            else:
                c = col(e.ts)
                cells[c] = "|" if cells[c] == " " else "#"
        label = f"{cat}:{name}"
        lines.append(f"{label:<{label_w}}" + "".join(cells))

    if include_counters:
        last: dict = {}
        for e in iter_events(tracer_or_events):
            if e.ph == "C" and (cats is None or (e.cat or "main") in cats):
                last[e.name] = e.args["value"]
        for name, value in sorted(last.items()):
            lines.append(f"{name:<{label_w}}(last={value})")
    return "\n".join(lines)


def render_constellation(symbols, *, width: int = 41, height: int = 21,
                         extent: Optional[float] = None) -> str:
    """ASCII scatter of complex symbols on an I/Q grid.

    Cells hold ``.`` (one hit), ``o`` (a few), ``@`` (many); the axes
    cross at the origin.  ``extent`` fixes the half-width of the plot
    (default: the largest |I| or |Q| component, so the constellation
    fills the frame).
    """
    s = np.asarray(symbols, dtype=np.complex128).ravel()
    if s.size == 0:
        return "(no symbols)"
    if extent is None:
        extent = float(max(np.max(np.abs(s.real)), np.max(np.abs(s.imag)),
                           1e-12))
    counts = np.zeros((height, width), dtype=np.int64)
    cols = np.clip(((s.real / extent + 1) / 2 * (width - 1)).round()
                   .astype(int), 0, width - 1)
    rows = np.clip(((1 - s.imag / extent) / 2 * (height - 1)).round()
                   .astype(int), 0, height - 1)
    np.add.at(counts, (rows, cols), 1)

    mid_r, mid_c = height // 2, width // 2
    lines = [f"I/Q constellation ({s.size} symbols, extent ±{extent:.3g})"]
    for r in range(height):
        cells = []
        for c in range(width):
            n = counts[r, c]
            if n >= 8:
                cells.append("@")
            elif n >= 3:
                cells.append("o")
            elif n >= 1:
                cells.append(".")
            elif r == mid_r and c == mid_c:
                cells.append("+")
            elif r == mid_r:
                cells.append("-")
            elif c == mid_c:
                cells.append("|")
            else:
                cells.append(" ")
        lines.append("".join(cells))
    return "\n".join(lines)


def render_bars(values: dict, *, width: int = 40, unit: str = "") -> str:
    """Labelled horizontal bar chart of a ``{label: value}`` mapping.

    Bars are scaled to the largest magnitude; negative values render
    with ``<`` heads so an SINR table with a faded finger stays
    legible.  Insertion order of the mapping is preserved (finger 0
    first).
    """
    if not values:
        return "(no values)"
    items = [(str(k), float(v)) for k, v in values.items()]
    peak = max(abs(v) for _k, v in items)
    scale = (width - 1) / peak if peak > 0 else 0.0
    label_w = max(len(k) for k, _v in items) + 1
    suffix = f" {unit}" if unit else ""
    lines = []
    for label, value in items:
        n = int(round(abs(value) * scale))
        bar = ("=" * n + (">" if value >= 0 else "<")) if n else "|"
        lines.append(f"{label:<{label_w}}{bar} {value:.2f}{suffix}")
    return "\n".join(lines)

"""repro.telemetry — tracing, metrics and profiling for the simulator,
the configuration manager and the receiver control loops.

The paper's claims are timing claims (one result per cycle through a
filled pipeline, configuration 2b loading into the resources 2a freed),
so this package records *cycle-stamped* events rather than wall time:

* :class:`Tracer` — structured spans, instants and counter samples
  against the simulator's cycle clock, with a process-wide injectable
  default (:func:`get_tracer`) that is a no-op until enabled;
* :class:`MetricsRegistry` — counters, gauges and histograms
  (reconfiguration latency, firing rates, FIFO depths, tokens/cycle)
  with periodic snapshotting;
* exporters — Chrome ``trace_event`` JSON for ``chrome://tracing`` /
  Perfetto, flat JSON/CSV metrics dumps, and an ASCII timeline
  (:func:`render_timeline`) next to :mod:`repro.xpp.visual`;
* :class:`ProbeBoard` — *signal-domain* probe points (per-finger SINR,
  preamble correlation, FFT overflow counts, EVM, link BER) with a
  no-op default (:func:`get_probes`) and a watchdog raising structured
  alerts on NaN / saturation storms / quiescence;
* :class:`RunReport` — probes + metrics + RunStats merged into one
  JSON/Markdown artifact, with ASCII constellation and bar renderers;
* :mod:`~repro.telemetry.flight` — the cross-process flight recorder:
  per-shard capture of traces/metrics/probes that rides campaign
  checkpoints, campaign-wide Chrome-trace merge with per-shard lanes,
  metric rollups, and the lifecycle event log behind
  ``repro-campaign status``.

Typical use::

    from repro import telemetry

    with telemetry.tracing() as tr:
        schedule.start_acquisition()
        ...
    telemetry.write_chrome_trace("fig10_trace.json", tr)
"""

from repro.telemetry.flight import (
    DEFAULT_MAX_EVENTS,
    CappedTracer,
    EventLog,
    FlightRecorder,
    ShardTelemetry,
    events_path_for,
    merge_histogram_dicts,
    merged_chrome_trace,
    metric_rollups,
    probe_rollups,
    read_events,
    reliability_summary,
    status_summary,
    status_text,
    write_merged_trace,
)
from repro.telemetry.export import (
    TRACE_PID,
    chrome_trace,
    load_chrome_trace,
    metrics_to_csv,
    metrics_to_dict,
    span_names_in_order,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.telemetry.metrics import (
    DEFAULT_BOUNDS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    collecting,
    disable_metrics,
    enable_metrics,
    get_metrics,
    set_metrics,
)
from repro.telemetry.probes import (
    ALERT_DEADLINE,
    ALERT_DEGRADED,
    ALERT_FAULT,
    ALERT_NAN,
    ALERT_QUEUE_SATURATED,
    ALERT_QUIESCENT,
    ALERT_SATURATION_STORM,
    NULL_PROBES,
    Alert,
    NullProbes,
    Probe,
    ProbeBoard,
    Watchdog,
    decision_directed_sinr_db,
    disable_probes,
    enable_probes,
    evm_rms,
    get_probes,
    nearest_qpsk,
    probing,
    set_probes,
)
from repro.telemetry.report import RunReport
from repro.telemetry.timeline import (
    render_bars,
    render_constellation,
    render_timeline,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    iter_events,
    set_tracer,
    tracing,
)

__all__ = [
    "ALERT_DEADLINE",
    "ALERT_DEGRADED",
    "ALERT_FAULT",
    "ALERT_NAN",
    "ALERT_QUEUE_SATURATED",
    "ALERT_QUIESCENT",
    "ALERT_SATURATION_STORM",
    "DEFAULT_BOUNDS",
    "DEFAULT_MAX_EVENTS",
    "NULL_METRICS",
    "NULL_PROBES",
    "NULL_TRACER",
    "TRACE_PID",
    "Alert",
    "CappedTracer",
    "Counter",
    "EventLog",
    "FlightRecorder",
    "ShardTelemetry",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NullProbes",
    "NullTracer",
    "Probe",
    "ProbeBoard",
    "RunReport",
    "TraceEvent",
    "Tracer",
    "Watchdog",
    "chrome_trace",
    "collecting",
    "decision_directed_sinr_db",
    "disable_metrics",
    "disable_probes",
    "disable_tracing",
    "enable_metrics",
    "enable_probes",
    "enable_tracing",
    "events_path_for",
    "evm_rms",
    "get_metrics",
    "get_probes",
    "get_tracer",
    "iter_events",
    "load_chrome_trace",
    "merge_histogram_dicts",
    "merged_chrome_trace",
    "metric_rollups",
    "metrics_to_csv",
    "metrics_to_dict",
    "nearest_qpsk",
    "probe_rollups",
    "probing",
    "read_events",
    "reliability_summary",
    "render_bars",
    "render_constellation",
    "render_timeline",
    "set_metrics",
    "set_probes",
    "set_tracer",
    "span_names_in_order",
    "status_summary",
    "status_text",
    "tracing",
    "write_chrome_trace",
    "write_merged_trace",
    "write_metrics_csv",
    "write_metrics_json",
]

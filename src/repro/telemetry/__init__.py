"""repro.telemetry — tracing, metrics and profiling for the simulator,
the configuration manager and the receiver control loops.

The paper's claims are timing claims (one result per cycle through a
filled pipeline, configuration 2b loading into the resources 2a freed),
so this package records *cycle-stamped* events rather than wall time:

* :class:`Tracer` — structured spans, instants and counter samples
  against the simulator's cycle clock, with a process-wide injectable
  default (:func:`get_tracer`) that is a no-op until enabled;
* :class:`MetricsRegistry` — counters, gauges and histograms
  (reconfiguration latency, firing rates, FIFO depths, tokens/cycle)
  with periodic snapshotting;
* exporters — Chrome ``trace_event`` JSON for ``chrome://tracing`` /
  Perfetto, flat JSON/CSV metrics dumps, and an ASCII timeline
  (:func:`render_timeline`) next to :mod:`repro.xpp.visual`.

Typical use::

    from repro import telemetry

    with telemetry.tracing() as tr:
        schedule.start_acquisition()
        ...
    telemetry.write_chrome_trace("fig10_trace.json", tr)
"""

from repro.telemetry.export import (
    TRACE_PID,
    chrome_trace,
    load_chrome_trace,
    metrics_to_csv,
    metrics_to_dict,
    span_names_in_order,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.telemetry.metrics import (
    DEFAULT_BOUNDS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    collecting,
    disable_metrics,
    enable_metrics,
    get_metrics,
    set_metrics,
)
from repro.telemetry.timeline import render_timeline
from repro.telemetry.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    iter_events,
    set_tracer,
    tracing,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "NULL_METRICS",
    "NULL_TRACER",
    "TRACE_PID",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "collecting",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "get_metrics",
    "get_tracer",
    "iter_events",
    "load_chrome_trace",
    "metrics_to_csv",
    "metrics_to_dict",
    "render_timeline",
    "set_metrics",
    "set_tracer",
    "span_names_in_order",
    "tracing",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
]

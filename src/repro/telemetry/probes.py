"""Signal-quality probe points with a no-op default.

Where the tracer answers *when* and the metrics registry *how much*,
probes answer *how good the signal is*: per-finger SINR under
multipath, the preamble correlation metric, FFT per-stage overflow
counts, per-carrier EVM, link BER.  The paper's figures are claims
about these quantities (Fig. 2/Tab. 1 rake quality, Fig. 9/10 OFDM
precision and acquisition), so the receiver chains publish them at
named probe points instead of burying them in return values.

Like :func:`repro.telemetry.get_tracer`, instrumented code asks
:func:`get_probes` for the process-wide board, which is a no-op
:class:`NullProbes` until one is installed — a disabled probe point
costs one global lookup and an attribute check.  Tests and tools
install a recording :class:`ProbeBoard` with :func:`set_probes` or the
:func:`probing` context manager.

A :class:`Watchdog` rides on the board and raises *structured alerts*
(:class:`Alert` records, not exceptions) when a probe reports NaN/Inf,
when a saturation-kind probe accumulates past its storm threshold, or
when :meth:`ProbeBoard.check_quiescent` finds a probe that has stopped
updating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Probe kinds: ``sample`` statistics a value, ``saturation`` marks an
#: event counter the watchdog treats as an overflow/saturation source.
KIND_SAMPLE = "sample"
KIND_SATURATION = "saturation"

ALERT_NAN = "nan"
ALERT_SATURATION_STORM = "saturation_storm"
ALERT_QUIESCENT = "quiescent"
ALERT_FAULT = "fault"
ALERT_DEADLINE = "deadline_overrun"
ALERT_DEGRADED = "degraded"
ALERT_QUEUE_SATURATED = "queue_saturated"


@dataclass(frozen=True)
class Alert:
    """One structured watchdog alert."""

    kind: str                   # ALERT_NAN / ALERT_SATURATION_STORM / ...
    probe: str
    value: float
    cycle: Optional[float]
    message: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "probe": self.probe,
                "value": self.value, "cycle": self.cycle,
                "message": self.message}


class Probe:
    """One named probe point: running statistics over recorded samples.

    ``total`` is the sum of recorded values — for event-counter probes
    (``kind="saturation"``) that makes it the cumulative event count.
    ``last_cycle`` is stamped when the caller supplies a cycle, so the
    watchdog can detect quiescent probes.
    """

    __slots__ = ("name", "unit", "kind", "count", "total", "min", "max",
                 "last", "last_cycle", "samples")

    def __init__(self, name: str, unit: str = "", kind: str = KIND_SAMPLE):
        self.name = name
        self.unit = unit
        self.kind = kind
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.last = 0.0
        self.last_cycle: Optional[float] = None
        self.samples: list = []     # populated only with keep_samples > 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "unit": self.unit,
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "last": self.last if self.count else None,
            "last_cycle": self.last_cycle,
            "samples": list(self.samples),
        }


class Watchdog:
    """Turns pathological probe readings into structured alerts.

    * NaN/Inf sample -> one :data:`ALERT_NAN` alert per probe;
    * a ``saturation``-kind probe whose cumulative total crosses
      ``storm_threshold`` -> one :data:`ALERT_SATURATION_STORM`;
    * :meth:`check_quiescent` -> :data:`ALERT_QUIESCENT` for every
      cycle-stamped probe idle longer than ``quiescent_cycles``.

    Alerts are records, not exceptions: a receiver keeps running on a
    saturating FFT, the report shows the storm.
    """

    def __init__(self, *, storm_threshold: float = 64.0,
                 quiescent_cycles: float = 10_000.0):
        self.storm_threshold = storm_threshold
        self.quiescent_cycles = quiescent_cycles
        self.alerts: list[Alert] = []
        self._alerted: set = set()      # (kind, probe) already raised

    def _raise(self, kind: str, probe: Probe, value: float,
               cycle: Optional[float], message: str) -> None:
        key = (kind, probe.name)
        if key in self._alerted:
            return
        self._alerted.add(key)
        self.alerts.append(Alert(kind=kind, probe=probe.name, value=value,
                                 cycle=cycle, message=message))

    def alert(self, kind: str, source: str, *, value: float = 0.0,
              cycle: Optional[float] = None, message: str = "",
              once: bool = True) -> Optional[Alert]:
        """Raise a structured alert from outside the sampling path.

        The fault injector and recovery policies use this to put
        injections, deadline overruns and degradations on the same
        alert stream as signal-quality pathologies.  With ``once`` (the
        default) repeated alerts of the same kind from the same source
        are collapsed, like the sampling-path alerts; returns the alert
        raised, or None when suppressed.
        """
        key = (kind, source)
        if once:
            if key in self._alerted:
                return None
            self._alerted.add(key)
        alert = Alert(kind=kind, probe=source, value=value, cycle=cycle,
                      message=message)
        self.alerts.append(alert)
        return alert

    def observe(self, probe: Probe, value: float,
                cycle: Optional[float]) -> None:
        """Called by the board on every recorded sample."""
        if not math.isfinite(value):
            self._raise(ALERT_NAN, probe, value, cycle,
                        f"non-finite sample on {probe.name!r}")
        elif probe.kind == KIND_SATURATION \
                and probe.total >= self.storm_threshold:
            self._raise(ALERT_SATURATION_STORM, probe, probe.total, cycle,
                        f"{probe.name!r} accumulated {probe.total:g} "
                        f"events (threshold {self.storm_threshold:g})")

    def check_quiescent(self, cycle: float, probes) -> list:
        """Alert for every cycle-stamped probe idle past the limit;
        returns the alerts raised by this check."""
        raised = []
        before = len(self.alerts)
        for probe in probes:
            if probe.last_cycle is None:
                continue
            idle = cycle - probe.last_cycle
            if idle > self.quiescent_cycles:
                self._raise(ALERT_QUIESCENT, probe, probe.last, cycle,
                            f"{probe.name!r} quiet for {idle:g} cycles")
        raised = self.alerts[before:]
        return raised


class ProbeBoard:
    """Named probes with get-or-create semantics, plus the watchdog."""

    enabled = True

    def __init__(self, *, keep_samples: int = 0,
                 watchdog: Optional[Watchdog] = None):
        self._probes: dict = {}
        self.keep_samples = keep_samples
        self.watchdog = watchdog if watchdog is not None else Watchdog()

    # -- probes -------------------------------------------------------------

    def probe(self, name: str, *, unit: str = "",
              kind: str = KIND_SAMPLE) -> Probe:
        p = self._probes.get(name)
        if p is None:
            p = Probe(name, unit, kind)
            self._probes[name] = p
        return p

    def record(self, name: str, value: float, *, unit: str = "",
               kind: str = KIND_SAMPLE,
               cycle: Optional[float] = None) -> None:
        """Record one sample at the named probe point."""
        p = self._probes.get(name)
        if p is None:
            p = Probe(name, unit, kind)
            self._probes[name] = p
        value = float(value)
        p.count += 1
        p.total += value
        if value < p.min:
            p.min = value
        if value > p.max:
            p.max = value
        p.last = value
        if cycle is not None:
            p.last_cycle = cycle
        if self.keep_samples:
            p.samples.append(value)
            if len(p.samples) > self.keep_samples:
                del p.samples[0]
        self.watchdog.observe(p, value, cycle)

    def names(self) -> list:
        return sorted(self._probes)

    def __contains__(self, name: str) -> bool:
        return name in self._probes

    def __len__(self) -> int:
        return len(self._probes)

    def __getitem__(self, name: str) -> Probe:
        return self._probes[name]

    # -- watchdog -----------------------------------------------------------

    @property
    def alerts(self) -> list:
        return self.watchdog.alerts

    def alert(self, kind: str, source: str, *, value: float = 0.0,
              cycle: Optional[float] = None, message: str = "",
              once: bool = True) -> Optional[Alert]:
        """Raise a structured alert (see :meth:`Watchdog.alert`)."""
        return self.watchdog.alert(kind, source, value=value, cycle=cycle,
                                   message=message, once=once)

    def check_quiescent(self, cycle: float) -> list:
        """Run the quiescence check at the given cycle time."""
        return self.watchdog.check_quiescent(cycle, self._probes.values())

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """Serializable state: every probe plus the alert list."""
        return {
            "probes": {name: p.to_dict()
                       for name, p in sorted(self._probes.items())},
            "alerts": [a.to_dict() for a in self.watchdog.alerts],
        }

    def clear(self) -> None:
        self._probes = {}
        self.watchdog.alerts = []
        self.watchdog._alerted = set()


class NullProbes:
    """The probes-off default: every method is a no-op."""

    enabled = False
    alerts: list = []           # always empty; shared read-only sentinel
    keep_samples = 0

    def probe(self, name: str, *, unit: str = "", kind: str = KIND_SAMPLE):
        return _NULL_PROBE

    def record(self, name: str, value, *, unit: str = "",
               kind: str = KIND_SAMPLE, cycle=None) -> None:
        pass

    def alert(self, kind: str, source: str, *, value: float = 0.0,
              cycle=None, message: str = "", once: bool = True) -> None:
        return None

    def names(self) -> list:
        return []

    def check_quiescent(self, cycle: float) -> list:
        return []

    def to_dict(self) -> dict:
        return {"probes": {}, "alerts": []}

    def clear(self) -> None:
        pass

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0


_NULL_PROBE = Probe("<null>")

NULL_PROBES = NullProbes()

_probes = NULL_PROBES


def get_probes():
    """The process-wide probe board (a no-op :class:`NullProbes` unless
    one was installed)."""
    return _probes


def set_probes(board):
    """Install ``board`` process-wide; returns the previous one."""
    global _probes
    previous = _probes
    _probes = board if board is not None else NULL_PROBES
    return previous


def enable_probes(*, keep_samples: int = 0,
                  watchdog: Optional[Watchdog] = None) -> ProbeBoard:
    """Install and return a fresh recording :class:`ProbeBoard`."""
    board = ProbeBoard(keep_samples=keep_samples, watchdog=watchdog)
    set_probes(board)
    return board


def disable_probes() -> None:
    """Restore the no-op default board."""
    set_probes(NULL_PROBES)


class probing:
    """Context manager scoping a recording probe board::

        with telemetry.probing(keep_samples=64) as board:
            receiver.receive(rx, active_set, n_symbols)
        print(board["rake.finger.sinr_db"].mean)
    """

    def __init__(self, board: Optional[ProbeBoard] = None, *,
                 keep_samples: int = 0,
                 watchdog: Optional[Watchdog] = None):
        self.board = board if board is not None \
            else ProbeBoard(keep_samples=keep_samples, watchdog=watchdog)
        self._previous = None

    def __enter__(self) -> ProbeBoard:
        self._previous = set_probes(self.board)
        return self.board

    def __exit__(self, *exc) -> None:
        set_probes(self._previous)


# -- signal-quality estimators ---------------------------------------------
#
# Shared by the probe taps in both receiver chains; kept here so the
# chains publish *comparable* numbers (one SINR estimator, one EVM
# definition) instead of five ad-hoc ones.

#: The four unit-power QPSK constellation points (Gray order irrelevant
#: for distance decisions).
_QPSK_POINTS = np.array([1 + 1j, 1 - 1j, -1 + 1j, -1 - 1j],
                       dtype=np.complex128) / np.sqrt(2.0)


def nearest_qpsk(symbols: np.ndarray) -> np.ndarray:
    """Hard decisions onto the unit-power QPSK constellation."""
    s = np.asarray(symbols, dtype=np.complex128)
    return (np.sign(s.real) + 1j * np.sign(s.imag)) / np.sqrt(2.0)


def decision_directed_sinr_db(symbols: np.ndarray, *,
                              floor_db: float = -30.0,
                              ceil_db: float = 60.0) -> float:
    """Decision-directed SINR of an equalised QPSK symbol stream.

    Signal power is that of the nearest constellation points (unit),
    noise power the mean squared error vector toward them; clamped to
    ``[floor_db, ceil_db]`` so a noiseless stream stays finite.
    """
    s = np.asarray(symbols, dtype=np.complex128)
    if s.size == 0:
        return floor_db
    ref = nearest_qpsk(s)
    noise = float(np.mean(np.abs(s - ref) ** 2))
    signal = float(np.mean(np.abs(ref) ** 2))
    if noise <= 0:
        return ceil_db
    sinr_db = 10.0 * math.log10(signal / noise)
    return min(ceil_db, max(floor_db, sinr_db))


def evm_rms(points: np.ndarray, reference: np.ndarray) -> float:
    """Root-mean-square error vector magnitude, normalised to the RMS
    reference power (the 802.11a definition, as a fraction not %)."""
    p = np.asarray(points, dtype=np.complex128)
    r = np.asarray(reference, dtype=np.complex128)
    if p.size == 0 or p.shape != r.shape:
        return 0.0
    ref_power = float(np.mean(np.abs(r) ** 2))
    if ref_power <= 0:
        return 0.0
    err = float(np.mean(np.abs(p - r) ** 2))
    return math.sqrt(err / ref_power)

"""Trace and metrics exporters.

Three formats:

* Chrome ``trace_event`` JSON (:func:`chrome_trace` /
  :func:`write_chrome_trace`) — open the file at ``chrome://tracing``
  or https://ui.perfetto.dev; the time axis is *clock cycles*, not
  microseconds (one "us" on screen = one cycle).
* flat metrics JSON (:func:`metrics_to_dict` /
  :func:`write_metrics_json`) — the registry's instruments plus any
  :class:`~repro.xpp.stats.RunStats` payloads (``RunStats.to_dict()``
  is the exporter's stats schema).
* metrics CSV (:func:`metrics_to_csv`) — one row per scalar, for
  spreadsheets and plotting without JSON tooling.
"""

from __future__ import annotations

import io
import json
from typing import Optional

from repro.telemetry.tracer import iter_events

#: pid used for every exported event (one simulated terminal = one
#: process in the Chrome trace model).
TRACE_PID = 1


def chrome_trace(tracer_or_events, *, pid: int = TRACE_PID) -> dict:
    """Convert recorded events to a Chrome ``trace_event`` JSON object.

    Span categories become thread lanes (``tid``) so the simulator,
    manager, DSP and applications each render as their own row.
    """
    events = []
    tids: dict = {}
    for e in iter_events(tracer_or_events):
        lane = e.cat or "main"
        tid = tids.setdefault(lane, len(tids) + 1)
        rec = {
            "name": e.name,
            "cat": e.cat or "main",
            "ph": e.ph,
            "ts": e.ts,
            "pid": pid,
            "tid": tid,
        }
        if e.ph == "X":
            rec["dur"] = e.dur
        if e.ph == "i":
            rec["s"] = "t"          # thread-scoped instant
        if e.args is not None:
            rec["args"] = e.args
        events.append(rec)
    # thread_name metadata makes lanes legible in the viewer
    for lane, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": lane},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"timebase": "cycles",
                      "producer": "repro.telemetry"},
    }


def write_chrome_trace(path, tracer_or_events, *, pid: int = TRACE_PID) -> dict:
    """Write the Chrome trace JSON to ``path``; returns the object."""
    obj = chrome_trace(tracer_or_events, pid=pid)
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=1)
    return obj


def metrics_to_dict(registry, *, run_stats=None) -> dict:
    """Flat serializable dump of a metrics registry.

    ``run_stats`` may be one :class:`RunStats` or a list of them; their
    ``to_dict()`` output rides along under ``"runs"`` so a single file
    carries both the instruments and the per-run summaries.
    """
    payload = {"metrics": registry.to_dict(),
               "snapshots": list(registry.snapshots)}
    if run_stats is not None:
        runs = run_stats if isinstance(run_stats, (list, tuple)) \
            else [run_stats]
        payload["runs"] = [r.to_dict() for r in runs]
    return payload


def write_metrics_json(path, registry, *, run_stats=None) -> dict:
    """Write the metrics dump to ``path``; returns the object."""
    payload = metrics_to_dict(registry, run_stats=run_stats)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
    return payload


def metrics_to_csv(registry) -> str:
    """One CSV row per scalar: ``name,type,field,value``.

    Counters and gauges contribute one row; histograms contribute
    count/sum/mean/min/max/p50/p95 rows (bucket vectors stay in the
    JSON dump).
    """
    out = io.StringIO()
    out.write("name,type,field,value\n")
    for name, record in sorted(registry.to_dict().items()):
        kind = record["type"]
        if kind in ("counter", "gauge"):
            out.write(f"{name},{kind},value,{record['value']}\n")
        else:
            for field in ("count", "sum", "mean", "min", "max",
                          "p50", "p95"):
                out.write(f"{name},{kind},{field},{record[field]}\n")
    return out.getvalue()


def write_metrics_csv(path, registry) -> str:
    text = metrics_to_csv(registry)
    with open(path, "w") as fh:
        fh.write(text)
    return text


def load_chrome_trace(path) -> dict:
    """Round-trip helper (tests, tooling): parse a written trace."""
    with open(path) as fh:
        return json.load(fh)


def span_names_in_order(tracer_or_events,
                        cat: Optional[str] = None) -> list:
    """Span names sorted by (start cycle, emission order) — the shape
    assertions about schedules (Fig. 10: load 1, load 2a, remove 2a,
    load 2b) are written against this."""
    spans = [e for e in iter_events(tracer_or_events) if e.ph == "X"
             and (cat is None or e.cat == cat)]
    spans.sort(key=lambda e: (e.ts, e.seq))
    return [e.name for e in spans]

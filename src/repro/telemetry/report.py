"""Run reports: one artifact carrying probes, metrics and run stats.

A :class:`RunReport` merges the three observability planes of one run —
the signal-quality probe board (:mod:`repro.telemetry.probes`), the
metrics registry and any :class:`~repro.xpp.stats.RunStats` payloads —
into a single serializable object with JSON and Markdown renderings.
It is the artifact a benchmark or example leaves behind so a later
session (or CI) can diff signal quality across commits, next to the
``BENCH_*.json`` timing files.

Typical use::

    from repro import telemetry

    board = telemetry.enable_probes(keep_samples=64)
    metrics = telemetry.enable_metrics()
    stats = run_workload()

    report = telemetry.RunReport("fig10 demodulation")
    report.collect(probes=board, metrics=metrics, run_stats=stats)
    report.write_json("report.json")
    report.write_markdown("report.md")
"""

from __future__ import annotations

import json
from typing import Optional


class RunReport:
    """Aggregates probe statistics, metrics and run stats for export."""

    def __init__(self, title: str = "run", *, meta: Optional[dict] = None):
        self.title = title
        self.meta = dict(meta) if meta else {}
        self.probes: dict = {}          # probe name -> Probe.to_dict()
        self.alerts: list = []          # Alert.to_dict() records
        self.metrics: dict = {}         # MetricsRegistry.to_dict()
        self.snapshots: list = []       # periodic metric snapshots
        self.runs: list = []            # RunStats.to_dict() payloads
        self.sections: dict = {}        # free-form named payloads

    # -- collection ---------------------------------------------------------

    def collect(self, *, probes=None, metrics=None, run_stats=None) -> "RunReport":
        """Pull state from a probe board, a metrics registry and/or one
        RunStats (or a list of them); returns self for chaining."""
        if probes is not None:
            dump = probes.to_dict()
            self.probes.update(dump["probes"])
            self.alerts.extend(dump["alerts"])
        if metrics is not None:
            self.metrics.update(metrics.to_dict())
            self.snapshots.extend(metrics.snapshots)
        if run_stats is not None:
            stats = run_stats if isinstance(run_stats, (list, tuple)) \
                else [run_stats]
            self.runs.extend(s.to_dict() for s in stats)
        return self

    def add_section(self, name: str, payload) -> "RunReport":
        """Attach a free-form JSON-serializable payload (per-finger
        arrays, per-carrier EVM vectors, configuration...)."""
        self.sections[name] = payload
        return self

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "meta": dict(self.meta),
            "probes": dict(self.probes),
            "alerts": list(self.alerts),
            "metrics": dict(self.metrics),
            "snapshots": list(self.snapshots),
            "runs": list(self.runs),
            "sections": dict(self.sections),
        }

    def write_json(self, path) -> dict:
        obj = self.to_dict()
        with open(path, "w") as fh:
            json.dump(obj, fh, indent=1)
        return obj

    # -- Markdown rendering -------------------------------------------------

    def to_markdown(self) -> str:
        """A human-readable rendering: alerts first (they are the news),
        then probe statistics, metric scalars, histograms and runs."""
        lines = [f"# RunReport: {self.title}", ""]
        if self.meta:
            for key in sorted(self.meta):
                lines.append(f"- **{key}**: {self.meta[key]}")
            lines.append("")

        lines.append(f"## Alerts ({len(self.alerts)})")
        lines.append("")
        if self.alerts:
            lines.append("| kind | probe | cycle | message |")
            lines.append("|---|---|---|---|")
            for a in self.alerts:
                cycle = "" if a.get("cycle") is None else f"{a['cycle']:g}"
                lines.append(f"| {a['kind']} | `{a['probe']}` | {cycle} "
                             f"| {a['message']} |")
        else:
            lines.append("none")
        lines.append("")

        if self.probes:
            lines.append(f"## Probes ({len(self.probes)})")
            lines.append("")
            lines.append("| probe | unit | count | mean | min | max | last |")
            lines.append("|---|---|---|---|---|---|---|")
            for name in sorted(self.probes):
                p = self.probes[name]
                lines.append(
                    f"| `{name}` | {p['unit']} | {p['count']} "
                    f"| {_num(p['mean'])} | {_num(p['min'])} "
                    f"| {_num(p['max'])} | {_num(p['last'])} |")
            lines.append("")

        scalars = {n: r for n, r in self.metrics.items()
                   if r.get("type") in ("counter", "gauge")}
        hists = {n: r for n, r in self.metrics.items()
                 if r.get("type") == "histogram"}
        if scalars:
            lines.append(f"## Metrics ({len(scalars)} scalars)")
            lines.append("")
            lines.append("| metric | type | value |")
            lines.append("|---|---|---|")
            for name in sorted(scalars):
                r = scalars[name]
                lines.append(f"| `{name}` | {r['type']} "
                             f"| {_num(r['value'])} |")
            lines.append("")
        if hists:
            lines.append(f"## Histograms ({len(hists)})")
            lines.append("")
            lines.append("| histogram | count | mean | p50 | p95 | max |")
            lines.append("|---|---|---|---|---|---|")
            for name in sorted(hists):
                r = hists[name]
                lines.append(
                    f"| `{name}` | {r['count']} | {_num(r['mean'])} "
                    f"| {_num(r.get('p50'))} | {_num(r.get('p95'))} "
                    f"| {_num(r['max'])} |")
            lines.append("")

        if self.runs:
            lines.append(f"## Runs ({len(self.runs)})")
            lines.append("")
            lines.append("| cycles | firings | energy | stop reason |")
            lines.append("|---|---|---|---|")
            for r in self.runs:
                lines.append(f"| {r['cycles']} | {r['total_firings']} "
                             f"| {_num(r['energy'])} "
                             f"| {r['stop_reason']} |")
            lines.append("")

        for name in sorted(self.sections):
            lines.append(f"## {name}")
            lines.append("")
            lines.append("```json")
            lines.append(json.dumps(self.sections[name], indent=1,
                                    default=str))
            lines.append("```")
            lines.append("")
        return "\n".join(lines)

    def write_markdown(self, path) -> str:
        text = self.to_markdown()
        with open(path, "w") as fh:
            fh.write(text)
        return text


def _num(value) -> str:
    """Compact numeric cell: 4 significant digits, empty for None."""
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)

"""Flight recorder: cross-process campaign telemetry.

The PR 1–2 telemetry stack is strictly per-process — a tracer, a
metrics registry and a probe board installed in *this* interpreter.  A
campaign shard runs in its own worker process, so everything it traces
evaporates when the worker exits.  The flight recorder closes that
gap with three cooperating pieces:

* **Shard capture** — :class:`FlightRecorder` installs a bounded
  :class:`CappedTracer`, a fresh metrics registry and a probe board
  around one shard's runner, then folds what they recorded into a
  JSON-serializable :class:`ShardTelemetry` payload.  The payload rides
  back through the existing ``ShardOutcome`` pipe and JSONL checkpoint
  as an *optional* field: checkpoints written without it still load,
  and the aggregate never reads it, so resume stays byte-identical.
  Everything captured is cycle-stamped or count-valued — never wall
  time — so a shard's telemetry is as deterministic as its results.

* **Campaign merge** — :func:`merged_chrome_trace` folds every shard's
  events into one Chrome ``trace_event`` object with one *process lane
  per shard* (``pid`` = flat shard order, ``process_name`` = ``job_id
  [shard k]``), and :func:`metric_rollups` merges the per-shard metric
  dumps campaign-wide: counters sum, gauges keep min/mean/max across
  shards, histograms merge bucket-wise (same bounds) with p50/p95
  recomputed from the merged buckets.  Both folds iterate shards in
  ``(job_index, shard_index)`` order, so the merged artifacts are
  identical for any worker count.

* **Live campaign plane** — :class:`EventLog` appends structured
  lifecycle events (shard start/finish/retry/timeout/degrade, periodic
  progress with ETA and throughput) to a JSONL file next to the
  checkpoint.  ``repro-campaign status`` reads it — and the checkpoint
  — without touching the running pool, and
  :func:`reliability_summary` turns it into the report's reliability
  section (retries, timeouts, degraded shards, wall-clock p50/p95).
  Wall-clock lives *only* here: the event log is the one
  intentionally nondeterministic artifact.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

from repro.telemetry.metrics import (
    Histogram,
    MetricsRegistry,
    set_metrics,
)
from repro.telemetry.probes import ProbeBoard, set_probes
from repro.telemetry.tracer import TraceEvent, Tracer, set_tracer

#: Default cap on recorded trace events per shard.  An array-kernel
#: shard emits a couple of counter samples per cycle; the cap keeps a
#: chaos shard's payload bounded while leaving a link-level shard
#: (probes per slot, spans per run) untouched.
DEFAULT_MAX_EVENTS = 4096

#: Schema version of the ShardTelemetry payload.
TELEMETRY_VERSION = 1


class CappedTracer(Tracer):
    """A tracer that stops recording after ``max_events`` events.

    Events beyond the cap are counted, not kept, so the capture cost
    degrades to one comparison per event and the checkpoint payload
    stays bounded no matter how chatty the instrumented run is.
    """

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS, **kwargs):
        super().__init__(**kwargs)
        self.max_events = max_events
        self.dropped = 0

    def _emit(self, event: TraceEvent) -> TraceEvent:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return event
        return super()._emit(event)


def event_to_dict(e: TraceEvent) -> dict:
    """One trace event as a JSON-safe record (inverse of
    :func:`event_from_dict`)."""
    rec = {"name": e.name, "cat": e.cat, "ph": e.ph, "ts": e.ts}
    if e.dur:
        rec["dur"] = e.dur
    if e.args is not None:
        rec["args"] = e.args
    return rec


def event_from_dict(d: dict, seq: int = 0) -> TraceEvent:
    return TraceEvent(d["name"], d.get("cat", ""), d["ph"], d["ts"],
                      d.get("dur", 0.0), d.get("args"), seq)


class ShardTelemetry:
    """What one shard's flight recorder brings home.

    Pure data: ``events`` are trace-event dicts in emission order,
    ``metrics`` is a ``MetricsRegistry.to_dict()`` dump, ``probes`` /
    ``alerts`` come from ``ProbeBoard.to_dict()``.  ``counters`` is a
    convenience view of the scalar counter values (fault and fallback
    counters included) so rollups don't have to dig.
    """

    def __init__(self, *, events=None, dropped_events: int = 0,
                 metrics=None, probes=None, alerts=None):
        self.events = list(events) if events else []
        self.dropped_events = dropped_events
        self.metrics = dict(metrics) if metrics else {}
        self.probes = dict(probes) if probes else {}
        self.alerts = list(alerts) if alerts else []

    @property
    def counters(self) -> dict:
        return {name: rec["value"] for name, rec in self.metrics.items()
                if rec.get("type") == "counter"}

    def to_dict(self) -> dict:
        return {"version": TELEMETRY_VERSION,
                "events": self.events,
                "dropped_events": self.dropped_events,
                "metrics": self.metrics,
                "probes": self.probes,
                "alerts": self.alerts}

    @classmethod
    def from_dict(cls, d: Optional[dict]) -> Optional["ShardTelemetry"]:
        if d is None:
            return None
        return cls(events=d.get("events"),
                   dropped_events=int(d.get("dropped_events", 0)),
                   metrics=d.get("metrics"), probes=d.get("probes"),
                   alerts=d.get("alerts"))


class FlightRecorder:
    """Context manager capturing one shard's telemetry.

    Installs a capped tracer, a fresh metrics registry and a probe
    board as the process-wide defaults for the duration of the shard,
    restores the previous ones on exit (the serial executor shares the
    campaign driver's process) and exposes the capture as
    :meth:`payload`.
    """

    def __init__(self, *, max_events: int = DEFAULT_MAX_EVENTS):
        self.tracer = CappedTracer(max_events)
        self.metrics = MetricsRegistry()
        self.probes = ProbeBoard()
        self._prev = None

    def __enter__(self) -> "FlightRecorder":
        self._prev = (set_tracer(self.tracer), set_metrics(self.metrics),
                      set_probes(self.probes))
        return self

    def __exit__(self, *exc) -> None:
        set_tracer(self._prev[0])
        set_metrics(self._prev[1])
        set_probes(self._prev[2])

    def payload(self) -> dict:
        """The capture as a checkpoint-ready ``telemetry`` dict."""
        board = self.probes.to_dict()
        return ShardTelemetry(
            events=[event_to_dict(e) for e in self.tracer.events],
            dropped_events=self.tracer.dropped,
            metrics=self.metrics.to_dict(),
            probes=board["probes"], alerts=board["alerts"]).to_dict()


# -- campaign-level merge ------------------------------------------------------------


def _shard_key(outcome) -> tuple:
    return (outcome.job_index, outcome.shard_index)


def _telemetry_outcomes(outcomes) -> list:
    """Outcomes carrying telemetry, in deterministic shard order."""
    return sorted((o for o in outcomes
                   if getattr(o, "telemetry", None)), key=_shard_key)


def merged_chrome_trace(outcomes) -> dict:
    """One campaign-wide Chrome trace with a process lane per shard.

    ``outcomes`` is any iterable of ``ShardOutcome``-like objects; only
    those with a ``telemetry`` payload contribute.  Shards are laid out
    as Chrome *processes* in ``(job_index, shard_index)`` order —
    stable for any pool width — and each shard's categories become its
    thread lanes, exactly as in the single-process exporter.
    """
    events = []
    for pid, o in enumerate(_telemetry_outcomes(outcomes), start=1):
        telemetry = ShardTelemetry.from_dict(o.telemetry)
        tids: dict = {}
        for d in telemetry.events:
            lane = d.get("cat") or "main"
            tid = tids.setdefault(lane, len(tids) + 1)
            rec = {"name": d["name"], "cat": lane, "ph": d["ph"],
                   "ts": d["ts"], "pid": pid, "tid": tid}
            if d["ph"] == "X":
                rec["dur"] = d.get("dur", 0.0)
            if d["ph"] == "i":
                rec["s"] = "t"
            if d.get("args") is not None:
                rec["args"] = d["args"]
            events.append(rec)
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"{o.job_id} [shard {o.shard_index}]"},
        })
        for lane, tid in sorted(tids.items(), key=lambda kv: kv[1]):
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": lane}})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"timebase": "cycles",
                      "producer": "repro.telemetry.flight"},
    }


def write_merged_trace(path, outcomes) -> dict:
    """Write the merged campaign trace to ``path``; returns the object."""
    obj = merged_chrome_trace(outcomes)
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=1)
    return obj


def merge_histogram_dicts(records) -> dict:
    """Fold ``Histogram.to_dict()`` records with identical bounds into
    one, recomputing p50/p95 from the merged buckets."""
    records = list(records)
    bounds = records[0]["bounds"]
    for r in records[1:]:
        if r["bounds"] != bounds:
            raise ValueError("histogram merge: mismatched bucket bounds")
    merged = Histogram("merged", bounds)
    merged.count = sum(r["count"] for r in records)
    merged.total = sum(r["sum"] for r in records)
    mins = [r["min"] for r in records if r["min"] is not None]
    maxs = [r["max"] for r in records if r["max"] is not None]
    if mins:
        merged.min = min(mins)
    if maxs:
        merged.max = max(maxs)
    for r in records:
        for i, n in enumerate(r["buckets"]):
            merged.buckets[i] += n
    return merged.to_dict()


def metric_rollups(outcomes) -> dict:
    """Campaign-wide merge of every shard's metric dump.

    Returns ``name -> record``: counters get ``{"type": "counter",
    "total", "shards", "per_shard_mean"}`` (the per-shard mean is the
    fallback/fault *rate* view campaign reports want), gauges get
    min/mean/max across shards, histograms merge bucket-wise.  Shards
    fold in index order, so the rollup bytes are worker-count
    independent.
    """
    shards = [ShardTelemetry.from_dict(o.telemetry)
              for o in _telemetry_outcomes(outcomes)]
    n_shards = len(shards)
    by_name: dict = {}
    for t in shards:
        for name, rec in t.metrics.items():
            by_name.setdefault(name, []).append(rec)
    out = {}
    for name in sorted(by_name):
        recs = by_name[name]
        kind = recs[0]["type"]
        if any(r["type"] != kind for r in recs):
            kind = "mixed"
        if kind == "counter":
            total = sum(r["value"] for r in recs)
            out[name] = {"type": "counter", "total": total,
                         "shards": n_shards,
                         "per_shard_mean": total / n_shards}
        elif kind == "gauge":
            vals = [r["value"] for r in recs]
            out[name] = {"type": "gauge", "min": min(vals),
                         "max": max(vals),
                         "mean": sum(vals) / len(vals),
                         "shards": n_shards}
        elif kind == "histogram":
            out[name] = merge_histogram_dicts(recs)
        else:
            out[name] = {"type": "mixed", "records": len(recs)}
    return out


def fallback_rollup(outcomes) -> dict:
    """Campaign-wide fastpath fallback tally from shard telemetry.

    The runtime's fallback *warning* is deduplicated per (netlist,
    reason) per process, but the ``fastpath.fallback{,.<code>}``
    counters fire on every occurrence — so the flight payloads carry
    the true per-shard counts and this fold is exact.  Returns
    ``{"total": N, "by_code": {code: N, ...}}`` summed over every
    telemetry-carrying shard (all zeros/empty when nothing fell back).
    """
    prefix = "fastpath.fallback."
    total = 0
    by_code: dict = {}
    for o in _telemetry_outcomes(outcomes):
        counters = ShardTelemetry.from_dict(o.telemetry).counters
        total += int(counters.get("fastpath.fallback", 0))
        for name, value in counters.items():
            if name.startswith(prefix):
                code = name[len(prefix):]
                by_code[code] = by_code.get(code, 0) + int(value)
    return {"total": total,
            "by_code": dict(sorted(by_code.items()))}


def probe_rollups(outcomes) -> dict:
    """Campaign-wide merge of per-shard probe summaries: count-weighted
    mean, global min/max, total alert count per probe name."""
    out: dict = {}
    for o in _telemetry_outcomes(outcomes):
        t = ShardTelemetry.from_dict(o.telemetry)
        for name in sorted(t.probes):
            p = t.probes[name]
            rec = out.setdefault(name, {"unit": p.get("unit", ""),
                                        "count": 0, "sum": 0.0,
                                        "min": None, "max": None})
            rec["count"] += p["count"]
            if p["count"]:
                rec["sum"] += p["mean"] * p["count"]
                rec["min"] = p["min"] if rec["min"] is None \
                    else min(rec["min"], p["min"])
                rec["max"] = p["max"] if rec["max"] is None \
                    else max(rec["max"], p["max"])
    for rec in out.values():
        rec["mean"] = rec["sum"] / rec["count"] if rec["count"] else None
        del rec["sum"]
    return out


# -- lifecycle event log -------------------------------------------------------------


def events_path_for(checkpoint_path) -> str:
    """The conventional event-log path next to a checkpoint."""
    return os.fspath(checkpoint_path) + ".events.jsonl"


class EventLog:
    """Append-only JSONL lifecycle log (flush per event, torn-tail
    tolerant on read — same discipline as the checkpoint)."""

    def __init__(self, path):
        self.path = os.fspath(path)
        self._fh = None

    def emit(self, event: str, **fields) -> dict:
        rec = {"t": round(time.time(), 3), "event": event, **fields}
        if self._fh is None:
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
        self._fh.flush()
        return rec

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path) -> list:
    """All intact event records of a lifecycle log (``[]`` if absent)."""
    if not os.path.exists(path):
        return []
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break               # torn tail from a killed run
    return records


def _exact_percentile(values, q: float) -> Optional[float]:
    """Nearest-rank percentile over raw samples (None when empty)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * len(ordered) + 0.5)) - 1))
    return ordered[rank]


def reliability_summary(events) -> dict:
    """Fold a lifecycle event log into the report's reliability facts.

    Counts retries, timeouts, degraded (retry-exhausted) and skipped
    shards, and summarizes per-shard wall-clock (successful attempts
    only) as count/mean/p50/p95/max.  Throughput and ETA come from the
    latest ``progress`` event, which the pool emits after every
    recorded shard.
    """
    durations = []
    counts = {"shards_finished": 0, "retries": 0, "timeouts": 0,
              "degraded_shards": 0, "skipped_shards": 0}
    progress = None
    for rec in events:
        kind = rec.get("event")
        if kind == "shard_finish":
            counts["shards_finished"] += 1
            if rec.get("duration_s") is not None:
                durations.append(rec["duration_s"])
        elif kind == "shard_retry":
            counts["retries"] += 1
            if "timeout" in (rec.get("reason") or ""):
                counts["timeouts"] += 1
        elif kind == "shard_degraded":
            counts["degraded_shards"] += 1
            if "timeout" in (rec.get("reason") or ""):
                counts["timeouts"] += 1
        elif kind == "shard_skip":
            counts["skipped_shards"] += 1
        elif kind == "progress":
            progress = rec
    out = dict(counts)
    out["wall_clock_s"] = {
        "count": len(durations),
        "mean": sum(durations) / len(durations) if durations else None,
        "p50": _exact_percentile(durations, 50),
        "p95": _exact_percentile(durations, 95),
        "max": max(durations) if durations else None,
    }
    if progress is not None:
        out["progress"] = {k: progress.get(k) for k in
                           ("done", "total", "eta_s", "shards_per_s",
                            "slots_per_s")}
    return out


def status_summary(checkpoint_path, spec=None) -> dict:
    """Snapshot of a (possibly running) campaign from its artifacts.

    Reads the checkpoint and the event log only — never the pool — so
    it is safe to call from another process while the campaign runs.
    ``spec`` (optional) adds the total shard count when no
    ``campaign_start`` event recorded one.
    """
    from repro.campaign.checkpoint import Checkpoint

    records = []
    fingerprint = None
    if os.path.exists(checkpoint_path):
        if spec is not None:
            records = Checkpoint(checkpoint_path, spec).load()
            fingerprint = spec.fingerprint()
        else:
            # no spec: read shard records without the fingerprint guard
            for rec in read_events(checkpoint_path):
                if rec.get("type") == "shard":
                    records.append(rec)
                elif rec.get("type") == "header":
                    fingerprint = rec.get("fingerprint")
    events = read_events(events_path_for(checkpoint_path))
    total = None
    for rec in events:
        if rec.get("event") == "campaign_start":
            total = rec.get("total_shards")
            fingerprint = rec.get("fingerprint", fingerprint)
    if total is None and spec is not None:
        total = spec.total_shards
    done = len(records)
    failed = sum(1 for r in records
                 if not r.get("ok") and not r.get("skipped"))
    skipped = sum(1 for r in records if r.get("skipped"))
    with_telemetry = sum(1 for r in records if r.get("telemetry"))
    summary = {
        "checkpoint": os.fspath(checkpoint_path),
        "fingerprint": fingerprint,
        "shards_recorded": done,
        "shards_failed": failed,
        "shards_skipped": skipped,
        "shards_with_telemetry": with_telemetry,
        "total_shards": total,
        "complete": (total is not None and done >= total) or None,
        "reliability": reliability_summary(events),
    }
    return summary


def status_text(summary: dict) -> str:
    """One-screen human rendering of :func:`status_summary`."""
    lines = [f"checkpoint: {summary['checkpoint']}"]
    if summary.get("fingerprint"):
        lines.append(f"fingerprint: {summary['fingerprint']}")
    total = summary.get("total_shards")
    done = summary["shards_recorded"]
    if total:
        pct = 100.0 * done / total
        lines.append(f"progress: {done}/{total} shards ({pct:.0f}%)")
    else:
        lines.append(f"progress: {done} shards recorded")
    lines.append(f"failed: {summary['shards_failed']}  "
                 f"skipped: {summary['shards_skipped']}  "
                 f"telemetry: {summary['shards_with_telemetry']}")
    rel = summary["reliability"]
    lines.append(f"retries: {rel['retries']}  "
                 f"timeouts: {rel['timeouts']}  "
                 f"degraded: {rel['degraded_shards']}")
    wc = rel["wall_clock_s"]
    if wc["count"]:
        lines.append(f"shard wall-clock: p50 {wc['p50']:.3f}s  "
                     f"p95 {wc['p95']:.3f}s  max {wc['max']:.3f}s")
    prog = rel.get("progress")
    if prog and prog.get("shards_per_s") is not None:
        eta = prog.get("eta_s")
        eta_txt = f"  eta {eta:.0f}s" if eta is not None else ""
        slots = prog.get("slots_per_s")
        slots_txt = f"  {slots:.1f} slots/s" if slots else ""
        lines.append(f"throughput: {prog['shards_per_s']:.2f} shards/s"
                     f"{slots_txt}{eta_txt}")
    return "\n".join(lines)

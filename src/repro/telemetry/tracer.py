"""Cycle-stamped structured tracing.

The simulator's claims are timing claims — one result per cycle once
pipelines fill, configuration 2b loading into the resources 2a freed —
so the tracer records *when* things happen in cycle time, not wall time.
Events are spans (``ph="X"``: a name, a start cycle and a duration),
instants (``ph="i"``) and counter samples (``ph="C"``), mirroring the
Chrome ``trace_event`` phases so the export is a direct mapping.

Instrumented code never takes a tracer parameter on the hot path; it
asks :func:`get_tracer` for the process-wide tracer, which is a
:class:`NullTracer` by default.  The null tracer's methods are empty
and its ``span`` returns a shared reusable no-op context manager, so
instrumentation costs one global lookup and an attribute check when
tracing is off.  Tests and tools inject a real :class:`Tracer` with
:func:`set_tracer` or the :func:`tracing` context manager.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional


class TraceEvent:
    """One trace record.

    ``ph`` is the Chrome trace-event phase: ``"X"`` complete span,
    ``"i"`` instant, ``"C"`` counter sample.  ``ts`` and ``dur`` are in
    clock cycles (the simulator's timebase), ``seq`` is a monotonic
    emission index that keeps ordering stable between events stamped
    with the same cycle.
    """

    __slots__ = ("name", "cat", "ph", "ts", "dur", "args", "seq")

    def __init__(self, name: str, cat: str, ph: str, ts: float,
                 dur: float = 0.0, args: Optional[dict] = None,
                 seq: int = 0):
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.args = args
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extra = f" dur={self.dur}" if self.ph == "X" else ""
        return f"<{self.ph} {self.name!r} @{self.ts}{extra}>"


class _Span:
    """Context manager recording a complete ("X") event on exit."""

    __slots__ = ("tracer", "name", "cat", "args", "start")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Optional[dict], start: Optional[float]):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.start = start

    def __enter__(self) -> "_Span":
        if self.start is None:
            self.start = self.tracer.now()
        return self

    def __exit__(self, *exc) -> None:
        end = self.tracer.now()
        self.tracer.complete(self.name, ts=self.start,
                             dur=max(0.0, end - self.start),
                             cat=self.cat, args=self.args)


class _NullSpan:
    """Shared reusable no-op span for the tracing-off path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects :class:`TraceEvent` records against a cycle clock.

    The clock is either an injected callable returning the current
    cycle (``clock=lambda: sim.cycle``) or the internal time set by
    :meth:`set_time` — the simulator stamps the tracer with its cycle
    counter every step so that events emitted *between* simulator steps
    (manager loads, DSP task invocations) land at the right cycle.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock
        self.events: list[TraceEvent] = []
        self._time = 0.0
        self._seq = 0

    # -- time ---------------------------------------------------------------

    def now(self) -> float:
        """Current cycle time."""
        return self.clock() if self.clock is not None else self._time

    def set_time(self, cycle: float) -> None:
        """Advance the internal clock (ignored when a callable clock is
        injected)."""
        self._time = cycle

    # -- recording ----------------------------------------------------------

    def _emit(self, event: TraceEvent) -> TraceEvent:
        event.seq = self._seq
        self._seq += 1
        self.events.append(event)
        return event

    def span(self, name: str, cat: str = "", *, ts: Optional[float] = None,
             args: Optional[dict] = None) -> _Span:
        """A context manager timing a complete event from entry to exit."""
        return _Span(self, name, cat, args, ts)

    def complete(self, name: str, *, ts: float, dur: float, cat: str = "",
                 args: Optional[dict] = None) -> TraceEvent:
        """Record a pre-measured span (e.g. a load that costs N
        configuration-bus cycles)."""
        return self._emit(TraceEvent(name, cat, "X", ts, dur, args))

    def instant(self, name: str, cat: str = "", *,
                ts: Optional[float] = None,
                args: Optional[dict] = None) -> TraceEvent:
        """Record a zero-duration event."""
        return self._emit(TraceEvent(
            name, cat, "i", self.now() if ts is None else ts, 0.0, args))

    def counter(self, name: str, value: float, cat: str = "", *,
                ts: Optional[float] = None) -> TraceEvent:
        """Record a counter sample (rendered as a track in Chrome)."""
        return self._emit(TraceEvent(
            name, cat, "C", self.now() if ts is None else ts, 0.0,
            {"value": value}))

    # -- queries ------------------------------------------------------------

    def clear(self) -> None:
        self.events = []
        self._seq = 0

    def spans(self, name: Optional[str] = None) -> list:
        return [e for e in self.events
                if e.ph == "X" and (name is None or e.name == name)]

    def instants(self, name: Optional[str] = None) -> list:
        return [e for e in self.events
                if e.ph == "i" and (name is None or e.name == name)]

    def counter_samples(self, name: str) -> list:
        """``(ts, value)`` pairs of one counter, in emission order."""
        return [(e.ts, e.args["value"]) for e in self.events
                if e.ph == "C" and e.name == name]

    def __len__(self) -> int:
        return len(self.events)


class NullTracer:
    """The tracing-off default: every method is a no-op."""

    enabled = False
    events: list = []       # always empty; shared read-only sentinel

    def now(self) -> float:
        return 0.0

    def set_time(self, cycle: float) -> None:
        pass

    def span(self, name: str, cat: str = "", *, ts=None, args=None):
        return _NULL_SPAN

    def complete(self, name: str, *, ts, dur, cat: str = "", args=None):
        return None

    def instant(self, name: str, cat: str = "", *, ts=None, args=None):
        return None

    def counter(self, name: str, value, cat: str = "", *, ts=None):
        return None

    def clear(self) -> None:
        pass

    def spans(self, name=None) -> list:
        return []

    def instants(self, name=None) -> list:
        return []

    def counter_samples(self, name: str) -> list:
        return []

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()

_tracer = NULL_TRACER


def get_tracer():
    """The process-wide tracer (a no-op :class:`NullTracer` unless one
    was installed)."""
    return _tracer


def set_tracer(tracer):
    """Install ``tracer`` as the process-wide tracer; returns the
    previous one so callers can restore it."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


def enable_tracing(clock: Optional[Callable[[], float]] = None) -> Tracer:
    """Install and return a fresh recording :class:`Tracer`."""
    tracer = Tracer(clock=clock)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Restore the no-op default tracer."""
    set_tracer(NULL_TRACER)


class tracing:
    """Context manager scoping a recording tracer::

        with telemetry.tracing() as tr:
            run_something()
        telemetry.write_chrome_trace("out.json", tr)
    """

    def __init__(self, tracer: Optional[Tracer] = None):
        self.tracer = tracer if tracer is not None else Tracer()
        self._previous: Any = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc) -> None:
        set_tracer(self._previous)


def iter_events(tracer_or_events) -> Iterator[TraceEvent]:
    """Accept a tracer or a plain event list (exporter convenience)."""
    events = getattr(tracer_or_events, "events", tracer_or_events)
    return iter(events)

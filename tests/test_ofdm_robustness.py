"""Receiver robustness edge cases: timing offsets, scaling, SIGNAL
false positives, padding boundaries."""

import numpy as np
import pytest

from repro.ofdm import (
    OfdmReceiver,
    OfdmTransmitter,
    PacketError,
    PreambleDetector,
    parse_signal_field,
    signal_field_bits,
)
from repro.wcdma import awgn


def packet(rate=12, n_bytes=40, seed=0, pad=40):
    rng = np.random.default_rng(seed)
    psdu = rng.integers(0, 2, 8 * n_bytes)
    ppdu = OfdmTransmitter(rate).transmit(psdu)
    sig = np.concatenate([np.zeros(pad, complex), ppdu.samples])
    return sig, psdu, rng


class TestTimingRobustness:
    @pytest.mark.parametrize("offset", [-2, -1, 1])
    def test_detector_timing_error_absorbed_by_cyclic_prefix(self, offset):
        """A detector forced a sample or two EARLY lands inside the CP
        and only rotates the constellation — the equaliser absorbs it.
        (A late error leaves the symbol window and fails, also checked.)
        """
        sig, psdu, rng = packet(seed=offset + 10)
        rx = awgn(sig, 25, rng)

        class SkewedDetector(PreambleDetector):
            def fine_timing(self, r, coarse):
                t = super().fine_timing(r, coarse)
                return t + offset if t >= 0 else t

        rcv = OfdmReceiver(detector=SkewedDetector())
        if offset <= 0:
            out, _ = rcv.receive(rx)
            assert np.array_equal(out, psdu)
        else:
            # one sample late: ISI from the next symbol; usually fatal
            try:
                out, _ = rcv.receive(rx, expected_rate=12)
                assert out.size != psdu.size or \
                    np.mean(out != psdu) > 0.0
            except PacketError:
                pass

    def test_amplitude_scaling_invariance(self):
        """The receiver has no absolute-level assumptions (float path)."""
        sig, psdu, rng = packet(seed=1)
        for scale in (0.01, 1.0, 50.0):
            out, _ = OfdmReceiver().receive(awgn(sig * scale, 28, rng))
            assert np.array_equal(out, psdu)


class TestSignalFieldRobustness:
    def test_all_zero_field_rejected(self):
        with pytest.raises(ValueError):
            parse_signal_field(np.zeros(24, dtype=int))

    def test_unknown_rate_bits_rejected(self):
        bits = signal_field_bits(6, 10)
        bits[0:4] = [0, 0, 0, 0]        # not a valid RATE code
        bits[17] = np.sum(bits[:17]) % 2
        with pytest.raises(ValueError):
            parse_signal_field(bits)

    def test_nonzero_tail_rejected(self):
        bits = signal_field_bits(6, 10)
        bits[23] = 1
        with pytest.raises(ValueError):
            parse_signal_field(bits)

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            parse_signal_field(np.zeros(23, dtype=int))


class TestPaddingBoundaries:
    @pytest.mark.parametrize("n_bytes", [1, 2, 3, 4095 // 100])
    def test_tiny_payloads(self, n_bytes):
        sig, psdu, rng = packet(rate=6, n_bytes=n_bytes, seed=n_bytes)
        out, rep = OfdmReceiver().receive(sig)
        assert np.array_equal(out, psdu)
        assert rep.length_bytes == n_bytes

    def test_payload_exactly_filling_symbols(self):
        """A PSDU whose SERVICE+payload+tail is an exact N_DBPS multiple
        (no pad bits at all)."""
        # rate 12: N_DBPS 48; 16 + 8n + 6 = 48k -> n = 26 bytes, k = 5
        sig, psdu, rng = packet(rate=12, n_bytes=26, seed=9)
        out, rep = OfdmReceiver().receive(sig)
        assert np.array_equal(out, psdu)
        assert rep.n_data_symbols == 5

    def test_signal_length_limits(self):
        from repro.ofdm import signal_field_bits
        bits = signal_field_bits(54, 4095)
        rate, length = parse_signal_field(bits)
        assert (rate, length) == (54, 4095)

"""Tests for the combined executable (firmware bundle, Fig. 3)."""

import pytest

from repro.dsp import DspProcessor, DspTask, OverloadError
from repro.sdr import EvaluationBoard, Firmware
from repro.xpp import ConfigBuilder, ResourceError, XppArray, \
    ConfigurationManager


def config_factory(name, n_alu):
    def build():
        b = ConfigBuilder(name)
        src = b.source(f"{name}_in", [0])
        prev = src
        for i in range(n_alu):
            op = b.alu("PASS", name=f"{name}_p{i}")
            b.connect(prev, 0, op, 0)
            prev = op
        snk = b.sink(f"{name}_out")
        b.connect(prev, 0, snk, 0)
        return b.build()
    return build


def rake_firmware(n_alu=10):
    fw = Firmware("umts_rake")
    fw.add_dsp_task(DspTask("path search", 5e4, 1500))
    fw.add_dsp_task(DspTask("channel estimation", 2e4, 1500))
    fw.add_configuration(config_factory("finger", n_alu))
    fw.add_dedicated_block("code_generators")
    return fw


class TestFirmware:
    def test_deploy_loads_everything(self):
        board = EvaluationBoard()
        handle = rake_firmware().deploy(board)
        assert board.dsp.load_mips > 0
        assert board.array_manager.is_loaded("finger")
        assert "code_generators" in board.fpga.dedicated_blocks
        assert handle.active

    def test_required_mips(self):
        fw = rake_firmware()
        assert fw.required_mips() == pytest.approx(
            (5e4 * 1500 + 2e4 * 1500) / 1e6)

    def test_undeploy_cleans_up(self):
        board = EvaluationBoard()
        handle = rake_firmware().deploy(board)
        handle.undeploy()
        assert board.dsp.load_mips == 0
        assert not board.array_manager.is_loaded("finger")
        assert not handle.active

    def test_atomic_rollback_on_array_shortage(self):
        """Array too small: nothing remains, not even the DSP tasks."""
        board = EvaluationBoard()
        board.array_manager = ConfigurationManager(
            XppArray(alu_rows=1, alu_cols=4))
        with pytest.raises(ResourceError):
            rake_firmware(n_alu=10).deploy(board)
        assert board.dsp.load_mips == 0
        assert board.array_manager.occupancy()["alu"][0] == 0

    def test_atomic_rollback_on_dsp_overload(self):
        board = EvaluationBoard(dsp=DspProcessor(mips_capacity=50.0))
        with pytest.raises(OverloadError):
            rake_firmware().deploy(board)
        assert board.dsp.load_mips == 0
        assert board.array_manager.occupancy()["alu"][0] == 0

    def test_two_firmwares_coexist(self):
        board = EvaluationBoard()
        fw1 = Firmware("umts").add_configuration(config_factory("rake", 20))
        fw2 = Firmware("wlan").add_configuration(config_factory("ofdm", 20))
        h1 = fw1.deploy(board)
        h2 = fw2.deploy(board)
        assert board.array_manager.occupancy()["alu"][0] == 40
        h1.undeploy()
        assert board.array_manager.occupancy()["alu"][0] == 20
        h2.undeploy()

    def test_redeploy_after_undeploy(self):
        board = EvaluationBoard()
        fw = rake_firmware()
        fw.deploy(board).undeploy()
        handle = fw.deploy(board)        # fresh configuration instance
        assert board.array_manager.is_loaded("finger")
        handle.undeploy()

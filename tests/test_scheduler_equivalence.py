"""Differential harness: EventScheduler must be bit-exact with NaiveScheduler.

Every example kernel configuration is executed twice — once under the
exhaustive reference scheduler and once under the event-driven one —
and the runs must agree on everything observable: sink outputs,
per-object firing counts, total cycles, energy and the stop reason.
The Fig. 10 test additionally swaps configuration 2a for 2b in the
middle of a run, exercising the version-based full-evaluation fallback
that keeps reconfiguration bit-exact.

The fault layer rides the same harness: a zero-rate injector (identity
taps on every wire) must be a byte-exact no-op on every kernel, and a
seeded fault schedule must corrupt both schedulers *identically* —
same outputs, same stats, same injection log — because fault timing is
indexed by protocol events, never by evaluation order.
"""

import numpy as np
import pytest

from repro.faults import FaultInjector, TokenDrop, TokenDuplicate, plan_faults
from repro.kernels import (
    ChannelCorrectionKernel,
    DescramblerKernel,
    DespreaderKernel,
    Fft64Kernel,
    RakeChainKernel,
    build_descrambler_config,
)
from repro.wlan import Fig10Schedule
from repro.xpp import Simulator, execute
from repro.xpp.scheduler import SCHEDULER_ENV

SCHEDULERS = ["naive", "event", "fastpath"]


def _stats_key(stats):
    """The observable fields of a RunStats, as a comparable value."""
    return (stats.cycles, stats.stop_reason, stats.total_firings,
            stats.energy, dict(stats.firings), dict(stats.tokens_out))


def _run_descrambler():
    rng = np.random.default_rng(10)
    n = 96
    re = rng.integers(-2000, 2001, n)
    im = rng.integers(-2000, 2001, n)
    code = rng.integers(0, 4, n)
    out, stats = DescramblerKernel().run(re, im, code)
    return list(out), _stats_key(stats)


def _run_despreader():
    rng = np.random.default_rng(11)
    n = 2 * 8 * 6     # fingers * sf * symbols
    chips = rng.integers(-100, 101, n) + 1j * rng.integers(-100, 101, n)
    ovsf = rng.integers(0, 2, n)
    out, stats = DespreaderKernel(2, 8).run(chips, ovsf)
    return list(out), _stats_key(stats)


def _run_channel_correction():
    rng = np.random.default_rng(12)
    n = 2 * 20
    sym = rng.integers(-500, 501, n) + 1j * rng.integers(-500, 501, n)
    out, stats = ChannelCorrectionKernel([0.5 + 0.25j, -0.3 + 0.8j]).run(sym)
    return list(out), _stats_key(stats)


def _run_fft64():
    rng = np.random.default_rng(13)
    kern = Fft64Kernel()
    re, im = kern.run(rng.integers(-512, 512, 64),
                      rng.integers(-512, 512, 64))
    return list(re) + list(im), [_stats_key(s) for s in kern.last_stats]


def _run_rake_chain():
    rng = np.random.default_rng(14)
    kern = RakeChainKernel(scrambling_number=3, offsets=[0, 3], sf=8,
                           code_index=2, weights=[1.0 + 0j, 0.5 - 0.5j])
    rx = rng.integers(-200, 201, 80) + 1j * rng.integers(-200, 201, 80)
    out, stats = kern.run(rx, 6)
    return list(out), _stats_key(stats)


WORKLOADS = {
    "descrambler": _run_descrambler,
    "despreader": _run_despreader,
    "channel_correction": _run_channel_correction,
    "fft64": _run_fft64,
    "rake_chain": _run_rake_chain,
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_kernel_config_equivalence(workload, monkeypatch):
    """Outputs, firings, cycles, energy and stop reasons must be
    identical under both schedulers (fresh config per run)."""
    results = {}
    for sched in SCHEDULERS:
        monkeypatch.setenv(SCHEDULER_ENV, sched)
        results[sched] = WORKLOADS[workload]()
    out_naive, stats_naive = results["naive"]
    for sched in SCHEDULERS[1:]:
        out, stats = results[sched]
        assert out == out_naive, sched
        assert stats == stats_naive, sched


# -- fault-injection differentials ------------------------------------------------


def _arm_simulators(monkeypatch, make_injector):
    """Patch ``Simulator.__init__`` so every simulator a kernel builds
    gets a fault injector attached the instant its configurations are
    resident.  Returns the list of injectors created."""
    import repro.xpp.simulator as simmod

    injectors = []
    orig_init = simmod.Simulator.__init__

    def init(self, manager, **kw):
        orig_init(self, manager, **kw)
        inj = make_injector(self)
        if inj is not None:
            inj.attach(self)
            injectors.append(inj)

    monkeypatch.setattr(simmod.Simulator, "__init__", init)
    return injectors


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_zero_rate_injection_is_noop(workload, scheduler, monkeypatch):
    """An armed injector with an empty schedule — identity taps on
    every wire of every kernel config — must be byte-identical with an
    untapped run: same outputs, firings, cycles, energy, stop reasons,
    and zero logged injections."""
    monkeypatch.setenv(SCHEDULER_ENV, scheduler)
    baseline = WORKLOADS[workload]()
    injectors = _arm_simulators(
        monkeypatch, lambda sim: FaultInjector([], always_tap=True))
    tapped = WORKLOADS[workload]()
    assert injectors, "injector was never armed"
    assert tapped == baseline
    assert all(inj.events == [] for inj in injectors)


#: Expected injection counts for the corruption differential: only
#: token-count-preserving faults, so kernel post-processing that
#: expects its full output block still gets one.
_CORRUPTION_RATES = {"stuck_at": 1.0, "transient": 2.0, "ram_bit_flip": 1.0}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_fault_injection_equivalence(workload, monkeypatch):
    """A seeded fault schedule corrupts both schedulers identically:
    same (corrupted) outputs and stats, and the same injection log —
    every fault lands at the same protocol-event index."""
    results = {}
    for sched in SCHEDULERS:
        monkeypatch.setenv(SCHEDULER_ENV, sched)
        rng = np.random.default_rng(2003)

        def make_injector(sim, rng=rng):
            faults = []
            for entry in sim.manager.loaded.values():
                faults.extend(plan_faults(entry.config, rng,
                                          rates=_CORRUPTION_RATES,
                                          horizon=96))
            return FaultInjector(faults)

        injectors = _arm_simulators(monkeypatch, make_injector)
        out = WORKLOADS[workload]()
        events = [e.to_dict() for inj in injectors for e in inj.events]
        results[sched] = (out, events)
        monkeypatch.undo()
    for sched in SCHEDULERS[1:]:
        assert results[sched] == results["naive"], sched
    # the schedule actually fired — a vacuous pass proves nothing
    assert results["naive"][1]


@pytest.mark.parametrize("fault", [
    TokenDrop(wire="code_mux.out0->descramble_mul.b", push_index=7),
    TokenDuplicate(wire="data.out->descramble_mul.a", push_index=5),
])
def test_drop_dup_equivalence(fault):
    """Dropped and duplicated handshake tokens change *how much* comes
    out, identically under both schedulers (the drop case exercises the
    event scheduler's no-token-landed path)."""
    results = {}
    for sched in SCHEDULERS:
        rng = np.random.default_rng(41)
        cfg = build_descrambler_config()
        cfg.sinks["out"].expect = 32
        inj = FaultInjector([fault])
        res = execute(cfg,
                      inputs={"code": rng.integers(0, 4, 32),
                              "data": rng.integers(0, 1 << 24, 32)},
                      max_cycles=2000, scheduler=sched, faults=inj)
        results[sched] = (res.outputs, _stats_key(res.stats),
                          [e.to_dict() for e in inj.events])
    for sched in SCHEDULERS[1:]:
        assert results[sched] == results["naive"], sched
    assert results["naive"][2], "fault never triggered"
    n_out = len(results["naive"][0]["out"])
    # a drop starves the sink one short of its expect count (the run
    # ends quiescent); a duplicate still stops at the expect count with
    # the surplus token left in flight
    assert n_out == (31 if isinstance(fault, TokenDrop) else 32)


def _run_fig10_midrun_swap(scheduler):
    """Acquisition running, then a 2a->2b swap in the middle of one
    continuous run() — the reconfiguration of the paper's Fig. 10."""
    sched = Fig10Schedule()
    sched.start_acquisition()
    down_cfg = next(c for c in sched.config1
                    if c.name == "resident_downsampler")
    corr_cfg = sched.config2a

    rng = np.random.default_rng(15)
    down_cfg.sources["in"].set_data(rng.integers(0, 4000, 200))
    corr_cfg.sources["in"].set_data(rng.integers(0, 4000, 200))

    sim = Simulator(sched.manager, scheduler=scheduler)
    state = {"swapped": False}

    def maybe_swap():
        if not state["swapped"] and sim.cycle >= 60:
            state["swapped"] = True
            sched.acquisition_done()
            sched.config2b.sources["carriers"].set_data(
                rng.integers(0, 4000, 104))
        return False

    stats = sim.run(500, until=maybe_swap)
    assert state["swapped"]

    outputs = {
        "down": list(down_cfg.sinks["out"].received),
        "metric": list(corr_cfg.sinks["metric"].received),
        "detect": list(corr_cfg.sinks["detect"].received),
        "demod": list(sched.config2b.sinks["out"].received),
    }
    fired = {o.name: o.fired for o in sched.manager.active_objects()}
    key = (_stats_key(stats), sim.cycle, fired,
           {k: len(v) for k, v in outputs.items()})
    sched.stop()
    return outputs, key


@pytest.mark.parametrize("scheduler", ["event", "fastpath"])
def test_fig10_midrun_reconfiguration_equivalence(scheduler):
    out_naive, key_naive = _run_fig10_midrun_swap("naive")
    out_event, key_event = _run_fig10_midrun_swap(scheduler)
    assert out_event == out_naive
    assert key_event == key_naive
    # the swap actually produced demodulated tokens post-reconfiguration
    assert len(out_event["demod"]) > 0
    assert len(out_event["down"]) > 0

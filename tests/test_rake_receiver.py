"""Unit and integration tests for the rake receiver chain."""

import numpy as np
import pytest

from repro.rake import (
    PathSearcher,
    PathTracker,
    RakeReceiver,
    TimeMultiplexedFinger,
    estimate_channel,
    mrc_combine,
    sttd_rake_combine,
)
from repro.rake.estimator import estimate_channel_sttd
from repro.rake.finger import FingerAssignment, RakeFinger
from repro.wcdma import (
    Basestation,
    DownlinkChannelConfig,
    MultipathChannel,
    awgn,
    qpsk_to_bits,
)

SF, CI = 16, 3
N_CHIPS = 256 * 40


def make_signal(scrambling=0, delays=(0,), gains=(1.0,), snr_db=None,
                seed=0, data_bits=None, sttd=False):
    rng = np.random.default_rng(seed)
    bs = Basestation(scrambling,
                     [DownlinkChannelConfig(sf=SF, code_index=CI, sttd=sttd)],
                     rng=rng)
    ants, bits = bs.transmit(N_CHIPS, data_bits=data_bits)
    ch = MultipathChannel(delays=list(delays), gains=list(gains), rng=rng)
    rx = ch.apply(ants[0], snr_db=snr_db)
    return rx, bits[0]


class TestPathSearcher:
    def test_finds_all_paths_at_exact_offsets(self):
        rx, _ = make_signal(delays=(0, 5, 11), gains=(1.0, 0.7, 0.4),
                            snr_db=10)
        found = PathSearcher(0).search(rx, max_paths=3)
        assert sorted(p.offset for p in found) == [0, 5, 11]

    def test_energies_ordered_by_gain(self):
        rx, _ = make_signal(delays=(0, 5), gains=(0.5, 1.0), snr_db=15)
        found = PathSearcher(0).search(rx, max_paths=2)
        assert found[0].offset == 5      # strongest first

    def test_wrong_scrambling_code_sees_nothing(self):
        rx, _ = make_signal(scrambling=0, snr_db=20)
        found = PathSearcher(99).search(rx, max_paths=3)
        strong = PathSearcher(0).search(rx, max_paths=1)
        if found:
            assert found[0].energy < 0.05 * strong[0].energy

    def test_min_separation_respected(self):
        rx, _ = make_signal(delays=(0, 1), gains=(1.0, 0.9), snr_db=20)
        found = PathSearcher(0).search(rx, max_paths=3, min_separation=2)
        offs = sorted(p.offset for p in found)
        assert all(b - a >= 2 for a, b in zip(offs, offs[1:]))

    def test_empty_signal(self):
        assert PathSearcher(0).search(np.zeros(4096, dtype=complex)) == []

    def test_bad_stride(self):
        with pytest.raises(ValueError):
            PathSearcher(0, coarse_stride=0)


class TestChannelEstimator:
    def test_flat_channel_estimate(self):
        gain = 0.8 * np.exp(1j * 0.7)
        rx, _ = make_signal(gains=(gain,))
        h = estimate_channel(rx, 0, 0, n_pilot_symbols=16)
        assert abs(h - gain) < 0.05

    def test_sttd_estimates_both_antennas(self):
        rng = np.random.default_rng(1)
        bs = Basestation(
            2, [DownlinkChannelConfig(sf=SF, code_index=CI, sttd=True)],
            rng=rng)
        ants, _ = bs.transmit(N_CHIPS)
        h1, h2 = 0.9 + 0.2j, -0.3 + 0.6j
        rx = h1 * ants[0] + h2 * ants[1]
        e1, e2 = estimate_channel_sttd(rx, 0, 2, n_pilot_symbols=16)
        assert abs(e1 - h1) < 0.05
        assert abs(e2 - h2) < 0.05

    def test_out_of_range_offset(self):
        rx, _ = make_signal()
        assert estimate_channel(rx, rx.size + 10, 0) == 0j


class TestFingers:
    def test_single_finger_recovers_clean_bits(self):
        rx, bits = make_signal()
        f = RakeFinger(FingerAssignment(0, 0, SF, CI))
        symbols = f.despread(rx, N_CHIPS // SF)
        assert np.array_equal(qpsk_to_bits(symbols), bits)

    def test_time_multiplexed_clock_limit(self):
        good = [FingerAssignment(0, i, SF, CI) for i in range(18)]
        tm = TimeMultiplexedFinger(good)
        assert tm.required_clock_hz == pytest.approx(69.12e6)
        with pytest.raises(ValueError):
            TimeMultiplexedFinger(
                [FingerAssignment(0, i, SF, CI) for i in range(19)])

    def test_multiplexed_stream_interleaves(self):
        rx, _ = make_signal(delays=(0, 4), gains=(1.0, 0.5))
        tm = TimeMultiplexedFinger([FingerAssignment(0, 0, SF, CI),
                                    FingerAssignment(0, 4, SF, CI)])
        streams = tm.despread_all(rx, 10)
        mux = tm.multiplexed_stream(rx, 10)
        assert mux.size == 20
        np.testing.assert_allclose(mux[0::2], streams[0][:10])
        np.testing.assert_allclose(mux[1::2], streams[1][:10])


class TestCombiners:
    def test_mrc_weights_by_conjugate(self):
        s = np.array([1 + 1j, -1 - 1j])
        h1, h2 = 0.8 * np.exp(1j * 0.3), 0.4 * np.exp(-1j * 1.0)
        combined = mrc_combine([h1 * s, h2 * s], [h1, h2])
        np.testing.assert_allclose(combined, s, atol=1e-12)

    def test_mrc_mismatched_inputs(self):
        with pytest.raises(ValueError):
            mrc_combine([np.ones(2)], [1.0, 1.0])

    def test_mrc_empty(self):
        assert mrc_combine([], []).size == 0

    def test_mrc_snr_gain(self):
        """Two noisy copies combined beat the best single copy."""
        rng = np.random.default_rng(5)
        s = np.exp(1j * np.pi / 4) * np.ones(4000)
        h = [1.0, 0.7]
        noisy = [awgn(hi * s, 5, rng) for hi in h]
        single_err = np.mean(np.abs(noisy[0] / h[0] - s) ** 2)
        combined = mrc_combine(noisy, h)
        comb_err = np.mean(np.abs(combined - s) ** 2)
        assert comb_err < single_err

    def test_sttd_rake_combine_flat(self):
        from repro.wcdma import bits_to_qpsk, sttd_encode
        s = bits_to_qpsk(np.random.default_rng(2).integers(0, 2, 40))
        a1, a2 = sttd_encode(s)
        h1, h2 = 0.9 + 0.1j, 0.2 - 0.7j
        r = h1 * a1 + h2 * a2
        out = sttd_rake_combine([r], [h1], [h2])
        np.testing.assert_allclose(out, s, atol=1e-9)

    def test_sttd_combine_validates(self):
        with pytest.raises(ValueError):
            sttd_rake_combine([np.ones(4)], [1.0], [1.0, 2.0])


class TestPathTracker:
    def test_tracks_drifting_path(self):
        tracker = PathTracker(0, [3])
        rx, _ = make_signal(delays=(4,), gains=(1.0,), snr_db=15)
        live = tracker.update(rx)
        assert live[0].offset == 4

    def test_flags_lost_path(self):
        tracker = PathTracker(0, [0, 40])
        rx, _ = make_signal(delays=(0,), gains=(1.0,), snr_db=15)
        tracker.update(rx)
        assert tracker.offsets == [0]

    def test_stable_path_stays(self):
        tracker = PathTracker(0, [7])
        rx, _ = make_signal(delays=(7,), gains=(1.0,), snr_db=15)
        for _ in range(3):
            tracker.update(rx)
        assert tracker.offsets == [7]


class TestRakeReceiverEndToEnd:
    def test_clean_single_path(self):
        rx, bits = make_signal(snr_db=None)
        rcv = RakeReceiver(sf=SF, code_index=CI)
        out, rep = rcv.receive(rx, [0], N_CHIPS // SF - 4)
        assert np.array_equal(out, bits[:out.size])
        assert rep.logical_fingers == 1

    def test_multipath_awgn(self):
        rx, bits = make_signal(delays=(0, 5, 11), gains=(1.0, 0.7, 0.4),
                               snr_db=8)
        rcv = RakeReceiver(sf=SF, code_index=CI)
        out, rep = rcv.receive(rx, [0], N_CHIPS // SF - 4)
        ber = np.mean(out != bits[:out.size])
        assert ber < 0.01
        assert rep.logical_fingers == 3

    def test_soft_handover_combines_basestations(self):
        rng = np.random.default_rng(3)
        n_sym = N_CHIPS // SF
        shared_bits = rng.integers(0, 2, 2 * n_sym)
        rx1, _ = make_signal(scrambling=0, delays=(0, 6),
                             gains=(0.7, 0.4), data_bits={0: shared_bits},
                             seed=3)
        rx2, _ = make_signal(scrambling=16, delays=(2,), gains=(0.6,),
                             data_bits={0: shared_bits}, seed=4)
        n = min(rx1.size, rx2.size)
        rx = awgn(rx1[:n] + rx2[:n], 6, rng)
        rcv = RakeReceiver(sf=SF, code_index=CI)
        out, rep = rcv.receive(rx, [0, 16], n_sym - 4)
        ber = np.mean(out != shared_bits[:out.size])
        assert ber < 0.01
        assert rep.logical_fingers == 3
        assert set(rep.paths) == {0, 16}

    def test_soft_handover_outperforms_single_bs(self):
        rng = np.random.default_rng(9)
        n_sym = N_CHIPS // SF
        shared_bits = rng.integers(0, 2, 2 * n_sym)
        rx1, _ = make_signal(scrambling=0, delays=(0,), gains=(0.5,),
                             data_bits={0: shared_bits}, seed=5)
        rx2, _ = make_signal(scrambling=16, delays=(3,), gains=(0.5,),
                             data_bits={0: shared_bits}, seed=6)
        n = min(rx1.size, rx2.size)
        rx = awgn(rx1[:n] + rx2[:n], 0, rng)
        rcv = RakeReceiver(sf=SF, code_index=CI)
        out_both, _ = rcv.receive(rx, [0, 16], n_sym - 4)
        out_one, _ = rcv.receive(rx, [0], n_sym - 4)
        ber_both = np.mean(out_both != shared_bits[:out_both.size])
        ber_one = np.mean(out_one != shared_bits[:out_one.size])
        assert ber_both <= ber_one

    def test_sttd_end_to_end(self):
        rng = np.random.default_rng(11)
        bs = Basestation(
            4, [DownlinkChannelConfig(sf=SF, code_index=CI, sttd=True)],
            rng=rng)
        ants, bits = bs.transmit(N_CHIPS)
        rx = (0.8 + 0.3j) * ants[0] + (0.3 - 0.6j) * ants[1]
        rx = awgn(rx, 10, rng)
        rcv = RakeReceiver(sf=SF, code_index=CI, sttd=True)
        n_sym = (N_CHIPS // SF - 4) & ~1
        out, _rep = rcv.receive(rx, [4], n_sym)
        ber = np.mean(out != bits[0][:out.size])
        assert ber < 0.01

    def test_no_paths_returns_empty(self):
        rcv = RakeReceiver(sf=SF, code_index=CI)
        out, rep = rcv.receive(np.zeros(8192, dtype=complex), [0], 10)
        assert out.size == 0
        assert rep.logical_fingers == 0

    def test_max_fingers_respected(self):
        rx, _ = make_signal(delays=(0, 4, 8), gains=(1.0, 0.8, 0.6),
                            snr_db=15)
        rcv = RakeReceiver(sf=SF, code_index=CI, max_fingers=2)
        _out, rep = rcv.receive(rx, [0], 32)
        assert rep.logical_fingers == 2

"""Tests for mapping, preambles, and the full 802.11a transmit/receive
chain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ofdm import (
    BITS_PER_SYMBOL,
    OfdmReceiver,
    OfdmTransmitter,
    PacketError,
    PreambleDetector,
    RATES,
    full_preamble,
    hard_demap,
    long_preamble,
    map_bits,
    parse_signal_field,
    rate_params,
    short_preamble,
    signal_field_bits,
    soft_demap,
)
from repro.wcdma import MultipathChannel, awgn


class TestRateTable:
    def test_eight_rates(self):
        assert sorted(RATES) == [6, 9, 12, 18, 24, 36, 48, 54]

    def test_consistency(self):
        for rp in RATES.values():
            assert rp.n_cbps == 48 * rp.n_bpsc
            num, den = rp.coding_rate.split("/")
            assert rp.n_dbps == rp.n_cbps * int(num) // int(den)
            # rate = N_DBPS / 4 us
            assert rp.rate_mbps == rp.n_dbps / 4

    def test_unknown_rate(self):
        with pytest.raises(ValueError):
            rate_params(11)


class TestMapping:
    @pytest.mark.parametrize("mod", ["BPSK", "QPSK", "16QAM", "64QAM"])
    def test_hard_demap_roundtrip(self, mod):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, BITS_PER_SYMBOL[mod] * 96)
        assert np.array_equal(hard_demap(map_bits(bits, mod), mod), bits)

    @pytest.mark.parametrize("mod", ["QPSK", "16QAM", "64QAM"])
    def test_unit_average_power(self, mod):
        import itertools
        n = BITS_PER_SYMBOL[mod]
        all_bits = np.array(list(itertools.product([0, 1], repeat=n)))
        pts = map_bits(all_bits.reshape(-1), mod)
        assert np.mean(np.abs(pts) ** 2) == pytest.approx(1.0)

    @pytest.mark.parametrize("mod", ["BPSK", "QPSK", "16QAM", "64QAM"])
    def test_soft_sign_matches_hard(self, mod):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, BITS_PER_SYMBOL[mod] * 48)
        soft = soft_demap(map_bits(bits, mod), mod)
        assert np.array_equal((soft < 0).astype(int), bits)

    def test_unknown_modulation(self):
        with pytest.raises(ValueError):
            map_bits(np.zeros(4, int), "256QAM")
        with pytest.raises(ValueError):
            soft_demap(np.zeros(4, complex), "256QAM")


class TestPreamble:
    def test_lengths(self):
        assert short_preamble().size == 160
        assert long_preamble().size == 160
        assert full_preamble().size == 320

    def test_short_is_16_periodic(self):
        sp = short_preamble()
        np.testing.assert_allclose(sp[:16], sp[16:32], atol=1e-12)

    def test_long_has_cyclic_guard(self):
        lp = long_preamble()
        # GI2 is the tail of the training symbol; the symbol repeats
        np.testing.assert_allclose(lp[:32], lp[128:160], atol=1e-12)
        np.testing.assert_allclose(lp[32:96], lp[96:160], atol=1e-12)

    def test_coarse_detection(self):
        rng = np.random.default_rng(2)
        sig = np.concatenate([np.zeros(100, complex), full_preamble()])
        noisy = awgn(sig, 10, rng)
        det = PreambleDetector()
        hit = det.coarse_detect(noisy)
        assert 0 <= hit <= 200

    def test_full_detection_finds_t1(self):
        pad = 77
        sig = np.concatenate([np.zeros(pad, complex), full_preamble(),
                              np.zeros(100, complex)])
        t1 = PreambleDetector().detect(sig)
        assert t1 == pad + 160 + 32   # after short preamble and GI2

    def test_no_packet(self):
        rng = np.random.default_rng(3)
        noise = (rng.standard_normal(1000)
                 + 1j * rng.standard_normal(1000)) * 0.1
        assert PreambleDetector().detect(noise) == -1


class TestSignalField:
    def test_roundtrip(self):
        for rate in RATES:
            bits = signal_field_bits(rate, 1234)
            r, length = parse_signal_field(bits)
            assert (r, length) == (rate, 1234)

    def test_parity_detected(self):
        bits = signal_field_bits(24, 100)
        bits[2] ^= 1
        with pytest.raises(ValueError):
            parse_signal_field(bits)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            signal_field_bits(6, 0)
        with pytest.raises(ValueError):
            signal_field_bits(6, 4096)


class TestEndToEndLink:
    @pytest.mark.parametrize("rate", sorted(RATES))
    def test_all_rates_clean(self, rate):
        rng = np.random.default_rng(rate)
        psdu = rng.integers(0, 2, 8 * 60)
        ppdu = OfdmTransmitter(rate).transmit(psdu)
        sig = np.concatenate([np.zeros(40, complex), ppdu.samples])
        out, rep = OfdmReceiver().receive(sig)
        assert rep.rate_mbps == rate
        assert rep.length_bytes == 60
        assert np.array_equal(out, psdu)

    def test_awgn_moderate_snr(self):
        rng = np.random.default_rng(10)
        psdu = rng.integers(0, 2, 8 * 150)
        ppdu = OfdmTransmitter(12).transmit(psdu)
        sig = awgn(np.concatenate([np.zeros(40, complex), ppdu.samples]),
                   12, rng)
        out, _ = OfdmReceiver().receive(sig)
        assert np.mean(out != psdu) < 0.01

    def test_multipath_equalised(self):
        rng = np.random.default_rng(11)
        psdu = rng.integers(0, 2, 8 * 100)
        ppdu = OfdmTransmitter(24).transmit(psdu)
        ch = MultipathChannel(delays=[0, 3, 7],
                              gains=[1.0, 0.5j, -0.25], rng=rng)
        sig = awgn(ch.apply(np.concatenate([np.zeros(40, complex),
                                            ppdu.samples])), 25, rng)
        out, _ = OfdmReceiver().receive(sig)
        assert np.array_equal(out, psdu)

    def test_fixed_point_fft_path(self):
        rng = np.random.default_rng(12)
        psdu = rng.integers(0, 2, 8 * 80)
        ppdu = OfdmTransmitter(24).transmit(psdu)
        sig = awgn(np.concatenate([np.zeros(40, complex), ppdu.samples]),
                   25, rng)
        out, rep = OfdmReceiver(use_fixed_fft=True).receive(sig)
        assert rep.signal_ok
        assert np.array_equal(out, psdu)

    def test_higher_rate_needs_higher_snr(self):
        """Packet success vs SNR orders by rate: 6 Mbps survives an SNR
        where 54 Mbps fails."""
        rng = np.random.default_rng(13)
        psdu = rng.integers(0, 2, 8 * 100)
        snr = 8.0

        def ber(rate):
            ppdu = OfdmTransmitter(rate).transmit(psdu)
            sig = awgn(np.concatenate([np.zeros(40, complex),
                                       ppdu.samples]), snr, rng)
            try:
                out, _ = OfdmReceiver().receive(sig, expected_rate=rate)
            except PacketError:
                return 0.5
            if out.size != psdu.size:
                return 0.5
            return float(np.mean(out != psdu))

        assert ber(6) < 0.01
        assert ber(54) > 0.05

    def test_no_packet_raises(self):
        rng = np.random.default_rng(14)
        noise = (rng.standard_normal(2000)
                 + 1j * rng.standard_normal(2000)) * 0.05
        with pytest.raises(PacketError):
            OfdmReceiver().receive(noise)

    def test_truncated_capture_raises(self):
        rng = np.random.default_rng(15)
        psdu = rng.integers(0, 2, 8 * 200)
        ppdu = OfdmTransmitter(6).transmit(psdu)
        with pytest.raises(PacketError):
            OfdmReceiver().receive(ppdu.samples[:800])

    def test_transmitter_validates_psdu(self):
        with pytest.raises(ValueError):
            OfdmTransmitter(6).transmit(np.zeros(7, dtype=int))
        with pytest.raises(ValueError):
            OfdmTransmitter(6).transmit(np.full(8, 3))

    @given(st.integers(min_value=1, max_value=40),
           st.sampled_from(sorted(RATES)))
    @settings(max_examples=10, deadline=None)
    def test_any_length_roundtrips(self, n_bytes, rate):
        rng = np.random.default_rng(n_bytes)
        psdu = rng.integers(0, 2, 8 * n_bytes)
        ppdu = OfdmTransmitter(rate).transmit(psdu)
        sig = np.concatenate([np.zeros(33, complex), ppdu.samples])
        out, _ = OfdmReceiver().receive(sig)
        assert np.array_equal(out, psdu)

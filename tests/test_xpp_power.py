"""Tests for the power proxy."""

import numpy as np
import pytest

from repro.xpp import (
    PowerEstimate,
    array_power,
    dsp_energy_pj,
    dsp_kernel_instructions,
)
from repro.xpp.stats import RunStats


def _stats(energy=100.0, cycles=50):
    s = RunStats(cycles=cycles)
    s.energy = energy
    s.tokens_out = {"out": 40}
    return s


class TestArrayPower:
    def test_dynamic_energy_scales_with_firings(self):
        p1 = array_power(_stats(energy=100), occupied_slots=4)
        p2 = array_power(_stats(energy=200), occupied_slots=4)
        assert p2.dynamic_pj == 2 * p1.dynamic_pj

    def test_leakage_scales_with_occupancy_and_time(self):
        p1 = array_power(_stats(cycles=50), occupied_slots=4)
        p2 = array_power(_stats(cycles=50), occupied_slots=8)
        assert p2.leakage_pj == 2 * p1.leakage_pj

    def test_average_power_at_clock(self):
        p = array_power(_stats(energy=100, cycles=100), occupied_slots=0,
                        clock_hz=100e6)
        # 200 pJ over 1 us = 0.2 mW
        assert p.average_mw == pytest.approx(0.2)

    def test_energy_per_result(self):
        p = array_power(_stats(energy=100), occupied_slots=0)
        assert p.energy_per_result_pj(40) == pytest.approx(200.0 / 40)
        assert p.energy_per_result_pj(0) == float("inf")

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            array_power(_stats(), occupied_slots=-1)

    def test_zero_cycles(self):
        p = PowerEstimate(dynamic_pj=0, leakage_pj=0, cycles=0,
                          clock_hz=1e6)
        assert p.average_mw == 0.0


class TestDspComparison:
    def test_instruction_energy(self):
        assert dsp_energy_pj(1000) == pytest.approx(500_000.0)

    def test_kernel_instructions_include_overhead(self):
        n = dsp_kernel_instructions(100, ops_per_result=6)
        assert n == pytest.approx(1200)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            dsp_energy_pj(-1)

    def test_array_beats_dsp_on_streaming_kernel(self):
        """The paper's low-power claim: a configured pipeline spends far
        less energy per descrambled chip than a DSP running the same
        arithmetic as instructions."""
        from repro.kernels import DescramblerKernel
        rng = np.random.default_rng(0)
        n = 128
        out, stats = DescramblerKernel().run(
            rng.integers(-1000, 1000, n), rng.integers(-1000, 1000, n),
            rng.integers(0, 4, n))
        array = array_power(stats, occupied_slots=5)
        dsp = dsp_energy_pj(dsp_kernel_instructions(n, ops_per_result=6))
        ratio = dsp / array.total_pj
        assert ratio > 10      # order-of-magnitude advantage

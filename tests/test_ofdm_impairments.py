"""Tests for the CFO impairment model and the preamble-based
estimators/correction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ofdm import (
    COARSE_CFO_RANGE_HZ,
    FINE_CFO_RANGE_HZ,
    OfdmReceiver,
    OfdmTransmitter,
    PacketError,
    apply_cfo,
    estimate_and_correct_cfo,
    estimate_cfo_coarse,
    estimate_cfo_fine,
    full_preamble,
    long_preamble,
    short_preamble,
)
from repro.wcdma import awgn


class TestApplyCfo:
    def test_zero_offset_identity(self):
        s = np.exp(1j * np.linspace(0, 5, 64))
        np.testing.assert_allclose(apply_cfo(s, 0.0), s)

    def test_preserves_magnitude(self):
        s = np.random.default_rng(0).standard_normal(128) + 0.5j
        out = apply_cfo(s, 123e3)
        np.testing.assert_allclose(np.abs(out), np.abs(s))

    def test_rotation_rate(self):
        s = np.ones(21, dtype=complex)
        out = apply_cfo(s, 1e6, 20e6)       # 1 MHz at 20 MS/s
        # phase advances 2*pi/20 per sample -> full turn every 20
        assert out[20] == pytest.approx(out[0])
        assert np.angle(out[5]) == pytest.approx(2 * np.pi * 5 / 20)

    def test_invertible(self):
        s = np.random.default_rng(1).standard_normal(64) + 1j
        np.testing.assert_allclose(apply_cfo(apply_cfo(s, 77e3), -77e3), s,
                                   atol=1e-12)


class TestEstimators:
    @given(st.floats(min_value=-500e3, max_value=500e3))
    @settings(max_examples=25, deadline=None)
    def test_coarse_estimate_accuracy(self, cfo):
        rx = apply_cfo(short_preamble(), cfo)
        est = estimate_cfo_coarse(rx)
        assert abs(est - cfo) < 2e3

    @given(st.floats(min_value=-120e3, max_value=120e3))
    @settings(max_examples=25, deadline=None)
    def test_fine_estimate_accuracy(self, cfo):
        lp = long_preamble()[32:]           # T1 + T2
        est = estimate_cfo_fine(apply_cfo(lp, cfo))
        assert abs(est - cfo) < 500.0

    def test_fine_aliases_beyond_range(self):
        """Beyond ±156 kHz the 64-lag estimate wraps — why the coarse
        stage exists."""
        lp = long_preamble()[32:]
        cfo = FINE_CFO_RANGE_HZ * 1.5
        est = estimate_cfo_fine(apply_cfo(lp, cfo))
        assert abs(est - cfo) > 50e3        # aliased

    def test_ranges(self):
        assert COARSE_CFO_RANGE_HZ == pytest.approx(625e3)
        assert FINE_CFO_RANGE_HZ == pytest.approx(156.25e3)

    def test_short_segment_rejected(self):
        with pytest.raises(ValueError):
            estimate_cfo_coarse(np.ones(16, dtype=complex))

    def test_noise_robustness(self):
        rng = np.random.default_rng(2)
        rx = awgn(apply_cfo(short_preamble(), 200e3), 10, rng)
        assert abs(estimate_cfo_coarse(rx) - 200e3) < 10e3

    def test_two_stage_correction(self):
        pad = 50
        sig = np.concatenate([np.zeros(pad, complex), full_preamble()])
        rx = apply_cfo(sig, 300e3)
        t1 = pad + 192
        corrected, est = estimate_and_correct_cfo(rx, t1)
        assert abs(est - 300e3) < 2e3
        # the corrected long preamble is coherent again
        residual = estimate_cfo_fine(corrected[t1:t1 + 128])
        assert abs(residual) < 500.0


class TestReceiverWithCfo:
    def _packet(self, seed=0):
        rng = np.random.default_rng(seed)
        psdu = rng.integers(0, 2, 8 * 60)
        ppdu = OfdmTransmitter(24).transmit(psdu)
        sig = np.concatenate([np.zeros(40, complex), ppdu.samples])
        return sig, psdu, rng

    def test_large_cfo_kills_uncorrected_receiver(self):
        sig, psdu, rng = self._packet()
        rx = awgn(apply_cfo(sig, 150e3), 25, rng)
        try:
            out, _ = OfdmReceiver().receive(rx, expected_rate=24)
            ber = np.mean(out != psdu) if out.size == psdu.size else 0.5
        except PacketError:
            ber = 0.5
        assert ber > 0.1

    @pytest.mark.parametrize("cfo", [40e3, 150e3, 250e3, -180e3])
    def test_corrected_receiver_survives(self, cfo):
        sig, psdu, rng = self._packet(seed=int(abs(cfo)) % 97)
        rx = awgn(apply_cfo(sig, cfo), 25, rng)
        out, rep = OfdmReceiver(correct_cfo=True).receive(rx)
        assert np.array_equal(out, psdu)
        assert abs(rep.cfo_hz - cfo) < 5e3

    def test_no_cfo_estimate_near_zero(self):
        sig, psdu, rng = self._packet(seed=5)
        rx = awgn(sig, 25, rng)
        out, rep = OfdmReceiver(correct_cfo=True).receive(rx)
        assert np.array_equal(out, psdu)
        assert abs(rep.cfo_hz) < 3e3

"""Exporters: Chrome trace schema, metrics JSON/CSV, ASCII timeline."""

import json

from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    load_chrome_trace,
    metrics_to_dict,
    render_timeline,
    span_names_in_order,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.xpp import RunStats


def _sample_tracer() -> Tracer:
    tr = Tracer()
    tr.complete("load:cfg1", ts=0, dur=8, cat="config", args={"slots": 2})
    tr.set_time(8)
    tr.instant("go", "sim")
    tr.counter("fifo", 3, "sim", ts=9)
    tr.complete("run", ts=8, dur=20, cat="sim")
    return tr


def test_chrome_trace_schema():
    obj = chrome_trace(_sample_tracer())
    events = obj["traceEvents"]
    assert obj["otherData"]["timebase"] == "cycles"

    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    counters = [e for e in events if e["ph"] == "C"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(spans) == 2 and len(instants) == 1 and len(counters) == 1

    load = next(e for e in spans if e["name"] == "load:cfg1")
    assert load["ts"] == 0 and load["dur"] == 8
    assert load["args"] == {"slots": 2}
    assert all({"name", "ph", "ts", "pid", "tid"} <= set(e)
               for e in events if e["ph"] != "M")
    assert all({"name", "ph", "pid", "tid", "args"} <= set(e) for e in meta)
    assert instants[0]["s"] == "t"

    # categories map to stable thread lanes, named via metadata events
    lanes = {e["args"]["name"]: e["tid"] for e in meta}
    assert set(lanes) == {"config", "sim"}
    assert load["tid"] == lanes["config"]


def test_chrome_trace_json_roundtrip(tmp_path):
    path = tmp_path / "trace.json"
    written = write_chrome_trace(path, _sample_tracer())
    loaded = load_chrome_trace(path)
    assert loaded == json.loads(json.dumps(written))
    assert loaded["traceEvents"]


def test_chrome_trace_accepts_plain_event_list():
    tr = _sample_tracer()
    assert chrome_trace(tr.events) == chrome_trace(tr)


def test_span_names_in_order_sorts_by_start_then_emission():
    tr = Tracer()
    tr.complete("b", ts=5, dur=1, cat="config")
    tr.complete("a", ts=0, dur=2, cat="config")
    tr.complete("c", ts=5, dur=1, cat="config")
    tr.instant("noise", "config")
    assert span_names_in_order(tr) == ["a", "b", "c"]
    assert span_names_in_order(tr, cat="other") == []


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry(snapshot_every=5)
    reg.counter("loads").inc(3)
    reg.gauge("resident").set(2)
    h = reg.histogram("latency", bounds=(4, 16))
    h.observe(3)
    h.observe(12)
    reg.maybe_snapshot(0)
    return reg


def test_metrics_json_includes_runstats_payload(tmp_path):
    stats = RunStats(cycles=10, total_firings=20,
                     firings={"mul": 20}, energy=40.0,
                     tokens_out={"y": 10}, stop_reason="until")
    payload = write_metrics_json(tmp_path / "m.json", _sample_registry(),
                                 run_stats=stats)
    loaded = json.loads((tmp_path / "m.json").read_text())
    assert loaded == json.loads(json.dumps(payload))
    assert loaded["metrics"]["loads"]["value"] == 3
    assert len(loaded["snapshots"]) == 1
    (run,) = loaded["runs"]
    assert run == stats.to_dict()
    assert run["stop_reason"] == "until"
    assert run["throughput"]["y"] == 1.0


def test_metrics_json_accepts_list_of_runs(tmp_path):
    a = RunStats(cycles=5)
    b = RunStats(cycles=7)
    payload = metrics_to_dict(_sample_registry(), run_stats=[a, b])
    assert [r["cycles"] for r in payload["runs"]] == [5, 7]


def test_metrics_csv_rows(tmp_path):
    text = write_metrics_csv(tmp_path / "m.csv", _sample_registry())
    lines = text.strip().splitlines()
    assert lines[0] == "name,type,field,value"
    assert "loads,counter,value,3.0" in lines
    assert "resident,gauge,value,2.0" in lines
    assert "latency,histogram,count,2" in lines
    assert "latency,histogram,mean,7.5" in lines
    assert (tmp_path / "m.csv").read_text() == text


def test_timeline_renders_spans_and_instants():
    out = render_timeline(_sample_tracer(), width=40)
    assert "config:load:cfg1" in out
    assert "sim:run" in out
    assert "sim:go" in out
    assert "[" in out and "=" in out
    # header carries the cycle extent
    assert "cycles 0..28" in out


def test_timeline_category_filter_and_counters():
    out = render_timeline(_sample_tracer(), cats=["sim"],
                          include_counters=True)
    assert "config:load:cfg1" not in out
    assert "sim:run" in out
    assert "fifo" in out and "last=3" in out


def test_timeline_empty_trace():
    assert render_timeline(Tracer()) == "(empty trace)"

"""Tests for the silicon-area proxy."""

import pytest

from repro.kernels import build_descrambler_config, build_despreader_config
from repro.xpp.area import (
    ALU_PAE_MM2,
    DIE_AREA_MM2,
    OVERHEAD_SHARE,
    RAM_PAE_MM2,
    area_report,
    config_area_mm2,
    die_fraction,
)


class TestAreaModel:
    def test_full_device_sums_to_pae_silicon(self):
        total = 64 * ALU_PAE_MM2 + 16 * RAM_PAE_MM2
        assert total == pytest.approx(DIE_AREA_MM2 * (1 - OVERHEAD_SHARE))

    def test_ram_costs_twice_an_alu(self):
        assert RAM_PAE_MM2 == pytest.approx(2 * ALU_PAE_MM2)

    def test_config_area_scales_with_resources(self):
        small = config_area_mm2(build_descrambler_config())
        large = config_area_mm2(build_despreader_config(4, 8))
        assert 0 < small < large

    def test_die_fraction_bounded(self):
        cfg = build_despreader_config(18, 4)
        assert 0 < die_fraction(cfg) < 1

    def test_report_rows(self):
        rows = area_report([build_descrambler_config()])
        name, alu, ram, mm2, pct = rows[0]
        assert name == "descrambler"
        assert alu == 2 and ram == 0
        assert mm2 == pytest.approx(2 * ALU_PAE_MM2)
        assert pct == pytest.approx(100 * die_fraction(
            build_descrambler_config()))

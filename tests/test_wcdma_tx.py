"""Tests for QPSK/spreading, STTD, channel models and the downlink
transmitter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wcdma import (
    Basestation,
    DownlinkChannelConfig,
    MultipathChannel,
    awgn,
    bits_to_qpsk,
    descramble,
    despread,
    qpsk_to_bits,
    scramble,
    scrambling_code,
    spread,
    sttd_decode,
    sttd_encode,
)

bits_strategy = st.lists(st.integers(min_value=0, max_value=1),
                         min_size=2, max_size=64).filter(lambda b: len(b) % 2 == 0)


class TestQpsk:
    @given(bits_strategy)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, bits):
        assert list(qpsk_to_bits(bits_to_qpsk(bits))) == bits

    def test_mapping(self):
        s = bits_to_qpsk([0, 0, 1, 1])
        assert s[0] == 1 + 1j
        assert s[1] == -1 - 1j

    def test_odd_bits_rejected(self):
        with pytest.raises(ValueError):
            bits_to_qpsk([1])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            bits_to_qpsk([0, 2])


class TestSpreadDespread:
    @given(st.sampled_from([4, 16, 64, 256]), st.data())
    @settings(max_examples=20, deadline=None)
    def test_spread_despread_inverse(self, sf, data):
        idx = data.draw(st.integers(min_value=0, max_value=sf - 1))
        symbols = bits_to_qpsk(data.draw(bits_strategy))
        chips = spread(symbols, sf, idx)
        assert chips.size == symbols.size * sf
        back = despread(chips, sf, idx)
        np.testing.assert_allclose(back, symbols, atol=1e-12)

    def test_other_code_rejected(self):
        symbols = bits_to_qpsk([0, 1, 1, 0])
        chips = spread(symbols, 8, 3)
        other = despread(chips, 8, 4)
        np.testing.assert_allclose(other, 0, atol=1e-12)

    def test_scramble_descramble_inverse(self):
        code = scrambling_code(12, 512)
        chips = bits_to_qpsk(np.random.default_rng(0).integers(0, 2, 1024))
        tx = scramble(chips, code)
        rx = descramble(tx, code)
        np.testing.assert_allclose(rx, chips, atol=1e-12)

    def test_scramble_preserves_power(self):
        code = scrambling_code(12, 512)
        chips = np.ones(512, dtype=complex)
        tx = scramble(chips, code)
        assert np.mean(np.abs(tx) ** 2) == pytest.approx(1.0)

    def test_short_code_rejected(self):
        with pytest.raises(ValueError):
            scramble(np.ones(100), scrambling_code(0, 50))


class TestSttd:
    def test_antenna2_structure(self):
        s = np.array([1 + 1j, 2 - 1j, -3 + 0.5j, 1j])
        a1, a2 = sttd_encode(s)
        np.testing.assert_array_equal(a1, s)
        assert a2[0] == -np.conj(s[1])
        assert a2[1] == np.conj(s[0])

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            sttd_encode(np.ones(3))
        with pytest.raises(ValueError):
            sttd_decode(np.ones(3), 1.0, 0.0)

    @given(st.complex_numbers(max_magnitude=2.0, min_magnitude=0.1),
           st.complex_numbers(max_magnitude=2.0, min_magnitude=0.1))
    @settings(max_examples=30, deadline=None)
    def test_decode_recovers_through_flat_channels(self, h1, h2):
        rng = np.random.default_rng(42)
        s = bits_to_qpsk(rng.integers(0, 2, 16))
        a1, a2 = sttd_encode(s)
        r = h1 * a1 + h2 * a2
        decoded = sttd_decode(r, h1, h2)
        np.testing.assert_allclose(decoded, s, atol=1e-9)

    def test_diversity_gain_over_deep_fade(self):
        """When antenna 1's channel is in a deep fade, STTD still
        recovers the symbols through antenna 2."""
        s = bits_to_qpsk([0, 1, 1, 0, 0, 0, 1, 1])
        a1, a2 = sttd_encode(s)
        h1, h2 = 0.01 + 0j, 1.0 + 0j
        decoded = sttd_decode(h1 * a1 + h2 * a2, h1, h2)
        assert np.array_equal(qpsk_to_bits(decoded),
                              [0, 1, 1, 0, 0, 0, 1, 1])


class TestChannel:
    def test_awgn_snr_calibration(self):
        rng = np.random.default_rng(1)
        sig = np.exp(1j * rng.uniform(0, 2 * np.pi, 100_000))
        noisy = awgn(sig, 10.0, rng)
        noise_power = np.mean(np.abs(noisy - sig) ** 2)
        assert noise_power == pytest.approx(0.1, rel=0.05)

    def test_awgn_zero_signal(self):
        out = awgn(np.zeros(10, dtype=complex), 10.0)
        np.testing.assert_array_equal(out, 0)

    def test_multipath_delays_and_gains(self):
        ch = MultipathChannel(delays=[0, 3], gains=[1.0, 0.5])
        impulse = np.zeros(8, dtype=complex)
        impulse[0] = 1.0
        out = ch.apply(impulse)
        assert out.size == 8 + 3
        assert out[0] == 1.0
        assert out[3] == 0.5

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            MultipathChannel(delays=[0], gains=[1.0, 2.0])

    def test_negative_delay(self):
        with pytest.raises(ValueError):
            MultipathChannel(delays=[-1], gains=[1.0])

    def test_rayleigh_draw_is_stable_until_redraw(self):
        ch = MultipathChannel(delays=[0, 1], gains=[1.0, 0.5], rayleigh=True,
                              rng=np.random.default_rng(3))
        g1 = ch.tap_gains()
        g2 = ch.tap_gains()
        np.testing.assert_array_equal(g1, g2)
        g3 = ch.tap_gains(redraw=True)
        assert not np.array_equal(g1, g3)

    def test_typical_urban_unit_power(self):
        ch = MultipathChannel.typical_urban(n_paths=3)
        assert sum(abs(g) ** 2 for g in ch.tap_gains()) == pytest.approx(1.0)


class TestBasestation:
    def test_transmit_shapes(self):
        bs = Basestation(0, [DownlinkChannelConfig(sf=16, code_index=2)],
                         rng=np.random.default_rng(0))
        antennas, bits = bs.transmit(2560)
        assert len(antennas) == 1
        assert antennas[0].size == 2560
        assert bits[0].size == 2 * (2560 // 16)

    def test_sttd_gives_two_antennas(self):
        bs = Basestation(0, [DownlinkChannelConfig(sf=16, code_index=2,
                                                   sttd=True)],
                         rng=np.random.default_rng(0))
        antennas, _bits = bs.transmit(2560)
        assert len(antennas) == 2

    def test_ovsf_conflict_detected(self):
        with pytest.raises(ValueError):
            Basestation(0, [DownlinkChannelConfig(sf=4, code_index=1),
                            DownlinkChannelConfig(sf=8, code_index=2)])

    def test_cpich_code_reserved(self):
        with pytest.raises(ValueError):
            Basestation(0, [DownlinkChannelConfig(sf=256, code_index=0)])

    def test_perfect_rx_chain_recovers_bits(self):
        """Descramble + despread of a clean single-path signal recovers
        the transmitted bits — the golden reference for the rake."""
        rng = np.random.default_rng(7)
        ch_cfg = DownlinkChannelConfig(sf=16, code_index=3)
        bs = Basestation(5, [ch_cfg], rng=rng)
        antennas, bits = bs.transmit(2560)
        code = scrambling_code(5, 2560)
        symbols = despread(descramble(antennas[0], code), 16, 3)
        assert np.array_equal(qpsk_to_bits(symbols), bits[0])

    def test_chips_must_align_to_cpich(self):
        bs = Basestation(0, [])
        with pytest.raises(ValueError):
            bs.transmit(1000)

    def test_wrong_bit_count_rejected(self):
        bs = Basestation(0, [DownlinkChannelConfig(sf=16, code_index=1)])
        with pytest.raises(ValueError):
            bs.transmit(2560, data_bits={0: np.zeros(10, dtype=int)})

"""Telemetry wired through the simulator, manager and applications."""

import time

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import collecting, tracing
from repro.xpp import (
    STOP_MAX_CYCLES,
    STOP_QUIESCENT,
    STOP_UNTIL,
    ConfigBuilder,
    ConfigurationManager,
    RunStats,
    Simulator,
    attribute_energy,
    execute,
)


def _scale_config(name="scale", expect=4):
    b = ConfigBuilder(name)
    src = b.source("x")
    mul = b.alu("MUL", const=3)
    snk = b.sink("y", expect=expect)
    b.chain(src, mul, snk)
    return b.build()


# -- stop_reason (satellite) ---------------------------------------------------


def test_stop_reason_until():
    result = execute(_scale_config(), inputs={"x": [1, 2, 3, 4]})
    assert result.stats.stop_reason == STOP_UNTIL


def test_stop_reason_quiescent():
    cfg = _scale_config(expect=None)        # no expectation -> drains dry
    mgr = ConfigurationManager()
    mgr.load(cfg)
    cfg.sources["x"].set_data([1, 2])
    stats = Simulator(mgr).run(1000)
    assert stats.stop_reason == STOP_QUIESCENT
    assert stats.tokens_out["y"] == 2


def test_stop_reason_max_cycles_exposes_stalled_pipeline():
    cfg = _scale_config(expect=8)           # expects more than it is fed
    mgr = ConfigurationManager()
    mgr.load(cfg)
    cfg.sources["x"].set_data([1, 2, 3, 4])
    stats = Simulator(mgr).run(50, quiescent_limit=10_000)
    assert stats.stop_reason == STOP_MAX_CYCLES
    assert stats.cycles == 50


def test_stop_reason_traced_as_instant():
    cfg = _scale_config()
    with tracing() as tr:
        execute(cfg, inputs={"x": [1, 2, 3, 4]})
    (stop,) = tr.instants("sim.stop")
    assert stop.args == {"reason": STOP_UNTIL}
    (run_span,) = tr.spans("sim.run")
    assert run_span.args["stop_reason"] == STOP_UNTIL
    assert run_span.dur == run_span.args["cycles"] > 0


def test_collect_stats_snapshot_has_no_stop_reason():
    cfg = _scale_config()
    mgr = ConfigurationManager()
    mgr.load(cfg)
    assert Simulator(mgr).collect_stats().stop_reason is None


# -- RunStats merge / to_dict (satellite) --------------------------------------


def test_runstats_merge_aggregates_runs():
    a = RunStats(cycles=10, total_firings=6, firings={"m": 6}, energy=12.0,
                 tokens_out={"y": 4}, stop_reason="until")
    b = RunStats(cycles=5, total_firings=3, firings={"m": 2, "n": 1},
                 energy=4.0, tokens_out={"y": 1, "z": 2},
                 stop_reason="until")
    m = a.merge(b)
    assert m.cycles == 15 and m.total_firings == 9
    assert m.firings == {"m": 8, "n": 1}
    assert m.energy == 16.0
    assert m.tokens_out == {"y": 5, "z": 2}
    assert m.stop_reason == "until"
    # inputs untouched
    assert a.firings == {"m": 6} and b.tokens_out == {"y": 1, "z": 2}


def test_runstats_merge_disagreeing_stop_reasons():
    a = RunStats(cycles=1, stop_reason="until")
    b = RunStats(cycles=1, stop_reason="quiescent")
    assert a.merge(b).stop_reason is None


def test_runstats_to_dict_round_trips_through_json():
    import json

    stats = execute(_scale_config(), inputs={"x": [1, 2, 3, 4]}).stats
    d = json.loads(json.dumps(stats.to_dict()))
    assert d["cycles"] == stats.cycles
    assert d["stop_reason"] == STOP_UNTIL
    assert d["firings"] == stats.firings
    assert d["throughput"]["y"] == pytest.approx(stats.throughput("y"))


def test_merged_stats_of_time_slices_match_single_run():
    """Two half-runs merged equal one full run (the aggregation story)."""
    cfg = _scale_config(expect=None)
    mgr = ConfigurationManager()
    mgr.load(cfg)
    cfg.sources["x"].set_data([1, 2, 3, 4])
    sim = Simulator(mgr)
    first = sim.run(3, quiescent_limit=10_000)
    start = {name: count for name, count in first.firings.items()}
    second = sim.run(1000)
    # second run's firings are cumulative object counters; subtract
    second.firings = {k: v - start.get(k, 0)
                      for k, v in second.firings.items()}
    merged = first.merge(second)
    assert merged.cycles == sim.cycle
    assert sum(merged.firings.values()) > 0


# -- Fig. 10 trace (tentpole acceptance) ---------------------------------------


def test_fig10_trace_has_load_remove_load_in_order():
    from repro.wlan.schedule import Fig10Schedule

    with tracing() as tr:
        sched = Fig10Schedule()
        sched.start_acquisition()
        sched.acquisition_done()

    names = telemetry.span_names_in_order(tr, cat="config")
    expected = ["config.load:resident_downsampler",
                "config.load:resident_fft0",
                "config.load:acq_correlator",
                "config.remove:acq_correlator",
                "config.load:demodulator"]
    positions = [names.index(n) for n in expected]
    assert positions == sorted(positions), names
    # the swap is a single span wrapping remove(2a) + load(2b)
    (swap,) = tr.spans("fig10.swap")
    assert swap.args["removed"] == "acq_correlator"
    assert swap.args["loaded"] == "demodulator"
    assert swap.dur == swap.args["swap_cycles"] > 0
    # state machine instants
    transitions = [(e.args["from"], e.args["to"])
                   for e in tr.instants("fig10.state")]
    assert transitions == [("idle", "acquiring"),
                           ("acquiring", "demodulating")]


def test_manager_metrics_reconfig_latency():
    from repro.wlan.schedule import Fig10Schedule

    with collecting() as reg:
        sched = Fig10Schedule()
        sched.start_acquisition()
        sched.acquisition_done()
        sched.stop()
    d = reg.to_dict()
    assert d["config.loads"]["value"] == 4          # 1 (x2), 2a, 2b
    assert d["config.removes"]["value"] == 4        # 2a + stop (3 residents)
    assert d["config.load_cycles"]["count"] == 4
    assert d["config.resident"]["value"] == 0       # all torn down


def test_request_queue_traced():
    """A deferred request emits a queued instant, then config.drained
    when the removal lets it load."""
    big = []
    mgr = ConfigurationManager()
    for i in range(2):
        b = ConfigBuilder(f"big{i}")
        src = b.source("x")
        alus = [b.alu("ADD", const=1, name=f"a{j}") for j in range(40)]
        snk = b.sink("y")
        b.chain(src, *alus, snk)
        big.append(b.build())
    with tracing() as tr:
        assert mgr.request(big[0]) is not None
        assert mgr.request(big[1]) is None      # does not fit -> queued
        mgr.remove(big[0])
        assert mgr.is_loaded("big1")
    (queued,) = [e for e in tr.instants("config.request:big1")]
    assert queued.args["outcome"] == "queued"
    (drained,) = tr.instants("config.drained")
    assert drained.args["loaded"] == ["big1"]


# -- energy attribution --------------------------------------------------------


def test_energy_attributed_to_sim_run_span_matches_stats():
    from repro.xpp.power import ENERGY_UNIT_PJ

    cfg = _scale_config()
    with tracing() as tr:
        stats = execute(cfg, inputs={"x": [1, 2, 3, 4]}).stats
    by_span = attribute_energy(tr, cat="sim")
    assert by_span["sim.run"] == pytest.approx(stats.energy * ENERGY_UNIT_PJ)


def test_energy_counter_is_cumulative_and_monotonic():
    cfg = _scale_config()
    with tracing() as tr:
        execute(cfg, inputs={"x": [1, 2, 3, 4]})
    samples = tr.counter_samples("sim.energy")
    values = [v for _ts, v in samples]
    assert values == sorted(values)
    assert values[-1] > 0


# -- application control loops -------------------------------------------------


def test_rake_session_block_spans_and_reacquire_instants():
    from repro.rake.session import RakeSession
    from repro.wcdma import Basestation, DownlinkChannelConfig

    rng = np.random.default_rng(1)
    bs = Basestation(0, [DownlinkChannelConfig(sf=16, code_index=2)], rng=rng)
    ants, _bits = bs.transmit(16 * 64)
    rx = ants[0]
    session = RakeSession(sf=16, code_index=2, active_set=[0])
    with tracing() as tr, collecting() as reg:
        for _ in range(3):
            session.process_block(rx, 8)
    blocks = tr.spans("rake.block")
    assert [s.args["block"] for s in blocks] == [0, 1, 2]
    # first block always reacquires (no tracker yet)
    assert any(e.args["block"] == 0 for e in tr.instants("rake.reacquire"))
    d = reg.to_dict()
    assert d["rake.blocks"]["value"] == 3
    assert d["rake.logical_fingers"]["value"] > 0
    assert d["rake.fingers_per_block"]["count"] == 3


def test_rake_active_set_updates_traced():
    from repro.rake.session import RakeSession

    session = RakeSession(sf=16, code_index=2, active_set=[0])
    with tracing() as tr:
        session.add_basestation(1)
        session.drop_basestation(0)
        session.add_basestation(1)      # already present: no event
    actions = [(e.args["action"], e.args["basestation"])
               for e in tr.instants("rake.active_set")]
    assert actions == [("add", 1), ("drop", 0)]


def test_dsp_task_invocation_spans():
    from repro.dsp.processor import DspProcessor, DspTask

    dsp = DspProcessor()
    with tracing() as tr, collecting() as reg:
        dsp.admit(DspTask("ctrl", instructions=1000, rate_hz=100,
                          run=lambda a, b: a + b))
        assert dsp.invoke("ctrl", 2, 3) == 5
        dsp.invoke("ctrl", 1, 1)
        dsp.drop("ctrl")
    (admit,) = tr.instants("dsp.admit:ctrl")
    assert admit.args["mips"] == pytest.approx(0.1)
    spans = tr.spans("dsp.task:ctrl")
    assert len(spans) == 2
    assert spans[0].args["instructions"] == 1000
    assert tr.instants("dsp.drop:ctrl")
    assert reg.to_dict()["dsp.invocations.ctrl"]["value"] == 2
    assert reg.to_dict()["dsp.load_mips.DSP"]["value"] == 0.0   # after drop


# -- simulator metrics ---------------------------------------------------------


def test_simulator_metrics_fifo_depths_and_rates():
    cfg = _scale_config()
    with collecting(snapshot_every=2) as reg:
        stats = execute(cfg, inputs={"x": [1, 2, 3, 4]}).stats
    d = reg.to_dict()
    assert d["sim.steps"]["value"] == stats.cycles
    assert d["sim.firings"]["value"] == stats.total_firings
    assert d["sim.fifo_depth"]["count"] > 0
    assert d[f"sim.stop.{stats.stop_reason}"]["value"] == 1
    assert d["sim.tokens_per_cycle.y"]["value"] == \
        pytest.approx(stats.throughput("y"))
    assert reg.snapshots       # periodic snapshotting ran
    assert reg.snapshots[0]["cycle"] <= stats.cycles


def test_explicit_tracer_injection_beats_global():
    own = telemetry.Tracer()
    cfg = _scale_config()
    mgr = ConfigurationManager()
    mgr.load(cfg)
    cfg.sources["x"].set_data([1, 2, 3, 4])
    sim = Simulator(mgr, tracer=own)
    with tracing() as global_tr:
        sim.run(1000)
    assert own.spans("sim.run")
    assert not global_tr.spans("sim.run")


# -- overhead (tentpole acceptance) --------------------------------------------


def _bare_run(self, max_cycles, *, until=None, quiescent_limit=8):
    """The seed's uninstrumented run loop, for overhead comparison."""
    start_cycle = self.cycle
    idle = 0
    while self.cycle - start_cycle < max_cycles:
        if until is not None and until():
            break
        fired = self.step()
        if fired == 0:
            idle += 1
            if idle >= quiescent_limit:
                break
        else:
            idle = 0
    return self.collect_stats(self.cycle - start_cycle)


def _time_fft64(reps=3):
    from repro.kernels import Fft64Kernel

    rng = np.random.default_rng(0)
    re = rng.integers(-512, 512, 64).astype(np.int64)
    im = rng.integers(-512, 512, 64).astype(np.int64)
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        Fft64Kernel().run(re, im)
        best = min(best, time.perf_counter() - t0)
    return best


def test_tracing_disabled_overhead_within_5_percent(monkeypatch):
    """FFT64 with tracing disabled vs the uninstrumented seed loop."""
    telemetry.disable_tracing()
    telemetry.disable_metrics()
    _time_fft64(reps=1)                     # warm caches / JIT-free warmup
    for attempt in range(4):
        instrumented = _time_fft64()
        with monkeypatch.context() as m:
            m.setattr(Simulator, "run", _bare_run)
            bare = _time_fft64()
        ratio = instrumented / bare
        if ratio <= 1.05:
            break
    assert ratio <= 1.05, f"tracing-off overhead {ratio:.3f}x after retries"


def test_trace_fig10_example_writes_valid_chrome_trace(tmp_path):
    """Acceptance: the example's trace shows the 2a removal and the 2b
    load on the freed resources, in valid trace_event JSON."""
    import json
    import subprocess
    import sys
    from pathlib import Path

    script = Path(__file__).parent.parent / "examples" / "trace_fig10.py"
    proc = subprocess.run([sys.executable, str(script), str(tmp_path)],
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]

    trace = json.loads((tmp_path / "fig10_trace.json").read_text())
    events = trace["traceEvents"]
    by_name = {e["name"]: e for e in events if e["ph"] == "X"}
    remove_2a = by_name["config.remove:acq_correlator"]
    load_2b = by_name["config.load:demodulator"]
    assert remove_2a["ts"] <= load_2b["ts"]         # 2b loads after 2a frees
    assert load_2b["dur"] > 0
    # the resident configuration loads first and is never removed between
    load_1 = by_name["config.load:resident_fft0"]
    assert load_1["ts"] <= remove_2a["ts"]
    # metrics dump rides along with the RunStats payload
    metrics = json.loads((tmp_path / "fig10_metrics.json").read_text())
    assert metrics["runs"][0]["stop_reason"] == STOP_UNTIL
    assert "config.load_cycles" in metrics["metrics"]


def test_tracing_enabled_still_produces_correct_results():
    from repro.kernels import Fft64Kernel
    from repro.ofdm.fft import fft64_fixed

    rng = np.random.default_rng(1)
    re = rng.integers(-512, 512, 64).astype(np.int64)
    im = rng.integers(-512, 512, 64).astype(np.int64)
    gr, gi = fft64_fixed(re, im)
    with tracing() as tr:
        yr, yi = Fft64Kernel().run(re, im)
    assert np.array_equal(yr, gr) and np.array_equal(yi, gi)
    assert len(tr.spans("sim.run")) == 3        # one per stage

"""Unit tests for the recovery primitives and policies.

The property suite (``test_faults_properties.py``) proves the no-leak
guarantee in general; these tests pin the concrete mechanics: backoff
accounting, quarantine routing, slot bookkeeping after every outcome,
and the degradation moves on the receiver chains.
"""

import pytest

from repro.faults import (
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RECOVERED,
    ConfigLoadFault,
    FaultInjector,
    RecoveryPolicy,
    reload_config,
    remap_config,
    retry_load,
    worst_status,
)
from repro.kernels import build_descrambler_config
from repro.telemetry import ALERT_DEGRADED, disable_probes, enable_probes
from repro.xpp.array import XppArray
from repro.xpp.errors import ResourceError
from repro.xpp.manager import ConfigurationManager


def _faulty_manager(fail_count, config_name="*", array=None):
    """A manager whose next ``fail_count`` loads drop on the bus."""
    mgr = ConfigurationManager(array)
    inj = FaultInjector([ConfigLoadFault(config=config_name, mode="fail",
                                         count=fail_count)])
    inj.arm_manager(mgr)
    return mgr


# -- status folding ----------------------------------------------------------------


def test_worst_status_folding():
    assert worst_status([]) == STATUS_OK
    assert worst_status([STATUS_OK, STATUS_RECOVERED]) == STATUS_RECOVERED
    assert worst_status([STATUS_DEGRADED, STATUS_OK]) == STATUS_DEGRADED
    assert worst_status([STATUS_FAILED, STATUS_DEGRADED]) == STATUS_FAILED
    # unknown strings rank as failed, never silently as ok
    assert worst_status(["gibberish"]) == STATUS_FAILED


# -- retry_load --------------------------------------------------------------------


def test_retry_load_clean_first_try():
    mgr = ConfigurationManager()
    action = retry_load(mgr, build_descrambler_config())
    assert action.ok and action.attempts == 1 and action.cycles == 0


def test_retry_load_backoff_accounting():
    cfg = build_descrambler_config()
    mgr = _faulty_manager(2)
    before = mgr.total_reconfig_cycles
    action = retry_load(mgr, cfg, retries=3, backoff_cycles=16)
    assert action.ok and action.attempts == 3
    # failed attempts 1 and 2 waited 16 then 32 cycles
    assert action.cycles == 48
    assert mgr.total_reconfig_cycles - before >= 48
    assert mgr.is_loaded(cfg.name)


def test_retry_load_exhausts_budget():
    cfg = build_descrambler_config()
    mgr = _faulty_manager(99)
    action = retry_load(mgr, cfg, retries=2, backoff_cycles=8)
    assert not action.ok
    assert action.attempts == 3            # initial try + 2 retries
    assert action.cycles == 8 + 16
    assert not mgr.is_loaded(cfg.name)


def test_retry_load_does_not_retry_resource_errors():
    cfg = build_descrambler_config()
    tiny = XppArray(alu_rows=1, alu_cols=1, ram_per_side=0, io_ports=1)
    with pytest.raises(ResourceError):
        retry_load(ConfigurationManager(tiny), cfg)


# -- reload / remap ----------------------------------------------------------------


def test_reload_config_resets_and_reloads():
    cfg = build_descrambler_config()
    mgr = ConfigurationManager()
    mgr.load(cfg)
    sink = cfg.sinks["out"]
    sink.received.extend([1, 2, 3])        # pretend state accumulated
    actions = reload_config(mgr, cfg)
    assert [a.action for a in actions] == ["remove", "retry_load"]
    assert all(a.ok for a in actions)
    assert mgr.is_loaded(cfg.name)
    assert sink.received == []             # netlist back to build state


def test_remap_config_quarantines_and_relocates():
    cfg = build_descrambler_config()
    mgr = ConfigurationManager()
    entry = mgr.load(cfg)
    bad = entry.slots[:2]
    actions = remap_config(mgr, cfg, bad_slots=bad)
    assert [a.action for a in actions] == \
        ["remove", "quarantine", "quarantine", "retry_load"]
    assert actions[-1].ok
    # the bad slots are quarantined and the new placement avoids them
    assert set(mgr.array.quarantined()) == set(bad)
    assert not set(mgr.loaded[cfg.name].slots) & set(bad)


def test_remap_config_raises_when_spares_exhausted():
    cfg = build_descrambler_config()        # needs 2 alu slots
    tiny = XppArray(alu_rows=1, alu_cols=2, ram_per_side=0, io_ports=2)
    mgr = ConfigurationManager(tiny)
    entry = mgr.load(cfg)
    bad_alu = [s for s in entry.slots if s.kind == "alu"][:1]
    with pytest.raises(ResourceError):
        remap_config(mgr, cfg, bad_slots=bad_alu)
    # protocol-consistent aftermath: config out, quarantine persists
    assert not mgr.is_loaded(cfg.name)
    assert len(mgr.array.quarantined()) == 1


def test_release_quarantine_frees_the_slot():
    mgr = ConfigurationManager()
    slot = mgr.array.slots["alu"][0]
    mgr.array.quarantine(slot)
    assert slot in mgr.array.quarantined()
    mgr.array.release_quarantine(slot)
    assert mgr.array.quarantined() == []
    with pytest.raises(ResourceError):
        mgr.array.release_quarantine(slot)  # not quarantined any more


def test_quarantine_refuses_owned_slots():
    cfg = build_descrambler_config()
    mgr = ConfigurationManager()
    entry = mgr.load(cfg)
    with pytest.raises(ResourceError):
        mgr.array.quarantine(entry.slots[0])


# -- policies ----------------------------------------------------------------------


def test_policy_load_ok_then_recovered_then_degraded():
    cfg = build_descrambler_config()

    policy = RecoveryPolicy(ConfigurationManager())
    assert policy.load_with_recovery(cfg).status == STATUS_OK

    policy = RecoveryPolicy(_faulty_manager(1), retries=3)
    policy.manager.remove(cfg) if policy.manager.is_loaded(cfg.name) else None
    outcome = policy.load_with_recovery(cfg)
    assert outcome.status == STATUS_RECOVERED and outcome.ok

    policy = RecoveryPolicy(_faulty_manager(99), retries=1)
    outcome = policy.load_with_recovery(cfg)
    assert outcome.status == STATUS_DEGRADED and not outcome.ok
    assert policy.status == STATUS_DEGRADED


def test_policy_handle_corruption_recovers():
    cfg = build_descrambler_config()
    mgr = ConfigurationManager()
    entry = mgr.load(cfg)
    policy = RecoveryPolicy(mgr)
    outcome = policy.handle_corruption(cfg, bad_slots=entry.slots[:1])
    assert outcome.status == STATUS_RECOVERED
    assert mgr.is_loaded(cfg.name)


def test_policy_handle_corruption_degrades_without_spares():
    cfg = build_descrambler_config()
    tiny = XppArray(alu_rows=1, alu_cols=2, ram_per_side=0, io_ports=2)
    mgr = ConfigurationManager(tiny)
    entry = mgr.load(cfg)
    policy = RecoveryPolicy(mgr)
    bad_alu = [s for s in entry.slots if s.kind == "alu"][:1]
    outcome = policy.handle_corruption(cfg, bad_slots=bad_alu)
    assert outcome.status == STATUS_DEGRADED
    assert policy.status == STATUS_DEGRADED


def test_policy_degrades_rake_fingers():
    from repro.rake.session import RakeSession

    session = RakeSession(sf=16, code_index=1, active_set=[0])
    nominal = session.nominal_fingers
    policy = RecoveryPolicy(_faulty_manager(99), retries=0, session=session)
    policy.load_with_recovery(build_descrambler_config())
    assert session.degraded
    assert session.receiver.max_fingers == nominal - 1
    session.restore()
    assert not session.degraded
    assert session.receiver.max_fingers == nominal


def test_policy_degrades_ofdm_to_float_fft():
    from repro.ofdm.receiver import OfdmReceiver

    rx = OfdmReceiver(use_fixed_fft=True)
    policy = RecoveryPolicy(_faulty_manager(99), retries=0, ofdm=rx)
    policy.load_with_recovery(build_descrambler_config())
    assert rx.degraded
    assert not rx.use_fixed_fft


def test_degradation_raises_alert():
    board = enable_probes()
    try:
        policy = RecoveryPolicy(_faulty_manager(99), retries=0)
        policy.load_with_recovery(build_descrambler_config())
        kinds = [a.kind for a in board.alerts]
        assert ALERT_DEGRADED in kinds
    finally:
        disable_probes()


def test_outcome_serialization():
    policy = RecoveryPolicy(_faulty_manager(1))
    outcome = policy.load_with_recovery(build_descrambler_config())
    d = outcome.to_dict()
    assert d["status"] == STATUS_RECOVERED
    assert d["actions"][0]["action"] == "retry_load"
    assert d["actions"][0]["attempts"] == 2

"""Session workloads and DSP snapshot/restore differentials.

The migration contract: serialize a live receiver mid-run, round-trip
the state through JSON (what crosses the shard pipe), restore it in a
fresh object, and the continuation must be *bit-identical* to the
uninterrupted run.  Each test here is that differential for one layer
— tracker, rake session, streaming Viterbi, OFDM receiver — and then
for the full serve workloads via their chained digests.
"""

import json

import numpy as np
import pytest

from repro.ofdm.receiver import OfdmReceiver
from repro.ofdm.viterbi import StreamingViterbi
from repro.rake import RakeSession
from repro.rake.tracker import PathTracker
from repro.serve.session import (
    SessionSpec,
    build_workload,
    expand_sessions,
    slot_rng,
    workload_from_state,
)
from repro.wcdma import Basestation, DownlinkChannelConfig, \
    MultipathChannel, awgn

SF, CI = 16, 3
BLOCK = 256 * 12


def _roundtrip(d: dict) -> dict:
    """What shard migration does to state: a JSON wire round-trip."""
    return json.loads(json.dumps(d))


def make_block(delay, seed=0, snr_db=12):
    rng = np.random.default_rng(seed)
    bs = Basestation(0, [DownlinkChannelConfig(sf=SF, code_index=CI)],
                     rng=rng)
    ants, bits = bs.transmit(BLOCK)
    ch = MultipathChannel(delays=[delay], gains=[1.0], rng=rng)
    rx = awgn(ch.apply(ants[0])[:BLOCK + 16], snr_db, rng)
    return rx, bits[0]


class TestPathTrackerSnapshot:
    def test_roundtrip_preserves_tracking(self):
        session = RakeSession(sf=SF, code_index=CI, active_set=[0],
                              reacquire_interval=100)
        rx, _ = make_block(delay=5)
        session.process_block(rx, 8)
        tracker = session.trackers[0]
        clone = PathTracker.from_snapshot(_roundtrip(tracker.snapshot()))
        rx2, _ = make_block(delay=6, seed=1)
        a = tracker.update(rx2)
        b = clone.update(rx2)
        assert [(p.offset, p.energy, p.lost) for p in a] \
            == [(p.offset, p.energy, p.lost) for p in b]


class TestRakeSessionSnapshot:
    def test_midrun_restore_is_bit_exact(self):
        """Snapshot after 2 blocks; blocks 3-4 decode identically in
        the original and the restored session."""
        delays = [5, 5, 6, 7]
        cont = RakeSession(sf=SF, code_index=CI, active_set=[0],
                           reacquire_interval=3)
        for i in range(2):
            rx, _ = make_block(delays[i], seed=i)
            cont.process_block(rx, BLOCK // SF - 4)
        restored = RakeSession.from_snapshot(_roundtrip(cont.snapshot()))
        for i in range(2, 4):
            rx, _ = make_block(delays[i], seed=i)
            out_a, info_a = cont.process_block(rx, BLOCK // SF - 4)
            out_b, info_b = restored.process_block(rx, BLOCK // SF - 4)
            assert np.array_equal(out_a, out_b)
            assert info_a.offsets == info_b.offsets
            assert info_a.reacquired == info_b.reacquired

    def test_snapshot_covers_reacquisition_phase(self):
        """block_index survives the round-trip, so the periodic
        reacquisition schedule stays aligned."""
        session = RakeSession(sf=SF, code_index=CI, active_set=[0],
                              reacquire_interval=2)
        rx, _ = make_block(5, seed=0)
        session.process_block(rx, 8)
        restored = RakeSession.from_snapshot(
            _roundtrip(session.snapshot()))
        rx, _ = make_block(5, seed=1)
        _, info_a = session.process_block(rx, 8)
        _, info_b = restored.process_block(rx, 8)
        assert info_a.reacquired == info_b.reacquired

    def test_unacquired_tracker_roundtrips_as_none(self):
        session = RakeSession(sf=SF, code_index=CI, active_set=[0, 8])
        rx, _ = make_block(5, seed=0)
        session.process_block(rx, 8)        # bs 8 is absent: no tracker
        snap = session.snapshot()
        assert snap["trackers"]["8"] is None
        restored = RakeSession.from_snapshot(_roundtrip(snap))
        assert restored.trackers[8] is None


class TestStreamingViterbiSnapshot:
    def test_midstream_restore_is_bit_exact(self):
        rng = np.random.default_rng(42)
        soft = rng.normal(size=512)
        cont = StreamingViterbi(traceback_depth=24)
        out_a = []
        for t in range(128):
            bit = cont.update(soft[2 * t], soft[2 * t + 1])
            if bit is not None:
                out_a.append(bit)
        clone = StreamingViterbi.from_snapshot(_roundtrip(cont.snapshot()))
        out_b = list(out_a)
        for t in range(128, 256):
            for dec, sink in ((cont, out_a), (clone, out_b)):
                bit = dec.update(soft[2 * t], soft[2 * t + 1])
                if bit is not None:
                    sink.append(bit)
        assert np.array_equal(cont.flush(terminated=False),
                              clone.flush(terminated=False))
        assert out_a == out_b


class TestOfdmReceiverSnapshot:
    def test_roundtrip_preserves_configuration(self):
        rx = OfdmReceiver(use_fixed_fft=True, input_frac_bits=9)
        rx.degrade_to_float_fft(reason="test")
        clone = OfdmReceiver.from_snapshot(_roundtrip(rx.snapshot()))
        assert clone.use_fixed_fft == rx.use_fixed_fft
        assert clone.input_frac_bits == rx.input_frac_bits
        assert clone.degraded == rx.degraded

    def test_restore_in_place(self):
        rx = OfdmReceiver(use_fixed_fft=False)
        rx.restore(OfdmReceiver(use_fixed_fft=True).snapshot())
        assert rx.use_fixed_fft


class TestWorkloads:
    @pytest.mark.parametrize("kind", ["rake", "ofdm"])
    def test_digest_is_deterministic(self, kind):
        spec = SessionSpec(session_id="s", kind=kind, n_slots=3, seed=9)
        a, b = build_workload(spec), build_workload(spec)
        for _ in range(3):
            a.run_slot()
            b.run_slot()
        assert a.digest == b.digest
        assert a.counts == b.counts

    @pytest.mark.parametrize("kind", ["rake", "ofdm"])
    def test_migration_midrun_is_bit_exact(self, kind):
        """Run 2 of 5 slots, ship the state across a simulated pipe,
        finish on a 'different shard' — chained digest identical."""
        spec = SessionSpec(session_id="m", kind=kind, n_slots=5, seed=3)
        base = build_workload(spec)
        for _ in range(5):
            base.run_slot()
        moved = build_workload(spec)
        moved.run_slot()
        moved.run_slot()
        resumed = workload_from_state(spec, _roundtrip(moved.state()))
        while not resumed.done:
            resumed.run_slot()
        assert resumed.digest == base.digest
        assert resumed.counts == base.counts

    def test_rake_workload_decodes_cleanly(self):
        spec = SessionSpec(session_id="r", kind="rake", n_slots=2,
                           seed=11)
        w = build_workload(spec)
        w.run_slot()
        w.run_slot()
        assert w.counts["bit_errors"] == 0
        assert w.counts["data_bits"] > 0

    def test_kind_mismatch_rejected(self):
        spec = SessionSpec(session_id="x", kind="ofdm", n_slots=2, seed=1)
        state = build_workload(
            SessionSpec(session_id="x", kind="rake", n_slots=2,
                        seed=1)).state()
        with pytest.raises(ValueError):
            workload_from_state(spec, state)

    def test_slot_rng_is_pure_function_of_seed_and_slot(self):
        a = slot_rng(7, 3).integers(0, 1 << 30, size=8)
        b = slot_rng(7, 3).integers(0, 1 << 30, size=8)
        c = slot_rng(7, 4).integers(0, 1 << 30, size=8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestExpandSessions:
    def test_load_groups_and_explicit_sessions(self):
        specs = expand_sessions({
            "master_seed": 5,
            "sessions": [{"session_id": "vip", "kind": "rake",
                          "n_slots": 2}],
            "load": [{"kind": "ofdm", "count": 2, "tenant": "bulk",
                      "n_slots": 3}]})
        assert [s.session_id for s in specs] \
            == ["vip", "bulk/ofdm-0", "bulk/ofdm-1"]
        assert len({s.seed for s in specs}) == 3
        again = expand_sessions({
            "master_seed": 5,
            "sessions": [{"session_id": "vip", "kind": "rake",
                          "n_slots": 2}],
            "load": [{"kind": "ofdm", "count": 2, "tenant": "bulk",
                      "n_slots": 3}]})
        assert [s.seed for s in specs] == [s.seed for s in again]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            expand_sessions({"sessions": [
                {"session_id": "a", "kind": "rake"},
                {"session_id": "a", "kind": "ofdm"}]})

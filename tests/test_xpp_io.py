"""Tests for the I/O port objects, including RAM-addressing mode."""


from repro.xpp import ConfigBuilder, ConfigurationManager, MemoryPort, \
    Simulator, StreamSource, execute


class TestStreamSource:
    def test_remaining_and_exhausted(self):
        src = StreamSource("s", [1, 2, 3])
        assert src.remaining == 3
        assert not src.exhausted

    def test_set_data_wraps_to_width(self):
        src = StreamSource("s", bits=8)
        src.set_data([130])
        assert src._data == [-126]

    def test_replacing_data_resets_position(self):
        b = ConfigBuilder("t")
        src = b.source("x", [1, 2])
        snk = b.sink("y", expect=2)
        b.chain(src, snk)
        cfg = b.build()
        execute(cfg, unload=True)
        src.set_data([5, 6])
        assert src.remaining == 2


class TestMemoryPort:
    def _load(self, cfg):
        mgr = ConfigurationManager()
        mgr.load(cfg)
        return mgr

    def test_reads_host_memory(self):
        b = ConfigBuilder("t")
        port = MemoryPort("ext", memory=[10, 20, 30, 40])
        b._cfg.add(port)
        addr = b.source("addr", [3, 0, 2])
        snk = b.sink("y", expect=3)
        b.connect(addr, 0, port, "raddr")
        b.connect(port, "rdata", snk, 0)
        assert execute(b.build())["y"] == [40, 10, 30]

    def test_writes_host_memory(self):
        b = ConfigBuilder("t")
        port = MemoryPort("ext", size=8)
        b._cfg.add(port)
        waddr = b.source("wa", [1, 5])
        wdata = b.source("wd", [111, 222])
        b.connect(waddr, 0, port, "waddr")
        b.connect(wdata, 0, port, "wdata")
        mgr = self._load(b.build())
        Simulator(mgr).run(50)
        assert port.memory[1] == 111
        assert port.memory[5] == 222

    def test_gather_via_address_stream(self):
        """The RAM-addressing use case: an array-generated address
        stream gathers scattered external samples."""
        data = list(range(100, 164))
        b = ConfigBuilder("gather")
        port = MemoryPort("ext", memory=data)
        b._cfg.add(port)
        counter = b.alu("COUNTER", start=0, step=4, count=8)
        snk = b.sink("y", expect=8)
        b.connect(counter, "value", port, "raddr")
        b.connect(port, "rdata", snk, 0)
        assert execute(b.build())["y"] == data[0:32:4]

    def test_counts_as_io_resource(self):
        b = ConfigBuilder("t")
        b._cfg.add(MemoryPort("ext", size=4))
        assert b._cfg.requirements()["io"] == 1

    def test_memory_wrapped_to_width(self):
        port = MemoryPort("ext", memory=[1 << 23], bits=24)
        assert port.memory[0] == -(1 << 23)

    def test_address_wraps_modulo_size(self):
        b = ConfigBuilder("t")
        port = MemoryPort("ext", memory=[7, 8])
        b._cfg.add(port)
        addr = b.source("a", [5])
        snk = b.sink("y", expect=1)
        b.connect(addr, 0, port, "raddr")
        b.connect(port, "rdata", snk, 0)
        assert execute(b.build())["y"] == [8]

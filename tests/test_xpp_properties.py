"""Property-based tests of the dataflow execution model.

Hypothesis generates random pipeline topologies and input streams; the
invariants under test are the architectural guarantees the paper's
handshake protocol provides: no token is ever lost, duplicated or
reordered; execution is deterministic; resource accounting balances.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixed import pack_array, unpack_array, wrap
from repro.xpp import ConfigBuilder, ConfigurationManager, execute

# random linear pipelines of stateless scalar ops
_OPS = st.sampled_from([
    ("ADD", {"const": 7}),
    ("SUB", {"const": -3}),
    ("MUL", {"const": 2}),
    ("XOR", {"const": 0x55}),
    ("SHIFT", {"amount": -1}),
    ("SHIFT", {"amount": 1}),
    ("NEG", {}),
    ("ABS", {}),
    ("PASS", {}),
])

_PY_FN = {
    "ADD": lambda v, p: v + p["const"],
    "SUB": lambda v, p: v - p["const"],
    "MUL": lambda v, p: v * p["const"],
    "XOR": lambda v, p: v ^ p["const"],
    "SHIFT": lambda v, p: v << p["amount"] if p["amount"] >= 0
    else v >> -p["amount"],
    "NEG": lambda v, p: -v,
    "ABS": lambda v, p: abs(v),
    "PASS": lambda v, p: v,
}


def _reference(data, ops):
    out = []
    for v in data:
        for opcode, params in ops:
            v = wrap(_PY_FN[opcode](v, params), 24)
        out.append(v)
    return out


def _pipeline(ops, data, capacities):
    b = ConfigBuilder("prop")
    src = b.source("x", data)
    prev = src
    for i, ((opcode, params), cap) in enumerate(zip(ops, capacities)):
        op = b.alu(opcode, name=f"op{i}", **params)
        b.connect(prev, 0, op, 0, capacity=cap)
        prev = op
    snk = b.sink("y", expect=len(data))
    b.connect(prev, 0, snk, 0)
    return b.build()


class TestTokenConservation:
    @given(st.lists(_OPS, min_size=1, max_size=8),
           st.lists(st.integers(min_value=-(2 ** 20), max_value=2 ** 20),
                    min_size=1, max_size=30),
           st.data())
    @settings(max_examples=30, deadline=None)
    def test_no_loss_duplication_or_reorder(self, ops, data, draw):
        caps = [draw.draw(st.integers(min_value=1, max_value=4))
                for _ in ops]
        cfg = _pipeline(ops, data, caps)
        out = execute(cfg)["y"]
        assert out == _reference(data, ops)

    @given(st.lists(_OPS, min_size=1, max_size=6),
           st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=1, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_determinism(self, ops, data):
        caps = [2] * len(ops)
        r1 = execute(_pipeline(ops, data, caps))
        r2 = execute(_pipeline(ops, data, caps))
        assert r1["y"] == r2["y"]
        assert r1.stats.cycles == r2.stats.cycles
        assert r1.stats.total_firings == r2.stats.total_firings

    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=40),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_fanout_delivers_identical_streams(self, data, width):
        """One producer fanning out to N sinks: every sink sees the full
        stream in order."""
        b = ConfigBuilder("fan")
        src = b.source("x", data)
        dup = b.alu("PASS", name="dup")
        b.connect(src, 0, dup, 0)
        sinks = []
        for i in range(width):
            s = b.sink(f"s{i}", expect=len(data))
            b.connect(dup, 0, s, 0)
            sinks.append(s)
        execute(b.build())
        for s in sinks:
            assert s.received == data


class TestResourceAccounting:
    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_load_remove_balances(self, n_alu, n_ram):
        b = ConfigBuilder("bal")
        src = b.source("in", [0])
        prev = src
        for i in range(n_alu):
            op = b.alu("PASS", name=f"p{i}")
            b.connect(prev, 0, op, 0)
            prev = op
        for i in range(n_ram):
            f = b.fifo(name=f"f{i}", depth=4)
            b.connect(prev, 0, f, 0)
            prev = f
        snk = b.sink("out")
        b.connect(prev, 0, snk, 0)
        mgr = ConfigurationManager()
        cfg = b.build()
        mgr.load(cfg)
        occ = mgr.occupancy()
        assert occ["alu"][0] == n_alu
        assert occ["ram"][0] == n_ram
        mgr.remove(cfg)
        assert all(used == 0 for used, _t in mgr.occupancy().values())
        assert mgr.router.total_segments == 0

    @given(st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=1, max_size=25))
    @settings(max_examples=15, deadline=None)
    def test_firings_match_work_done(self, data):
        """A single unary op fires exactly once per token."""
        b = ConfigBuilder("count")
        src = b.source("x", data)
        op = b.alu("NEG", name="n")
        snk = b.sink("y", expect=len(data))
        b.chain(src, op, snk)
        r = execute(b.build())
        assert r.stats.firings["n"] == len(data)
        assert r.stats.firings["x"] == len(data)


class TestNmlRoundTripProperty:
    @given(st.lists(_OPS, min_size=1, max_size=6),
           st.lists(st.integers(min_value=-500, max_value=500),
                    min_size=1, max_size=15))
    @settings(max_examples=20, deadline=None)
    def test_random_pipeline_survives_nml_round_trip(self, ops, data):
        """dump_nml(parse_nml(dump_nml(cfg))) is stable and the reparsed
        hardware behaves identically — for arbitrary generated
        pipelines."""
        from repro.xpp import dump_nml, parse_nml
        cfg = _pipeline(ops, data, [2] * len(ops))
        text = dump_nml(cfg)
        reparsed = parse_nml(text)
        assert dump_nml(reparsed) == text
        reparsed.sources["x"].set_data(data)
        r1 = execute(_pipeline(ops, data, [2] * len(ops)))
        r2 = execute(reparsed)
        assert r1["y"] == r2["y"]


class TestPackedComplexProperties:
    # |x|^2 must fit the 12-bit packed half: r^2 + i^2 <= 2047
    @given(st.lists(st.tuples(
        st.integers(min_value=-31, max_value=31),
        st.integers(min_value=-31, max_value=31)), min_size=1, max_size=15))
    @settings(max_examples=15, deadline=None)
    def test_conjugate_multiply_gives_energy(self, pairs):
        """x * conj(x) through the array = |x|^2 (imag exactly zero)."""
        z = np.array([complex(r, i) for r, i in pairs])
        b = ConfigBuilder("energy")
        sa = b.source("a", pack_array(z))
        sb = b.source("b", pack_array(z))
        mul = b.alu("CMUL", name="m", conj_b=True)
        snk = b.sink("y", expect=z.size)
        b.connect(sa, 0, mul, "a")
        b.connect(sb, 0, mul, "b")
        b.connect(mul, 0, snk, 0)
        out = unpack_array(np.array(execute(b.build())["y"]))
        energy = np.array([r * r + i * i for r, i in pairs])
        np.testing.assert_array_equal(out.imag, 0)
        np.testing.assert_array_equal(out.real, energy)

    @given(st.lists(st.tuples(
        st.integers(min_value=-500, max_value=500),
        st.integers(min_value=-500, max_value=500)),
        min_size=2, max_size=12))
    @settings(max_examples=15, deadline=None)
    def test_cadd_commutes_through_array(self, pairs):
        z = np.array([complex(r, i) for r, i in pairs])
        a, bz = z[:-1], z[1:]

        def add(x, y):
            b = ConfigBuilder("c")
            sa = b.source("a", pack_array(x))
            sb = b.source("b", pack_array(y))
            op = b.alu("CADD", name="s")
            snk = b.sink("y", expect=x.size)
            b.connect(sa, 0, op, "a")
            b.connect(sb, 0, op, "b")
            b.connect(op, 0, snk, 0)
            return unpack_array(np.array(execute(b.build())["y"]))

        np.testing.assert_array_equal(add(a, bz), add(bz, a))

"""Unit tests for complex fixed-point helpers and I/Q packing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixed import (
    cmac,
    cmul,
    complex_from_fixed,
    complex_to_fixed,
    pack_array,
    pack_complex,
    quantize_complex,
    unpack_array,
    unpack_complex,
)

i12 = st.integers(min_value=-2048, max_value=2047)


class TestCmul:
    def test_matches_python_complex(self):
        re, im = cmul(3, 4, 5, -6)
        assert complex(re, im) == (3 + 4j) * (5 - 6j)

    def test_shift(self):
        re, im = cmul(8, 0, 8, 0, shift=3)
        assert (re, im) == (8, 0)

    @given(i12, i12, i12, i12)
    def test_cmul_exact_without_shift(self, ar, ai, br, bi):
        re, im = cmul(ar, ai, br, bi, bits=32)
        ref = complex(ar, ai) * complex(br, bi)
        assert complex(re, im) == ref

    def test_cmac_accumulates(self):
        re, im = cmac(10, 20, 1, 0, 2, 3, bits=32)
        assert (re, im) == (12, 23)


class TestComplexQuantise:
    def test_roundtrip(self):
        z = np.array([0.5 + 0.25j, -0.125 - 0.5j])
        re, im = complex_to_fixed(z, 10)
        back = complex_from_fixed(re, im, 10)
        np.testing.assert_allclose(back, z)

    def test_quantize_complex_error(self):
        rng = np.random.default_rng(7)
        z = (rng.standard_normal(100) + 1j * rng.standard_normal(100)) * 0.3
        q = quantize_complex(z, 10)
        assert np.max(np.abs(q - z)) <= np.sqrt(2) * 2.0 ** (-10)


class TestPacking:
    @given(i12, i12)
    def test_pack_unpack_roundtrip(self, re, im):
        assert unpack_complex(pack_complex(re, im)) == (re, im)

    def test_pack_fits_in_24_bits(self):
        word = pack_complex(-2048, 2047)
        assert 0 <= word < (1 << 24)

    def test_pack_array_roundtrip(self):
        z = np.array([3 - 4j, -2048 + 2047j, 0j])
        words = pack_array(z)
        back = unpack_array(words)
        np.testing.assert_array_equal(back, z)

    def test_pack_array_rejects_real(self):
        with pytest.raises(TypeError):
            pack_array(np.array([1.0, 2.0]))

    @given(st.lists(st.tuples(i12, i12), min_size=1, max_size=20))
    def test_vector_scalar_consistency(self, pairs):
        z = np.array([complex(r, i) for r, i in pairs])
        words = pack_array(z)
        scalar = [pack_complex(r, i) for r, i in pairs]
        assert list(words) == scalar

"""Coverage for simulator conveniences: execute options, shared
managers, probes, stats accessors."""


from repro.xpp import (
    ConfigBuilder,
    ConfigurationManager,
        Simulator,
    execute,
)


def simple_cfg(name="c", data=(1, 2, 3)):
    b = ConfigBuilder(name)
    src = b.source(f"{name}_in", list(data))
    p = b.probe(f"{name}_probe")
    snk = b.sink(f"{name}_out", expect=len(data))
    b.chain(src, p, snk)
    return b.build()


class TestExecuteOptions:
    def test_unload_false_keeps_config_resident(self):
        mgr = ConfigurationManager()
        cfg = simple_cfg()
        execute(cfg, manager=mgr, unload=False)
        assert mgr.is_loaded("c")
        mgr.remove(cfg)

    def test_shared_manager_accumulates_reconfig_cycles(self):
        mgr = ConfigurationManager()
        execute(simple_cfg("a"), manager=mgr)
        after_one = mgr.total_reconfig_cycles
        execute(simple_cfg("b"), manager=mgr)
        assert mgr.total_reconfig_cycles > after_one

    def test_result_getitem_and_outputs(self):
        r = execute(simple_cfg())
        assert r["c_out"] == [1, 2, 3]
        assert r.outputs["c_out"] == [1, 2, 3]
        assert r.config.name == "c"

    def test_probe_records_traffic_without_cost(self):
        cfg = simple_cfg()
        r = execute(cfg)
        probe = cfg.probes["c_probe"]
        assert probe.seen == [1, 2, 3]
        assert probe.KIND is None           # occupies no array slot

    def test_probe_uses_no_slots(self):
        mgr = ConfigurationManager()
        mgr.load(simple_cfg())
        occ = mgr.occupancy()
        assert occ["alu"][0] == 0           # only io used


class TestStatsAccessors:
    def test_utilization_and_energy(self):
        r = execute(simple_cfg(data=range(50)))
        assert 0 < r.stats.utilization("c_probe") <= 1
        assert r.stats.utilization("ghost") == 0.0
        assert r.stats.energy >= 0

    def test_zero_cycle_stats(self):
        from repro.xpp.stats import RunStats
        s = RunStats()
        assert s.utilization("x") == 0.0
        assert s.mean_utilization() == 0.0
        assert s.throughput("y") == 0.0


class TestSimulatorUntil:
    def test_until_stops_early(self):
        mgr = ConfigurationManager()
        cfg = simple_cfg(data=range(100))
        mgr.load(cfg)
        sim = Simulator(mgr)
        snk = cfg.sinks["c_out"]
        sim.run(10_000, until=lambda: len(snk.received) >= 10)
        assert 10 <= len(snk.received) <= 12

    def test_timeslice_until(self):
        from repro.sdr import TimeSliceScheduler
        sched = TimeSliceScheduler()
        cfg = simple_cfg(data=range(50))
        snk = cfg.sinks["c_out"]
        r = sched.run_slice("p", [cfg],
                            until=lambda: len(snk.received) >= 5)
        assert 5 <= len(r.outputs["c_out"]) <= 7

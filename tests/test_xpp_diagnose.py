"""Tests for the stall diagnosis utility."""


from repro.xpp import (
    ConfigBuilder,
    ConfigurationManager,
    Simulator,
    deadlock_report,
    diagnose,
)


def starved_config():
    """A binary op missing one operand stream — classic starvation."""
    b = ConfigBuilder("starved")
    sa = b.source("a", [1, 2, 3])
    sb = b.source("b", [10])            # runs dry after one token
    add = b.alu("ADD", name="adder")
    snk = b.sink("y")
    b.connect(sa, 0, add, "a")
    b.connect(sb, 0, add, "b")
    b.connect(add, 0, snk, 0)
    return b.build()


class TestDiagnose:
    def test_starvation_identified(self):
        mgr = ConfigurationManager()
        mgr.load(starved_config())
        Simulator(mgr).run(100)
        stalls = {s.name: s for s in diagnose(mgr)}
        assert "adder" in stalls
        assert stalls["adder"].empty_inputs == ["b"]
        assert stalls["b"].note == "input stream exhausted"

    def test_backpressure_identified(self):
        """A MERGE whose select stream never arrives blocks its data
        producer: the producer reports the full output, the merge the
        missing select."""
        b = ConfigBuilder("blocked")
        gen = b.alu("CONST", name="gen", value=1)
        sel = b.source("sel", [])           # never provides
        other = b.source("other", [])
        merge = b.alu("MERGE", name="mrg")
        snk = b.sink("y")
        b.connect(sel, 0, merge, "sel")
        b.connect(gen, 0, merge, "a", capacity=1)
        b.connect(other, 0, merge, "b")
        b.connect(merge, 0, snk, 0)
        mgr = ConfigurationManager()
        mgr.load(b.build())
        Simulator(mgr).run(20)
        stalls = {s.name: s for s in diagnose(mgr)}
        assert stalls["gen"].full_outputs == ["out0"]
        assert "sel" in stalls["mrg"].empty_inputs

    def test_sink_progress_reported(self):
        mgr = ConfigurationManager()
        cfg = starved_config()
        cfg.sinks["y"].expect = 3
        mgr.load(cfg)
        Simulator(mgr).run(100)
        stalls = {s.name: s for s in diagnose(mgr)}
        assert stalls["y"].note == "received 1 of 3"

    def test_report_is_readable(self):
        mgr = ConfigurationManager()
        mgr.load(starved_config())
        Simulator(mgr).run(100)
        text = deadlock_report(mgr)
        assert "stalled object" in text
        assert "adder" in text and "waiting for b" in text

    def test_healthy_pipeline_reports_progress(self):
        b = ConfigBuilder("healthy")
        src = b.source("x", list(range(100)))
        op = b.alu("NEG", name="n")
        snk = b.sink("y", expect=100)
        b.chain(src, op, snk)
        mgr = ConfigurationManager()
        mgr.load(b.build())
        sim = Simulator(mgr)
        sim.step()
        sim.step()
        # mid-stream, active objects can fire: few or no stalls
        stalls = [s for s in diagnose(mgr) if s.name in ("x", "n")]
        assert stalls == []

    def test_empty_manager(self):
        assert deadlock_report(ConfigurationManager()) == \
            "no stalled objects"

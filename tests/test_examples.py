"""Every example script must run cleanly — they are the library's
front door."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()        # examples narrate what they do


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "rake_soft_handover.py", "wlan_link.py",
            "multistandard_terminal.py", "programming_flows.py",
            "power_control_link.py", "ber_curves.py"} <= names
